//! End-to-end monitoring at realistic scale: 48 ranks on a 2-node PlaFRIM
//! machine, mixed workloads, sessions on sub-communicators, flush files.

use mim_core::{Flags, MonError, Monitoring, Msid};
use mim_mpisim::{SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

fn universe(np: usize) -> Universe {
    Universe::new(UniverseConfig::new(Machine::plafrim(2), Placement::packed(np)))
}

#[test]
fn forty_eight_ranks_mixed_traffic() {
    let np = 48;
    let u = universe(np);
    u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();

        // Ring of user p2p messages: everyone sends 100 bytes to the right.
        rank.send(&world, (me + 1) % np, 1, &[0u8; 100]);
        rank.recv::<u8>(&world, SrcSel::Rank((me + np - 1) % np), TagSel::Is(1));
        // A collective on top.
        let mut v = if me == 0 { vec![1u8; 4800] } else { vec![] };
        rank.bcast(&world, 0, &mut v);

        mon.suspend(id).unwrap();
        let all = mon.allgather_data(rank, id, Flags::ALL_COMM).unwrap();
        let p2p = mon.allgather_data(rank, id, Flags::P2P_ONLY).unwrap();
        let coll = mon.allgather_data(rank, id, Flags::COLL_ONLY).unwrap();

        // The ring: np messages of 100 bytes.
        assert_eq!(p2p.counts.total(), np as u64);
        assert_eq!(p2p.sizes.total(), 100 * np as u64);
        // The bcast: np-1 messages of 4800 bytes.
        assert_eq!(coll.counts.total(), (np - 1) as u64);
        assert_eq!(coll.sizes.total(), 4800 * (np - 1) as u64);
        // ALL = union.
        assert_eq!(all.counts.total(), p2p.counts.total() + coll.counts.total());
        assert_eq!(all.sizes.total(), p2p.sizes.total() + coll.sizes.total());
        // Row consistency: the gathered matrix row i equals rank i's own row.
        let row = mon.get_data(id, Flags::ALL_COMM).unwrap();
        assert_eq!(all.counts.row(me), &row.counts[..]);
        assert_eq!(all.sizes.row(me), &row.sizes[..]);

        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn subcommunicator_sessions_and_world_sessions_coexist() {
    let np = 24;
    let u = universe(np);
    u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let half = rank.comm_split(&world, (me / 12) as i64, me as i64);
        let mon = Monitoring::init(rank).unwrap();
        let s_world = mon.start(rank, &world).unwrap();
        let s_half = mon.start(rank, &half).unwrap();

        // Traffic within my half, sent on the WORLD communicator: the half
        // session must still see it (both endpoints are members).
        let peer_in_half = if me % 12 < 6 { me + 6 } else { me - 6 };
        rank.send(&world, peer_in_half, 7, &[0u8; 10]);
        rank.recv::<u8>(&world, SrcSel::Rank(peer_in_half), TagSel::Is(7));
        // Traffic across the halves: only the world session sees it.
        let cross_peer = (me + 12) % np;
        rank.send(&world, cross_peer, 8, &[0u8; 20]);
        rank.recv::<u8>(&world, SrcSel::Rank(cross_peer), TagSel::Is(8));

        mon.suspend(Msid::ALL).unwrap();
        let world_data = mon.allgather_data(rank, s_world, Flags::P2P_ONLY).unwrap();
        let half_data = mon.allgather_data(rank, s_half, Flags::P2P_ONLY).unwrap();
        assert_eq!(world_data.sizes.total(), (10 + 20) * np as u64);
        assert_eq!(half_data.sizes.total(), 10 * 12);
        mon.free(Msid::ALL).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn session_overflow_is_reported() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let mut last = Err(MonError::InternalFail("unset".into()));
        for _ in 0..=mim_core::session::MAX_SESSIONS {
            last = mon.start(rank, &world);
            if last.is_err() {
                break;
            }
        }
        assert_eq!(last.err(), Some(MonError::SessionOverflow));
        mon.suspend(Msid::ALL).unwrap();
        mon.free(Msid::ALL).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn rootflush_roundtrips_the_matrix() {
    let dir = std::env::temp_dir().join(format!("mim-integ-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("ring").to_string_lossy().into_owned();
    let np = 8;
    let u = universe(np);
    let base2 = base.clone();
    u.launch(move |rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        rank.send(&world, (me + 1) % np, 1, &vec![0u8; (me + 1) * 10]);
        rank.recv::<u8>(&world, SrcSel::Rank((me + np - 1) % np), TagSel::Is(1));
        mon.suspend(id).unwrap();
        mon.rootflush(rank, id, 0, &base2, Flags::P2P_ONLY).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
    let sizes = std::fs::read_to_string(format!("{base}_sizes.0.prof")).unwrap();
    let rows: Vec<Vec<u64>> =
        sizes.lines().map(|l| l.split(',').map(|v| v.parse().unwrap()).collect()).collect();
    assert_eq!(rows.len(), np);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[(i + 1) % np], ((i + 1) * 10) as u64, "row {i}: {row:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
