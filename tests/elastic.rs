//! Elastic universes: rank join/leave, communicator growth and rolling
//! restarts under chaos.
//!
//! The properties pinned here are the elastic layer's contract:
//!
//! * a no-churn elastic run is **bit-identical** to the static universe on
//!   both executors (elasticity is free until used);
//! * a fixed-seed rolling restart (crash → rejoin → `comm_grow`) converges
//!   with the same monitoring totals whatever the chaos seed or topology;
//! * traffic against a superseded membership epoch is rejected with a typed
//!   error, deterministically;
//! * a rank dying mid-epoch leaves no phantom rows in the next gathered
//!   window, and the tree gather routes around absent ranks.

use mim_chaos::FaultPlan;
use mim_core::{Flags, Monitoring};
use mim_mpisim::{ExecutorKind, Rank, SrcSel, StaleEpoch, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

/// A monitored ring workload: deterministic traffic, per-rank row and the
/// completion clock (bit-exact).
fn monitored_ring(rank: &Rank) -> (Vec<u64>, Vec<u64>, u64) {
    let world = rank.comm_world();
    let me = world.rank();
    let n = world.size();
    let mon = Monitoring::init(rank).unwrap();
    let id = mon.start(rank, &world).unwrap();
    for r in 0..3u64 {
        rank.send(&world, (me + 1) % n, 5, &[me as u64 * 10 + r]);
        let _ = rank.recv::<u64>(&world, SrcSel::Rank((me + n - 1) % n), TagSel::Is(5));
    }
    mon.suspend(id).unwrap();
    let row = mon.get_data(id, Flags::ALL_COMM).unwrap();
    mon.free(id).unwrap();
    mon.finalize(rank).unwrap();
    (row.counts, row.sizes, rank.now_ns().to_bits())
}

#[test]
fn no_churn_elastic_run_is_bit_identical_to_static() {
    for kind in [ExecutorKind::Threads, ExecutorKind::Tasks] {
        let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(6));
        cfg.executor = kind;
        let oracle = Universe::new(cfg).launch(monitored_ring);

        let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(6));
        cfg.executor = kind;
        let elastic = Universe::new(cfg).launch_elastic(monitored_ring);

        assert_eq!(oracle.len(), elastic.len());
        for (w, (want, got)) in oracle.iter().zip(&elastic).enumerate() {
            let got = got.as_ref().expect("no churn: every rank completes");
            let got = got.as_ref().expect("no latents: every slot runs the app");
            assert_eq!(want, got, "rank {w} diverged from the static oracle ({kind:?})");
        }
    }
}

/// World rank that crashes and is readmitted in the churn tests.
const VICTIM: usize = 2;

/// The rolling-restart protocol: phase-1 ring traffic trips the plan's
/// crash; survivors agree on the death, shrink, await the rebirth and grow;
/// the reborn victim receives the grown communicator by admission; everyone
/// then runs a monitored ring on the grown world.
fn churn_app(rank: &Rank) -> (u64, u64, Vec<u64>, Vec<u64>, u64) {
    let grown = if rank.incarnation() > 0 {
        rank.recv_admission()
    } else {
        let world = rank.comm_world();
        let me = world.rank();
        let n = world.size();
        for r in 0..4u64 {
            rank.send(&world, (me + 1) % n, 7, &[me as u64 * 100 + r]);
            let _ = rank.recv_or_failure::<u64>(&world, (me + n - 1) % n, 7);
        }
        let alive = rank.liveness_exchange(&world);
        assert!(!alive[VICTIM], "the plan must have crashed the victim");
        let work = rank.comm_shrink(&world, &alive);
        let inc = rank.await_rejoin(VICTIM);
        assert_eq!(inc, 1, "first rebirth");
        if work.rank() == 0 {
            rank.admit(&work, VICTIM)
        } else {
            rank.comm_grow(&work, &[VICTIM])
        }
    };
    // Phase 2: a monitored neighbour ring over the recovered membership.
    let mon = Monitoring::init(rank).unwrap();
    let id = mon.start(rank, &grown).unwrap();
    let m = grown.size();
    let me = grown.rank();
    for r in 0..3u64 {
        rank.send(&grown, (me + 1) % m, 9, &[me as u64 * 1000 + r]);
        let _ = rank.recv::<u64>(&grown, SrcSel::Rank((me + m - 1) % m), TagSel::Is(9));
    }
    mon.suspend(id).unwrap();
    let row = mon.get_data(id, Flags::P2P_ONLY).unwrap();
    mon.free(id).unwrap();
    mon.finalize(rank).unwrap();
    (grown.id(), grown.epoch(), row.counts, row.sizes, rank.now_ns().to_bits())
}

type ChurnOutcome = Vec<(u64, u64, Vec<u64>, Vec<u64>, u64)>;
/// A churn outcome with the virtual clocks stripped (seed-invariant part).
type ClocklessOutcome = Vec<(u64, u64, Vec<u64>, Vec<u64>)>;

fn churn_run(machine: Machine, n: usize, seed: u64, kind: ExecutorKind) -> ChurnOutcome {
    let plan = FaultPlan::new(seed).delay(0.2, 30_000.0).restart_at_ops(VICTIM, 5);
    let mut cfg =
        UniverseConfig::new(machine, Placement::packed(n)).with_injector(plan.into_injector());
    cfg.executor = kind;
    Universe::new(cfg)
        .launch_elastic(churn_app)
        .into_iter()
        .map(|r| r.expect("restarted ranks complete").expect("no latent slots"))
        .collect()
}

#[test]
fn rolling_restart_converges_across_seeds_and_topologies() {
    // Delay chaos varies with the seed; the recovered membership and the
    // post-recovery monitoring totals must not.
    for (machine, n) in [
        (Machine::cluster(2, 1, 4), 6),
        (Machine::cluster(1, 1, 8), 5),
        (Machine::cluster(2, 2, 4), 8),
    ] {
        let mut monitored: Option<ClocklessOutcome> = None;
        for seed in [3u64, 17, 4242] {
            let out = churn_run(machine.clone(), n, seed, ExecutorKind::Threads);
            let stripped: Vec<_> =
                out.iter().map(|(id, ep, c, s, _clock)| (*id, *ep, c.clone(), s.clone())).collect();
            // Membership went world(0) → shrink(1) → grow(2) everywhere.
            for (_, epoch, counts, _, _) in &out {
                assert_eq!(*epoch, 2);
                assert_eq!(counts.iter().sum::<u64>(), 3, "3 ring sends per rank");
            }
            match &monitored {
                None => monitored = Some(stripped),
                Some(first) => assert_eq!(
                    first, &stripped,
                    "monitoring totals diverged across seeds ({n} ranks)"
                ),
            }
        }
    }
}

#[test]
fn rolling_restart_is_reproducible_and_engine_independent() {
    let machine = Machine::cluster(2, 1, 4);
    let a = churn_run(machine.clone(), 6, 11, ExecutorKind::Threads);
    let b = churn_run(machine.clone(), 6, 11, ExecutorKind::Threads);
    assert_eq!(a, b, "same seed, same engine: byte-identical (clocks included)");
    let t = churn_run(machine, 6, 11, ExecutorKind::Tasks);
    assert_eq!(a, t, "same seed across engines: byte-identical (clocks included)");
}

#[test]
fn stale_epoch_send_is_rejected_deterministically() {
    let cfg =
        UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(3)).with_latent_ranks(1);
    let res = Universe::new(cfg).launch_elastic(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        // Growing (locally) supersedes the parent's membership epoch...
        let grown = rank.comm_grow(&world, &[2]);
        let err = rank.send_checked(&world, 1 - me, 3, &[1u64]).unwrap_err();
        assert_eq!(err, StaleEpoch { comm_epoch: 0, current_epoch: 1 });
        // ...while the grown communicator itself is current.
        rank.send_checked(&grown, 1 - me, 4, &[9u64]).unwrap();
        let (v, _) = rank.recv::<u64>(&grown, SrcSel::Rank(1 - me), TagSel::Is(4));
        assert_eq!(v, vec![9]);
        (err.comm_epoch, err.current_epoch)
    });
    // Both original ranks observed the same typed rejection; the latent
    // slot was never admitted and retired cleanly.
    assert_eq!(res[0].as_ref().unwrap(), &Some((0, 1)));
    assert_eq!(res[1].as_ref().unwrap(), &Some((0, 1)));
    assert_eq!(res[2].as_ref().unwrap(), &None);
}

#[test]
fn chaos_plan_admits_latent_rank_reproducibly() {
    let run = |seed: u64, kind: ExecutorKind| {
        let plan = FaultPlan::new(seed).join_at_ops(4, 6);
        let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(5))
            .with_latent_ranks(1)
            .with_injector(plan.into_injector());
        cfg.executor = kind;
        Universe::new(cfg).launch_elastic(|rank| {
            let grown = match rank.join_comm() {
                Some(c) => c,
                None => {
                    let world = rank.comm_world();
                    let me = world.rank();
                    let n = world.size();
                    // Enough traffic for the sponsor to cross ops:6 and
                    // fire the scheduled admission.
                    for r in 0..4u64 {
                        rank.send(&world, (me + 1) % n, 3, &[r]);
                        let _ =
                            rank.recv::<u64>(&world, SrcSel::Rank((me + n - 1) % n), TagSel::Is(3));
                    }
                    rank.comm_grow(&world, &[4])
                }
            };
            let me = grown.rank();
            let sum = rank.allreduce(&grown, &[me as u64 + 1], |a, b| a + b)[0];
            (grown.id(), grown.epoch(), me, sum, rank.now_ns().to_bits())
        })
    };
    let a = run(5, ExecutorKind::Threads);
    let b = run(5, ExecutorKind::Threads);
    assert_eq!(a, b, "fixed-seed join runs are byte-identical");
    let t = run(5, ExecutorKind::Tasks);
    assert_eq!(a, t, "join runs agree across engines");
    for (w, r) in a.iter().enumerate() {
        let (id, epoch, me, sum, _) = r.as_ref().unwrap().as_ref().unwrap();
        assert!(*id & (1 << 63) != 0, "grown ids live outside the allocator range");
        assert_eq!((*epoch, *me, *sum), (1, w, 15), "all five ranks met on the grown world");
    }
}

#[test]
fn unadmitted_latent_slots_retire_as_none() {
    let cfg =
        UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(6)).with_latent_ranks(2);
    let res = Universe::new(cfg).launch_elastic(|rank| {
        let world = rank.comm_world();
        assert_eq!(world.size(), 4, "latent slots are not world members");
        assert_eq!(rank.capacity(), 6);
        rank.barrier(&world);
        rank.world_rank()
    });
    assert_eq!(res.len(), 6);
    for (w, r) in res.iter().enumerate().take(4) {
        assert_eq!(r.as_ref().unwrap(), &Some(w));
    }
    for r in res.iter().skip(4) {
        assert_eq!(r.as_ref().unwrap(), &None, "never-admitted slots retire");
    }
}

#[test]
fn dead_rank_leaves_no_phantom_rows_in_windows() {
    // Satellite regression: a rank dying mid-epoch must not leave phantom
    // rows in the next gathered window — dead rows come back zeroed and
    // flagged, and a traffic-free follow-up window is empty everywhere.
    let plan = FaultPlan::new(7).crash_at_ops(3, 7);
    let cfg = UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(4))
        .with_injector(plan.into_injector());
    let res = Universe::new(cfg).launch_faulty(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let n = world.size();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        for r in 0..4u64 {
            rank.send(&world, (me + 1) % n, 7, &[r]);
            let _ = rank.recv_or_failure::<u64>(&world, (me + n - 1) % n, 7);
        }
        let alive = rank.liveness_exchange(&world);
        assert_eq!(alive, vec![true, true, true, false]);
        let w1 = mon.gather_window_partial(rank, id, 0, Flags::P2P_ONLY, &alive).unwrap();
        let w2 = mon.gather_window_partial(rank, id, 0, Flags::P2P_ONLY, &alive).unwrap();
        assert_eq!((w1.epoch, w2.epoch), (1, 2));
        if let Some(data) = &w1.data {
            assert_eq!(data.liveness, alive);
            for j in 0..n {
                assert_eq!(data.counts.get(3, j), 0, "dead rank's row must be zero");
            }
            // The survivors' rows are intact — including the columns of
            // traffic they sent toward the rank before it died.
            assert_eq!(data.counts.get(0, 1), 4);
            assert_eq!(data.counts.get(2, 3), 4, "pre-death traffic toward the victim");
            assert!(data.sizes.get(1, 2) > 0);
        } else {
            assert_ne!(me, 0, "the root must get the window data");
        }
        if let Some(data) = &w2.data {
            // No phantom rows: with the gather's own control traffic muted
            // and no app traffic in between, window 2 is empty everywhere.
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(data.counts.get(i, j), 0, "phantom row in a sealed window");
                }
            }
        }
        mon.suspend(id).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
        me
    });
    assert!(res[3].is_err(), "the victim died for good");
    for r in res.iter().take(3) {
        assert!(r.is_ok());
    }
}

#[test]
fn tree_gather_skips_absent_ranks() {
    // Satellite: `gather_tree` over a live *subset* — excluded ranks return
    // `None` immediately, absent rows come back empty at the root.
    let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(6)));
    let rows = u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let order = [0usize, 2, 4, 5];
        let data = [me as u64 * 10 + 1];
        rank.gather_tree(&world, 0, 2, &order, &data)
    });
    for (w, r) in rows.iter().enumerate().skip(1) {
        assert!(r.is_none(), "rank {w} is not the root");
    }
    let root = rows[0].as_ref().expect("root gets the rows");
    assert_eq!(root.len(), 6);
    assert_eq!(root[0], vec![1]);
    assert_eq!(root[2], vec![21]);
    assert_eq!(root[4], vec![41]);
    assert_eq!(root[5], vec![51]);
    assert!(root[1].is_empty() && root[3].is_empty(), "absent ranks contribute empty rows");
}

#[test]
fn session_rebind_carries_totals_across_growth() {
    // End-to-end: monitor on the initial world, grow it, rebind the session
    // and keep monitoring — pre-growth traffic keeps its coordinates, the
    // joiner's column starts recording.
    let cfg =
        UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(4)).with_latent_ranks(1);
    let res = Universe::new(cfg).launch_elastic(|rank| {
        if let Some(grown) = rank.join_comm() {
            // The joiner pings the sponsor; it runs no session of its own
            // (`start` is collective, and the incumbents' sessions predate
            // the joiner).
            let me = grown.rank();
            rank.send(&grown, 0, 8, &[me as u64]);
            let (v, _) = rank.recv::<u64>(&grown, SrcSel::Rank(0), TagSel::Is(8));
            assert_eq!(v, vec![me as u64]);
            return Vec::new();
        }
        let world = rank.comm_world();
        let me = world.rank();
        let n = world.size();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        // Pre-growth traffic on the initial world.
        rank.send(&world, (me + 1) % n, 5, &[me as u64]);
        let _ = rank.recv::<u64>(&world, SrcSel::Rank((me + n - 1) % n), TagSel::Is(5));
        // Rank 0 sponsors the latent slot in; everyone grows and rebinds.
        let grown = if me == 0 { rank.admit(&world, 3) } else { rank.comm_grow(&world, &[3]) };
        mon.rebind_session(id, &grown).unwrap();
        // Post-growth traffic: everyone pings the joiner's sponsor lane.
        if me == 0 {
            let (v, _) = rank.recv::<u64>(&grown, SrcSel::Rank(3), TagSel::Is(8));
            rank.send(&grown, 3, 8, &v);
        }
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::P2P_ONLY).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
        row.counts
    });
    let rows: Vec<_> = res.iter().map(|r| r.as_ref().unwrap().clone().unwrap()).collect();
    // Initial ranks: 4 columns now (grown world), ring counts intact.
    assert_eq!(rows[0], vec![0, 1, 0, 1], "ring send kept + reply to the joiner");
    assert_eq!(rows[1], vec![0, 0, 1, 0], "pre-growth ring send remapped in place");
    assert_eq!(rows[2], vec![1, 0, 0, 0]);
    assert_eq!(rows[3], Vec::<u64>::new(), "the joiner runs no session");
}
