//! The full Fig. 1 pipeline across crates: monitor → gather → TreeMatch →
//! split → faster iterations, on a PlaFRIM-scale machine.

use mim_core::{Flags, Monitoring};
use mim_mpisim::{Comm, Rank, SrcSel, TagSel, Universe, UniverseConfig};
use mim_reorder::{compute_mapping, monitored_reorder, redistribute};
use mim_topology::{inverse_permutation, CommMatrix, Machine, Placement};

/// Rank-based pattern: neighbours in blocks of `width` exchange buffers.
fn block_exchange(rank: &Rank, comm: &Comm, width: usize, bytes: u64) {
    let me = comm.rank();
    let base = me - me % width;
    for peer in base..(base + width).min(comm.size()) {
        if peer != me {
            rank.send_synthetic(comm, peer, 3, bytes);
        }
    }
    for peer in base..(base + width).min(comm.size()) {
        if peer != me {
            rank.recv_synthetic(comm, SrcSel::Rank(peer), TagSel::Is(3));
        }
    }
}

#[test]
fn pipeline_improves_iteration_time_at_scale() {
    let np = 48;
    let machine = Machine::plafrim(2);
    let placement = Placement::cyclic_by_level(&machine.tree, np, machine.node_level);
    let u = Universe::new(UniverseConfig::new(machine, placement));
    let results = u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let outcome = monitored_reorder(rank, &mon, &world, Flags::P2P_ONLY, |comm| {
            block_exchange(rank, comm, 8, 1 << 20)
        });
        rank.barrier(&world);
        let t0 = rank.now_ns();
        block_exchange(rank, &world, 8, 1 << 20);
        rank.barrier(&world);
        let before = rank.now_ns() - t0;
        let t1 = rank.now_ns();
        block_exchange(rank, &outcome.comm, 8, 1 << 20);
        rank.barrier(&world);
        let after = rank.now_ns() - t1;
        mon.finalize(rank).unwrap();
        (before, after, outcome.k)
    });
    let before = results.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let after = results.iter().map(|r| r.1).fold(0.0f64, f64::max);
    assert!(after < before * 0.8, "expected a clear win from reordering: {before} -> {after}");
    // Everyone agreed on the same permutation and it is one.
    for r in &results {
        assert_eq!(r.2, results[0].2);
    }
    inverse_permutation(&results[0].2);
}

#[test]
fn compute_mapping_is_deterministic_and_valid() {
    let machine = Machine::plafrim(2);
    let placement = Placement::random(&machine.tree, 24, 99);
    let group: Vec<usize> = (0..24).collect();
    let mut m = CommMatrix::zeros(24);
    for i in 0..24 {
        m.set(i, (i + 1) % 24, 1000);
    }
    let k1 = compute_mapping(&machine, &placement, &group, &m);
    let k2 = compute_mapping(&machine, &placement, &group, &m);
    assert_eq!(k1, k2, "mapping must be deterministic");
    inverse_permutation(&k1);
}

#[test]
fn mapping_never_worse_than_identity_on_clustered_patterns() {
    // For block-clustered matrices on a spread placement, the mapping must
    // strictly reduce the distance cost.
    let machine = Machine::plafrim(2);
    let np = 24;
    let placement = Placement::cyclic_by_level(&machine.tree, np, machine.node_level);
    let group: Vec<usize> = (0..np).collect();
    let mut m = CommMatrix::zeros(np);
    for base in (0..np).step_by(6) {
        for i in base..base + 6 {
            for j in base..base + 6 {
                if i != j {
                    m.set(i, j, 500);
                }
            }
        }
    }
    let k = compute_mapping(&machine, &placement, &group, &m);
    let inv = inverse_permutation(&k);
    let cost = |assign: &dyn Fn(usize) -> usize| -> u64 {
        use mim_treematch::{mapping_distance_cost, Affinity};
        let cores: Vec<usize> = (0..np).map(|r| placement.core_of(assign(r))).collect();
        let _ = m.pairs();
        mapping_distance_cost(&machine.tree, &cores, &m)
    };
    // Pattern role r runs on the process with old rank inv[r].
    let reordered = cost(&|r| inv[r]);
    let identity = cost(&|r| r);
    assert!(reordered < identity, "reordered cost {reordered} must beat identity {identity}");
}

#[test]
fn redistribute_composes_with_reorder() {
    let np = 12;
    let machine = Machine::plafrim(1);
    let u = Universe::new(UniverseConfig::new(machine, Placement::packed(np)));
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let outcome = monitored_reorder(rank, &mon, &world, Flags::P2P_ONLY, |comm| {
            // Arbitrary pattern so the permutation is non-trivial-ish.
            let me = comm.rank();
            let peer = (me + 3) % np;
            rank.send_synthetic(comm, peer, 1, 1 << 16);
            rank.recv_synthetic(comm, SrcSel::Any, TagSel::Is(1));
        });
        // Each role's data starts at the old rank with that number.
        let role_data = vec![world.rank() as u64; 8];
        let new_data = redistribute(rank, &world, &outcome.k, role_data);
        // My new role is my new rank; its data must be the role's id.
        assert_eq!(new_data, vec![outcome.comm.rank() as u64; 8]);
        mon.finalize(rank).unwrap();
    });
}
