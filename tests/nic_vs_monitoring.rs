//! Cross-probe consistency (the invariant behind paper Fig 2/3): the
//! simulated NIC counters see exactly the inter-node subset of what the
//! introspection library records, plus per-message protocol headers.

use mim_core::{Flags, Monitoring};
use mim_mpisim::{SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

/// A global PML hook recording every wire event — the full stream the NIC
/// counters are fed from (the monitoring library's sessions only see the
/// subset between their start and suspend, so they are compared separately).
struct Recorder {
    events: mim_util::sync::Mutex<Vec<(usize, usize, u64)>>, // (src_core, dst_core, bytes)
}

impl mim_mpisim::PmlHook for Recorder {
    fn on_send(&self, ev: &mim_mpisim::PmlEvent) {
        self.events.lock().push((ev.src_core, ev.dst_core, ev.bytes));
    }
}

#[test]
fn nic_equals_cross_node_monitored_traffic() {
    let np = 16;
    let machine = Machine::cluster(2, 1, 8);
    let header = 64u64;
    let mut cfg = UniverseConfig::new(machine.clone(), Placement::packed(np));
    cfg.nic_header_bytes = header;
    let u = Universe::new(cfg);
    let recorder = std::sync::Arc::new(Recorder { events: mim_util::sync::Mutex::new(Vec::new()) });
    u.add_global_hook(recorder.clone());
    let data = u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        // Ring + a broadcast: a mix of intra- and inter-node messages.
        rank.send(&world, (me + 1) % np, 0, &vec![0u8; 100 * (me + 1)]);
        rank.recv::<u8>(&world, SrcSel::Rank((me + np - 1) % np), TagSel::Any);
        let mut v = if me == 3 { vec![9u8; 7000] } else { vec![] };
        rank.bcast(&world, 3, &mut v);
        mon.suspend(id).unwrap();
        let d = mon.allgather_data(rank, id, Flags::ALL_COMM).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
        d
    });
    // 1. NIC counters == cross-node subset of the full PML stream + headers.
    let mut expect_bytes = [0u64; 2];
    let mut expect_msgs = [0u64; 2];
    for &(src_core, dst_core, bytes) in recorder.events.lock().iter() {
        if machine.crosses_network(src_core, dst_core) {
            let node = machine.node_of_core(src_core);
            expect_bytes[node] += bytes + header;
            expect_msgs[node] += 1;
        }
    }
    for node in 0..2 {
        assert_eq!(u.nic().xmit_bytes(node), expect_bytes[node], "node {node} bytes");
        assert_eq!(u.nic().xmit_msgs(node), expect_msgs[node], "node {node} msgs");
        assert_eq!(u.nic().port_xmit_data(node), expect_bytes[node] / 4);
    }
    // 2. The session's matrix is a subset of the full stream (the stream
    // also carries the session's own control traffic: start barrier, data
    // gathers).
    let d = &data[0];
    let stream_total: u64 = recorder.events.lock().iter().map(|&(_, _, b)| b).sum();
    assert!(d.sizes.total() <= stream_total);
    // The user traffic itself is fully present.
    let ring_bytes: u64 = (1..=np as u64).map(|k| 100 * k).sum();
    assert!(d.sizes.total() >= ring_bytes + 7000 * (np as u64 - 1));
}

#[test]
fn intra_node_job_is_invisible_to_the_nic() {
    let machine = Machine::cluster(2, 2, 8); // 16 cores per node
    let u = Universe::new(UniverseConfig::new(machine, Placement::packed(8)));
    u.launch(|rank| {
        let world = rank.comm_world();
        // Heavy all-to-all, but everyone lives on node 0.
        let data: Vec<u64> = vec![rank.world_rank() as u64; 8 * 16];
        rank.alltoall(&world, &data);
    });
    assert_eq!(u.nic().xmit_bytes(0), 0);
    assert_eq!(u.nic().xmit_bytes(1), 0);
}

#[test]
fn event_log_totals_match_counters() {
    let machine = Machine::cluster(2, 1, 4);
    let u = Universe::new(UniverseConfig::new(machine, Placement::packed(8)));
    u.nic().enable_event_log();
    u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        rank.send(&world, (me + 4) % 8, 0, &vec![1u8; 512]); // always cross-node
        rank.recv::<u8>(&world, SrcSel::Any, TagSel::Any);
    });
    let log = u.nic().take_event_log();
    let total: u64 = log.iter().map(|e| e.wire_bytes).sum();
    assert_eq!(total, u.nic().xmit_bytes(0) + u.nic().xmit_bytes(1));
    assert_eq!(log.len() as u64, u.nic().xmit_msgs(0) + u.nic().xmit_msgs(1));
    // Timestamps are sorted.
    for w in log.windows(2) {
        assert!(w[0].vtime_ns <= w[1].vtime_ns);
    }
}
