//! Integration of the stencil application with the full monitoring +
//! reordering pipeline, including through the C-shaped API.

use mim_apps::stencil::{run_stencil, StencilConfig};
use mim_core::capi::*;
use mim_core::{Flags, Monitoring};
use mim_mpisim::{Universe, UniverseConfig};
use mim_reorder::monitored_reorder;
use mim_topology::{Machine, Placement};

#[test]
fn stencil_reorder_preserves_physics_and_improves_halos() {
    // An odd process-grid width, so the heavy vertical-halo pairs (r, r+5)
    // land on opposite nodes under the node-cyclic initial mapping.
    let cfg = StencilConfig { rows: 8, cols: 15_000, prows: 2, pcols: 5, iters: 10 };
    let n = cfg.prows * cfg.pcols;
    let machine = Machine::cluster(2, 1, 8);
    let placement = Placement::cyclic_by_level(&machine.tree, n, machine.node_level);

    let run = |reorder: bool| -> (f64, f64) {
        let u = Universe::new(UniverseConfig::new(machine.clone(), placement.clone()));
        let out = u.launch(move |rank| {
            let world = rank.comm_world();
            if !reorder {
                let (_, s) = run_stencil(rank, &world, cfg);
                return (s.checksum, s.comm_ns);
            }
            let mon = Monitoring::init(rank).unwrap();
            let warmup = StencilConfig { iters: 1, ..cfg };
            let outcome = monitored_reorder(rank, &mon, &world, Flags::P2P_ONLY, |comm| {
                run_stencil(rank, comm, warmup);
            });
            let (_, s) = run_stencil(rank, &outcome.comm, cfg);
            mon.finalize(rank).unwrap();
            (s.checksum, s.comm_ns)
        });
        out[0]
    };

    let (sum_base, comm_base) = run(false);
    let (sum_opt, comm_opt) = run(true);
    assert_eq!(sum_base, sum_opt, "reordering must not change the numerics");
    assert!(comm_opt < comm_base, "halo time should shrink: {comm_base} -> {comm_opt}");
}

#[test]
fn capi_monitors_the_stencil() {
    // Drive the monitoring of a real application through the paper-named
    // C-shaped API end to end.
    let cfg = StencilConfig { rows: 8, cols: 8, prows: 2, pcols: 2, iters: 3 };
    let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 2), Placement::packed(4)));
    u.launch(move |rank| {
        let world = rank.comm_world();
        assert_eq!(MPI_M_init(rank), MPI_SUCCESS);
        let mut id = MPI_M_MSID_NULL;
        assert_eq!(MPI_M_start(rank, &world, &mut id), MPI_SUCCESS);
        run_stencil(rank, &world, cfg);
        assert_eq!(MPI_M_suspend(id), MPI_SUCCESS);
        let (mut provided, mut n) = (0, 0);
        assert_eq!(MPI_M_get_info(id, &mut provided, &mut n), MPI_SUCCESS);
        assert_eq!(n, 4);
        let mut counts = vec![0u64; 16];
        let mut sizes = vec![0u64; 16];
        assert_eq!(
            MPI_M_allgather_data(rank, id, &mut counts, &mut sizes, MPI_M_P2P_ONLY),
            MPI_SUCCESS
        );
        // 2x2 process grid: each rank exchanges with exactly 2 neighbours,
        // 2 halo messages per iteration each (row + column direction may
        // both apply; on a 2x2 grid each rank has one row and one column
        // neighbour).
        let me = world.rank();
        let row_peer = if me % 2 == 0 { me + 1 } else { me - 1 };
        let col_peer = if me / 2 == 0 { me + 2 } else { me - 2 };
        for dst in 0..4 {
            let c = counts[me * 4 + dst];
            if dst == row_peer || dst == col_peer {
                assert_eq!(c, cfg.iters as u64, "halo count {me}->{dst}");
            } else {
                assert_eq!(c, 0, "unexpected traffic {me}->{dst}");
            }
        }
        assert_eq!(MPI_M_free(id), MPI_SUCCESS);
        assert_eq!(MPI_M_finalize(rank), MPI_SUCCESS);
    });
}
