//! Failure-injection and edge-case behaviour of the runtime and the
//! monitoring library: the simulator must fail loudly and precisely, never
//! hang or corrupt.

use std::time::Duration;

use mim_core::{Flags, MonError, Monitoring, Msid};
use mim_mpisim::trace::Tracer;
use mim_mpisim::{SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

fn quick_deadline(n: usize) -> Universe {
    let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(n));
    cfg.deadline = Duration::from_millis(200);
    Universe::new(cfg)
}

#[test]
#[should_panic(expected = "deadlock")]
fn deadlocked_application_panics_with_diagnosis() {
    let u = quick_deadline(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        // Everyone receives, nobody sends.
        rank.recv::<u8>(&world, SrcSel::Any, TagSel::Any);
    });
}

#[test]
#[should_panic(expected = "boom")]
fn rank_panic_propagates_to_the_launcher() {
    let u = quick_deadline(4);
    u.launch(|rank| {
        if rank.world_rank() == 2 {
            panic!("boom");
        }
        // The other ranks return normally — the launcher must still
        // propagate rank 2's panic.
    });
}

#[test]
fn deadlock_panic_includes_flight_recorder_dump() {
    let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(2));
    cfg.deadline = Duration::from_millis(200);
    cfg.tracer = Some(Tracer::new(64));
    let u = Universe::new(cfg);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        u.launch(|rank| {
            let world = rank.comm_world();
            let peer = 1 - world.rank();
            // One successful exchange so both rings hold history...
            rank.send(&world, peer, 0, &[1u8, 2, 3]);
            rank.recv::<u8>(&world, SrcSel::Rank(peer), TagSel::Is(0));
            // ...then both ranks wait for a message nobody will send.
            rank.recv::<u8>(&world, SrcSel::Rank(peer), TagSel::Is(99));
        });
    }))
    .expect_err("crossed receives must deadlock");
    let msg = payload.downcast_ref::<String>().expect("deadlock panics carry a String");
    assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
    assert!(msg.contains("flight recorder:"), "missing flight dump: {msg}");
    assert!(
        msg.contains("[rank0]") && msg.contains("[rank1]"),
        "the dump must cover every rank's track: {msg}"
    );
    assert!(msg.contains("send p2p 3B"), "the dump should show the recorded sends: {msg}");
}

#[test]
#[should_panic(expected = "boom")]
fn root_cause_panic_wins_over_send_to_dead_rank() {
    let u = quick_deadline(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        if rank.world_rank() == 1 {
            panic!("boom");
        }
        // Keep sending until the dead peer's channel closes and the send
        // unwinds: the launcher must still report rank 1's "boom", not this
        // rank's secondary send-to-dead-rank failure.  (If the peer's
        // receiver somehow outlives the whole loop, we return normally and
        // "boom" still propagates.)
        for _ in 0..10_000 {
            rank.send_synthetic(&world, 1, 0, 8);
            std::thread::sleep(Duration::from_millis(1));
        }
    });
}

#[test]
#[should_panic(expected = "whose thread had already exited")]
fn send_to_exited_rank_is_described() {
    let u = quick_deadline(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        if rank.world_rank() == 1 {
            return; // exits without receiving — and without panicking
        }
        // With no root-cause panic anywhere, the launcher must synthesize a
        // descriptive message from the RankAborted payload instead of the
        // seed's bare "destination rank is gone" expect.
        for _ in 0..30_000 {
            rank.send_synthetic(&world, 1, 0, 8);
            std::thread::sleep(Duration::from_millis(1));
        }
        unreachable!("peer receiver should have dropped within 30s");
    });
}

#[test]
#[should_panic(expected = "expected real payload")]
fn typed_recv_of_synthetic_message_is_loud() {
    let u = quick_deadline(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        if world.rank() == 0 {
            rank.send_synthetic(&world, 1, 0, 64);
        } else {
            // Receiving a size-only message into a typed buffer is a
            // benchmark-harness bug; it must fail immediately, not produce
            // garbage data.
            rank.recv::<u64>(&world, SrcSel::Rank(0), TagSel::Any);
        }
    });
}

#[test]
fn zero_length_typed_messages_work() {
    let u = quick_deadline(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        if world.rank() == 0 {
            rank.send::<f64>(&world, 1, 1, &[]);
        } else {
            let (v, st) = rank.recv::<f64>(&world, SrcSel::Rank(0), TagSel::Is(1));
            assert!(v.is_empty());
            assert_eq!(st.bytes, 0);
        }
    });
}

#[test]
fn single_rank_universe_supports_everything() {
    let u = quick_deadline(1);
    u.launch(|rank| {
        let world = rank.comm_world();
        assert_eq!(world.size(), 1);
        rank.barrier(&world);
        let mut v = vec![1u8, 2];
        rank.bcast(&world, 0, &mut v);
        assert_eq!(rank.allreduce(&world, &[5i32], |a, b| a + b), vec![5]);
        assert_eq!(rank.allgather(&world, &[7u64]), vec![7]);
        assert_eq!(rank.scan(&world, &[3i64], |a, b| a + b), vec![3]);
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        rank.send(&world, 0, 0, &[1u8]);
        rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::P2P_ONLY).unwrap();
        assert_eq!(row.counts, vec![1], "self-sends are monitored too");
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn stale_msid_across_free_reuse_cycles() {
    let u = quick_deadline(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let mut stale: Vec<Msid> = Vec::new();
        for _ in 0..5 {
            let id = mon.start(rank, &world).unwrap();
            mon.suspend(id).unwrap();
            mon.free(id).unwrap();
            stale.push(id);
        }
        // Every previously freed id must stay invalid even though its slot
        // was reused.
        for id in stale {
            assert_eq!(mon.get_data(id, Flags::ALL_COMM).err(), Some(MonError::InvalidMsid));
            assert_eq!(mon.suspend(id).err(), Some(MonError::InvalidMsid));
        }
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn monitoring_survives_heavy_session_churn_under_traffic() {
    // Start/stop sessions while traffic flows: the recorder must never
    // miscount the stable outer session.
    let u = quick_deadline(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let outer = mon.start(rank, &world).unwrap();
        let mut sent = 0u64;
        for i in 0..20 {
            let inner = mon.start(rank, &world).unwrap();
            if world.rank() == 0 {
                rank.send(&world, 1, 0, &vec![0u8; 10 + i]);
                sent += 10 + i as u64;
            } else {
                rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
            }
            mon.suspend(inner).unwrap();
            if i % 2 == 0 {
                mon.reset(inner).unwrap();
            }
            mon.free(inner).unwrap();
        }
        mon.suspend(outer).unwrap();
        let row = mon.get_data(outer, Flags::P2P_ONLY).unwrap();
        if world.rank() == 0 {
            assert_eq!(row.sizes[1], sent);
            assert_eq!(row.counts[1], 20);
        }
        mon.free(outer).unwrap();
        mon.finalize(rank).unwrap();
    });
}
