//! Cross-crate invariant: the live collective algorithms, observed through
//! the monitoring library, produce exactly the message multiset their
//! schedule generators predict — the ground-truth check behind "the monitor
//! sees collectives once decomposed into point-to-point messages".

use mim_core::{Flags, Monitoring};
use mim_mpisim::{schedule, Schedule, Universe, UniverseConfig};
use mim_topology::{CommMatrix, Machine, Placement};

/// Run `coll` under a fresh session and return the (counts, sizes) matrices
/// of its collective traffic.
fn monitor_collective(
    n: usize,
    coll: impl Fn(&mim_mpisim::Rank, &mim_mpisim::Comm) + Sync,
) -> (CommMatrix, CommMatrix) {
    let machine = Machine::cluster(4, 2, 4);
    let u = Universe::new(UniverseConfig::new(machine, Placement::packed(n)));
    let mats = u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        coll(rank, &world);
        mon.suspend(id).unwrap();
        let d = mon.allgather_data(rank, id, Flags::COLL_ONLY).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
        (d.counts, d.sizes)
    });
    mats.into_iter().next().unwrap()
}

/// The (src, dst, bytes) multiset recorded in monitored matrices, assuming
/// (as for our single collectives) at most one message per (src, dst) pair
/// per byte size... multiplicity comes from the counts matrix.
fn monitored_multiset(counts: &CommMatrix, sizes: &CommMatrix) -> Vec<(usize, usize, u64)> {
    let n = counts.order();
    let mut out = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let c = counts.get(i, j);
            if c > 0 {
                // All messages on one pair within one tree/ring collective
                // have equal size.
                assert_eq!(sizes.get(i, j) % c, 0, "uneven message sizes on ({i},{j})");
                for _ in 0..c {
                    out.push((i, j, sizes.get(i, j) / c));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

fn check(n: usize, expected: &Schedule, counts: &CommMatrix, sizes: &CommMatrix) {
    assert_eq!(counts.order(), n);
    assert_eq!(monitored_multiset(counts, sizes), expected.message_multiset());
}

#[test]
fn bcast_matches_schedule() {
    for n in [2usize, 5, 8, 13] {
        for root in [0, n - 1] {
            let payload = 1000usize;
            let (counts, sizes) = monitor_collective(n, |rank, world| {
                let mut v = if world.rank() == root { vec![3u8; payload] } else { vec![] };
                rank.bcast(world, root, &mut v);
            });
            check(n, &schedule::bcast_binomial(n, root, payload as u64), &counts, &sizes);
        }
    }
}

#[test]
fn reduce_matches_schedule() {
    for n in [3usize, 8, 12] {
        let (counts, sizes) = monitor_collective(n, |rank, world| {
            let mine = vec![world.rank() as u64; 64];
            rank.reduce(world, 0, &mine, |a, b| a + b);
        });
        check(n, &schedule::reduce_binomial(n, 0, 64 * 8), &counts, &sizes);
    }
}

#[test]
fn allgather_matches_schedule() {
    for n in [2usize, 6, 9] {
        let (counts, sizes) = monitor_collective(n, |rank, world| {
            rank.allgather(world, &[world.rank() as u32; 25]);
        });
        check(n, &schedule::allgather_ring(n, 100), &counts, &sizes);
    }
}

#[test]
fn barrier_matches_schedule() {
    for n in [2usize, 7, 16] {
        let (counts, sizes) = monitor_collective(n, |rank, world| {
            rank.barrier(world);
        });
        check(n, &schedule::barrier_dissemination(n), &counts, &sizes);
    }
}

#[test]
fn allreduce_matches_schedule() {
    for n in [4usize, 6, 8, 11] {
        let (counts, sizes) = monitor_collective(n, |rank, world| {
            rank.allreduce(world, &[1.0f64; 16], |a, b| a + b);
        });
        check(n, &schedule::allreduce_recursive_doubling(n, 128), &counts, &sizes);
    }
}

#[test]
fn synthetic_execution_matches_live_collective() {
    // Replaying the schedule with synthetic payloads is indistinguishable,
    // to the monitor, from running the real collective.
    let n = 10;
    let (live_counts, live_sizes) = monitor_collective(n, |rank, world| {
        let mut v = if world.rank() == 0 { vec![0u8; 4096] } else { vec![] };
        rank.bcast(world, 0, &mut v);
    });
    let sched = schedule::bcast_binomial(n, 0, 4096);
    let (syn_counts, syn_sizes) = monitor_collective(n, |rank, world| {
        schedule::execute(rank, world, &sched);
    });
    assert_eq!(live_counts, syn_counts);
    assert_eq!(live_sizes, syn_sizes);
}
