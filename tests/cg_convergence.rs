//! The distributed CG application: numerics vs the sequential reference,
//! and invariance of the numerics under rank reordering.

use mim_apps::cg;
use mim_apps::sparse::cg_reference;
use mim_core::{Flags, Monitoring};
use mim_mpisim::{Universe, UniverseConfig};
use mim_reorder::monitored_reorder;
use mim_topology::{Machine, Placement};

#[test]
fn distributed_matches_reference_at_16_ranks() {
    let class =
        cg::CgClass { name: "T", na: 480, extra_per_row: 5, iters: 18, flops_per_iter: 0.0 };
    let a = cg::generate_matrix(class, 16, 3);
    let na = a.order();
    let u = Universe::new(UniverseConfig::new(Machine::plafrim(1), Placement::packed(16)));
    let a2 = a.clone();
    let blocks = u.launch(move |rank| {
        let world = rank.comm_world();
        cg::run_cg(rank, &world, &a2, class.iters).0
    });
    let x: Vec<f64> = blocks.concat();
    let (x_ref, _, _) = cg_reference(&a, &vec![1.0; na], class.iters, 0.0);
    for i in 0..na {
        assert!((x[i] - x_ref[i]).abs() < 1e-8 * x_ref[i].abs().max(1.0));
    }
}

#[test]
fn reordering_preserves_the_solution_exactly() {
    let class =
        cg::CgClass { name: "T", na: 384, extra_per_row: 4, iters: 12, flops_per_iter: 0.0 };
    let np = 24;
    let a = cg::generate_matrix(class, np, 8);
    let machine = Machine::plafrim(2);
    let placement = Placement::random(&machine.tree, np, 4242);

    let run = |reorder: bool| -> (f64, Vec<f64>) {
        let a = a.clone();
        let u = Universe::new(UniverseConfig::new(machine.clone(), placement.clone()));
        let out = u.launch(move |rank| {
            let world = rank.comm_world();
            if !reorder {
                let (x, s) = cg::run_cg(rank, &world, &a, class.iters);
                return (s.residual, x, world.rank());
            }
            let mon = Monitoring::init(rank).unwrap();
            let outcome = monitored_reorder(rank, &mon, &world, Flags::ALL_COMM, |comm| {
                cg::run_cg(rank, comm, &a, 1);
            });
            let (x, s) = cg::run_cg(rank, &outcome.comm, &a, class.iters);
            mon.finalize(rank).unwrap();
            // Return with the *new* rank so blocks can be reassembled.
            (s.residual, x, outcome.comm.rank())
        });
        let residual = out[0].0;
        let mut blocks: Vec<(usize, Vec<f64>)> = out.into_iter().map(|(_, x, r)| (r, x)).collect();
        blocks.sort_by_key(|(r, _)| *r);
        (residual, blocks.into_iter().flat_map(|(_, x)| x).collect())
    };

    let (res_plain, x_plain) = run(false);
    let (res_opt, x_opt) = run(true);
    assert_eq!(res_plain, res_opt, "residuals must be bit-identical");
    assert_eq!(x_plain, x_opt, "solutions must be bit-identical");
}

#[test]
fn comm_time_shrinks_under_reordering_on_bad_mapping() {
    let class =
        cg::CgClass { name: "T", na: 768, extra_per_row: 4, iters: 10, flops_per_iter: 0.0 };
    let np = 24;
    let a = cg::generate_matrix(class, np, 21);
    let machine = Machine::plafrim(2);
    // Node-cyclic: ring neighbours always on opposite nodes.
    let placement = Placement::cyclic_by_level(&machine.tree, np, machine.node_level);

    let run = |reorder: bool| -> f64 {
        let a = a.clone();
        let u = Universe::new(UniverseConfig::new(machine.clone(), placement.clone()));
        let stats = u.launch(move |rank| {
            let world = rank.comm_world();
            if !reorder {
                return cg::run_cg(rank, &world, &a, class.iters).1.comm_ns;
            }
            let mon = Monitoring::init(rank).unwrap();
            let outcome = monitored_reorder(rank, &mon, &world, Flags::ALL_COMM, |comm| {
                cg::run_cg(rank, comm, &a, 1);
            });
            let comm_ns = cg::run_cg(rank, &outcome.comm, &a, class.iters).1.comm_ns;
            mon.finalize(rank).unwrap();
            comm_ns
        });
        stats[0]
    };

    let base = run(false);
    let opt = run(true);
    assert!(opt < base, "reordering should reduce rank 0's communication time: {base} -> {opt}");
}
