#!/bin/bash
set -x
cd /root/repo
for b in fig2_counters table1_treematch fig5_collectives fig6_heatmap fig4_overhead fig7_cg; do
  echo "===== $b start $(date +%T)"
  ./target/release/$b > results/logs/$b.log 2>&1
  echo "===== $b done $(date +%T) rc=$?"
done
echo ALL_BENCH_BINS_DONE
