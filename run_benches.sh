#!/usr/bin/env bash
# Run every paper table/figure binary, logging to results/logs/.
#
# Exits non-zero if any binary fails, but always runs the whole list so one
# bad figure doesn't hide the rest.  Honors MIM_QUICK / MIM_RESULTS_DIR like
# the binaries themselves.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
cd "$repo_root"

results_dir="${MIM_RESULTS_DIR:-results}"
mkdir -p "$results_dir/logs"

if [[ ! -x target/release/fig2_counters ]]; then
  echo "building bench binaries (cargo build --release --offline -p mim-bench)" >&2
  cargo build --release --offline -p mim-bench
fi

status=0
for b in fig2_counters table1_treematch fig5_collectives fig6_heatmap fig4_overhead fig7_cg; do
  echo "===== $b start $(date +%T)"
  if ./target/release/"$b" > "$results_dir/logs/$b.log" 2>&1; then
    echo "===== $b done $(date +%T)"
  else
    rc=$?
    status=1
    echo "===== $b FAILED rc=$rc (see $results_dir/logs/$b.log)" >&2
  fi
done

# Hot-path microbenches (matching + DES evaluator + trace record sites +
# static analyzer) ride along so a plain ./run_benches.sh always refreshes
# their numbers too.
for bench in mailbox_matching des_evaluate trace_overhead analyze_schedule analyze_races chaos_overhead retry_storm universe_scale monitor_scale elastic_churn; do
  echo "===== bench $bench start $(date +%T)"
  if cargo bench --offline -p mim-bench --bench "$bench" \
      > "$results_dir/logs/bench_$bench.log" 2>&1; then
    echo "===== bench $bench done $(date +%T)"
  else
    rc=$?
    status=1
    echo "===== bench $bench FAILED rc=$rc (see $results_dir/logs/bench_$bench.log)" >&2
  fi
done

if [[ $status -ne 0 ]]; then
  echo "SOME_BENCH_BINS_FAILED" >&2
else
  echo ALL_BENCH_BINS_DONE
fi
exit "$status"
