//! Rolling restart + elastic scale-out under chaos: the elastic CI gate's
//! workload (`scripts/check_elastic.py`).
//!
//! 8 ranks run a monitored 1-D stencil; a latent 9th slot waits, parked,
//! for admission.  The installed [`FaultPlan`] perturbs link latency and
//! crashes rank 3 after its 14th wire operation (the 6-op monitoring
//! barrier plus two 4-op iterations, dying on iteration 2's sends) — then
//! *restarts* it.  The protocol that follows is the elastic layer end to
//! end:
//!
//! 1. survivors agree on the death (`liveness_exchange`), shrink the world
//!    ULFM-style, await the victim's rebirth (`await_rejoin`) and grow the
//!    communicator back (`admit` at the sponsor, `comm_grow` elsewhere) —
//!    the reborn incarnation receives the grown communicator by admission
//!    and rejoins the stencil at the end of the line;
//! 2. the monitoring session *rebinds* across the membership change: the
//!    pre-crash traffic toward rank 3 follows it to its new coordinate;
//! 3. the latent slot is admitted (`comm_grow` again, 9 ranks), sends on
//!    the superseded epoch-2 communicator are rejected with a typed
//!    [`StaleEpoch`] error, and a fresh session — joiner included — gathers
//!    a 9x9 window matrix over the live membership.
//!
//! Everything printed is a pure function of the seed: run it twice with
//! the same `MIM_CHAOS_SEED` (on either executor — `MIM_EXECUTOR`) and
//! stdout is byte-identical, as is the `MIM_TRACE` JSONL up to
//! cross-thread interleaving, `tid` assignment and the `uq` diagnostic.
//!
//! Environment: `MIM_CHAOS_SEED` (default 42) reseeds the built-in plan;
//! `MIM_CHAOS_PLAN` replaces it entirely (see `FaultPlan::parse`).

use mim_chaos::FaultPlan;
use mim_core::{Flags, Monitoring, Msid};
use mim_mpisim::{Comm, Rank, StaleEpoch, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

const N: usize = 8;
const VICTIM: usize = 3;
const LATENT: usize = 8;
const ITERS_1: usize = 4;
const ITERS_2: usize = 2;
const ITERS_3: usize = 2;
/// Monitoring barrier (3 dissemination rounds x send+recv) + 2 interior
/// iterations x (2 sends + 2 receives): the victim dies attempting the
/// first send of iteration 2, so both neighbours miss that iteration.
const CRASH_OPS: u64 = 6 + 2 * 4;

#[derive(Debug)]
struct RankReport {
    role: &'static str,
    incarnation: u32,
    first_failed: Option<usize>,
    stale: Option<(u64, u64)>,
    row_a: Option<Vec<u64>>,
    final_rank: usize,
    final_size: usize,
    final_epoch: u64,
    checksum: f64,
    window_csv: Option<String>,
}

/// One halo exchange on `comm`: dead neighbours contribute 0.0 and set
/// `first_failed` to the iteration the death was discovered at.
fn exchange(
    rank: &Rank,
    comm: &Comm,
    x: f64,
    tag: u32,
    first_failed: &mut Option<usize>,
) -> (f64, f64) {
    let me = comm.rank();
    let n = comm.size();
    if me > 0 {
        rank.send(comm, me - 1, tag, &[x]);
    }
    if me + 1 < n {
        rank.send(comm, me + 1, tag, &[x]);
    }
    let mut halo = |peer: usize| match rank.recv_or_failure::<f64>(comm, peer, tag) {
        Ok((v, _)) => v[0],
        Err(_) => {
            first_failed.get_or_insert(tag as usize);
            0.0
        }
    };
    let left = if me > 0 { halo(me - 1) } else { 0.0 };
    let right = if me + 1 < n { halo(me + 1) } else { 0.0 };
    (left, right)
}

fn main() {
    let seed = std::env::var("MIM_CHAOS_SEED")
        .ok()
        .map_or(42, |s| s.trim().parse().expect("MIM_CHAOS_SEED must be a u64"));
    let custom = std::env::var("MIM_CHAOS_PLAN").is_ok();
    let plan = match FaultPlan::from_env() {
        Some(p) if custom => p,
        _ => FaultPlan::new(seed).delay(0.15, 20_000.0).restart_at_ops(VICTIM, CRASH_OPS),
    };

    let machine = Machine::cluster(2, 1, 8);
    let cfg = UniverseConfig::new(machine, Placement::packed(N + 1))
        .with_latent_ranks(1)
        .with_injector(plan.into_injector());
    let u = Universe::new(cfg);

    let results = u.launch_elastic(|rank| {
        let mon = Monitoring::init(rank).expect("monitoring init");
        let mut first_failed = None;
        let mut stale = None;

        // Reach the 9-rank world, each slot by its own path: incumbents
        // survive a crash and grow twice, the victim's second incarnation
        // is readmitted, the latent slot joins by admission.
        let (grown2, role, session_a, mut x): (Comm, &str, Option<Msid>, f64) =
            if let Some(c) = rank.join_comm() {
                (c, "joiner", None, LATENT as f64 + 1.0)
            } else {
                let (grown1, role, session_a, mut x) = if rank.incarnation() > 0 {
                    (rank.recv_admission(), "reborn", None, VICTIM as f64 + 1.0)
                } else {
                    let world = rank.comm_world();
                    let me = world.rank();
                    let id = mon.start(rank, &world).expect("session A start");
                    let mut x = me as f64 + 1.0;
                    for iter in 0..ITERS_1 {
                        let (l, r) = exchange(rank, &world, x, iter as u32, &mut first_failed);
                        x = (l + x + r) / 3.0;
                    }
                    // Rolling restart: shrink around the death, then grow
                    // the reborn incarnation back in.
                    let alive = rank.liveness_exchange(&world);
                    let shrunk = rank.comm_shrink(&world, &alive);
                    let _inc = rank.await_rejoin(VICTIM);
                    let grown1 = if shrunk.rank() == 0 {
                        rank.admit(&shrunk, VICTIM)
                    } else {
                        rank.comm_grow(&shrunk, &[VICTIM])
                    };
                    mon.rebind_session(id, &grown1).expect("session A rebind");
                    (grown1, "incumbent", Some(id), x)
                };
                // Phase 2: everyone (reborn included) on the regrown world.
                for iter in 0..ITERS_2 {
                    let tag = (ITERS_1 + iter) as u32;
                    let (l, r) = exchange(rank, &grown1, x, tag, &mut first_failed);
                    x = (l + x + r) / 3.0;
                }
                // Scale-out: admit the latent slot.
                let grown2 = if grown1.rank() == 0 {
                    rank.admit(&grown1, LATENT)
                } else {
                    rank.comm_grow(&grown1, &[LATENT])
                };
                // The epoch-2 communicator is superseded: a checked send on
                // it is rejected before anything reaches the wire.
                let next = (grown1.rank() + 1) % grown1.size();
                let err: StaleEpoch =
                    rank.send_checked(&grown1, next, 99, &[0u64]).expect_err("stale epoch");
                stale = Some((err.comm_epoch, err.current_epoch));
                if let Some(id) = session_a {
                    mon.rebind_session(id, &grown2).expect("session A regrow");
                }
                (grown2, role, session_a, x)
            };

        // A fresh session over the full elastic membership — the reborn
        // incarnation and the joiner participate as first-class members.
        let session_b = mon.start(rank, &grown2).expect("session B start");
        for iter in 0..ITERS_3 {
            let tag = (ITERS_1 + ITERS_2 + iter) as u32;
            let (l, r) = exchange(rank, &grown2, x, tag, &mut first_failed);
            x = (l + x + r) / 3.0;
        }
        let checksum = rank.allreduce(&grown2, &[x], |a, b| a + b)[0];

        let all_alive = vec![true; grown2.size()];
        let window = mon
            .gather_window_partial(rank, session_b, 0, Flags::ALL_COMM, &all_alive)
            .expect("window gather");
        mon.suspend(session_b).expect("suspend B");
        mon.free(session_b).expect("free B");

        let row_a = session_a.map(|id| {
            mon.suspend(id).expect("suspend A");
            let row = mon.get_data(id, Flags::P2P_ONLY).expect("session A row");
            mon.free(id).expect("free A");
            row.counts
        });
        mon.finalize(rank).expect("monitoring finalize");

        RankReport {
            role,
            incarnation: rank.incarnation(),
            first_failed,
            stale,
            row_a,
            final_rank: grown2.rank(),
            final_size: grown2.size(),
            final_epoch: grown2.epoch(),
            checksum,
            window_csv: window.data.map(|d| d.counts.to_csv()),
        }
    });

    println!(
        "elastic stencil: {N} ranks + 1 latent slot, plan seed {seed}, \
         rank {VICTIM} restarts at {CRASH_OPS} wire ops"
    );
    for (w, r) in results.iter().enumerate() {
        match r {
            Ok(Some(rep)) => {
                let failed = rep.first_failed.map_or("-".to_string(), |i| i.to_string());
                let stale = rep
                    .stale
                    .map_or("-".to_string(), |(c, n)| format!("epoch {c} rejected at {n}"));
                println!(
                    "slot {w}: {} inc={} final_rank={}/{} epoch={} first_failed={failed} \
                     stale_send=[{stale}] checksum={:.6}",
                    rep.role,
                    rep.incarnation,
                    rep.final_rank,
                    rep.final_size,
                    rep.final_epoch,
                    rep.checksum
                );
            }
            Ok(None) => println!("slot {w}: latent, never admitted"),
            Err(f) => println!("slot {w}: DEAD {f}"),
        }
    }
    let root = results[0].as_ref().expect("root survives").as_ref().expect("root is initial");
    if let Some(row) = &root.row_a {
        println!("session A row at rank 0 (rebound across shrink+grow+grow): {row:?}");
    }
    if let Some(csv) = &root.window_csv {
        println!("session B window count matrix at root (9x9, joiner included):");
        print!("{csv}");
    }

    if !custom {
        // The built-in plan's contract, checked so CI fails loudly.
        let reports: Vec<&RankReport> = results
            .iter()
            .map(|r| r.as_ref().expect("every slot completes").as_ref().expect("every slot runs"))
            .collect();
        assert_eq!(reports.len(), N + 1);
        assert_eq!((reports[VICTIM].role, reports[VICTIM].incarnation), ("reborn", 1));
        assert_eq!((reports[LATENT].role, reports[LATENT].incarnation), ("joiner", 0));
        for (w, rep) in reports.iter().enumerate() {
            assert_eq!(rep.final_size, N + 1, "slot {w} must end on the 9-rank world");
            assert_eq!(rep.final_epoch, 3, "world(0) -> shrink(1) -> grow(2) -> grow(3)");
            assert_eq!(rep.checksum, reports[0].checksum, "slot {w} checksum diverged");
            let expect_stale = (w != LATENT).then_some((2, 3));
            assert_eq!(rep.stale, expect_stale, "slot {w} stale-epoch verdict");
            let expect_failed = (w == VICTIM - 1 || w == VICTIM + 1).then_some(2);
            assert_eq!(
                rep.first_failed, expect_failed,
                "only the victim's neighbours see the death, at iteration 2"
            );
        }
        // The session survived two rebinds: rank 2's pre-crash sends toward
        // the victim followed it to its post-rejoin coordinate (rank 7).
        let row2 = reports[2].row_a.as_ref().expect("incumbent session row");
        assert_eq!(row2.len(), N + 1);
        assert_eq!(row2[7], ITERS_1 as u64, "pre-crash traffic follows the victim's rebind");
        println!(
            "rolling restart (shrink-and-regrow) + scale-out to {} ranks converged; \
             all checks passed",
            N + 1
        );
    }
}
