//! Live introspection windows: read a monitoring session while it runs.
//!
//! The paper's loop suspends a session before reading it — a stop-the-world
//! barrier.  The windowed data plane seals **epoch windows** on an *active*
//! session instead: each application phase ends in a `gather_window`, the
//! root watches the traffic mix change phase by phase (the deltas ride a
//! topology-ordered k-ary tree, not a star), and the reorder loop consumes
//! the windows online (`monitored_reorder_windowed`) without ever stopping
//! the application.
//!
//! Run with: `cargo run --release -p mim-apps --example live_windows`

use mim_core::{Flags, Monitoring};
use mim_mpisim::{Comm, Rank, SrcSel, TagSel, Universe, UniverseConfig};
use mim_reorder::monitored_reorder_windowed;
use mim_topology::{Machine, Placement, TopologyTree};

const N: usize = 16;

/// One phase: every rank exchanges `bytes` with `me ^ stride` (a perfect
/// matching, so the pattern is a permutation of disjoint pairs).
fn exchange(rank: &Rank, comm: &Comm, stride: usize, bytes: u64) {
    let me = comm.rank();
    let peer = me ^ stride;
    rank.send_synthetic(comm, peer, 11, bytes);
    rank.recv_synthetic(comm, SrcSel::Rank(peer), TagSel::Is(11));
}

fn main() {
    // 16 ranks cyclic over 2 nodes: neighbouring ranks live on different
    // nodes, the worst case for the nearest-neighbour phase.
    let machine = Machine::cluster(2, 1, 8);
    let tree = TopologyTree::new(vec![2, 1, 8]);
    let placement = Placement::cyclic_by_level(&tree, N, 1);
    let universe = Universe::new(UniverseConfig::new(machine, placement));
    universe.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let mon = Monitoring::init(rank).unwrap();

        // Part 1: watch three phases through the window plane.  The session
        // stays ACTIVE throughout — no suspend, no barrier beyond the
        // gather itself.
        let id = mon.start(rank, &world).unwrap();
        if me == 0 {
            println!("three application phases, watched live (session never suspended):\n");
            println!("  phase   stride   window events   window bytes");
        }
        for (w, stride) in [1usize, 2, 4].into_iter().enumerate() {
            exchange(rank, &world, stride, 1 << (10 + w));
            let gw = mon.gather_window(rank, id, 0, Flags::P2P_ONLY).unwrap();
            if let Some(data) = gw.data {
                println!(
                    "  #{epoch}      ^{stride}      {:>13}   {:>12}",
                    data.counts.total(),
                    data.sizes.total(),
                    epoch = gw.epoch,
                );
            }
        }
        // Live counters still answer on the active session: the totals keep
        // accumulating while the windows were drained.
        let c = mon.trace_counters(rank, id).unwrap();
        assert_eq!(c.epoch, 3, "three windows sealed");
        assert_eq!(c.window_events, 0, "current window empty right after a seal");
        mon.suspend(id).unwrap();
        mon.free(id).unwrap();

        // Part 2: the reorder loop consumes windows online.  Three windows
        // of the nearest-neighbour pattern accumulate at the root while the
        // application keeps running; the permutation is computed from the
        // accumulated matrix exactly as in the strict (suspend) path.
        let outcome =
            monitored_reorder_windowed(rank, &mon, &world, Flags::P2P_ONLY, 3, |comm, _w| {
                exchange(rank, comm, 1, 1 << 20);
            });
        if me == 0 {
            let inv = mim_topology::inverse_permutation(&outcome.k);
            let machine = rank.machine();
            let placement = rank.placement();
            let colocated = (0..N)
                .step_by(2)
                .filter(|&i| {
                    machine.node_of_core(placement.core_of(inv[i]))
                        == machine.node_of_core(placement.core_of(inv[i + 1]))
                })
                .count();
            println!("\nwindowed reorder over 3 live windows: k = {:?}", outcome.k);
            println!("heavy pairs sharing a node after reordering: {colocated}/8");
            assert_eq!(colocated, 8, "every heavy pair must land on one node");
        }
        assert_eq!(outcome.comm.rank(), outcome.k[me]);
        mon.finalize(rank).unwrap();
    });
}
