//! Conjugate gradient with dynamic rank reordering (paper Sec 6.5).
//!
//! Runs the distributed CG solver twice on a random initial mapping: once
//! as-is, once with the paper's Fig. 1 reordering (monitor the
//! initialization iteration, TreeMatch, switch to the optimized
//! communicator), and prints the execution- and communication-time ratios.
//!
//! Run with: `cargo run --release -p mim-apps --example cg_reorder`

use mim_apps::cg::{self, CgStats};
use mim_apps::output::fmt_ns;
use mim_core::{Flags, Monitoring};
use mim_mpisim::{Universe, UniverseConfig};
use mim_reorder::monitored_reorder;
use mim_topology::{Machine, Placement};

fn run(reorder: bool) -> CgStats {
    let np = 32;
    let machine = Machine::plafrim(2); // 48 cores over 2 nodes
    let placement = Placement::random(&machine.tree, np, 12345);
    let cfg = UniverseConfig::new(machine, placement);
    let universe = Universe::new(cfg);
    let class = cg::class("A");
    let a = cg::generate_matrix(class, np, 7);

    let stats = universe.launch(move |rank| {
        let world = rank.comm_world();
        if !reorder {
            return cg::run_cg_charged(rank, &world, &a, class.iters, class.flops_per_iter).1;
        }
        let mon = Monitoring::init(rank).unwrap();
        // Monitor the initialization iteration (the NPB CG code runs one CG
        // iteration during init — we do the same) and reorder from it.
        let outcome = monitored_reorder(rank, &mon, &world, Flags::ALL_COMM, |comm| {
            cg::run_cg_charged(rank, comm, &a, 1, class.flops_per_iter);
        });
        let (_, stats) =
            cg::run_cg_charged(rank, &outcome.comm, &a, class.iters, class.flops_per_iter);
        mon.finalize(rank).unwrap();
        // Charge the reordering to the totals, as the paper does ("the time
        // of the reordering is added to the whole timing").
        CgStats {
            total_ns: stats.total_ns + outcome.reorder_cost_ns,
            comm_ns: stats.comm_ns,
            ..stats
        }
    });
    stats[0]
}

fn main() {
    let base = run(false);
    let opt = run(true);
    println!("NAS-style CG, class A (scaled), 32 ranks randomly placed on 2 nodes\n");
    println!("                residual   exec time   comm time (rank 0)");
    println!(
        "no reordering   {:.3e}  {:>9}   {:>9}",
        base.residual,
        fmt_ns(base.total_ns),
        fmt_ns(base.comm_ns)
    );
    println!(
        "with reordering {:.3e}  {:>9}   {:>9}",
        opt.residual,
        fmt_ns(opt.total_ns),
        fmt_ns(opt.comm_ns)
    );
    println!(
        "\nexecution time ratio: {:.3}   communication time ratio: {:.3}",
        base.total_ns / opt.total_ns,
        base.comm_ns / opt.comm_ns
    );
    assert!((base.residual - opt.residual).abs() < 1e-9 * base.residual.max(1e-30));
    println!("(identical residuals: reordering only relabels ranks, numerics untouched)");
}
