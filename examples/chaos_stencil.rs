//! Crash-surviving stencil under deterministic fault injection: the chaos
//! CI gate's workload (`scripts/check_chaos.py`).
//!
//! 8 ranks run a 1-D halo-exchange stencil inside the self-healing reorder
//! loop (`monitored_reorder_resilient`).  The installed [`FaultPlan`] drops
//! and duplicates transmissions (exercising the wire retry + dedup path)
//! and crashes rank 3 at its 18th wire operation — the first op of
//! iteration 3, right after the monitoring barrier (6 ops) plus three
//! 4-op iterations.  Neighbours detect the death through
//! `recv_or_failure`, substitute a zero halo, and finish; the reorder loop
//! then agrees on liveness, shrinks the communicator ULFM-style, computes
//! a mapping over the surviving submatrix, and the 7 survivors run more
//! iterations plus an allreduce on the shrunk, reordered communicator.
//!
//! Everything printed is a pure function of the seed: run it twice with
//! the same `MIM_CHAOS_SEED` and stdout is byte-identical (and so is the
//! `MIM_TRACE` JSONL, up to cross-thread line interleaving, thread-start
//! track registration order (`tid`), and the scheduling-dependent
//! `uq_depth` diagnostic).
//!
//! Environment: `MIM_CHAOS_SEED` (default 42) reseeds the built-in plan;
//! `MIM_CHAOS_PLAN` replaces it entirely (see `FaultPlan::parse`).

use mim_chaos::FaultPlan;
use mim_core::{Flags, Monitoring};
use mim_mpisim::{RankFailure, Universe, UniverseConfig};
use mim_reorder::{monitored_reorder_resilient, ReorderFallback};
use mim_topology::{Machine, Placement};

const N: usize = 8;
const ITERS: usize = 6;
const POST_ITERS: usize = 2;
const CRASH_RANK: usize = 3;
/// Monitoring barrier (3 dissemination rounds x send+recv) + 3 interior
/// iterations x (2 sends + 2 receives).
const CRASH_OPS: u64 = 6 + 3 * 4;

#[derive(Debug)]
struct RankReport {
    first_failed: Option<usize>,
    retries: u64,
    new_rank: usize,
    shrunk_size: usize,
    k: Vec<usize>,
    alive: Vec<bool>,
    fallback: String,
    checksum: f64,
    gathered_csv: Option<String>,
}

/// One halo exchange on `comm` under rank labels `me`: returns the two
/// halo values (dead or absent neighbours contribute 0.0) and the first
/// iteration at which a neighbour was discovered dead.
fn exchange(
    rank: &mim_mpisim::Rank,
    comm: &mim_mpisim::Comm,
    x: f64,
    iter: usize,
    first_failed: &mut Option<usize>,
) -> (f64, f64) {
    let me = comm.rank();
    let n = comm.size();
    let tag = iter as u32;
    if me > 0 {
        rank.send(comm, me - 1, tag, &[x]);
    }
    if me + 1 < n {
        rank.send(comm, me + 1, tag, &[x]);
    }
    let mut halo = |peer: usize| match rank.recv_or_failure::<f64>(comm, peer, tag) {
        Ok((v, _)) => v[0],
        Err(_) => {
            first_failed.get_or_insert(iter);
            0.0
        }
    };
    let left = if me > 0 { halo(me - 1) } else { 0.0 };
    let right = if me + 1 < n { halo(me + 1) } else { 0.0 };
    (left, right)
}

fn main() {
    let seed = std::env::var("MIM_CHAOS_SEED")
        .ok()
        .map_or(42, |s| s.trim().parse().expect("MIM_CHAOS_SEED must be a u64"));
    let custom = std::env::var("MIM_CHAOS_PLAN").is_ok();
    let plan = match FaultPlan::from_env() {
        Some(p) if custom => p,
        _ => FaultPlan::new(seed).drop_p(0.1).dup_p(0.05).crash_at_ops(CRASH_RANK, CRASH_OPS),
    };

    let machine = Machine::cluster(2, 1, 4);
    let cfg =
        UniverseConfig::new(machine, Placement::packed(N)).with_injector(plan.into_injector());
    let u = Universe::new(cfg);

    let results = u.launch_faulty(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).expect("monitoring init");
        let mut x = world.rank() as f64 + 1.0;
        let mut first_failed = None;

        let outcome = monitored_reorder_resilient(rank, &mon, &world, Flags::P2P_ONLY, |comm| {
            for iter in 0..ITERS {
                let (l, r) = exchange(rank, comm, x, iter, &mut first_failed);
                x = (l + x + r) / 3.0;
            }
        });

        // Survivors continue on the shrunk, reordered communicator.
        let work = &outcome.comm;
        for iter in 0..POST_ITERS {
            let (l, r) = exchange(rank, work, x, ITERS + iter, &mut first_failed);
            x = (l + x + r) / 3.0;
        }
        let checksum = rank.allreduce(work, &[x], |a, b| a + b)[0];
        mon.finalize(rank).expect("monitoring finalize");

        RankReport {
            first_failed,
            retries: rank.retry_count(),
            new_rank: work.rank(),
            shrunk_size: work.size(),
            k: outcome.k.clone(),
            alive: outcome.alive.clone(),
            fallback: format!("{:?}", outcome.fallback),
            checksum,
            gathered_csv: outcome.gathered.map(|g| g.sizes.to_csv()),
        }
    });

    println!(
        "chaos stencil: {N} ranks, plan seed {seed}, crash rank {CRASH_RANK} at {CRASH_OPS} wire ops"
    );
    let mut survivor: Option<&RankReport> = None;
    for (w, r) in results.iter().enumerate() {
        match r {
            Ok(rep) => {
                let failed = rep.first_failed.map_or("-".to_string(), |i| i.to_string());
                println!(
                    "rank {w}: ok   new_rank={} first_failed={failed} retries={} checksum={:.6}",
                    rep.new_rank, rep.retries, rep.checksum
                );
                survivor = Some(rep);
            }
            Err(f) => println!("rank {w}: DEAD {f}"),
        }
    }
    let rep = survivor.expect("at least one survivor");
    println!(
        "survivors: {}/{N}  alive={:?}  fallback={}",
        rep.shrunk_size, rep.alive, rep.fallback
    );
    println!("k = {:?}", rep.k);
    let root = results[0].as_ref().expect("root survives in this demo");
    if let Some(csv) = &root.gathered_csv {
        println!("partial byte matrix at root (dead rows zeroed):");
        print!("{csv}");
    }

    if !custom {
        // The built-in plan's contract, checked so CI fails loudly.
        assert!(
            matches!(results[CRASH_RANK], Err(RankFailure::Crashed { ops: CRASH_OPS, .. })),
            "rank {CRASH_RANK} should crash at op {CRASH_OPS}: {:?}",
            results[CRASH_RANK]
        );
        let expected_alive: Vec<bool> = (0..N).map(|r| r != CRASH_RANK).collect();
        for (w, r) in results.iter().enumerate().filter(|(w, _)| *w != CRASH_RANK) {
            let rep = r.as_ref().expect("survivor");
            assert_eq!(rep.shrunk_size, N - 1);
            assert_eq!(rep.alive, expected_alive);
            assert_eq!(
                rep.fallback,
                format!("{:?}", ReorderFallback::Shrunk { crashed: vec![CRASH_RANK] })
            );
            assert_eq!(rep.checksum, results.iter().flatten().next().unwrap().checksum);
            let expect_failed = (w == CRASH_RANK - 1 || w == CRASH_RANK + 1).then_some(ITERS / 2);
            assert_eq!(
                rep.first_failed,
                expect_failed,
                "rank {w}: neighbours of the crash must fail first at iteration {}",
                ITERS / 2
            );
        }
        assert!(
            results.iter().flatten().map(|r| r.retries).sum::<u64>() > 0,
            "a 10% drop plan must retry at least once"
        );
        println!(
            "crash at iteration {} recovered by shrink-and-remap; all checks passed",
            ITERS / 2
        );
    }
}
