//! Predicting network utilization from introspection monitoring (the
//! paper's Sec 7 outlook, after Tseng et al., EuroPar'19): sample a session
//! every 10 ms, feed an EWMA predictor, and schedule a background transfer
//! — think checkpoint prefetch — into a window the predictor marks idle.
//!
//! Run with: `cargo run --release -p mim-apps --example network_prediction`

use mim_apps::netpredict::{EwmaPredictor, UtilizationSampler};
use mim_core::{Flags, Monitoring};
use mim_mpisim::{SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

fn main() {
    let machine = Machine::two_node_edr();
    let placement = Placement::explicit(vec![0, machine.cores_per_node()]);
    let universe = Universe::new(UniverseConfig::new(machine, placement));

    let timelines = universe.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        if world.rank() == 1 {
            // 3 bursts x 4 messages + 1 background transfer.
            for _ in 0..13 {
                rank.recv_synthetic(&world, SrcSel::Rank(0), TagSel::Any);
            }
            mon.suspend(id).unwrap();
            mon.free(id).unwrap();
            mon.finalize(rank).unwrap();
            return Vec::new();
        }
        let mut sampler = UtilizationSampler::new(rank, id, Flags::P2P_ONLY);
        let mut predictor = EwmaPredictor::new(0.5, 5e7); // idle below 50 MB/s
        let mut log: Vec<(f64, f64, bool)> = Vec::new();
        let mut prefetch_done = false;
        // Application phases: bursts of traffic separated by compute lulls.
        for phase in 0..3 {
            // Burst: 4 x 2 MB back to back.
            for _ in 0..4 {
                rank.send_synthetic(&world, 1, 0, 2_000_000);
                rank.sleep_ns(5e6);
                let s = sampler.sample(rank, &mon).unwrap();
                let bw = predictor.observe(s);
                log.push((s.t_s, bw, predictor.network_idle()));
            }
            // Lull: 80 ms of "compute".
            for _ in 0..8 {
                rank.sleep_ns(10e6);
                let s = sampler.sample(rank, &mon).unwrap();
                let bw = predictor.observe(s);
                let idle = predictor.network_idle();
                log.push((s.t_s, bw, idle));
                // First detected idle window of the last phase: fire the
                // background prefetch.
                if phase == 2 && idle && !prefetch_done {
                    rank.send_synthetic(&world, 1, 99, 10_000_000);
                    prefetch_done = true;
                }
            }
        }
        assert!(prefetch_done, "an idle window must have been found");
        mon.suspend(id).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
        log
    });

    println!("t(ms)   predicted MB/s   idle?");
    for &(t, bw, idle) in &timelines[0] {
        let bar = "#".repeat(((bw / 4e7).min(30.0)) as usize);
        println!(
            "{:>6.0}   {:>10.1}   {}  {}",
            t * 1e3,
            bw / 1e6,
            if idle { "idle" } else { "    " },
            bar
        );
    }
    let idles = timelines[0].iter().filter(|&&(_, _, i)| i).count();
    println!(
        "\n{} of {} sampling windows predicted idle — the background 10 MB\n\
         checkpoint prefetch was scheduled into the first idle window of the\n\
         last compute phase, off the application's critical path.",
        idles,
        timelines[0].len()
    );
}
