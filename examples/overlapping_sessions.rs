//! Overlapping sessions (paper Sec 4.5): distinguish which traffic belongs
//! to which collective by giving each collective its own session.
//!
//! The low-level Open MPI monitoring component aggregates everything into
//! one MPI_T variable; sessions solve that: one session per collective call
//! the programmer wants to tell apart, plus an umbrella session showing they
//! are independent.
//!
//! Run with: `cargo run -p mim-apps --example overlapping_sessions`

use mim_core::{Flags, Monitoring};
use mim_mpisim::{Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

fn main() {
    let machine = Machine::cluster(2, 1, 6);
    let universe = Universe::new(UniverseConfig::new(machine, Placement::packed(12)));

    let rows = universe.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();

        // An umbrella session spanning both collectives...
        let whole = mon.start(rank, &world).unwrap();
        // ...and one session per collective call.
        let s_bcast = mon.start(rank, &world).unwrap();
        let mut buf = if world.rank() == 0 { vec![1u8; 4096] } else { vec![] };
        rank.bcast(&world, 0, &mut buf);
        mon.suspend(s_bcast).unwrap();

        let s_reduce = mon.start(rank, &world).unwrap();
        let mine = vec![world.rank() as u64; 512];
        rank.reduce(&world, 0, &mine, |a, b| a + b);
        mon.suspend(s_reduce).unwrap();

        mon.suspend(whole).unwrap();

        let per_session = |id| {
            let d = mon.allgather_data(rank, id, Flags::COLL_ONLY).unwrap();
            (d.counts.total(), d.sizes.total())
        };
        let b = per_session(s_bcast);
        let r = per_session(s_reduce);
        let w = per_session(whole);
        mon.free(mim_core::Msid::ALL).unwrap();
        mon.finalize(rank).unwrap();
        (b, r, w)
    });

    let (bcast, reduce, whole) = rows[0];
    println!("bcast session : {:>3} messages, {:>7} bytes", bcast.0, bcast.1);
    println!("reduce session: {:>3} messages, {:>7} bytes", reduce.0, reduce.1);
    println!("whole session : {:>3} messages, {:>7} bytes", whole.0, whole.1);
    assert!(whole.0 >= bcast.0 + reduce.0);
    println!(
        "\nthe umbrella session is (at least) the sum of the two: sessions are \
         independent and can overlap or nest arbitrarily"
    );
    println!(
        "(the extra {} messages in the umbrella are the start/suspend \
         synchronizations of the inner sessions — internal traffic is monitored too)",
        whole.0 - bcast.0 - reduce.0
    );
}
