//! Port of the paper's Listing 2: "produce a file that describes all
//! point-to-point messages used to implement `MPI_Barrier`".
//!
//! The original C program:
//!
//! ```c
//! MPI_Init(NULL, NULL);
//! MPI_M_init();
//! MPI_M_msid id;
//! MPI_M_start(MPI_COMM_WORLD, &id);
//! MPI_Barrier(MPI_COMM_WORLD);
//! MPI_M_suspend(id);
//! MPI_M_rootflush(id, 0, "barrier", MPI_M_P2P_ONLY);
//! MPI_M_free(id);
//! MPI_M_finalize();
//! MPI_Finalize();
//! ```
//!
//! (We flush `COLL_ONLY` instead of `P2P_ONLY` since this runtime classifies
//! the barrier's decomposed messages as collective-internal — the paper's
//! component uses monitoring mode ≥ 2 to make the same distinction.)
//!
//! Run with: `cargo run -p mim-apps --example barrier_decomposition`

use mim_core::{Flags, Monitoring};
use mim_mpisim::{Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

fn main() {
    let machine = Machine::cluster(2, 2, 4);
    let universe = Universe::new(UniverseConfig::new(machine, Placement::packed(8)));
    let out = mim_apps::output::results_dir().join("barrier");
    let base = out.to_string_lossy().into_owned();

    let base_for_ranks = base.clone();
    universe.launch(move |rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();

        rank.barrier(&world); // the collective under scrutiny

        mon.suspend(id).unwrap();
        mon.rootflush(rank, id, 0, &base_for_ranks, Flags::COLL_ONLY).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });

    println!("barrier decomposition written to {base}_counts.0.prof / {base}_sizes.0.prof");
    let counts = std::fs::read_to_string(format!("{base}_counts.0.prof")).unwrap();
    println!("\nmessage-count matrix of one dissemination barrier over 8 ranks:");
    print!("{counts}");
    println!("(all zero-byte messages — note how every rank talks to ranks at distance 1, 2, 4)");
}
