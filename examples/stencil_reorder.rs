//! Halo-exchange stencil with dynamic rank reordering.
//!
//! A 2-D Jacobi solver's nearest-neighbour pattern is the textbook case for
//! topology-aware placement: on a node-cyclic initial mapping, every halo
//! crosses the network; after monitoring one iteration and reordering with
//! TreeMatch, neighbouring blocks sit on neighbouring cores.
//!
//! Run with: `cargo run --release -p mim-apps --example stencil_reorder`

use mim_apps::output::fmt_ns;
use mim_apps::stencil::{run_stencil, StencilConfig};
use mim_core::{Flags, Monitoring};
use mim_mpisim::{Universe, UniverseConfig};
use mim_reorder::monitored_reorder;
use mim_topology::{Machine, Placement};

fn run(reorder: bool) -> (f64, f64, f64) {
    // Wide, shallow blocks: 80 000-column halos (640 KB per exchange) put
    // the pattern in the bandwidth-bound regime where placement matters —
    // with latency-bound halos the iteration pipeline is gated by the single
    // slowest edge, which any mapping has.
    let cfg = StencilConfig { rows: 24, cols: 80_000, prows: 6, pcols: 8, iters: 100 };
    let n = cfg.prows * cfg.pcols; // 48 ranks
    let machine = Machine::plafrim(2);
    let placement = Placement::cyclic_by_level(&machine.tree, n, machine.node_level);
    let universe = Universe::new(UniverseConfig::new(machine, placement));
    let stats = universe.launch(move |rank| {
        let world = rank.comm_world();
        if !reorder {
            let (_, s) = run_stencil(rank, &world, cfg);
            return (s.checksum, s.total_ns, s.comm_ns);
        }
        let mon = Monitoring::init(rank).unwrap();
        let warmup = StencilConfig { iters: 1, ..cfg };
        let outcome = monitored_reorder(rank, &mon, &world, Flags::P2P_ONLY, |comm| {
            run_stencil(rank, comm, warmup);
        });
        let (_, s) = run_stencil(rank, &outcome.comm, cfg);
        mon.finalize(rank).unwrap();
        (s.checksum, s.total_ns + outcome.reorder_cost_ns, s.comm_ns)
    });
    stats[0]
}

fn main() {
    let (sum_base, total_base, comm_base) = run(false);
    let (sum_opt, total_opt, comm_opt) = run(true);
    println!("2-D Jacobi, 24x80000 grid on a 6x8 process grid, 48 ranks cyclic over 2 nodes\n");
    println!("                checksum    exec time   halo-exchange time");
    println!(
        "no reordering   {sum_base:9.3}   {:>9}   {:>9}",
        fmt_ns(total_base),
        fmt_ns(comm_base)
    );
    println!("with reordering {sum_opt:9.3}   {:>9}   {:>9}", fmt_ns(total_opt), fmt_ns(comm_opt));
    assert_eq!(sum_base, sum_opt, "reordering must not change the physics");
    println!(
        "\nexecution ratio {:.2}   halo-exchange ratio {:.2}",
        total_base / total_opt,
        comm_base / comm_opt
    );
    println!("(identical checksums: only the rank labels moved, not the data)");
}
