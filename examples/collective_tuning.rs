//! Tuning a collective with introspection monitoring (paper Sec 6.3).
//!
//! Monitors the point-to-point decomposition of an `MPI_Reduce` (binary
//! tree) and an `MPI_Bcast` (binomial tree), reorders the ranks with
//! TreeMatch, and reports the speedups for a sweep of buffer sizes — a
//! small-scale rendition of the paper's Fig 5.
//!
//! Run with: `cargo run --release -p mim-apps --example collective_tuning`

use mim_apps::collbench::{collective_opt, CollectiveKind};
use mim_apps::output::{ascii_table, fmt_ns};
use mim_topology::Machine;

fn main() {
    let np = 48;
    println!("collective optimization on a 2-node PlaFRIM-like machine, {np} ranks\n");
    for kind in [CollectiveKind::ReduceBinary, CollectiveKind::BcastBinomial] {
        let mut rows = Vec::new();
        for buf_ints in [100_000u64, 1_000_000, 10_000_000, 50_000_000] {
            let p = collective_opt(Machine::plafrim(2), np, kind, buf_ints);
            rows.push(vec![
                format!("{}k ints", buf_ints / 1000),
                fmt_ns(p.baseline_ns),
                fmt_ns(p.reordered_ns),
                format!("{:.2}x", p.speedup()),
            ]);
        }
        println!("{}:", kind.label());
        println!("{}", ascii_table(&["buffer", "baseline", "reordered", "speedup"], &rows));
    }
    println!(
        "the baseline maps ranks cyclically over nodes (the mapping a user gets\n\
         with no binding specification); monitoring the decomposition lets\n\
         TreeMatch pull the heavy tree edges inside the nodes"
    );
}
