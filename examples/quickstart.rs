//! Quickstart: monitor a broadcast and print who really talked to whom.
//!
//! Demonstrates the core loop of the library: start a session, run some
//! communication (here a collective, which the runtime decomposes into
//! point-to-point messages below the monitoring probe), suspend, and read
//! the per-pair matrices back.
//!
//! Run with: `cargo run -p mim-apps --example quickstart`
//!
//! To also capture a structured trace of every wire event (sends, receive
//! completions, collective spans, session transitions), set `MIM_TRACE`:
//! `MIM_TRACE=trace.jsonl cargo run -p mim-apps --example quickstart`
//! (a non-`.jsonl` path gets chrome trace-event JSON for `about:tracing`;
//! see the "Observability" section of the README).

use mim_core::{Flags, Monitoring};
use mim_mpisim::{Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

fn main() {
    // A 2-node machine, 8 ranks packed onto the first cores of each node.
    let machine = Machine::cluster(2, 1, 4);
    let universe = Universe::new(UniverseConfig::new(machine, Placement::packed(8)));

    let matrices = universe.launch(|rank| {
        let world = rank.comm_world();
        // MPI_M_init — plug the recorder into the PML layer.
        let mon = Monitoring::init(rank).expect("init monitoring");
        // MPI_M_start — begin watching MPI_COMM_WORLD.
        let session = mon.start(rank, &world).expect("start session");

        // The code under observation: a binomial broadcast of 1 MiB.
        let mut payload = if world.rank() == 0 { vec![7u8; 1 << 20] } else { Vec::new() };
        rank.bcast(&world, 0, &mut payload);
        assert_eq!(payload.len(), 1 << 20);

        // MPI_M_suspend — freeze the session so its data can be read.
        mon.suspend(session).expect("suspend session");
        // MPI_M_allgather_data — everyone receives the full matrices.
        let data =
            mon.allgather_data(rank, session, Flags::COLL_ONLY).expect("gather monitored data");
        mon.free(session).expect("free session");
        mon.finalize(rank).expect("finalize monitoring");
        data
    });

    // Every rank got the same view; print rank 0's.
    let data = &matrices[0];
    println!("message counts (sender row -> receiver column):");
    print!("{}", data.counts.to_csv());
    println!("\nbytes:");
    print!("{}", data.sizes.to_csv());
    println!(
        "\nA binomial broadcast over 8 ranks used {} point-to-point messages \
         carrying {} bytes total — the decomposition PMPI-level tools cannot see.",
        data.counts.total(),
        data.sizes.total()
    );
}
