#!/usr/bin/env python3
"""CI elastic gate: rolling restarts and membership growth must replay
byte-for-byte, on both executors.

Runs the ``elastic_stencil`` example (8-rank monitored stencil plus one
latent slot; the plan perturbs link latency and crash-restarts rank 3,
after which the survivors shrink, the reborn incarnation is readmitted,
the latent slot is admitted and a 9-rank window matrix is gathered) twice
per executor (``MIM_EXECUTOR=threads`` and ``tasks``) under a fixed
``MIM_CHAOS_SEED``, each run with ``MIM_TRACE`` pointed at a fresh JSONL
file, and checks:

1. every run exits 0 — the example's own asserts cover the protocol
   (rebirth as incarnation 1, epoch 0 -> 3, stale-epoch rejection, equal
   checksums on the 9-rank world, monitoring rows surviving two rebinds);
2. stdout markers: the victim is reported reborn, the latent slot joins,
   a stale send is rejected, and the final all-checks-passed line is
   present;
3. stdout is byte-identical across ALL runs — the monitoring matrices
   printed by the example are pure functions of the seed, independent of
   the executor;
4. each executor's two trace dumps are identical after *normalization*
   (below), and both engines' normalized traces agree with each other;
5. the traces contain exactly one ``rank_crash``, one ``rank_join`` and
   the membership ``epoch_bump`` events, and pass ``check_trace.py``.

Normalization (same rationale as ``check_chaos.py``): lines are sorted
(threads interleave in wall-clock order), ``tid`` is a registration index
assigned by start order, and ``uq`` is an OS-scheduling diagnostic, so
both are zeroed.  Every virtual-time field — timestamps, epochs, sizes,
incarnations, per-track sequence numbers — is compared exactly.

Usage: check_elastic.py path/to/elastic_stencil [seed]
"""
import os
import re
import subprocess
import sys
import tempfile

SEED = "42"
VICTIM = 3
WORLD = 9


def run_once(example, seed, executor, trace_path, problems):
    env = dict(os.environ, MIM_CHAOS_SEED=seed, MIM_EXECUTOR=executor, MIM_TRACE=trace_path)
    env.pop("MIM_CHAOS_PLAN", None)  # the gate checks the built-in plan
    r = subprocess.run([example], capture_output=True, text=True, env=env, check=False)
    if r.returncode != 0:
        problems.append(
            f"elastic_stencil (seed {seed}, {executor}) exited {r.returncode}:\n"
            f"{r.stdout}{r.stderr}"
        )
    return r.stdout


def normalize(trace_path):
    with open(trace_path) as f:
        lines = [
            re.sub(r'"tid":\d+', '"tid":0', re.sub(r'"uq":\d+', '"uq":0', ln))
            for ln in f
            if ln.strip()
        ]
    return sorted(lines)


def check_stdout(out, problems):
    if f"slot {VICTIM}: reborn inc=1" not in out:
        problems.append(f"stdout never reports rank {VICTIM} reborn as incarnation 1")
    if f"slot {WORLD - 1}: joiner" not in out:
        problems.append("stdout never reports the latent slot joining")
    if "stale_send=[epoch 2 rejected at 3]" not in out:
        problems.append("stdout missing the stale-epoch rejection marker")
    if f"scale-out to {WORLD} ranks converged; all checks passed" not in out:
        problems.append("stdout missing the final all-checks-passed line")


def check_membership_events(lines, problems):
    crashes = sum('"type":"rank_crash"' in ln for ln in lines)
    rebirths = sum('"type":"rank_join","incarnation":1' in ln for ln in lines)
    admissions = sum('"type":"rank_join","incarnation":0' in ln for ln in lines)
    bumps = sum('"type":"epoch_bump"' in ln for ln in lines)
    if crashes != 1:
        problems.append(f"trace has {crashes} rank_crash events, want exactly 1")
    if rebirths != 1:
        problems.append(f"trace has {rebirths} rebirth join events, want exactly 1")
    if admissions != 1:
        problems.append(f"trace has {admissions} latent-admission join events, want exactly 1")
    # Epoch bumps: 7 survivors x (shrink + grow) + 8 members x scale-out
    # grow; the reborn and latent ranks receive their epochs by admission
    # notice, which does not re-record the bump.
    if bumps < 3:
        problems.append(f"trace has {bumps} epoch_bump events, want the membership chain")


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    example = sys.argv[1]
    seed = sys.argv[2] if len(sys.argv) == 3 else SEED
    here = os.path.dirname(os.path.abspath(__file__))
    problems = []
    with tempfile.TemporaryDirectory() as tmp:
        runs = [("threads", 1), ("threads", 2), ("tasks", 1), ("tasks", 2)]
        traces = {}
        outs = {}
        for executor, i in runs:
            t = os.path.join(tmp, f"{executor}{i}.jsonl")
            traces[(executor, i)] = t
            outs[(executor, i)] = run_once(example, seed, executor, t, problems)
        if problems:
            for p in problems:
                print(f"  BAD  {p}", file=sys.stderr)
            print("check_elastic: example failed; skipping replay checks", file=sys.stderr)
            return 1
        check_stdout(outs[("threads", 1)], problems)
        for key in runs[1:]:
            if outs[key] != outs[("threads", 1)]:
                problems.append(f"stdout of {key} diverged from the first threads run")
        norms = {key: normalize(t) for key, t in traces.items()}
        for a, b in [
            (("threads", 1), ("threads", 2)),
            (("tasks", 1), ("tasks", 2)),
            (("threads", 1), ("tasks", 1)),
        ]:
            if norms[a] != norms[b]:
                diff = sum(x != y for x, y in zip(norms[a], norms[b]))
                diff += abs(len(norms[a]) - len(norms[b]))
                problems.append(
                    f"normalized traces diverged between {a} and {b} "
                    f"({len(norms[a])} vs {len(norms[b])} lines, {diff} differing)"
                )
        check_membership_events(norms[("threads", 1)], problems)
        for t in traces.values():
            r = subprocess.run(
                [sys.executable, os.path.join(here, "check_trace.py"), t],
                capture_output=True,
                text=True,
                check=False,
            )
            if r.returncode != 0:
                problems.append(f"check_trace.py rejected {t}:\n{r.stdout}{r.stderr}")
        nlines = len(norms[("threads", 1)])
    if problems:
        for p in problems:
            print(f"  BAD  {p}", file=sys.stderr)
        print(f"check_elastic: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"check_elastic: ok (seed {seed} replayed byte-identically on both executors; "
        f"{nlines} trace events, restart + rejoin + scale-out verified 4x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
