#!/usr/bin/env python3
"""Repo-specific lint gate (stdlib only, no cargo needed).

Two rules, both scoped to library code with `#[cfg(test)]` items stripped:

1. No `.unwrap()` / `.expect(` in `mim-mpisim`, `mim-core`,
   `mim-analyze`, or `mim-explore` outside the explicit allowlist below.
   Rank threads run user workloads; a stray unwrap turns a recoverable
   condition into a cascade of rank panics.  Allowlisted sites are
   invariant-backed (the message names the invariant) and reviewed by
   hand.

2. No wall-clock sources (`Instant::now`, `SystemTime::now`) in
   `mim-mpisim`, `mim-core`, `mim-analyze`, or `mim-explore` at all.  The
   simulator is a virtual-time machine, the analyzer a pure function, and
   the explorer's schedules must replay byte-for-byte; determinism is the
   whole point.  Sanctioned wall-clock use lives in `mim-util` (channel
   timeouts, the bench timer) and `mim-reorder` (reordering-cost
   measurement), which this gate does not scan — with one exception:

3. The M:N executor's substrate (`mim-util`'s `fiber.rs` and `deque.rs`)
   is held to both rules even though the rest of `mim-util` is not.
   These run on the scheduler hot path under every parked rank: an
   unwrap there takes down a whole worker's task set, and a wall-clock
   read there would let scheduling order leak into behavior.  Blocking
   wall-clock waits belong in `sync.rs` (the Notifier), where the
   executor's idle workers and its starvation watchdog sleep.
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

UNWRAP_SCOPE = [
    "crates/mpisim/src",
    "crates/core/src",
    "crates/analyze/src",
    "crates/explore/src",
]
CLOCK_SCOPE = [
    "crates/mpisim/src",
    "crates/core/src",
    "crates/analyze/src",
    "crates/explore/src",
]
# Rule 3: single files (not whole directories) held to both rules.
EXEC_SUBSTRATE = ["crates/util/src/fiber.rs", "crates/util/src/deque.rs"]

# (file name, code substring) pairs; the substring must appear on the
# offending line for it to pass.  Keep each entry justified.
ALLOWLIST = [
    # Chunk size is constant and matches the type width.
    ("datatype.rs", "c.try_into().unwrap()"),
    # Matching index and FIFO non-emptiness are the mailbox's own invariants.
    ("mailbox.rs", 'expect("channel key came from the index")'),
    ("mailbox.rs", 'expect("empty channels are pruned")'),
    # Envelope sources were translated through the same communicator.
    ("nonblocking.rs", 'expect("sender not in communicator")'),
    ("runtime.rs", 'expect("sender not in communicator")'),
    # Window exposure is checked before any one-sided op is admitted.
    ("osc.rs", 'expect("window not exposed on target'),
    # Launch-once and thread-spawn failures are unrecoverable by design.
    ("runtime.rs", 'expect("a universe can only be launched once")'),
    ("runtime.rs", 'expect("failed to spawn rank thread")'),
    ("runtime.rs", 'expect("rank produced no result")'),
    # comm_split: the color/rank were inserted into these very collections.
    ("runtime.rs", "distinct.binary_search(&color).unwrap()"),
    ("runtime.rs", "position(|&(_, r)| r == comm.rank()).unwrap()"),
    # DES readiness check precedes the pop.
    ("schedule.rs", 'expect("readiness check guaranteed a message")'),
    # Collectives: rootedness and ring-arrival order are the algorithms'
    # own invariants (documented under `# Panics` on the public entry).
    ("extra.rs", 'expect("non-root has a parent")'),
    ("mod.rs", 'expect("scatter root must provide data")'),
    ("mod.rs", 'expect("ring block not yet received")'),
    ("mod.rs", 'expect("missing allgather block")'),
    ("mod.rs", 'expect("missing alltoall chunk")'),
    ("varcount.rs", 'expect("scatterv root must provide chunks")'),
    ("varcount.rs", 'expect("ring block not yet received")'),
    ("varcount.rs", 'expect("missing allgatherv block")'),
]

UNWRAP_RE = re.compile(r"\.unwrap\(\)|\.expect\(")
CLOCK_RE = re.compile(r"\bInstant::now\b|\bSystemTime::now\b")
CFG_TEST_RE = re.compile(r"#\[cfg\(test\)\]")


def strip_test_items(lines):
    """Yield (lineno, line) with every `#[cfg(test)]`-gated item removed.

    Brace tracking from the attribute to the end of the following item —
    good enough for rustfmt-formatted code, where `#[cfg(test)]` sits on
    its own line directly above the `mod`/`fn` it gates.
    """
    i, n = 0, len(lines)
    while i < n:
        if CFG_TEST_RE.search(lines[i]):
            depth, started = 0, False
            i += 1
            while i < n:
                depth += lines[i].count("{") - lines[i].count("}")
                if "{" in lines[i]:
                    started = True
                i += 1
                if started and depth <= 0:
                    break
            continue
        yield i + 1, lines[i]
        i += 1


def code_of(line):
    """The line with any trailing // comment removed (string-naive, fine
    for this codebase: the patterns never appear inside string literals)."""
    return line.split("//")[0]


def allowed(path, code):
    return any(path.name == f and frag in code for f, frag in ALLOWLIST)


def main() -> int:
    problems = []
    used = set()
    targets = []
    for scope in sorted(set(UNWRAP_SCOPE + CLOCK_SCOPE)):
        targets += [(p, scope in UNWRAP_SCOPE) for p in sorted((REPO / scope).rglob("*.rs"))]
    targets += [(REPO / f, True) for f in EXEC_SUBSTRATE]
    for path, check_unwrap in targets:
            # `tests.rs` files are `#[cfg(test)] mod tests;` bodies — the
            # gating attribute lives in the parent module, not here.
            if path.name == "tests.rs" or "tests" in path.parent.parts:
                continue
            rel = path.relative_to(REPO)
            lines = path.read_text().splitlines()
            for ln, line in strip_test_items(lines):
                code = code_of(line)
                if check_unwrap and UNWRAP_RE.search(code):
                    if allowed(path, code):
                        used.add((path.name, ln))
                    else:
                        problems.append(
                            f"{rel}:{ln}: unwrap/expect in library code "
                            f"(return a Result or allowlist with justification): "
                            f"{line.strip()}"
                        )
                if CLOCK_RE.search(code):
                    problems.append(
                        f"{rel}:{ln}: wall-clock source in deterministic code: "
                        f"{line.strip()}"
                    )
    if problems:
        print("lint gate failed:")
        for p in problems:
            print("  " + p)
        return 1
    print(
        f"lint gate OK: {len(ALLOWLIST)} allowlisted sites, "
        f"{len(used)} in use, no stray unwrap/expect or wall-clock calls"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
