#!/usr/bin/env python3
"""CI chaos gate: deterministic fault injection must replay byte-for-byte.

Runs the ``chaos_stencil`` example (8-rank halo exchange inside the
self-healing reorder loop, with a plan that drops/duplicates wire
transmissions and crashes rank 3 at its 18th wire operation) twice under
a fixed ``MIM_CHAOS_SEED``, each time with ``MIM_TRACE`` pointed at a
fresh JSONL file, and checks:

1. the example itself exits 0 — its own asserts cover the recovery
   contract (crash detected at iteration 3, seven survivors, ULFM-style
   shrink-and-remap, equal checksums on the shrunk communicator);
2. stdout markers: the crashed rank is reported ``DEAD``, the shrink is
   reported, and the final "all checks passed" line is present;
3. stdout is byte-identical across the two runs;
4. the two trace dumps are identical after *normalization* (below);
5. the trace contains ``retry`` and ``rank_crash`` fault events, and
   passes ``check_trace.py``'s structural checks.

Normalization, and why it is honest: threads append to the shared trace
file as they go, so lines from different ranks interleave in wall-clock
order — sorting restores a canonical order without touching content.
``tid`` is the tracer's registration index, assigned in whatever order
the rank threads start; the workload runs a single universe, so track
*names* already identify ranks uniquely and ``tid`` is zeroed.  The
``recv`` event's ``uq`` field reports how many envelopes happened to
sit in the unexpected queue when the match landed, a function of OS
scheduling even between two fault-free runs, so it is zeroed too.  Every
virtual-time field — timestamps, retry counts and backoffs, payload
sizes, crash op counts, per-track sequence numbers — is compared exactly.

Usage: check_chaos.py path/to/chaos_stencil [seed]
"""
import os
import re
import subprocess
import sys
import tempfile

SEED = "42"
CRASH_RANK = 3
SURVIVORS = 7


def run_once(example, seed, trace_path, problems):
    env = dict(os.environ, MIM_CHAOS_SEED=seed, MIM_TRACE=trace_path)
    env.pop("MIM_CHAOS_PLAN", None)  # the gate checks the built-in plan
    r = subprocess.run([example], capture_output=True, text=True, env=env, check=False)
    if r.returncode != 0:
        problems.append(
            f"chaos_stencil (seed {seed}) exited {r.returncode}:\n{r.stdout}{r.stderr}"
        )
    return r.stdout


def normalize(trace_path):
    with open(trace_path) as f:
        lines = [
            re.sub(r'"tid":\d+', '"tid":0', re.sub(r'"uq":\d+', '"uq":0', ln))
            for ln in f
            if ln.strip()
        ]
    return sorted(lines)


def check_stdout(out, problems):
    if f"rank {CRASH_RANK}: DEAD" not in out:
        problems.append(f"stdout never reports rank {CRASH_RANK} dead")
    if f"survivors: {SURVIVORS}/8" not in out:
        problems.append(f"stdout never reports {SURVIVORS}/8 survivors")
    if "recovered by shrink-and-remap; all checks passed" not in out:
        problems.append("stdout missing the final all-checks-passed line")


def check_fault_events(lines, problems):
    retries = sum('"type":"retry"' in ln for ln in lines)
    crashes = sum('"type":"rank_crash"' in ln for ln in lines)
    if retries == 0:
        problems.append("trace has no retry events (10% drop plan must retry)")
    if crashes != 1:
        problems.append(f"trace has {crashes} rank_crash events, want exactly 1")


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    example = sys.argv[1]
    seed = sys.argv[2] if len(sys.argv) == 3 else SEED
    here = os.path.dirname(os.path.abspath(__file__))
    problems = []
    with tempfile.TemporaryDirectory() as tmp:
        traces = [os.path.join(tmp, f"run{i}.jsonl") for i in (1, 2)]
        outs = [run_once(example, seed, t, problems) for t in traces]
        if problems:
            for p in problems:
                print(f"  BAD  {p}", file=sys.stderr)
            print("check_chaos: example failed; skipping replay checks", file=sys.stderr)
            return 1
        check_stdout(outs[0], problems)
        if outs[0] != outs[1]:
            problems.append(f"stdout diverged between two seed-{seed} runs")
        norms = [normalize(t) for t in traces]
        if norms[0] != norms[1]:
            diff = sum(a != b for a, b in zip(norms[0], norms[1]))
            diff += abs(len(norms[0]) - len(norms[1]))
            problems.append(
                f"normalized traces diverged between two seed-{seed} runs "
                f"({len(norms[0])} vs {len(norms[1])} lines, {diff} differing)"
            )
        check_fault_events(norms[0], problems)
        for t in traces:
            r = subprocess.run(
                [sys.executable, os.path.join(here, "check_trace.py"), t],
                capture_output=True,
                text=True,
                check=False,
            )
            if r.returncode != 0:
                problems.append(f"check_trace.py rejected {t}:\n{r.stdout}{r.stderr}")
        nlines = len(norms[0])
    if problems:
        for p in problems:
            print(f"  BAD  {p}", file=sys.stderr)
        print(f"check_chaos: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"check_chaos: ok (seed {seed} replayed byte-identically; "
        f"{nlines} trace events, crash + shrink-and-remap verified twice)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
