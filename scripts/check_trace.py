#!/usr/bin/env python3
"""Validate a trace dump produced by ``MIM_TRACE=<path>`` (mim-trace).

Usage:
    check_trace.py TRACE_FILE

Accepts both export formats and picks by content (not extension, so a
misnamed file is still checked honestly):

* JSON-lines (``*.jsonl``): one event object per line;
* chrome trace-event JSON (anything else): a ``[``-opened, never-closed
  array of event objects, one per line, as ``about:tracing`` and Perfetto
  accept it.

Checks, in order:

1. every line parses and carries the fields its event type requires;
2. per-track sequence numbers are strictly increasing (JSONL only — the
   chrome export drops ``seq``);
3. timestamps never go backwards on a track.  The ``des`` track is the
   exception: it serializes one evaluator's per-rank clocks, so the
   monotonicity contract is per (track, simulated rank), not per track;
4. receive/send pairing: the multiset of ``(bytes, comm, tag)`` received
   from rank S on rank D's track must be contained in the multiset sent by
   S to D.  One-sided sends are excluded (puts/gets have no receive event),
   and surplus sends are legal (a message may still be in flight when the
   universe exits).

Exits 0 with a one-line summary, 1 with per-check diagnostics.
"""

import collections
import json
import sys

EVENT_FIELDS = {
    "send": {"dst", "bytes", "kind", "comm", "tag"},
    "send_failed": {"dst"},
    "retry": {"dst", "attempt", "backoff_ns"},
    "rank_crash": {"ops"},
    "rank_join": {"incarnation"},
    "epoch_bump": {"comm", "epoch", "size"},
    "recv": {"src", "bytes", "comm", "tag", "uq"},
    "coll_begin": {"name", "comm", "id"},
    "coll_end": {"name", "comm", "id"},
    "session": {"action", "msid"},
    "window": {"msid", "epoch", "events", "bytes"},
    "des": {"rank", "op", "peer", "bytes"},
}


def fail(errors, msg):
    if len(errors) < 20:
        errors.append(msg)
    elif len(errors) == 20:
        errors.append("... (further errors suppressed)")


def parse_jsonl(text, errors):
    """Yield (name, instance, seq, t_ns, type, event_dict) from a JSONL dump.

    ``instance`` is the ``tid`` registration index: a process launching
    several universes registers a fresh ``rank0`` track per universe, and
    each restarts its clock and sequence numbers, so ordering contracts
    hold per instance, not per name.
    """
    events = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            fail(errors, f"line {lineno}: not valid JSON: {e}")
            continue
        missing = {"track", "tid", "seq", "t_ns", "type"} - ev.keys()
        if missing:
            fail(errors, f"line {lineno}: missing {sorted(missing)}")
            continue
        kind = ev["type"]
        if kind not in EVENT_FIELDS:
            fail(errors, f"line {lineno}: unknown event type {kind!r}")
            continue
        missing = EVENT_FIELDS[kind] - ev.keys()
        if missing:
            fail(errors, f"line {lineno}: {kind} event missing {sorted(missing)}")
            continue
        events.append((ev["track"], ev["tid"], ev["seq"], ev["t_ns"], kind, ev))
    return events


def parse_chrome(text, errors):
    """Yield (track, seq, t_ns, type, event_dict) from a chrome dump.

    The writer emits ``[`` then one object per line, each ending in a
    comma, and never closes the array — the format about:tracing
    documents as acceptable.  Track names come from ``thread_name``
    metadata records; timestamps are in microseconds.
    """
    names = {}  # tid -> track name
    raw = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if line in ("", "[", "]"):
            continue
        try:
            ev = json.loads(line.rstrip(","))
        except json.JSONDecodeError as e:
            fail(errors, f"line {lineno}: not valid JSON: {e}")
            continue
        if ev.get("ph") == "M":
            if ev.get("name") == "thread_name":
                names[ev.get("tid")] = ev.get("args", {}).get("name", "")
            continue
        for field in ("tid", "ts", "ph", "name"):
            if field not in ev:
                fail(errors, f"line {lineno}: event missing {field!r}")
                break
        else:
            raw.append((lineno, ev))
    # Map the chrome shape back onto the JSONL one.
    chrome_type = {
        "send": "send",
        "send_failed": "send_failed",
        "retry": "retry",
        "rank_crash": "rank_crash",
        "rank_join": "rank_join",
        "epoch_bump": "epoch_bump",
        "recv": "recv",
    }
    events = []
    for lineno, ev in raw:
        name = names.get(ev["tid"], f"tid{ev['tid']}")
        t_ns = ev["ts"] * 1000.0
        args = dict(ev.get("args", {}))
        cat = ev.get("cat", "")
        if cat == "coll":
            kind = "coll_begin" if ev["ph"] == "B" else "coll_end"
            args.setdefault("name", ev["name"])
            args.setdefault("comm", 0)
            args.setdefault("id", 0)
        elif cat == "session":
            kind = "session"
            args["action"] = ev["name"].removeprefix("session_")
        elif cat == "window":
            kind = "window"
        elif cat == "des":
            kind = "des"
            args["op"] = ev["name"].removeprefix("des_")
        elif ev["name"] in chrome_type:
            kind = chrome_type[ev["name"]]
        else:
            fail(errors, f"line {lineno}: unknown chrome event {ev['name']!r}")
            continue
        missing = EVENT_FIELDS[kind] - args.keys()
        if missing:
            fail(errors, f"line {lineno}: {kind} event missing {sorted(missing)}")
            continue
        events.append((name, ev["tid"], None, t_ns, kind, args))
    return events


def check(events, errors):
    # Sequence numbers: strictly increasing per track instance (JSONL only).
    last_seq = {}
    for name, tid, seq, _, _, _ in events:
        if seq is None:
            continue
        if tid in last_seq and seq <= last_seq[tid]:
            fail(errors, f"track {name}#{tid}: seq {seq} after {last_seq[tid]}")
        last_seq[tid] = seq

    # Timestamps: monotone per track instance — per (instance, rank) on DES
    # tracks, which serialize one evaluator's independent per-rank clocks.
    last_t = {}
    for name, tid, _, t_ns, kind, ev in events:
        key = (tid, ev["rank"]) if kind == "des" else (tid,)
        if key in last_t and t_ns < last_t[key]:
            fail(
                errors,
                f"track {name}#{'/'.join(map(str, key))}: time went backwards "
                f"({t_ns} after {last_t[key]})",
            )
        last_t[key] = t_ns

    # Receive/send pairing (aggregate multiset containment per channel).
    # Ranks talk across track instances within one universe, and universes
    # run one after another in a process, so the aggregate over name-level
    # ranks is the honest containment check either way.  A reborn
    # incarnation's track is named ``rankN.I`` — its traffic aggregates
    # under world rank N, which is how receivers record the source.
    sent = collections.Counter()
    received = collections.Counter()
    for name, _, _, _, kind, ev in events:
        base = name.removeprefix("rank").split(".")[0]
        if not name.startswith("rank") or not base.isdigit():
            continue
        me = int(base)
        if kind == "send" and ev["kind"] != "osc":
            sent[(me, ev["dst"], ev["bytes"], ev["comm"], ev["tag"])] += 1
        elif kind == "recv":
            received[(ev["src"], me, ev["bytes"], ev["comm"], ev["tag"])] += 1
    for chan, n in received.items():
        if sent[chan] < n:
            src, dst, nbytes, comm, tag = chan
            fail(
                errors,
                f"rank{dst} received {n} message(s) of {nbytes}B "
                f"(comm={comm}, tag={tag}) from rank{src}, which only sent "
                f"{sent[chan]}",
            )
    return sum(received.values())


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        text = f.read()
    errors = []
    if text.lstrip().startswith("["):
        events = parse_chrome(text, errors)
        fmt = "chrome"
    else:
        events = parse_jsonl(text, errors)
        fmt = "jsonl"
    if not events and not errors:
        fail(errors, "trace contains no events")
    paired = check(events, errors)
    if errors:
        for e in errors:
            print(f"  BAD  {e}", file=sys.stderr)
        print(f"check_trace: {len(errors)} problem(s) in {sys.argv[1]}", file=sys.stderr)
        return 1
    tracks = len({tid for _, tid, *_ in events})
    print(
        f"check_trace: {sys.argv[1]} ok ({fmt}, {len(events)} events, "
        f"{tracks} track instances, {paired} receives paired)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
