#!/usr/bin/env python3
"""CI analyzer gate: run `mim-analyze` over every built-in plan at several
shapes and validate both output formats.

For each (n, root, bytes) shape the gate runs the CLI in `--all --json`
mode and checks that every report is schema-valid, clean, and
deadlock-free; one pretty run per shape checks the human-readable path.
Negative controls: a JSON plan with a known crossed-order deadlock must
exit 1 and classify `definite_deadlock`, and a malformed plan must be
rejected — so the gate also fails if the analyzer ever goes blind.

Usage: check_analyze.py path/to/mim-analyze
"""
import json
import subprocess
import sys
import tempfile

SHAPES = [
    # (n, root, bytes) — the acceptance sizes, with off-center roots.
    (2, 0, 64),
    (5, 2, 4096),
    (48, 3, 65536),
    (192, 191, 1 << 20),
]

DEADLOCK_PLAN = {
    "name": "crossed",
    "nranks": 2,
    "ranks": [
        [{"op": "recv", "src": 1}, {"op": "send", "dst": 1, "bytes": 4}],
        [{"op": "recv", "src": 0}, {"op": "send", "dst": 0, "bytes": 4}],
    ],
}

MALFORMED_PLAN = {
    "name": "oob",
    "nranks": 2,
    "ranks": [[{"op": "send", "dst": 7, "bytes": 4}], []],
}


def run(cli, args):
    return subprocess.run(
        [cli, *args], capture_output=True, text=True, check=False
    )


def check_batch(cli, n, root, nbytes, problems):
    r = run(cli, ["--all", "--json", "--n", str(n), "--root", str(root),
                  "--bytes", str(nbytes)])
    shape = f"n={n} root={root} bytes={nbytes}"
    if r.returncode != 0:
        problems.append(f"{shape}: --all --json exited {r.returncode}:\n{r.stdout}{r.stderr}")
        return
    try:
        batch = json.loads(r.stdout)
    except json.JSONDecodeError as e:
        problems.append(f"{shape}: --all --json is not valid JSON: {e}")
        return
    if batch.get("schema") != "mim-analyze-batch-v2":
        problems.append(f"{shape}: unexpected batch schema {batch.get('schema')!r}")
        return
    reports = batch.get("reports", [])
    if len(reports) < 14:
        problems.append(f"{shape}: only {len(reports)} reports (expected >= 14 plans)")
    for rep in reports:
        plan = rep.get("plan", "?")
        if rep.get("schema") != "mim-analyze-report-v2":
            problems.append(f"{shape} {plan}: bad report schema")
        if rep.get("determinism", {}).get("kind") != "deterministic":
            problems.append(f"{shape} {plan}: determinism {rep.get('determinism')}")
        if rep.get("nranks") != n:
            problems.append(f"{shape} {plan}: nranks {rep.get('nranks')} != {n}")
        if rep.get("verdict", {}).get("kind") != "deadlock_free":
            problems.append(f"{shape} {plan}: verdict {rep.get('verdict')}")
        errors = [d for d in rep.get("diags", []) if d.get("severity") == "error"]
        if errors:
            problems.append(f"{shape} {plan}: {len(errors)} error diagnostics: {errors[:2]}")
        if not rep.get("channels") and "barrier" not in plan and "cg[" not in plan:
            problems.append(f"{shape} {plan}: no channel totals reported")

    # Pretty output path: every plan line must say deadlock_free.
    r = run(cli, ["--all", "--n", str(n), "--root", str(root), "--bytes", str(nbytes)])
    if r.returncode != 0:
        problems.append(f"{shape}: --all (pretty) exited {r.returncode}")
    lines = [l for l in r.stdout.splitlines() if l.strip()]
    bad = [l for l in lines if not (l.startswith("ok") and "deadlock_free" in l)]
    if bad:
        problems.append(f"{shape}: unexpected pretty lines: {bad[:3]}")


def check_negative_controls(cli, problems):
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(DEADLOCK_PLAN, f)
        path = f.name
    r = run(cli, ["--plan-file", path, "--json"])
    if r.returncode != 1:
        problems.append(f"deadlock control: exit {r.returncode}, expected 1")
    else:
        rep = json.loads(r.stdout)
        verdict = rep.get("verdict", {})
        if verdict.get("kind") != "definite_deadlock":
            problems.append(f"deadlock control: verdict {verdict}")
        cycle = verdict.get("cycle", [])
        if sorted(e.get("rank") for e in cycle) != [0, 1]:
            problems.append(f"deadlock control: cycle does not name both ranks: {cycle}")
        if not any(d.get("code") == "MIM-A002" for d in rep.get("diags", [])):
            problems.append("deadlock control: no MIM-A002 diagnostic")

    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(MALFORMED_PLAN, f)
        path = f.name
    r = run(cli, ["--plan-file", path, "--json"])
    if r.returncode != 1:
        problems.append(f"malformed control: exit {r.returncode}, expected 1")
    else:
        rep = json.loads(r.stdout)
        if rep.get("verdict", {}).get("kind") != "malformed":
            problems.append(f"malformed control: verdict {rep.get('verdict')}")
        if not any(d.get("code") == "MIM-A001" for d in rep.get("diags", [])):
            problems.append("malformed control: no MIM-A001 diagnostic")


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    cli = sys.argv[1]
    problems = []
    for n, root, nbytes in SHAPES:
        check_batch(cli, n, root, nbytes, problems)
    check_negative_controls(cli, problems)
    if problems:
        print("analyzer gate failed:")
        for p in problems:
            print("  " + p)
        return 1
    print(f"analyzer gate OK: {len(SHAPES)} shapes x 14 plans clean, "
          "negative controls rejected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
