#!/usr/bin/env bash
# Record a performance baseline into results/BENCH_seed.json (or the file
# named by the first argument, e.g. `record_baseline.sh BENCH_pr2.json`).
#
# Runs every in-tree microbench harness binary (the `for bench in` list
# below, from hook_overhead through universe_scale) with MIM_BENCH_JSON so
# their measurements accumulate as JSON lines, times the fig2/fig4 figure
# binaries end to end, and assembles everything into one valid JSON
# document.
#
# Quick mode is the default (a baseline should be cheap to re-record);
# set MIM_QUICK=0 for full-length sampling.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

export MIM_QUICK="${MIM_QUICK:-1}"
results_dir="${MIM_RESULTS_DIR:-results}"
out_name="${1:-BENCH_seed.json}"
mkdir -p "$results_dir/logs"

lines_file="$(mktemp)"
trap 'rm -f "$lines_file"' EXIT

cargo build --release --offline -p mim-bench --benches --bins

for bench in hook_overhead treematch coll_algorithms mailbox_matching des_evaluate trace_overhead analyze_schedule analyze_races chaos_overhead retry_storm universe_scale monitor_scale elastic_churn; do
  echo "===== microbench $bench"
  MIM_BENCH_JSON="$lines_file" cargo bench --offline -p mim-bench --bench "$bench" \
    > "$results_dir/logs/bench_$bench.log" 2>&1
done

# Wall-clock the two figure binaries the paper's overhead story leans on.
for fig in fig2_counters fig4_overhead; do
  echo "===== figure $fig"
  start_ns=$(date +%s%N)
  ./target/release/"$fig" > "$results_dir/logs/baseline_$fig.log" 2>&1
  elapsed_ns=$(( $(date +%s%N) - start_ns ))
  printf '{"harness":"%s","group":"figure_binary","label":"wall_clock","median_ns":%d,"mean_ns":%d,"min_ns":%d,"samples":1,"iters":1}\n' \
    "$fig" "$elapsed_ns" "$elapsed_ns" "$elapsed_ns" >> "$lines_file"
done

python3 - "$lines_file" "$results_dir/$out_name" <<'EOF'
import json
import sys

lines_path, out_path = sys.argv[1], sys.argv[2]
entries = [json.loads(line) for line in open(lines_path) if line.strip()]
doc = {
    "schema": "mim-bench-baseline-v1",
    "quick": __import__("os").environ.get("MIM_QUICK", "1") not in ("", "0"),
    "entries": entries,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print("wrote " + out_path + " (" + str(len(entries)) + " measurements)")
EOF
