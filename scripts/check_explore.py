#!/usr/bin/env python3
"""CI exploration gate: `mim-explore` must witness the known-racy plan,
replay that witness byte-identically across independent runs, clear the
schedule-insensitive plan, and reject tampered witnesses.

Checks:
  1. `wildcard_race` exits 1 and writes a schema-valid witness whose bytes
     are identical across two independent explorations (same seed).
  2. `--replay` of the witness exits 0, twice, with identical stdout.
  3. `wildcard_clean` exits 0 after exhaustive exploration.
  4. A tampered witness (one trace byte flipped) makes `--replay` exit 3.
  5. `--all --json` upgrades every verdict: the wildcard-free plans are
     explored_clean, `wildcard_race` is definite_deadlock with a witness.
  6. Usage errors exit 2.

Usage: check_explore.py path/to/mim-explore
"""
import json
import subprocess
import sys
import tempfile
import os

def run(cli, args):
    return subprocess.run([cli, *args], capture_output=True, text=True, check=False)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    cli = sys.argv[1]
    problems = []

    with tempfile.TemporaryDirectory() as tmp:
        w1 = os.path.join(tmp, "w1.json")
        w2 = os.path.join(tmp, "w2.json")

        # 1. The racy plan yields a witness, deterministically.
        for path in (w1, w2):
            r = run(cli, ["wildcard_race", "--n", "4", "--seed", "11", "--witness", path])
            if r.returncode != 1:
                problems.append(
                    f"wildcard_race exited {r.returncode}, want 1:\n{r.stdout}{r.stderr}")
        try:
            doc = json.load(open(w1))
            if doc.get("schema") != "mim-explore-witness-v1":
                problems.append(f"witness schema is {doc.get('schema')!r}")
            for field in ("plan", "decisions", "stuck", "trace", "flight"):
                if not doc.get(field):
                    problems.append(f"witness field {field!r} is missing or empty")
        except (OSError, json.JSONDecodeError) as e:
            problems.append(f"witness is not valid JSON: {e}")
            doc = {}
        if os.path.exists(w1) and os.path.exists(w2):
            if open(w1, "rb").read() != open(w2, "rb").read():
                problems.append("two explorations of the same seed wrote different witnesses")

        # 2. Replay reproduces the stuck state, byte-for-byte, twice.
        outs = []
        for _ in range(2):
            r = run(cli, ["--replay", w1])
            if r.returncode != 0:
                problems.append(f"--replay exited {r.returncode}:\n{r.stdout}{r.stderr}")
            outs.append(r.stdout)
        if outs[0] != outs[1]:
            problems.append("two replays of one witness printed different output")
        if "byte-for-byte" not in outs[0]:
            problems.append(f"replay output missing confirmation: {outs[0]!r}")

        # 3. The schedule-insensitive plan explores clean.
        r = run(cli, ["wildcard_clean", "--n", "4", "--schedules", "4096"])
        if r.returncode != 0:
            problems.append(
                f"wildcard_clean exited {r.returncode}, want 0:\n{r.stdout}{r.stderr}")
        elif "exhaustive" not in r.stdout:
            problems.append(f"wildcard_clean exploration was not exhaustive: {r.stdout!r}")

        # 4. A tampered witness must not replay.
        if doc.get("trace"):
            doc["trace"][-1] = doc["trace"][-1] + "x"
            bad = os.path.join(tmp, "bad.json")
            with open(bad, "w") as f:
                json.dump(doc, f)
            r = run(cli, ["--replay", bad])
            if r.returncode != 3:
                problems.append(
                    f"tampered witness replay exited {r.returncode}, want 3:\n{r.stderr}")

    # 5. --all --json: every plan gets a concrete verdict.
    r = run(cli, ["--all", "--json", "--n", "5", "--schedules", "128", "--random", "4"])
    if r.returncode != 1:
        problems.append(f"--all exited {r.returncode}, want 1 (wildcard_race wedges)")
    reports = {}
    for line in r.stdout.splitlines():
        try:
            rep = json.loads(line)
        except json.JSONDecodeError as e:
            problems.append(f"--all --json line is not JSON: {e}: {line!r}")
            continue
        if rep.get("schema") != "mim-explore-report-v2":
            problems.append(f"report schema is {rep.get('schema')!r}")
        reports[rep.get("plan")] = rep
    race = next((v for k, v in reports.items() if "wildcard_race" in str(k)), None)
    if race is None or race.get("outcome") != "definite_deadlock":
        problems.append(f"wildcard_race not upgraded to definite_deadlock: {race}")
    elif not race.get("witness", {}).get("decisions"):
        problems.append("wildcard_race report carries no witness decision log")
    clean = [v for v in reports.values() if v.get("outcome") == "explored_clean"]
    if len(clean) < 15:  # 14 built-ins + wildcard_clean
        problems.append(f"expected >= 15 explored_clean reports, got {len(clean)}")

    # 6. Usage errors exit 2.
    r = run(cli, ["--no-such-flag"])
    if r.returncode != 2:
        problems.append(f"unknown flag exited {r.returncode}, want 2")

    if problems:
        print("check_explore: FAIL")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("check_explore: ok (witness found, replayed byte-identically, "
          "clean plan cleared, tamper detected)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
