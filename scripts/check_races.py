#!/usr/bin/env python3
"""CI determinism gate: the static happens-before race pass must classify
every plan, flag the known-racy plan with concrete racing sends, prove the
schedule-insensitive plan deterministic, and *pay for itself* — the
explorer consuming the independence map must run strictly fewer schedules
than the unpruned search while producing identical verdicts.

Checks:
  1. `mim-analyze --all --json` exits 0 with a v2 batch: all 14 built-ins
     are `deterministic` and carry an `independence` object.
  2. `mim-analyze wildcard_race --n 4 --json` exits 1, classifies
     `sched_sensitive`, names MIM-A011, and marks >= 1 racy site.
  3. `mim-analyze wildcard_clean --n 4 --json` exits 1 (the deadlock
     lattice still says potential under wildcards) yet classifies
     `deterministic` with >= 1 benign site — the two axes are orthogonal.
  4. The pretty `--races` path prints the per-site breakdown.
  5. `mim-explore --all --json` (v2 reports): every plan's pruned
     schedule count is <= its unpruned count, the suite total is
     *strictly* smaller, `wildcard_clean` is decided by exactly one
     schedule, and `wildcard_race` still yields a deadlock witness.

Usage: check_races.py path/to/mim-analyze path/to/mim-explore
"""
import json
import subprocess
import sys


def run(cli, args):
    return subprocess.run([cli, *args], capture_output=True, text=True, check=False)


def check_batch(analyze, problems):
    r = run(analyze, ["--all", "--json", "--n", "8"])
    if r.returncode != 0:
        problems.append(f"--all --json exited {r.returncode}:\n{r.stdout}{r.stderr}")
        return
    try:
        batch = json.loads(r.stdout)
    except json.JSONDecodeError as e:
        problems.append(f"--all --json is not valid JSON: {e}")
        return
    if batch.get("schema") != "mim-analyze-batch-v2":
        problems.append(f"batch schema is {batch.get('schema')!r}, want v2")
    reports = batch.get("reports", [])
    if len(reports) < 14:
        problems.append(f"only {len(reports)} reports (expected >= 14 plans)")
    for rep in reports:
        plan = rep.get("plan", "?")
        det = rep.get("determinism", {})
        if det.get("kind") != "deterministic":
            problems.append(f"{plan}: determinism {det} (built-ins are wildcard-free)")
        ind = rep.get("independence")
        if not isinstance(ind, dict) or "hb_edges" not in ind:
            problems.append(f"{plan}: missing independence object: {ind}")
        elif ind.get("wildcard_sites") != 0:
            problems.append(f"{plan}: wildcard sites in a wildcard-free plan: {ind}")


def check_racy_plan(analyze, problems):
    r = run(analyze, ["wildcard_race", "--n", "4", "--json"])
    if r.returncode != 1:
        problems.append(f"wildcard_race exited {r.returncode}, want 1")
        return
    rep = json.loads(r.stdout)
    det = rep.get("determinism", {})
    if det.get("kind") != "sched_sensitive":
        problems.append(f"wildcard_race: determinism {det}, want sched_sensitive")
    if "MIM-A011" not in det.get("codes", []):
        problems.append(f"wildcard_race: MIM-A011 missing from {det.get('codes')}")
    a011 = [d for d in rep.get("diags", []) if d.get("code") == "MIM-A011"]
    if not a011 or "rank" not in a011[0].get("message", ""):
        problems.append(f"wildcard_race: A011 names no concrete racing sends: {a011}")
    if rep.get("independence", {}).get("racy", 0) < 1:
        problems.append(f"wildcard_race: no racy sites: {rep.get('independence')}")


def check_clean_plan(analyze, problems):
    r = run(analyze, ["wildcard_clean", "--n", "4", "--json"])
    if r.returncode != 1:
        problems.append(f"wildcard_clean exited {r.returncode}, want 1 (lattice axis)")
        return
    rep = json.loads(r.stdout)
    det = rep.get("determinism", {})
    if det.get("kind") != "deterministic":
        problems.append(f"wildcard_clean: determinism {det}, want deterministic")
    ind = rep.get("independence", {})
    if ind.get("benign", 0) < 1 or ind.get("racy", 1) != 0:
        problems.append(f"wildcard_clean: sites not all benign: {ind}")


def check_pretty(analyze, problems):
    r = run(analyze, ["wildcard_race", "--n", "4", "--races"])
    if r.returncode != 1:
        problems.append(f"--races pretty exited {r.returncode}, want 1")
    for needle in ("determinism: schedule-sensitive", "independence:", "racy"):
        if needle not in r.stdout:
            problems.append(f"--races pretty output missing {needle!r}: {r.stdout!r}")


def check_pruning(explore, problems):
    r = run(explore, ["--all", "--json", "--n", "5", "--schedules", "256", "--random", "4"])
    if r.returncode != 1:
        problems.append(f"explore --all exited {r.returncode}, want 1 (race wedges)")
    pruned_total = unpruned_total = 0
    reports = {}
    for line in r.stdout.splitlines():
        try:
            rep = json.loads(line)
        except json.JSONDecodeError as e:
            problems.append(f"explore --all line is not JSON: {e}: {line!r}")
            continue
        if rep.get("schema") != "mim-explore-report-v2":
            problems.append(f"explore report schema is {rep.get('schema')!r}, want v2")
        plan = rep.get("plan", "?")
        reports[plan] = rep
        s, u = rep.get("schedules", 0), rep.get("schedules_unpruned", 0)
        if s > u:
            problems.append(f"{plan}: pruned {s} schedules > unpruned {u}")
        pruned_total += s
        unpruned_total += u
    if pruned_total >= unpruned_total:
        problems.append(
            f"pruning is not load-bearing: {pruned_total} pruned vs "
            f"{unpruned_total} unpruned schedules across the suite"
        )
    clean = reports.get("wildcard_clean", {})
    if clean.get("schedules") != 1:
        problems.append(f"wildcard_clean not decided in one schedule: {clean}")
    if clean.get("determinism") != "deterministic":
        problems.append(f"wildcard_clean determinism: {clean.get('determinism')}")
    race = reports.get("wildcard_race", {})
    if race.get("outcome") != "definite_deadlock" or not race.get("witness"):
        problems.append(f"wildcard_race lost its witness under pruning: {race}")
    if race.get("determinism") != "sched_sensitive":
        problems.append(f"wildcard_race determinism: {race.get('determinism')}")
    return pruned_total, unpruned_total


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    analyze, explore = sys.argv[1], sys.argv[2]
    problems = []
    check_batch(analyze, problems)
    check_racy_plan(analyze, problems)
    check_clean_plan(analyze, problems)
    check_pretty(analyze, problems)
    totals = check_pruning(explore, problems)
    if problems:
        print("determinism gate failed:")
        for p in problems:
            print("  " + p)
        return 1
    print(
        f"determinism gate OK: 14 built-ins deterministic, wildcard_race "
        f"flagged and witnessed, wildcard_clean proven benign, pruning "
        f"{totals[0]} vs {totals[1]} unpruned schedules"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
