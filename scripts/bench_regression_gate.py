#!/usr/bin/env python3
"""Fail when a microbench median regresses against the recorded baseline.

Usage:
    bench_regression_gate.py BASELINE.json CURRENT.jsonl [--max-ratio R]
                             [--harness NAME ...]

BASELINE.json is a ``mim-bench-baseline-v1`` document (see
scripts/record_baseline.sh); CURRENT.jsonl is the JSON-lines file a bench
run appends via MIM_BENCH_JSON.  Entries are matched on
(harness, group, label); current entries with no baseline counterpart are
reported but do not fail the gate (a new case has no baseline yet).

The default threshold is deliberately tolerant (2x): shared CI runners are
noisy, and the gate exists to catch order-of-magnitude regressions in the
matching / DES hot paths, not few-percent drift.
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-ratio", type=float, default=2.0)
    ap.add_argument(
        "--harness",
        action="append",
        default=[],
        help="restrict the comparison to these harness names (default: all)",
    )
    args = ap.parse_args()

    with open(args.baseline) as f:
        doc = json.load(f)
    baseline = {
        (e["harness"], e["group"], e["label"]): e["median_ns"]
        for e in doc["entries"]
    }
    with open(args.current) as f:
        current = [json.loads(line) for line in f if line.strip()]
    if args.harness:
        current = [e for e in current if e["harness"] in args.harness]
    if not current:
        print("bench gate: no current entries to compare", file=sys.stderr)
        return 2

    failures = []
    for e in current:
        key = (e["harness"], e["group"], e["label"])
        name = "/".join(key)
        base = baseline.get(key)
        if base is None:
            print(f"  NEW      {name}: {e['median_ns']:.1f} ns (no baseline)")
            continue
        ratio = e["median_ns"] / base if base > 0 else float("inf")
        verdict = "REGRESSED" if ratio > args.max_ratio else "ok"
        print(f"  {verdict:<8} {name}: {e['median_ns']:.1f} ns vs baseline "
              f"{base:.1f} ns ({ratio:.2f}x)")
        if ratio > args.max_ratio:
            failures.append((name, ratio))

    if failures:
        print(
            f"bench gate: {len(failures)} case(s) regressed more than "
            f"{args.max_ratio}x: "
            + ", ".join(f"{n} ({r:.2f}x)" for n, r in failures),
            file=sys.stderr,
        )
        return 1
    print(f"bench gate: {len(current)} case(s) within {args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
