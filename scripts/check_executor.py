#!/usr/bin/env python3
"""CI executor gate: thread-per-rank and M:N task engines must agree.

Runs the ``quickstart`` and ``chaos_stencil`` examples once with
``MIM_EXECUTOR=threads`` and once with ``MIM_EXECUTOR=tasks`` (fixed
``MIM_CHAOS_SEED``, ``MIM_TRACE`` pointed at a fresh JSONL file each run)
and requires, per example:

1. both runs exit 0;
2. stdout is byte-identical across the two engines — the simulated
   application cannot tell which engine ran it;
3. the two trace dumps are identical after the same normalization
   ``check_chaos.py`` applies (sort lines; zero ``tid`` and ``uq``) —
   every *virtual-time* field (timestamps, retries, backoffs, payload
   sizes, per-track sequence numbers) is compared exactly, because the
   discrete-event clock must not know how ranks are scheduled.

``chaos_stencil`` is the adversarial half of the gate: under the task
engine its retry timers, duplicate deliveries and scheduled crash all fire
against *parked tasks*, so byte-identical replay here pins the whole
park/unpark protocol, not just the happy path.

Usage: check_executor.py path/to/quickstart path/to/chaos_stencil [seed]
"""
import os
import subprocess
import sys
import tempfile

from check_chaos import normalize

SEED = "42"
ENGINES = ("threads", "tasks")


def run_once(example, engine, seed, trace_path, problems):
    env = dict(os.environ, MIM_EXECUTOR=engine, MIM_CHAOS_SEED=seed, MIM_TRACE=trace_path)
    env.pop("MIM_CHAOS_PLAN", None)  # gate the built-in plan, like check_chaos
    r = subprocess.run([example], capture_output=True, text=True, env=env, check=False)
    name = os.path.basename(example)
    if r.returncode != 0:
        problems.append(f"{name} ({engine}, seed {seed}) exited {r.returncode}:\n{r.stdout}{r.stderr}")
    if "using threads" in r.stderr and engine == "tasks":
        problems.append(f"{name}: task engine silently fell back to threads:\n{r.stderr}")
    return r.stdout


def check_example(example, seed, tmp, problems):
    name = os.path.basename(example)
    outs, norms = {}, {}
    for engine in ENGINES:
        trace = os.path.join(tmp, f"{name}.{engine}.jsonl")
        outs[engine] = run_once(example, engine, seed, trace, problems)
        norms[engine] = normalize(trace) if os.path.exists(trace) else None
    if outs["threads"] != outs["tasks"]:
        problems.append(f"{name}: stdout diverged between executors (seed {seed})")
    if norms["threads"] is None or norms["tasks"] is None:
        problems.append(f"{name}: an engine produced no trace file")
    elif norms["threads"] != norms["tasks"]:
        diff = sum(a != b for a, b in zip(norms["threads"], norms["tasks"]))
        diff += abs(len(norms["threads"]) - len(norms["tasks"]))
        problems.append(
            f"{name}: normalized traces diverged between executors "
            f"({len(norms['threads'])} vs {len(norms['tasks'])} lines, {diff} differing)"
        )
    return len(norms["threads"] or [])


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    quickstart, chaos_stencil = sys.argv[1], sys.argv[2]
    seed = sys.argv[3] if len(sys.argv) == 4 else SEED
    problems = []
    with tempfile.TemporaryDirectory() as tmp:
        events = [check_example(ex, seed, tmp, problems) for ex in (quickstart, chaos_stencil)]
    if problems:
        for p in problems:
            print(f"  BAD  {p}", file=sys.stderr)
        print(f"check_executor: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"check_executor: ok (threads and tasks engines byte-identical on "
        f"quickstart [{events[0]} events] and chaos_stencil [{events[1]} events], seed {seed})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
