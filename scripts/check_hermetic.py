#!/usr/bin/env python3
"""Hermeticity guard: fail if cargo metadata reports any non-path dependency.

The workspace promises a zero-external-dependency build (`cargo build
--offline` from a clean checkout with an empty registry cache).  That only
holds while every package in the graph is an in-tree path dependency; this
script is the tripwire CI runs on every push.
"""
import json
import subprocess
import sys


def main() -> int:
    try:
        meta = json.loads(
            subprocess.check_output(
                ["cargo", "metadata", "--format-version", "1", "--offline"]
            )
        )
    except subprocess.CalledProcessError as e:
        # Offline resolution already failed — a registry dependency snuck in.
        print("cargo metadata --offline failed (exit " + str(e.returncode) + "):")
        print("the dependency graph is no longer resolvable offline.")
        return 1
    bad = []
    for pkg in meta["packages"]:
        # A package with a source came from a registry / git, not the tree.
        if pkg["source"] is not None:
            bad.append("package " + pkg["name"] + " from " + str(pkg["source"]))
        for dep in pkg["dependencies"]:
            if dep["source"] is not None or dep.get("path") is None:
                bad.append(
                    pkg["name"] + " -> " + dep["name"] + " (" + str(dep["source"]) + ")"
                )
    if bad:
        print("non-path dependencies detected:")
        for b in bad:
            print("  " + b)
        return 1
    names = sorted(p["name"] for p in meta["packages"])
    print("hermetic: " + str(len(names)) + " path-only packages: " + ", ".join(names))
    return 0


if __name__ == "__main__":
    sys.exit(main())
