//! Property-based tests for the monitoring library's data model.

use std::sync::Arc;

use mim_core::{Flags, MonError, Monitoring, Msid};
use mim_mpisim::{MsgKind, SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};
use mim_util::prop::Gen;
use mim_util::props;

fn arb_flags(g: &mut Gen) -> Flags {
    *g.choose(&[
        Flags::P2P_ONLY,
        Flags::COLL_ONLY,
        Flags::OSC_ONLY,
        Flags::P2P_ONLY | Flags::COLL_ONLY,
        Flags::P2P_ONLY | Flags::OSC_ONLY,
        Flags::COLL_ONLY | Flags::OSC_ONLY,
        Flags::ALL_COMM,
    ])
}

props! {
    fn flags_union_behaviour(g) {
        let (f, gl) = (arb_flags(g), arb_flags(g));
        let u = f | gl;
        assert!(u.contains(f) && u.contains(gl));
        for kind in [MsgKind::P2pUser, MsgKind::Collective, MsgKind::OneSided] {
            assert_eq!(
                u.includes_kind(kind),
                f.includes_kind(kind) || gl.includes_kind(kind)
            );
        }
    }

    fn msid_never_collides_with_all(g) {
        // Internal representation detail surfaced through equality with ALL.
        let _ = (g.gen_range(0u32..1000), g.any_u32());
        assert!(Msid::ALL == Msid::ALL);
    }
}

props! {
    /// Random message streams: the session's row must equal a naive model
    /// of "bytes/messages I sent to each member while active".
    #[allow(clippy::needless_range_loop)] // indices address several arrays at once
    fn session_rows_match_naive_model(g, cases = 10) {
        let msgs = g.vec(1..25, |g| (g.gen_range(1usize..4), g.gen_range(1u64..5000), g.any_bool()));
        let n = 4;
        let msgs = Arc::new(msgs);
        let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(n)));
        let msgs2 = Arc::clone(&msgs);
        let rows = u.launch(move |rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            let id = mon.start(rank, &world).unwrap();
            let mut expect = vec![(0u64, 0u64); n]; // (count, bytes) I sent
            let mut active = true;
            if world.rank() == 0 {
                for &(dst, bytes, toggle) in msgs2.iter() {
                    if toggle {
                        if active {
                            mon.suspend(id).unwrap();
                        } else {
                            mon.resume(id).unwrap();
                        }
                        active = !active;
                    }
                    rank.send_synthetic(&world, dst, 7, bytes);
                    if active {
                        expect[dst].0 += 1;
                        expect[dst].1 += bytes;
                    }
                }
                // Signal each receiver it is done.
                for dst in 1..n {
                    rank.send_synthetic(&world, dst, 8, 0);
                }
                if active {
                    expect[1].0 += 1; // dst 1 also gets its end marker counted
                    for d in 2..n {
                        expect[d].0 += 1;
                    }
                }
            } else {
                loop {
                    let st = rank.recv_synthetic(&world, SrcSel::Rank(0), TagSel::Any);
                    if st.tag == 8 {
                        break;
                    }
                }
            }
            if active {
                mon.suspend(id).unwrap();
            } else {
                mon.resume(id).unwrap();
                mon.suspend(id).unwrap();
            }
            let row = mon.get_data(id, Flags::P2P_ONLY).unwrap();
            mon.free(id).unwrap();
            mon.finalize(rank).unwrap();
            (row, expect)
        });
        let (row, expect) = &rows[0];
        for d in 0..n {
            assert_eq!(row.counts[d], expect[d].0, "count to {}", d);
            assert_eq!(row.sizes[d], expect[d].1, "bytes to {}", d);
        }
    }

    /// Reset at arbitrary points always leaves exactly the post-reset
    /// traffic in the session.
    fn reset_splits_the_stream(g, cases = 10) {
        let before = g.gen_range(0usize..10);
        let after = g.gen_range(0usize..10);
        let u = Universe::new(UniverseConfig::new(Machine::cluster(1, 1, 2), Placement::packed(2)));
        u.launch(move |rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            let id = mon.start(rank, &world).unwrap();
            let burst = |k: usize| {
                if world.rank() == 0 {
                    for _ in 0..k {
                        rank.send_synthetic(&world, 1, 0, 10);
                    }
                } else {
                    for _ in 0..k {
                        rank.recv_synthetic(&world, SrcSel::Rank(0), TagSel::Any);
                    }
                }
                rank.barrier(&world);
            };
            burst(before);
            mon.suspend(id).unwrap();
            mon.reset(id).unwrap();
            mon.resume(id).unwrap();
            burst(after);
            mon.suspend(id).unwrap();
            let row = mon.get_data(id, Flags::P2P_ONLY).unwrap();
            if world.rank() == 0 {
                assert_eq!(row.counts[1], after as u64);
                assert_eq!(row.sizes[1], 10 * after as u64);
            }
            mon.free(id).unwrap();
            mon.finalize(rank).unwrap();
        });
    }

    /// Lifecycle fuzz: random op sequences never corrupt the table — every
    /// call returns either Ok or a documented error, and a final cleanup
    /// always succeeds.
    fn lifecycle_fuzz_is_total(g, cases = 10) {
        let ops = g.vec(1..40, |g| g.gen_range(0u8..5));
        let u = Universe::new(UniverseConfig::new(Machine::cluster(1, 1, 1), Placement::packed(1)));
        u.launch(move |rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            let mut sessions: Vec<Msid> = Vec::new();
            for &op in &ops {
                match op {
                    0 => {
                        if let Ok(id) = mon.start(rank, &world) {
                            sessions.push(id);
                        }
                    }
                    1 => {
                        if let Some(&id) = sessions.first() {
                            let r = mon.suspend(id);
                            assert!(matches!(r, Ok(()) | Err(MonError::MultipleCall)));
                        }
                    }
                    2 => {
                        if let Some(&id) = sessions.first() {
                            let r = mon.resume(id);
                            assert!(matches!(r, Ok(()) | Err(MonError::MultipleCall)));
                        }
                    }
                    3 => {
                        if let Some(&id) = sessions.first() {
                            let r = mon.reset(id);
                            assert!(matches!(r, Ok(()) | Err(MonError::SessionNotSuspended)));
                        }
                    }
                    _ => {
                        if let Some(&id) = sessions.first() {
                            match mon.free(id) {
                                Ok(()) => {
                                    sessions.remove(0);
                                }
                                Err(MonError::SessionNotSuspended) => {}
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                    }
                }
            }
            mon.suspend(Msid::ALL).unwrap();
            mon.free(Msid::ALL).unwrap();
            mon.finalize(rank).unwrap();
        });
    }
}
