//! Monitoring sessions across the M:N executor: the introspection library's
//! gathered matrices must be bit-identical whether ranks run as OS threads
//! or as parked/resumed fiber tasks — sessions opened before a park must be
//! found intact after the task resumes (possibly on a different worker),
//! and the paper's C-shaped API must keep its "per-process" environment
//! per *rank task*, not per worker thread.

use mim_core::capi::*;
use mim_core::{Flags, GatheredData, Monitoring};
use mim_mpisim::{ExecutorKind, Rank, SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

fn universe(kind: ExecutorKind, n: usize) -> Universe {
    let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(n));
    cfg.executor = kind;
    Universe::new(cfg)
}

/// A monitored workload whose every receive parks the task under the M:N
/// engine: sessions span collectives, p2p, suspends and resumes.
fn monitored(rank: &Rank) -> GatheredData {
    let world = rank.comm_world();
    let n = world.size();
    let me = world.rank();
    let mon = Monitoring::init(rank).expect("init");
    let msid = mon.start(rank, &world).expect("start");

    // P2p ring + two collectives inside the session.
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    rank.send(&world, right, 1, &[me as i64]);
    let _ = rank.recv::<i64>(&world, SrcSel::Rank(left), TagSel::Is(1));
    let _ = rank.allreduce(&world, &[1i64], |a, b| a + b);
    rank.barrier(&world);

    // Suspend across more (unmonitored) traffic, then resume and add one
    // more exchange — the session's identity must survive the parks.
    mon.suspend(msid).expect("suspend");
    rank.send_synthetic(&world, right, 2, 512);
    rank.recv_synthetic(&world, SrcSel::Rank(left), TagSel::Is(2));
    mon.resume(msid).expect("resume");
    rank.send(&world, right, 3, &[0i64; 4]);
    let _ = rank.recv::<i64>(&world, SrcSel::Rank(left), TagSel::Is(3));

    mon.suspend(msid).expect("suspend final");
    let gathered = mon.allgather_data(rank, msid, Flags::ALL_COMM).expect("gather");
    mon.free(msid).expect("free");
    mon.finalize(rank).expect("finalize");
    gathered
}

#[test]
fn gathered_matrices_are_identical_across_engines() {
    const N: usize = 6;
    let threads = universe(ExecutorKind::Threads, N).launch(monitored);
    let tasks = universe(ExecutorKind::Tasks, N).launch(monitored);
    // Every rank gathered the same matrices, and both engines agree.
    for (t, k) in threads.iter().zip(&tasks) {
        assert_eq!(t, &threads[0], "allgather disagreed within an engine");
        assert_eq!(t, k, "Threads and Tasks gathered matrices diverged");
    }
}

/// The paper's Listing-2 C API under the M:N executor: several rank tasks
/// share each worker thread, so the "per-process" environment must follow
/// the *task* — `MPI_M_init` on rank A must not collide with rank B on the
/// same worker, and a session must survive parks between every call.
#[test]
fn capi_environment_is_per_rank_task_not_per_worker_thread() {
    let u = universe(ExecutorKind::Tasks, 8);
    let totals = u.launch(|rank| {
        let world = rank.comm_world();
        assert_eq!(MPI_M_init(rank), MPI_SUCCESS);
        // A second init from the same rank must fail even though another
        // rank's init on this worker thread happened in between parks.
        assert_eq!(MPI_M_init(rank), MPI_M_MULTIPLE_CALL);
        let mut id = MPI_M_MSID_NULL;
        assert_eq!(MPI_M_start(rank, &world, &mut id), MPI_SUCCESS);
        rank.barrier(&world);
        let _ = rank.allreduce(&world, &[rank.world_rank() as i64], |a, b| a + b);
        assert_eq!(MPI_M_suspend(id), MPI_SUCCESS);
        let (mut provided, mut array_size) = (0i32, 0i32);
        assert_eq!(MPI_M_get_info(id, &mut provided, &mut array_size), MPI_SUCCESS);
        let len = array_size as usize;
        let (mut counts, mut sizes) = (vec![0u64; len], vec![0u64; len]);
        assert_eq!(MPI_M_get_data(id, &mut counts, &mut sizes, MPI_M_ALL_COMM), MPI_SUCCESS);
        assert_eq!(MPI_M_free(id), MPI_SUCCESS);
        assert_eq!(MPI_M_finalize(rank), MPI_SUCCESS);
        // After finalize, the slot is empty again for THIS task only.
        assert_eq!(MPI_M_suspend(MPI_M_ALL_MSID), MPI_M_MISSING_INIT);
        counts.iter().sum::<u64>()
    });
    // The dissemination barrier and recursive-doubling allreduce send the
    // same number of messages from every rank.
    for t in &totals {
        assert_eq!(t, &totals[0]);
    }
    assert!(totals[0] > 0);
}
