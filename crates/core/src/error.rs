//! Error codes, mirroring the paper's `MPI_M_*` constants one for one.

/// Monitoring library errors (paper Sec 4.3, "All these functions return an
/// error value").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonError {
    /// `MPI_M_INTERNAL_FAIL`: an internal error occurred (allocation or a
    /// system call failed) — carries the failing operation.
    InternalFail(String),
    /// `MPI_M_MPIT_FAIL`: an MPI or MPI_T level operation failed.
    MpitFail(String),
    /// `MPI_M_MISSING_INIT`: no call to `init` has been done.
    MissingInit,
    /// `MPI_M_SESSION_STILL_ACTIVE`: at least one session has not been
    /// suspended (raised by `finalize`).
    SessionStillActive,
    /// `MPI_M_SESSION_NOT_SUSPENDED`: the operation needs a suspended
    /// session.
    SessionNotSuspended,
    /// `MPI_M_INVALID_MSID`: the given msid does not refer to a live
    /// session, or is `ALL` where a specific session is required.
    InvalidMsid,
    /// `MPI_M_SESSION_OVERFLOW`: the maximum number of sessions is reached.
    SessionOverflow,
    /// `MPI_M_MULTIPLE_CALL`: `suspend` (resp. `continue`) called again
    /// without an interleaving `continue` (resp. `suspend`).
    MultipleCall,
    /// `MPI_M_INVALID_ROOT`: the `root` parameter is out of range.
    InvalidRoot,
}

impl std::fmt::Display for MonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonError::InternalFail(what) => write!(f, "MPI_M_INTERNAL_FAIL: {what}"),
            MonError::MpitFail(what) => write!(f, "MPI_M_MPIT_FAIL: {what}"),
            MonError::MissingInit => write!(f, "MPI_M_MISSING_INIT: init was not called"),
            MonError::SessionStillActive => {
                write!(f, "MPI_M_SESSION_STILL_ACTIVE: a session has not been suspended")
            }
            MonError::SessionNotSuspended => {
                write!(f, "MPI_M_SESSION_NOT_SUSPENDED: the session is not suspended")
            }
            MonError::InvalidMsid => write!(f, "MPI_M_INVALID_MSID: unknown or freed session"),
            MonError::SessionOverflow => {
                write!(f, "MPI_M_SESSION_OVERFLOW: too many live sessions")
            }
            MonError::MultipleCall => {
                write!(f, "MPI_M_MULTIPLE_CALL: suspend/continue called twice in a row")
            }
            MonError::InvalidRoot => write!(f, "MPI_M_INVALID_ROOT: root rank out of range"),
        }
    }
}

impl std::error::Error for MonError {}

/// Library result type.
pub type Result<T> = std::result::Result<T, MonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_paper_names() {
        assert!(MonError::MissingInit.to_string().contains("MPI_M_MISSING_INIT"));
        assert!(MonError::InternalFail("open".into()).to_string().contains("open"));
        assert!(MonError::InvalidRoot.to_string().contains("INVALID_ROOT"));
    }
}
