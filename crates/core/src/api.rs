//! The public monitoring API (the paper's `MPI_M_*` functions).

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::rc::Rc;

use mim_mpisim::clock::VirtualClock;
use mim_mpisim::pml::LocalHookHandle;
use mim_mpisim::trace::{TraceData, TraceHandle};
use mim_mpisim::{Comm, PmlEvent, Rank};
use mim_topology::CommMatrix;

use crate::accum::PairAccum;
use crate::error::{MonError, Result};
use crate::flags::Flags;
use crate::session::{Msid, SessionData, SessionState, SessionTable, WindowDelta, MAX_SESSIONS};

/// Reserved tag for [`Monitoring::rootgather_partial`] rows; high bits keep
/// it clear of application tags used by the example workloads.
const PARTIAL_GATHER_TAG: u32 = 0x00C4_0000;

/// Default fan-in of the tree-structured root gather; override with the
/// `MIM_GATHER_ARITY` environment variable (minimum 2).
const DEFAULT_GATHER_ARITY: usize = 8;

/// One rank's traffic in the gather wire format: `(dst, count, bytes)`
/// triples sorted by destination, zero pairs omitted.
type SparseRow = Vec<(u64, u64, u64)>;

/// Per-session metadata returned by [`Monitoring::get_info`]
/// (the paper's `MPI_M_get_info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// Provided level of thread support; the library is thread-safe, so this
    /// reports the `MPI_THREAD_MULTIPLE` level (3), like the paper's C
    /// library running under a threaded Open MPI.
    pub provided: i32,
    /// Size of the `msg_counts` / `msg_sizes` arrays of
    /// [`Monitoring::get_data`], and of one dimension of the square matrices
    /// of the gather calls: the size of the session's communicator.
    pub array_size: usize,
}

/// This process's monitored row (what `MPI_M_get_data` copies out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRow {
    /// `counts[d]` = number of messages sent by this process to
    /// communicator rank `d`.
    pub counts: Vec<u64>,
    /// `sizes[d]` = bytes sent by this process to communicator rank `d`.
    pub sizes: Vec<u64>,
}

/// Full gathered matrices (what `MPI_M_allgather_data` /
/// `MPI_M_rootgather_data` produce).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatheredData {
    /// `counts[i][j]` = messages sent from communicator rank `i` to `j`.
    pub counts: CommMatrix,
    /// `sizes[i][j]` = bytes sent from communicator rank `i` to `j`.
    pub sizes: CommMatrix,
    /// `liveness[i]` = whether communicator rank `i` contributed its row.
    /// All-true for the full gathers; a partial gather
    /// ([`Monitoring::rootgather_partial`]) zeroes the rows of dead ranks
    /// and marks them here instead of failing the whole collection.
    pub liveness: Vec<bool>,
}

/// Per-session introspection counters returned by
/// [`Monitoring::trace_counters`]: the trace-facing complement of
/// [`Monitoring::get_info`].  Available whether or not tracing is enabled
/// (the counters live in the session table / mailbox, not the trace ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCounters {
    /// Messages recorded by the session so far (all kinds).
    pub events: u64,
    /// Bytes recorded by the session so far (all kinds).
    pub bytes: u64,
    /// Sealed epoch windows since start/reset (see
    /// [`Monitoring::advance_window`]).
    pub epoch: u64,
    /// Messages recorded in the current (unsealed) window.
    pub window_events: u64,
    /// Bytes recorded in the current (unsealed) window.
    pub window_bytes: u64,
    /// High-water mark of this rank's unexpected-message queue over the
    /// process lifetime (not reset per session: it diagnoses the process).
    pub max_unexpected_depth: usize,
}

/// One epoch window's gather result ([`Monitoring::gather_window`], from a
/// *live* session).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatheredWindow {
    /// 1-based index of the window this rank sealed (ranks stay in lockstep
    /// when every window is advanced through the same collective calls).
    pub epoch: u64,
    /// The window's traffic matrices — `Some` at the gathering root, `None`
    /// elsewhere.  `liveness` is all-true from [`Monitoring::gather_window`];
    /// [`Monitoring::gather_window_partial`] zeroes dead ranks' rows and
    /// marks them here instead.
    pub data: Option<GatheredData>,
}

/// The monitoring environment of one process (paper: the state set up by
/// `MPI_M_init` and torn down by `MPI_M_finalize`).
///
/// Created with [`Monitoring::init`], which plugs a recorder into the rank's
/// PML interposition layer; destroyed with [`Monitoring::finalize`].  All
/// methods are "thread-safe" in the paper's sense — here each rank is a
/// thread that owns its `Monitoring`, which encodes the same guarantee in
/// the type system (`Monitoring` is `!Send`).
///
/// Following the paper, every session-lifecycle and data-access function
/// must be called by **all** processes of the session's communicator
/// (`get_info` excepted); `start`, the gathers and `rootflush` really
/// communicate, the others are local but the contract keeps states aligned.
pub struct Monitoring {
    state: Rc<RefCell<SessionTable>>,
    hook: LocalHookHandle,
    world_rank: usize,
    finalized: std::cell::Cell<bool>,
    /// Dense/sparse threshold for session accumulators (see
    /// [`Monitoring::init_with_dense_limit`]).
    dense_limit: usize,
    /// The owning rank's trace track and clock, for recording session
    /// lifecycle transitions on that rank's timeline (`None` when tracing
    /// is off).  The clock is shared because suspend/resume/reset/free are
    /// local calls that do not take a `&Rank`.
    trace: Option<(TraceHandle, Rc<VirtualClock>)>,
}

impl Monitoring {
    /// Set up the monitoring environment (`MPI_M_init`): registers the
    /// recorder at the PML layer so every outgoing message is observed.
    pub fn init(rank: &Rank) -> Result<Self> {
        Self::init_with_dense_limit(rank, PairAccum::DEFAULT_DENSE_LIMIT)
    }

    /// [`Monitoring::init`] with an explicit dense/sparse threshold for the
    /// per-pair accumulators of this environment's sessions: communicators
    /// up to `dense_limit` members store dense rows (the paper's literal
    /// layout), larger ones store one hash cell per destination actually
    /// touched.  The two representations are observationally identical;
    /// benchmarks and equivalence tests force one with `0` / `usize::MAX`.
    pub fn init_with_dense_limit(rank: &Rank, dense_limit: usize) -> Result<Self> {
        let state = Rc::new(RefCell::new(SessionTable::new(MAX_SESSIONS)));
        let recorder = Rc::clone(&state);
        let hook =
            rank.add_local_hook(Rc::new(move |ev: &PmlEvent| recorder.borrow_mut().record(ev)));
        let this = Self {
            state,
            hook,
            world_rank: rank.world_rank(),
            finalized: std::cell::Cell::new(false),
            dense_limit,
            trace: rank.trace_handle().map(|t| (t, rank.clock_shared())),
        };
        this.trace_session("init", Msid::ALL);
        Ok(this)
    }

    /// Record a session lifecycle transition on the rank's trace track.
    fn trace_session(&self, action: &'static str, msid: Msid) {
        if let Some((t, clock)) = &self.trace {
            t.record(clock.now_ns(), TraceData::Session { action, msid: msid.0 });
        }
    }

    /// Tear down the environment (`MPI_M_finalize`).  Any later use of this
    /// environment fails with [`MonError::MissingInit`].
    ///
    /// # Errors
    /// [`MonError::SessionStillActive`] when a session was not suspended
    /// (the environment stays usable).  Suspended-but-unfreed sessions are
    /// freed (the paper asks the user to free them; we do not leak either
    /// way).
    pub fn finalize(&self, rank: &Rank) -> Result<()> {
        self.check_init()?;
        if self.state.borrow().any_active() {
            return Err(MonError::SessionStillActive);
        }
        if !rank.remove_local_hook(self.hook) {
            return Err(MonError::MpitFail("monitoring hook already removed".into()));
        }
        self.trace_session("finalize", Msid::ALL);
        self.finalized.set(true);
        Ok(())
    }

    fn check_init(&self) -> Result<()> {
        if self.finalized.get() {
            return Err(MonError::MissingInit);
        }
        Ok(())
    }

    /// Create and start a session on `comm` (`MPI_M_start`).  Collective:
    /// synchronizes the members so they begin watching from a common point.
    ///
    /// While active, the session records the count and size of every message
    /// between two members of `comm` — whatever communicator carries it.
    pub fn start(&self, rank: &Rank, comm: &Comm) -> Result<Msid> {
        self.check_init()?;
        rank.barrier(comm);
        let msid = self
            .state
            .borrow_mut()
            .insert(SessionData::with_dense_limit(comm.clone(), self.dense_limit))?;
        // Recorded *after* the barrier and the insert, so everything past
        // this marker on the track is traffic the session could observe —
        // the trace/monitoring cross-check property relies on that.
        self.trace_session("start", msid);
        Ok(msid)
    }

    /// Suspend an active session, making its data available
    /// (`MPI_M_suspend`).  Accepts [`Msid::ALL`].
    ///
    /// # Errors
    /// [`MonError::MultipleCall`] when the session is already suspended.
    pub fn suspend(&self, msid: Msid) -> Result<()> {
        self.check_init()?;
        self.trace_session("suspend", msid);
        self.for_each(msid, |s| match s.state {
            SessionState::Active => {
                s.state = SessionState::Suspended;
                Ok(())
            }
            SessionState::Suspended => Err(MonError::MultipleCall),
        })
    }

    /// Restart a suspended session (`MPI_M_continue` — renamed because
    /// `continue` is a Rust keyword).  Accepts [`Msid::ALL`].
    ///
    /// # Errors
    /// [`MonError::MultipleCall`] when the session is already active.
    pub fn resume(&self, msid: Msid) -> Result<()> {
        self.check_init()?;
        self.trace_session("resume", msid);
        self.for_each(msid, |s| match s.state {
            SessionState::Suspended => {
                s.state = SessionState::Active;
                Ok(())
            }
            SessionState::Active => Err(MonError::MultipleCall),
        })
    }

    /// Zero the data of a suspended session (`MPI_M_reset`).
    /// Accepts [`Msid::ALL`].
    pub fn reset(&self, msid: Msid) -> Result<()> {
        self.check_init()?;
        self.trace_session("reset", msid);
        self.for_each(msid, |s| {
            if s.state != SessionState::Suspended {
                return Err(MonError::SessionNotSuspended);
            }
            s.reset();
            Ok(())
        })
    }

    /// Free a suspended session; its data is no longer available
    /// (`MPI_M_free`).  Accepts [`Msid::ALL`].
    pub fn free(&self, msid: Msid) -> Result<()> {
        self.check_init()?;
        self.trace_session("free", msid);
        if msid == Msid::ALL {
            let live = self.state.borrow().live_msids();
            for m in live {
                // With ALL, skip still-active sessions rather than failing
                // half-way (specific ids keep the strict error).
                let suspended = self.state.borrow().get(m)?.state == SessionState::Suspended;
                if suspended {
                    self.state.borrow_mut().remove(m)?;
                }
            }
            return Ok(());
        }
        if self.state.borrow().get(msid)?.state != SessionState::Suspended {
            return Err(MonError::SessionNotSuspended);
        }
        self.state.borrow_mut().remove(msid)?;
        Ok(())
    }

    /// Session metadata (`MPI_M_get_info`) — the one call the paper allows
    /// from a single process.
    pub fn get_info(&self, msid: Msid) -> Result<SessionInfo> {
        self.check_init()?;
        let st = self.state.borrow();
        let s = st.get(msid)?;
        Ok(SessionInfo { provided: 3, array_size: s.comm.size() })
    }

    /// This process's introspection counters for a session: total recorded
    /// events and bytes, plus the rank's unexpected-queue high-water mark.
    /// Like `get_info`, callable from a single process; unlike the data
    /// accessors, allowed on an *active* session (the counters are
    /// monotone, so a racy read is still meaningful).
    pub fn trace_counters(&self, rank: &Rank, msid: Msid) -> Result<TraceCounters> {
        self.check_init()?;
        let st = self.state.borrow();
        let s = st.get(msid)?;
        Ok(TraceCounters {
            events: s.events,
            bytes: s.bytes,
            epoch: s.epoch,
            window_events: s.window_events,
            window_bytes: s.window_bytes,
            max_unexpected_depth: rank.max_unexpected_depth(),
        })
    }

    /// Seal the session's current epoch window and return its delta: the
    /// per-destination traffic recorded since the previous advance
    /// (`start`/`reset` otherwise).  **Legal on an active session** — this
    /// is the live-introspection primitive: recording continues into the
    /// next window with no suspend barrier.  Local; requires a specific
    /// msid (not [`Msid::ALL`]).
    pub fn advance_window(&self, msid: Msid) -> Result<WindowDelta> {
        self.check_init()?;
        let delta = self.state.borrow_mut().get_mut(msid)?.advance_window();
        self.trace_window(msid, &delta);
        Ok(delta)
    }

    /// Seal every member's current window and gather the deltas at `root`
    /// along the topology-ordered tree: the live (no-suspend) counterpart
    /// of [`Monitoring::rootgather_data`].  Collective over the session's
    /// communicator; every rank gets its sealed epoch back, and the root's
    /// result additionally carries the window's matrices restricted to
    /// `flags`.  The session is **muted** for the duration of the gather,
    /// so the monitoring plane's own control traffic never contaminates
    /// the next window.
    ///
    /// The window is sealed for *all* kinds — `flags` only filters what is
    /// shipped — so consecutive calls partition the session's traffic into
    /// disjoint windows whatever flags each call uses.
    pub fn gather_window(
        &self,
        rank: &Rank,
        msid: Msid,
        root: usize,
        flags: Flags,
    ) -> Result<GatheredWindow> {
        self.check_init()?;
        let (delta, comm) = {
            let mut st = self.state.borrow_mut();
            let s = st.get_mut(msid)?;
            if root >= s.comm.size() {
                return Err(MonError::InvalidRoot);
            }
            s.muted = true;
            (s.advance_window(), s.comm.clone())
        };
        self.trace_window(msid, &delta);
        let mut buf = Vec::with_capacity(delta.entries.len() * 3);
        for e in &delta.entries {
            let (mut count, mut bytes) = (0u64, 0u64);
            for k in flags.selected_indices() {
                count += e.counts[k];
                bytes += e.sizes[k];
            }
            if count != 0 || bytes != 0 {
                buf.extend([e.dst as u64, count, bytes]);
            }
        }
        // The table borrow is dropped around the collective (the hook
        // re-enters it for sessions that are not muted).
        let order = topology_order(rank, &comm, root);
        let rows = rank.gather_tree(&comm, root, gather_arity(), &order, &buf);
        if let Ok(s) = self.state.borrow_mut().get_mut(msid) {
            s.muted = false;
        }
        Ok(GatheredWindow {
            epoch: delta.epoch,
            data: rows.map(|rows| densify(&rows, comm.size())),
        })
    }

    /// Fault-tolerant variant of [`Monitoring::gather_window`] for sessions
    /// riding out membership churn: seal the window and gather it from the
    /// ranks marked alive in `alive` (indexed by communicator rank), routing
    /// the k-ary tree over the **live membership only** so no frame ever
    /// waits on a dead or departed interior rank.  Dead ranks' rows come
    /// back zeroed with `liveness[i] == false` — the window analogue of
    /// [`Monitoring::rootgather_partial`]'s contract, so a rank dying
    /// mid-epoch cannot leave phantom rows in the next window.  Collective
    /// over the live members only; dead ranks must not call it.
    ///
    /// # Errors
    /// [`MonError::InvalidRoot`] when `root` is out of range, marked dead,
    /// or `alive` is not exactly one flag per member.
    pub fn gather_window_partial(
        &self,
        rank: &Rank,
        msid: Msid,
        root: usize,
        flags: Flags,
        alive: &[bool],
    ) -> Result<GatheredWindow> {
        self.check_init()?;
        let (delta, comm) = {
            let mut st = self.state.borrow_mut();
            let s = st.get_mut(msid)?;
            let n = s.comm.size();
            if root >= n || alive.len() != n || !alive[root] {
                return Err(MonError::InvalidRoot);
            }
            s.muted = true;
            (s.advance_window(), s.comm.clone())
        };
        self.trace_window(msid, &delta);
        let mut buf = Vec::with_capacity(delta.entries.len() * 3);
        for e in &delta.entries {
            let (mut count, mut bytes) = (0u64, 0u64);
            for k in flags.selected_indices() {
                count += e.counts[k];
                bytes += e.sizes[k];
            }
            if count != 0 || bytes != 0 {
                buf.extend([e.dst as u64, count, bytes]);
            }
        }
        // Same topology order as the full gather, restricted to the
        // survivors; the root stays first because it is alive by the check
        // above.
        let order: Vec<usize> =
            topology_order(rank, &comm, root).into_iter().filter(|&r| alive[r]).collect();
        let rows = rank.gather_tree(&comm, root, gather_arity(), &order, &buf);
        if let Ok(s) = self.state.borrow_mut().get_mut(msid) {
            s.muted = false;
        }
        Ok(GatheredWindow {
            epoch: delta.epoch,
            data: rows.map(|rows| {
                let mut data = densify(&rows, comm.size());
                data.liveness = alive.to_vec();
                data
            }),
        })
    }

    /// Re-attach a session to a grown or shrunk communicator (elastic
    /// membership: after [`Rank::comm_shrink`] removed the dead or
    /// [`Rank::comm_grow`] admitted joiners).  Recorded traffic follows each
    /// surviving member to its new communicator rank — the mapping runs
    /// through world ranks — departed members' columns are dropped and
    /// joiners start at zero; totals, the open epoch window and the epoch
    /// counter all survive.  Every surviving member of the session must
    /// rebind to the *same* new communicator before the next collective
    /// data access (the call itself is local).
    ///
    /// [`Rank::comm_shrink`]: mim_mpisim::Rank::comm_shrink
    /// [`Rank::comm_grow`]: mim_mpisim::Rank::comm_grow
    pub fn rebind_session(&self, msid: Msid, new_comm: &Comm) -> Result<()> {
        self.check_init()?;
        self.state.borrow_mut().get_mut(msid)?.rebind(new_comm.clone(), self.dense_limit);
        self.trace_session("rebind", msid);
        Ok(())
    }

    /// Record a sealed window on the rank's trace track.
    fn trace_window(&self, msid: Msid, delta: &WindowDelta) {
        if let Some((t, clock)) = &self.trace {
            t.record(
                clock.now_ns(),
                TraceData::Window {
                    msid: msid.0,
                    epoch: delta.epoch,
                    events: delta.events,
                    bytes: delta.bytes,
                },
            );
        }
    }

    /// Copy out this process's row of the session's data (`MPI_M_get_data`),
    /// restricted to the kinds selected by `flags`.
    ///
    /// # Errors
    /// [`MonError::SessionNotSuspended`] while the session is active (data
    /// access requires a suspended session).
    pub fn get_data(&self, msid: Msid, flags: Flags) -> Result<SessionRow> {
        self.check_init()?;
        let st = self.state.borrow();
        let s = st.get(msid)?;
        if s.state != SessionState::Suspended {
            return Err(MonError::SessionNotSuspended);
        }
        let (counts, sizes) = s.row(flags);
        Ok(SessionRow { counts, sizes })
    }

    /// `get_data` followed by an allgather over the session's communicator
    /// (`MPI_M_allgather_data`): every member receives the full matrices.
    pub fn allgather_data(&self, rank: &Rank, msid: Msid, flags: Flags) -> Result<GatheredData> {
        self.check_init()?;
        let (row, comm) = self.row_and_comm(msid, flags)?;
        // One collective moves both rows; the session being read is
        // suspended, so it does not observe its own gather.
        let n = comm.size();
        let mut buf = row.counts;
        buf.extend_from_slice(&row.sizes);
        let gathered = rank.allgather(&comm, &buf);
        let mut counts = CommMatrix::zeros(n);
        let mut sizes = CommMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                counts.set(i, j, gathered[i * 2 * n + j]);
                sizes.set(i, j, gathered[i * 2 * n + n + j]);
            }
        }
        Ok(GatheredData { counts, sizes, liveness: vec![true; n] })
    }

    /// Like [`Monitoring::allgather_data`] but only `root` receives the data
    /// (`MPI_M_rootgather_data`); other members get `None`.
    ///
    /// Rows travel in sparse `(dst, count, bytes)` triples along a k-ary
    /// tree ordered by machine topology (see [`Rank::gather_tree`]), so
    /// rows aggregate within a node before crossing the network and the
    /// root's mailbox sees O(arity) peers instead of O(n).  The matrices
    /// are bit-identical to the former star gather's (pinned by the
    /// equivalence properties in this crate's tests).
    pub fn rootgather_data(
        &self,
        rank: &Rank,
        msid: Msid,
        root: usize,
        flags: Flags,
    ) -> Result<Option<GatheredData>> {
        self.check_init()?;
        let (sparse, comm) = self.sparse_row_and_comm(msid, flags)?;
        let n = comm.size();
        if root >= n {
            return Err(MonError::InvalidRoot);
        }
        let mut buf = Vec::with_capacity(sparse.len() * 3);
        for (dst, count, bytes) in sparse {
            buf.extend([dst, count, bytes]);
        }
        let order = topology_order(rank, &comm, root);
        let Some(rows) = rank.gather_tree(&comm, root, gather_arity(), &order, &buf) else {
            return Ok(None);
        };
        Ok(Some(densify(&rows, n)))
    }

    /// The seed's star gather — every rank sends its dense row straight to
    /// the root — kept as the test oracle for the tree path above.
    #[cfg(test)]
    pub(crate) fn rootgather_data_star(
        &self,
        rank: &Rank,
        msid: Msid,
        root: usize,
        flags: Flags,
    ) -> Result<Option<GatheredData>> {
        self.check_init()?;
        let (row, comm) = self.row_and_comm(msid, flags)?;
        if root >= comm.size() {
            return Err(MonError::InvalidRoot);
        }
        let n = comm.size();
        let mut buf = row.counts;
        buf.extend_from_slice(&row.sizes);
        let Some(gathered) = rank.gather(&comm, root, &buf) else {
            return Ok(None);
        };
        let mut counts = CommMatrix::zeros(n);
        let mut sizes = CommMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                counts.set(i, j, gathered[i * 2 * n + j]);
                sizes.set(i, j, gathered[i * 2 * n + n + j]);
            }
        }
        Ok(Some(GatheredData { counts, sizes, liveness: vec![true; n] }))
    }

    /// Fault-tolerant variant of [`Monitoring::rootgather_data`]: gather
    /// the matrices from the ranks marked alive in `alive` (indexed by
    /// communicator rank of the session's communicator) and report the
    /// dead ranks' rows as zeros with `liveness[i] == false`, instead of
    /// failing the whole collection with `MPI_M_INTERNAL_FAIL` because one
    /// peer crashed.  Collective over the *live* members only; dead ranks
    /// must not call it (they are dead).
    ///
    /// Built on point-to-point with a reserved tag rather than the gather
    /// collective, whose tree would route rows through possibly-dead
    /// interior ranks.
    ///
    /// # Errors
    /// [`MonError::InvalidRoot`] when `root` is out of range, marked dead,
    /// or `alive` is not exactly one flag per member.
    /// [`MonError::InternalFail`] when a live peer's row does not arrive
    /// within the universe's receive deadline.
    pub fn rootgather_partial(
        &self,
        rank: &Rank,
        msid: Msid,
        root: usize,
        flags: Flags,
        alive: &[bool],
    ) -> Result<Option<GatheredData>> {
        self.check_init()?;
        let (row, comm) = self.row_and_comm(msid, flags)?;
        let n = comm.size();
        if root >= n || alive.len() != n || !alive[root] {
            return Err(MonError::InvalidRoot);
        }
        let mut buf = row.counts;
        buf.extend_from_slice(&row.sizes);
        if comm.rank() != root {
            rank.send(&comm, root, PARTIAL_GATHER_TAG, &buf);
            return Ok(None);
        }
        let mut counts = CommMatrix::zeros(n);
        let mut sizes = CommMatrix::zeros(n);
        let mut fill = |r: usize, data: &[u64]| {
            for j in 0..n {
                counts.set(r, j, data[j]);
                sizes.set(r, j, data[n + j]);
            }
        };
        fill(root, &buf);
        for r in (0..n).filter(|&r| r != root && alive[r]) {
            let (data, _) = rank
                .try_recv_deadline::<u64>(&comm, r, PARTIAL_GATHER_TAG, rank.recv_deadline())
                .map_err(|e| {
                    MonError::InternalFail(format!(
                        "partial gather: live rank {r} sent no row ({e:?})"
                    ))
                })?;
            fill(r, &data);
        }
        Ok(Some(GatheredData { counts, sizes, liveness: alive.to_vec() }))
    }

    /// Each process writes its own row to `"{filename}.{rank}.prof"`
    /// (`MPI_M_flush`; `rank` is the communicator rank).
    pub fn flush(&self, msid: Msid, filename: &str, flags: Flags) -> Result<()> {
        self.check_init()?;
        let (row, comm) = self.row_and_comm(msid, flags)?;
        let path = format!("{filename}.{}.prof", comm.rank());
        let file = File::create(&path)
            .map_err(|e| MonError::InternalFail(format!("create {path}: {e}")))?;
        let mut w = BufWriter::new(file);
        write_row(&mut w, comm.rank(), &row)
            .map_err(|e| MonError::InternalFail(format!("write {path}: {e}")))?;
        Ok(())
    }

    /// `root` gathers all rows and writes two files,
    /// `"{filename}_counts.{world_rank}.prof"` and
    /// `"{filename}_sizes.{world_rank}.prof"` (`MPI_M_rootflush`; the rank in
    /// the file name is the root's rank in `MPI_COMM_WORLD`, as in the paper).
    pub fn rootflush(
        &self,
        rank: &Rank,
        msid: Msid,
        root: usize,
        filename: &str,
        flags: Flags,
    ) -> Result<()> {
        let Some(data) = self.rootgather_data(rank, msid, root, flags)? else {
            return Ok(());
        };
        let world = rank.world_rank();
        for (suffix, matrix) in [("counts", &data.counts), ("sizes", &data.sizes)] {
            let path = format!("{filename}_{suffix}.{world}.prof");
            let file = File::create(&path)
                .map_err(|e| MonError::InternalFail(format!("create {path}: {e}")))?;
            let mut w = BufWriter::new(file);
            w.write_all(matrix.to_csv().as_bytes())
                .and_then(|_| w.flush())
                .map_err(|e| MonError::InternalFail(format!("write {path}: {e}")))?;
        }
        Ok(())
    }

    /// World rank of the process owning this environment.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    // -- internals ------------------------------------------------------------

    /// Fetch a suspended session's row and communicator without holding the
    /// table borrow (the communicator calls that follow re-enter the
    /// recording hook).
    fn row_and_comm(&self, msid: Msid, flags: Flags) -> Result<(SessionRow, Comm)> {
        let st = self.state.borrow();
        let s = st.get(msid)?;
        if s.state != SessionState::Suspended {
            return Err(MonError::SessionNotSuspended);
        }
        let (counts, sizes) = s.row(flags);
        Ok((SessionRow { counts, sizes }, s.comm.clone()))
    }

    /// [`Monitoring::row_and_comm`], but in the sparse `(dst, count, bytes)`
    /// wire format the tree gather ships (zero pairs omitted).
    fn sparse_row_and_comm(&self, msid: Msid, flags: Flags) -> Result<(SparseRow, Comm)> {
        let st = self.state.borrow();
        let s = st.get(msid)?;
        if s.state != SessionState::Suspended {
            return Err(MonError::SessionNotSuspended);
        }
        Ok((s.sparse_row(flags), s.comm.clone()))
    }

    fn for_each(
        &self,
        msid: Msid,
        mut f: impl FnMut(&mut SessionData) -> Result<()>,
    ) -> Result<()> {
        let mut st = self.state.borrow_mut();
        if msid == Msid::ALL {
            for m in st.live_msids() {
                // With ALL, apply to the sessions in the right state and
                // skip the others (the strict errors only apply to a
                // specific msid).
                let _ = f(st.get_mut(m)?);
            }
            Ok(())
        } else {
            f(st.get_mut(msid)?)
        }
    }
}

/// Rank order for the gather tree: communicator ranks sorted by machine
/// position — `(node, core, rank)` — with the root moved to the front, so
/// each node's members form a contiguous run that aggregates locally before
/// one rank forwards across the network.  Deterministic, and identical on
/// every rank (machine and placement are universe-global state).
fn topology_order(rank: &Rank, comm: &Comm, root: usize) -> Vec<usize> {
    let machine = rank.machine();
    let placement = rank.placement();
    let mut order: Vec<usize> = (0..comm.size()).collect();
    order.sort_by_key(|&r| {
        let core = placement.core_of(comm.world_rank_of(r));
        (machine.node_of_core(core), core, r)
    });
    if let Some(pos) = order.iter().position(|&r| r == root) {
        order.remove(pos);
    }
    order.insert(0, root);
    order
}

/// Fan-in of the gather tree (`MIM_GATHER_ARITY`, default
/// [`DEFAULT_GATHER_ARITY`], minimum 2).
fn gather_arity() -> usize {
    std::env::var("MIM_GATHER_ARITY")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(DEFAULT_GATHER_ARITY, |a| a.max(2))
}

/// Expand per-rank sparse `(dst, count, bytes)` triples into the dense
/// matrices of [`GatheredData`].  Unmentioned cells stay zero, which is
/// exactly what the dense representation recorded for them — the reason
/// sparse and dense gathers are bit-identical.
fn densify(rows: &[Vec<u64>], n: usize) -> GatheredData {
    let mut counts = CommMatrix::zeros(n);
    let mut sizes = CommMatrix::zeros(n);
    for (i, row) in rows.iter().enumerate() {
        for t in row.chunks_exact(3) {
            counts.set(i, t[0] as usize, t[1]);
            sizes.set(i, t[0] as usize, t[2]);
        }
    }
    GatheredData { counts, sizes, liveness: vec![true; n] }
}

fn write_row(w: &mut impl Write, my_rank: usize, row: &SessionRow) -> std::io::Result<()> {
    writeln!(w, "# src dst msgs bytes")?;
    for (dst, (&c, &b)) in row.counts.iter().zip(&row.sizes).enumerate() {
        if c != 0 || b != 0 {
            writeln!(w, "{my_rank} {dst} {c} {b}")?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests;
