//! Communication-kind selection flags.

use mim_mpisim::MsgKind;

/// Bitwise combination of communication kinds, selecting which monitored
/// data a query returns (paper constants `MPI_M_P2P_ONLY`,
/// `MPI_M_COLL_ONLY`, `MPI_M_OSC_ONLY`, `MPI_M_ALL_COMM`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flags(u32);

impl Flags {
    /// Point-to-point communications only (`MPI_M_P2P_ONLY`).
    pub const P2P_ONLY: Flags = Flags(1);
    /// Collective communications only — seen *after* decomposition into
    /// point-to-point messages (`MPI_M_COLL_ONLY`).
    pub const COLL_ONLY: Flags = Flags(2);
    /// One-sided communications only (`MPI_M_OSC_ONLY`).
    pub const OSC_ONLY: Flags = Flags(4);
    /// All communications (`MPI_M_ALL_COMM`).
    pub const ALL_COMM: Flags = Flags(7);

    /// True when no kind is selected.
    pub fn is_empty(self) -> bool {
        self.0 & Self::ALL_COMM.0 == 0
    }

    /// True when `other`'s kinds are all selected.
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when this selection includes the kind of a wire message.
    pub fn includes_kind(self, kind: MsgKind) -> bool {
        self.contains(Flags::from_kind(kind))
    }

    /// The flag class of a wire-message kind.
    pub fn from_kind(kind: MsgKind) -> Flags {
        match kind {
            MsgKind::P2pUser => Flags::P2P_ONLY,
            MsgKind::Collective => Flags::COLL_ONLY,
            MsgKind::OneSided => Flags::OSC_ONLY,
        }
    }

    /// Index of a kind in per-kind storage arrays.
    pub(crate) fn kind_index(kind: MsgKind) -> usize {
        match kind {
            MsgKind::P2pUser => 0,
            MsgKind::Collective => 1,
            MsgKind::OneSided => 2,
        }
    }

    /// Per-kind indices selected by this flag combination.
    pub(crate) fn selected_indices(self) -> impl Iterator<Item = usize> {
        let bits = self.0;
        (0..3).filter(move |i| bits & (1 << i) != 0)
    }
}

impl std::ops::BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags(self.0 | rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_comm_is_union() {
        assert_eq!(Flags::P2P_ONLY | Flags::COLL_ONLY | Flags::OSC_ONLY, Flags::ALL_COMM);
    }

    #[test]
    fn kind_selection() {
        assert!(Flags::P2P_ONLY.includes_kind(MsgKind::P2pUser));
        assert!(!Flags::P2P_ONLY.includes_kind(MsgKind::Collective));
        assert!(Flags::ALL_COMM.includes_kind(MsgKind::OneSided));
        let combo = Flags::P2P_ONLY | Flags::OSC_ONLY;
        assert!(combo.includes_kind(MsgKind::OneSided));
        assert!(!combo.includes_kind(MsgKind::Collective));
    }

    #[test]
    fn selected_indices_match_kinds() {
        let v: Vec<usize> = (Flags::COLL_ONLY | Flags::OSC_ONLY).selected_indices().collect();
        assert_eq!(v, vec![1, 2]);
        let all: Vec<usize> = Flags::ALL_COMM.selected_indices().collect();
        assert_eq!(all, vec![0, 1, 2]);
    }
}
