//! Per-pair traffic accumulators: the monitoring plane's storage layer.
//!
//! The paper's library keeps one dense row per kind per session — O(n)
//! memory per rank, O(n²) across the job — which the AMG2023 / Kripke /
//! Laghos communication-pattern studies show is almost entirely zeros:
//! real applications touch O(n) pairs, not O(n²).  [`PairAccum`] is the
//! hybrid replacement: **dense** below [`PairAccum::DEFAULT_DENSE_LIMIT`]
//! members (small worlds; the paper's figures run there, and staying dense
//! keeps them bit-identical at zero risk) and **hash-sparse** above it
//! (one cell per destination actually touched).
//!
//! Counters are exact integers and addition commutes, so the two
//! representations are observationally identical — pinned by the
//! `props!` equivalence properties in `api::tests` and by the unit
//! properties below.

use std::collections::HashMap;

use crate::flags::Flags;

/// Per-destination counters for the three communication kinds
/// (p2p / coll / osc, indexed by [`Flags::kind_index`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairCell {
    /// Messages per kind.
    pub counts: [u64; 3],
    /// Bytes per kind.
    pub sizes: [u64; 3],
}

impl PairCell {
    fn is_zero(&self) -> bool {
        self.counts == [0; 3] && self.sizes == [0; 3]
    }
}

/// One sparse row entry: everything recorded toward one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairEntry {
    /// Destination communicator rank.
    pub dst: usize,
    /// Per-kind message counts.
    pub counts: [u64; 3],
    /// Per-kind byte totals.
    pub sizes: [u64; 3],
}

enum Repr {
    /// One slot per destination per kind (the paper's literal layout).
    Dense { counts: [Vec<u64>; 3], sizes: [Vec<u64>; 3] },
    /// One cell per destination actually touched.
    Sparse { cells: HashMap<usize, PairCell> },
}

/// Hybrid dense/sparse per-destination traffic accumulator for one rank of
/// one session (or one epoch window of one).
pub struct PairAccum {
    n: usize,
    repr: Repr,
}

impl PairAccum {
    /// Communicator sizes up to this stay dense: the paper's experiments
    /// (and anything else "small-world") keep the exact seed layout; only
    /// at-scale sessions pay the hash-map constant factor.
    pub const DEFAULT_DENSE_LIMIT: usize = 256;

    /// Accumulator for a communicator of `n` members, dense iff
    /// `n <= DEFAULT_DENSE_LIMIT`.
    pub fn new(n: usize) -> Self {
        Self::with_dense_limit(n, Self::DEFAULT_DENSE_LIMIT)
    }

    /// Accumulator with an explicit dense/sparse threshold (benchmarks and
    /// equivalence tests force one representation with `limit = usize::MAX`
    /// or `limit = 0`).
    pub fn with_dense_limit(n: usize, limit: usize) -> Self {
        let repr = if n <= limit {
            Repr::Dense {
                counts: [vec![0; n], vec![0; n], vec![0; n]],
                sizes: [vec![0; n], vec![0; n], vec![0; n]],
            }
        } else {
            Repr::Sparse { cells: HashMap::new() }
        };
        Self { n, repr }
    }

    /// Communicator size this accumulator was built for.
    pub fn order(&self) -> usize {
        self.n
    }

    /// True when the dense representation is in use.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Record one message of `bytes` bytes toward `dst` with kind index `k`.
    ///
    /// # Panics
    /// Panics when `dst >= order()` or `k >= 3` (recording is gated on
    /// communicator membership upstream).
    pub fn record(&mut self, dst: usize, k: usize, bytes: u64) {
        assert!(dst < self.n, "destination {dst} outside communicator of {}", self.n);
        match &mut self.repr {
            Repr::Dense { counts, sizes } => {
                counts[k][dst] += 1;
                sizes[k][dst] += bytes;
            }
            Repr::Sparse { cells } => {
                let cell = cells.entry(dst).or_default();
                cell.counts[k] += 1;
                cell.sizes[k] += bytes;
            }
        }
    }

    /// Zero everything (sparse drops its cells entirely).
    pub fn reset(&mut self) {
        match &mut self.repr {
            Repr::Dense { counts, sizes } => {
                for k in 0..3 {
                    counts[k].fill(0);
                    sizes[k].fill(0);
                }
            }
            Repr::Sparse { cells } => cells.clear(),
        }
    }

    /// Copy-free row access for the single-kind dense fast path: the
    /// per-kind slices can be handed out as-is, with no summing and no
    /// allocation.  `None` when sparse or when `flags` selects several
    /// kinds — callers fall back to [`PairAccum::row`].
    pub fn row_ref(&self, flags: Flags) -> Option<(&[u64], &[u64])> {
        let Repr::Dense { counts, sizes } = &self.repr else { return None };
        let mut selected = flags.selected_indices();
        let k = selected.next()?;
        if selected.next().is_some() {
            return None;
        }
        Some((&counts[k], &sizes[k]))
    }

    /// Dense (counts, sizes) rows summed over the kinds selected by `flags`
    /// — the `MPI_M_get_data` shape.  Allocates two `n`-vectors; hot paths
    /// use [`PairAccum::row_ref`] or [`PairAccum::sparse_row`] instead.
    pub fn row(&self, flags: Flags) -> (Vec<u64>, Vec<u64>) {
        if let Some((c, s)) = self.row_ref(flags) {
            return (c.to_vec(), s.to_vec());
        }
        let mut counts = vec![0u64; self.n];
        let mut sizes = vec![0u64; self.n];
        match &self.repr {
            Repr::Dense { counts: kc, sizes: ks } => {
                for k in flags.selected_indices() {
                    for d in 0..self.n {
                        counts[d] += kc[k][d];
                        sizes[d] += ks[k][d];
                    }
                }
            }
            Repr::Sparse { cells } => {
                for (&d, cell) in cells {
                    for k in flags.selected_indices() {
                        counts[d] += cell.counts[k];
                        sizes[d] += cell.sizes[k];
                    }
                }
            }
        }
        (counts, sizes)
    }

    /// Flag-summed `(dst, count, bytes)` triples for every destination with
    /// any recorded traffic under `flags`, sorted by destination — the
    /// gather wire format.  Zero-valued destinations are skipped; the
    /// receiving side's matrix cells default to zero, so densifying a
    /// sparse row reproduces the dense row bit for bit.
    pub fn sparse_row(&self, flags: Flags) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        match &self.repr {
            Repr::Dense { counts, sizes } => {
                // Single-kind selections walk the shared slices directly
                // (the row_ref fast path) instead of materializing summed
                // rows first.
                if let Some((c, s)) = self.row_ref(flags) {
                    for d in 0..self.n {
                        if c[d] != 0 || s[d] != 0 {
                            out.push((d as u64, c[d], s[d]));
                        }
                    }
                } else {
                    for d in 0..self.n {
                        let (mut cnt, mut sz) = (0u64, 0u64);
                        for k in flags.selected_indices() {
                            cnt += counts[k][d];
                            sz += sizes[k][d];
                        }
                        if cnt != 0 || sz != 0 {
                            out.push((d as u64, cnt, sz));
                        }
                    }
                }
            }
            Repr::Sparse { cells } => {
                for (&d, cell) in cells {
                    let (mut cnt, mut sz) = (0u64, 0u64);
                    for k in flags.selected_indices() {
                        cnt += cell.counts[k];
                        sz += cell.sizes[k];
                    }
                    if cnt != 0 || sz != 0 {
                        out.push((d as u64, cnt, sz));
                    }
                }
                out.sort_unstable_by_key(|&(d, _, _)| d);
            }
        }
        out
    }

    /// Sorted per-destination entries of everything recorded so far, without
    /// touching the accumulator — [`PairAccum::drain_entries`] minus the
    /// zeroing, used when the data must survive the walk (reindexing).
    pub fn entries(&self) -> Vec<PairEntry> {
        let mut out = Vec::new();
        match &self.repr {
            Repr::Dense { counts, sizes } => {
                for d in 0..self.n {
                    let cell = PairCell {
                        counts: [counts[0][d], counts[1][d], counts[2][d]],
                        sizes: [sizes[0][d], sizes[1][d], sizes[2][d]],
                    };
                    if !cell.is_zero() {
                        out.push(PairEntry { dst: d, counts: cell.counts, sizes: cell.sizes });
                    }
                }
            }
            Repr::Sparse { cells } => {
                out.extend(cells.iter().map(|(&d, c)| PairEntry {
                    dst: d,
                    counts: c.counts,
                    sizes: c.sizes,
                }));
                out.sort_unstable_by_key(|e| e.dst);
            }
        }
        out
    }

    /// Drain this accumulator into sorted per-destination entries, leaving
    /// it zeroed — how an epoch window is sealed.
    pub fn drain_entries(&mut self) -> Vec<PairEntry> {
        let out = self.entries();
        self.reset();
        out
    }

    /// Remap this accumulator onto a resized communicator: `map[old]` is the
    /// destination's rank in the new membership, `None` when it departed
    /// (its column is dropped — the process is gone, its address space with
    /// it).  Returns a fresh accumulator of `new_n` members whose dense /
    /// sparse representation is re-chosen under `limit`, so a communicator
    /// that grows past the threshold flips to sparse at the rebind and a
    /// shrinking one flips back.
    ///
    /// # Panics
    /// Panics when `map` does not cover every old destination or maps one
    /// out of `0..new_n` — programming errors of the membership layer.
    pub fn reindex(&self, map: &[Option<usize>], new_n: usize, limit: usize) -> PairAccum {
        assert_eq!(map.len(), self.n, "reindex map must cover every old destination");
        let mut out = Self::with_dense_limit(new_n, limit);
        for e in self.entries() {
            let Some(dst) = map[e.dst] else { continue };
            assert!(dst < new_n, "reindex target {dst} outside new communicator of {new_n}");
            for k in 0..3 {
                out.add(dst, k, e.counts[k], e.sizes[k]);
            }
        }
        out
    }

    /// Bulk-add `count` messages of `bytes` total toward `dst` with kind
    /// index `k` (the reindex transfer primitive; [`PairAccum::record`] is
    /// the one-message hot path).
    fn add(&mut self, dst: usize, k: usize, count: u64, bytes: u64) {
        if count == 0 && bytes == 0 {
            return;
        }
        match &mut self.repr {
            Repr::Dense { counts, sizes } => {
                counts[k][dst] += count;
                sizes[k][dst] += bytes;
            }
            Repr::Sparse { cells } => {
                let cell = cells.entry(dst).or_default();
                cell.counts[k] += count;
                cell.sizes[k] += bytes;
            }
        }
    }

    /// Approximate heap footprint in bytes — what `monitor_scale` compares
    /// between the dense and sparse planes.
    pub fn mem_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense { counts, sizes } => counts
                .iter()
                .chain(sizes.iter())
                .map(|v| v.capacity() * std::mem::size_of::<u64>())
                .sum(),
            Repr::Sparse { cells } => {
                // Entry payload + the table's ~1/0.875 load-factor slack;
                // close enough for an order-of-magnitude comparison.
                cells.capacity()
                    * (std::mem::size_of::<(usize, PairCell)>() + std::mem::size_of::<u64>())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_util::props;

    fn filled(limit: usize) -> PairAccum {
        let mut a = PairAccum::with_dense_limit(8, limit);
        a.record(1, 0, 100);
        a.record(1, 0, 50);
        a.record(3, 1, 7);
        a.record(7, 2, 0); // zero-byte message still counts
        a
    }

    #[test]
    fn representation_follows_the_limit() {
        assert!(PairAccum::new(PairAccum::DEFAULT_DENSE_LIMIT).is_dense());
        assert!(!PairAccum::new(PairAccum::DEFAULT_DENSE_LIMIT + 1).is_dense());
    }

    #[test]
    fn dense_and_sparse_agree_on_fixed_traffic() {
        let (d, s) = (filled(usize::MAX), filled(0));
        for flags in [Flags::P2P_ONLY, Flags::COLL_ONLY, Flags::OSC_ONLY, Flags::ALL_COMM] {
            assert_eq!(d.row(flags), s.row(flags), "{flags:?}");
            assert_eq!(d.sparse_row(flags), s.sparse_row(flags), "{flags:?}");
        }
    }

    #[test]
    fn row_ref_is_the_single_kind_dense_fast_path() {
        let d = filled(usize::MAX);
        let (c, s) = d.row_ref(Flags::P2P_ONLY).expect("dense single-kind");
        assert_eq!(c, &[0, 2, 0, 0, 0, 0, 0, 0]);
        assert_eq!(s, &[0, 150, 0, 0, 0, 0, 0, 0]);
        assert!(d.row_ref(Flags::ALL_COMM).is_none(), "multi-kind needs summing");
        assert!(filled(0).row_ref(Flags::P2P_ONLY).is_none(), "sparse has no slices");
    }

    #[test]
    fn sparse_row_skips_zero_cells_and_sorts() {
        let s = filled(0);
        assert_eq!(s.sparse_row(Flags::ALL_COMM), vec![(1, 2, 150), (3, 1, 7), (7, 1, 0)]);
        assert_eq!(s.sparse_row(Flags::OSC_ONLY), vec![(7, 1, 0)]);
    }

    #[test]
    fn drain_seals_and_zeroes() {
        for limit in [usize::MAX, 0] {
            let mut a = filled(limit);
            let entries = a.drain_entries();
            assert_eq!(
                entries,
                vec![
                    PairEntry { dst: 1, counts: [2, 0, 0], sizes: [150, 0, 0] },
                    PairEntry { dst: 3, counts: [0, 1, 0], sizes: [0, 7, 0] },
                    PairEntry { dst: 7, counts: [0, 0, 1], sizes: [0, 0, 0] },
                ]
            );
            assert!(a.drain_entries().is_empty(), "drained accumulator is empty");
            assert_eq!(a.row(Flags::ALL_COMM).0, vec![0; 8]);
        }
    }

    #[test]
    fn reindex_remaps_drops_and_reshapes() {
        for limit in [usize::MAX, 0] {
            // Traffic toward 1 (p2p), 3 (coll), 7 (osc); new membership:
            // old 1 → new 0, old 3 departed, old 7 → new 2.
            let a = filled(limit);
            let mut map = vec![None; 8];
            map[1] = Some(0);
            map[7] = Some(2);
            map[0] = Some(1); // untouched destinations move silently
            let b = a.reindex(&map, 4, usize::MAX);
            assert_eq!(b.order(), 4);
            assert!(b.is_dense(), "representation re-chosen under the new limit");
            assert_eq!(b.row(Flags::ALL_COMM).0, vec![2, 0, 1, 0]);
            assert_eq!(b.row(Flags::ALL_COMM).1, vec![150, 0, 0, 0]);
            assert_eq!(b.row(Flags::COLL_ONLY).0, vec![0; 4], "departed column dropped");
            // Kind separation survives the transfer.
            assert_eq!(b.row(Flags::P2P_ONLY).1, vec![150, 0, 0, 0]);
            assert_eq!(b.row(Flags::OSC_ONLY).0, vec![0, 0, 1, 0]);
            // Original untouched.
            assert_eq!(a.row(Flags::ALL_COMM).0, filled(limit).row(Flags::ALL_COMM).0);
            // Growing across the threshold flips sparse.
            assert!(!a.reindex(&map, 4, 0).is_dense());
        }
    }

    #[test]
    fn sparse_memory_is_pair_proportional() {
        let n = 10_000;
        let mut dense = PairAccum::with_dense_limit(n, usize::MAX);
        let mut sparse = PairAccum::with_dense_limit(n, 0);
        for dst in 0..4 {
            dense.record(dst, 0, 1);
            sparse.record(dst, 0, 1);
        }
        assert!(
            dense.mem_bytes() >= 10 * sparse.mem_bytes(),
            "dense {} vs sparse {}",
            dense.mem_bytes(),
            sparse.mem_bytes()
        );
    }

    props! {
        /// Random traffic, both representations, every flag selection:
        /// rows, sparse rows and sealed windows are identical.
        fn dense_sparse_equivalence(g) {
            let n = g.gen_range(1usize..40);
            let events: Vec<(usize, usize, u64)> = g.vec(0..64, |g| {
                (g.index(n), g.index(3), g.gen_range(0u64..1000))
            });
            let mut dense = PairAccum::with_dense_limit(n, usize::MAX);
            let mut sparse = PairAccum::with_dense_limit(n, 0);
            for &(dst, k, bytes) in &events {
                dense.record(dst, k, bytes);
                sparse.record(dst, k, bytes);
            }
            for flags in [Flags::P2P_ONLY, Flags::COLL_ONLY, Flags::OSC_ONLY,
                          Flags::P2P_ONLY | Flags::OSC_ONLY, Flags::ALL_COMM] {
                assert_eq!(dense.row(flags), sparse.row(flags));
                assert_eq!(dense.sparse_row(flags), sparse.sparse_row(flags));
            }
            assert_eq!(dense.drain_entries(), sparse.drain_entries());
        }
    }
}
