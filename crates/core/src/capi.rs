//! C-shaped compatibility layer: the paper's API, name for name.
//!
//! The paper's library is C with per-process global state and integer
//! return codes.  Each simulated rank is a thread, so a thread-local slot
//! plays the role of the per-process environment exactly, and the paper's
//! Listing 2 ports line by line:
//!
//! ```
//! use mim_core::capi::*;
//! use mim_mpisim::{Universe, UniverseConfig};
//! use mim_topology::{Machine, Placement};
//!
//! let universe = Universe::new(UniverseConfig::new(
//!     Machine::cluster(2, 1, 4),
//!     Placement::packed(8),
//! ));
//! let dir = std::env::temp_dir().join(format!("mim-capi-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let base = dir.join("barrier").to_string_lossy().into_owned();
//! universe.launch(|rank| {
//!     // MPI_Init is the universe launch itself.
//!     assert_eq!(MPI_M_init(rank), MPI_SUCCESS);
//!     let mut id = MPI_M_MSID_NULL;
//!     assert_eq!(MPI_M_start(rank, &rank.comm_world(), &mut id), MPI_SUCCESS);
//!     rank.barrier(&rank.comm_world());
//!     assert_eq!(MPI_M_suspend(id), MPI_SUCCESS);
//!     assert_eq!(MPI_M_rootflush(rank, id, 0, &base, MPI_M_COLL_ONLY), MPI_SUCCESS);
//!     assert_eq!(MPI_M_free(id), MPI_SUCCESS);
//!     assert_eq!(MPI_M_finalize(rank), MPI_SUCCESS);
//! });
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! All functions return [`MPI_SUCCESS`] or one of the paper's error
//! constants.  Output parameters are `&mut` slots, sized according to
//! [`MPI_M_get_info`], as in C.

#![allow(non_snake_case)]

use std::cell::RefCell;

use mim_mpisim::{exec, Comm, Rank};

use crate::api::Monitoring;
use crate::error::MonError;
use crate::flags::Flags;
use crate::session::Msid;

/// Success return value (the paper reuses MPI's constant).
pub const MPI_SUCCESS: i32 = 0;
/// `MPI_M_INTERNAL_FAIL`: an internal error occurred.
pub const MPI_M_INTERNAL_FAIL: i32 = 1;
/// `MPI_M_MPIT_FAIL`: an MPI or MPI_T function failed.
pub const MPI_M_MPIT_FAIL: i32 = 2;
/// `MPI_M_MISSING_INIT`: no call to `MPI_M_init` has been done.
pub const MPI_M_MISSING_INIT: i32 = 3;
/// `MPI_M_SESSION_STILL_ACTIVE`: at least one session was not suspended.
pub const MPI_M_SESSION_STILL_ACTIVE: i32 = 4;
/// `MPI_M_SESSION_NOT_SUSPENDED`: the session has not been suspended.
pub const MPI_M_SESSION_NOT_SUSPENDED: i32 = 5;
/// `MPI_M_INVALID_MSID`: the msid does not refer to a live session.
pub const MPI_M_INVALID_MSID: i32 = 6;
/// `MPI_M_SESSION_OVERFLOW`: the maximum number of sessions is reached.
pub const MPI_M_SESSION_OVERFLOW: i32 = 7;
/// `MPI_M_MULTIPLE_CALL`: init/continue (resp. suspend) called twice.
pub const MPI_M_MULTIPLE_CALL: i32 = 8;
/// `MPI_M_INVALID_ROOT`: the root parameter is invalid.
pub const MPI_M_INVALID_ROOT: i32 = 9;

/// Act on all live sessions (the paper's `MPI_M_ALL_MSID`).
pub const MPI_M_ALL_MSID: Msid = Msid::ALL;
/// A never-valid session id to initialize `MPI_M_msid` variables with.
pub const MPI_M_MSID_NULL: Msid = Msid::ALL;

/// Monitor point-to-point communications only.
pub const MPI_M_P2P_ONLY: Flags = Flags::P2P_ONLY;
/// Monitor collective communications only.
pub const MPI_M_COLL_ONLY: Flags = Flags::COLL_ONLY;
/// Monitor one-sided communications only.
pub const MPI_M_OSC_ONLY: Flags = Flags::OSC_ONLY;
/// Monitor all communications.
pub const MPI_M_ALL_COMM: Flags = Flags::ALL_COMM;

thread_local! {
    /// The per-process monitoring environment under thread-per-rank
    /// (each rank is a thread).
    static ENV: RefCell<Option<Monitoring>> = const { RefCell::new(None) };
}

/// The monitoring environment of a rank *task* under the M:N executor,
/// where "per-process" state cannot be thread-local: several ranks share
/// each worker thread, and a parked rank may resume on a different one.
///
/// SAFETY (`Send`): `Monitoring` is `!Send` (it shares `Rc`s with its
/// `Rank`), but rank and environment live in the same fiber task, which the
/// scheduler runs on one worker at a time with a happens-before edge across
/// every migration — the exact argument that makes the suspended fiber
/// itself `Send`.  This wrapper only lets the registry hold the value
/// *between* capi calls made by that same task.
struct TaskEnv(Monitoring);
unsafe impl Send for TaskEnv {}

/// Task-keyed twin of [`ENV`].  Entries are taken out for the duration of
/// each capi call (never locked across user code, which may park the task)
/// and reinserted afterwards.
static TASK_ENVS: std::sync::LazyLock<
    std::sync::Mutex<std::collections::HashMap<exec::TaskId, TaskEnv>>,
> = std::sync::LazyLock::new(|| std::sync::Mutex::new(std::collections::HashMap::new()));

/// Run `f` on the calling rank's environment slot — the fiber task's
/// registry entry under the M:N executor, the thread-local otherwise.
fn with_env_slot<R>(f: impl FnOnce(&mut Option<Monitoring>) -> R) -> R {
    let Some(tid) = exec::current_task() else {
        return ENV.with(|env| f(&mut env.borrow_mut()));
    };
    let mut slot = TASK_ENVS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&tid)
        .map(|e| e.0);
    let r = f(&mut slot);
    if let Some(mon) = slot {
        TASK_ENVS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(tid, TaskEnv(mon));
    }
    r
}

fn code(e: MonError) -> i32 {
    match e {
        MonError::InternalFail(_) => MPI_M_INTERNAL_FAIL,
        MonError::MpitFail(_) => MPI_M_MPIT_FAIL,
        MonError::MissingInit => MPI_M_MISSING_INIT,
        MonError::SessionStillActive => MPI_M_SESSION_STILL_ACTIVE,
        MonError::SessionNotSuspended => MPI_M_SESSION_NOT_SUSPENDED,
        MonError::InvalidMsid => MPI_M_INVALID_MSID,
        MonError::SessionOverflow => MPI_M_SESSION_OVERFLOW,
        MonError::MultipleCall => MPI_M_MULTIPLE_CALL,
        MonError::InvalidRoot => MPI_M_INVALID_ROOT,
    }
}

fn with_env<F: FnOnce(&Monitoring) -> Result<(), MonError>>(f: F) -> i32 {
    with_env_slot(|slot| match slot.as_ref() {
        None => MPI_M_MISSING_INIT,
        Some(mon) => match f(mon) {
            Ok(()) => MPI_SUCCESS,
            Err(e) => code(e),
        },
    })
}

/// Set the monitoring environment (paper: `MPI_M_init`).
pub fn MPI_M_init(rank: &Rank) -> i32 {
    with_env_slot(|slot| {
        if slot.is_some() {
            return MPI_M_MULTIPLE_CALL; // environments must not overlap
        }
        match Monitoring::init(rank) {
            Ok(mon) => {
                *slot = Some(mon);
                MPI_SUCCESS
            }
            Err(e) => code(e),
        }
    })
}

/// Finalize the monitoring environment (paper: `MPI_M_finalize`).
pub fn MPI_M_finalize(rank: &Rank) -> i32 {
    with_env_slot(|slot| match slot.as_ref() {
        None => MPI_M_MISSING_INIT,
        Some(mon) => match mon.finalize(rank) {
            Ok(()) => {
                *slot = None;
                MPI_SUCCESS
            }
            Err(e) => code(e),
        },
    })
}

/// Create and start a monitoring session (paper: `MPI_M_start`).
pub fn MPI_M_start(rank: &Rank, comm: &Comm, msid: &mut Msid) -> i32 {
    with_env(|mon| {
        *msid = mon.start(rank, comm)?;
        Ok(())
    })
}

/// Suspend a monitoring session (paper: `MPI_M_suspend`).
pub fn MPI_M_suspend(msid: Msid) -> i32 {
    with_env(|mon| mon.suspend(msid))
}

/// Restart a suspended session (paper: `MPI_M_continue`).
pub fn MPI_M_continue(msid: Msid) -> i32 {
    with_env(|mon| mon.resume(msid))
}

/// Reset the data of a suspended session (paper: `MPI_M_reset`).
pub fn MPI_M_reset(msid: Msid) -> i32 {
    with_env(|mon| mon.reset(msid))
}

/// Free a suspended session (paper: `MPI_M_free`).
pub fn MPI_M_free(msid: Msid) -> i32 {
    with_env(|mon| mon.free(msid))
}

/// Session information (paper: `MPI_M_get_info`).
pub fn MPI_M_get_info(msid: Msid, provided: &mut i32, array_size: &mut i32) -> i32 {
    with_env(|mon| {
        let info = mon.get_info(msid)?;
        *provided = info.provided;
        *array_size = info.array_size as i32;
        Ok(())
    })
}

/// Copy this process's row into caller buffers (paper: `MPI_M_get_data`).
/// Buffers must be at least `array_size` long (see [`MPI_M_get_info`]).
pub fn MPI_M_get_data(
    msid: Msid,
    msg_counts: &mut [u64],
    msg_sizes: &mut [u64],
    flags: Flags,
) -> i32 {
    with_env(|mon| {
        let row = mon.get_data(msid, flags)?;
        if msg_counts.len() < row.counts.len() || msg_sizes.len() < row.sizes.len() {
            return Err(MonError::InternalFail("output buffer too small".into()));
        }
        msg_counts[..row.counts.len()].copy_from_slice(&row.counts);
        msg_sizes[..row.sizes.len()].copy_from_slice(&row.sizes);
        Ok(())
    })
}

/// Gather the full matrices on every process (paper: `MPI_M_allgather_data`).
/// Matrix buffers are row-major, at least `array_size²` long.
pub fn MPI_M_allgather_data(
    rank: &Rank,
    msid: Msid,
    matrix_counts: &mut [u64],
    matrix_sizes: &mut [u64],
    flags: Flags,
) -> i32 {
    with_env(|mon| {
        let data = mon.allgather_data(rank, msid, flags)?;
        let n2 = data.counts.order() * data.counts.order();
        if matrix_counts.len() < n2 || matrix_sizes.len() < n2 {
            return Err(MonError::InternalFail("output buffer too small".into()));
        }
        matrix_counts[..n2].copy_from_slice(data.counts.as_row_major());
        matrix_sizes[..n2].copy_from_slice(data.sizes.as_row_major());
        Ok(())
    })
}

/// Gather the full matrices at `root` only (paper: `MPI_M_rootgather_data`).
/// Non-roots may pass empty buffers.
pub fn MPI_M_rootgather_data(
    rank: &Rank,
    msid: Msid,
    root: i32,
    matrix_counts: &mut [u64],
    matrix_sizes: &mut [u64],
    flags: Flags,
) -> i32 {
    with_env(|mon| {
        if root < 0 {
            return Err(MonError::InvalidRoot);
        }
        let Some(data) = mon.rootgather_data(rank, msid, root as usize, flags)? else {
            return Ok(());
        };
        let n2 = data.counts.order() * data.counts.order();
        if matrix_counts.len() < n2 || matrix_sizes.len() < n2 {
            return Err(MonError::InternalFail("root buffer too small".into()));
        }
        matrix_counts[..n2].copy_from_slice(data.counts.as_row_major());
        matrix_sizes[..n2].copy_from_slice(data.sizes.as_row_major());
        Ok(())
    })
}

/// Seal the session's current epoch window and report its totals (epoch
/// index, events, bytes).  Legal on an **active** session — the live
/// introspection primitive; recording continues into the next window.
/// Local call; see [`crate::Monitoring::advance_window`].
pub fn MPI_M_window_advance(msid: Msid, epoch: &mut u64, events: &mut u64, bytes: &mut u64) -> i32 {
    with_env(|mon| {
        let delta = mon.advance_window(msid)?;
        *epoch = delta.epoch;
        *events = delta.events;
        *bytes = delta.bytes;
        Ok(())
    })
}

/// Seal every member's window and gather the deltas' matrices at `root`
/// (live counterpart of [`MPI_M_rootgather_data`]; collective on an
/// **active** session).  Root buffers must be at least `array_size²` long;
/// non-roots may pass empty buffers.  `epoch` receives the sealed window's
/// index on every rank.
pub fn MPI_M_gather_window(
    rank: &Rank,
    msid: Msid,
    root: i32,
    epoch: &mut u64,
    matrix_counts: &mut [u64],
    matrix_sizes: &mut [u64],
    flags: Flags,
) -> i32 {
    with_env(|mon| {
        if root < 0 {
            return Err(MonError::InvalidRoot);
        }
        let win = mon.gather_window(rank, msid, root as usize, flags)?;
        *epoch = win.epoch;
        let Some(data) = win.data else {
            return Ok(());
        };
        let n2 = data.counts.order() * data.counts.order();
        if matrix_counts.len() < n2 || matrix_sizes.len() < n2 {
            return Err(MonError::InternalFail("root buffer too small".into()));
        }
        matrix_counts[..n2].copy_from_slice(data.counts.as_row_major());
        matrix_sizes[..n2].copy_from_slice(data.sizes.as_row_major());
        Ok(())
    })
}

/// Seal every live member's window and gather the deltas' matrices at
/// `root`, skipping the ranks flagged dead in `alive` (elastic-membership
/// counterpart of [`MPI_M_gather_window`]; dead rows come back zeroed).
/// `alive` must hold exactly `array_size` flags with the root alive.
// The arity is the C signature: gather_window's out-params plus the bitmap.
#[allow(clippy::too_many_arguments)]
pub fn MPI_M_gather_window_partial(
    rank: &Rank,
    msid: Msid,
    root: i32,
    alive: &[bool],
    epoch: &mut u64,
    matrix_counts: &mut [u64],
    matrix_sizes: &mut [u64],
    flags: Flags,
) -> i32 {
    with_env(|mon| {
        if root < 0 {
            return Err(MonError::InvalidRoot);
        }
        let win = mon.gather_window_partial(rank, msid, root as usize, flags, alive)?;
        *epoch = win.epoch;
        let Some(data) = win.data else {
            return Ok(());
        };
        let n2 = data.counts.order() * data.counts.order();
        if matrix_counts.len() < n2 || matrix_sizes.len() < n2 {
            return Err(MonError::InternalFail("root buffer too small".into()));
        }
        matrix_counts[..n2].copy_from_slice(data.counts.as_row_major());
        matrix_sizes[..n2].copy_from_slice(data.sizes.as_row_major());
        Ok(())
    })
}

/// Re-attach a session to a grown or shrunk communicator, remapping its
/// recorded data through world ranks (no paper equivalent — the paper's
/// library predates ULFM-style elastic membership; see
/// [`crate::Monitoring::rebind_session`]).
pub fn MPI_M_rebind(msid: Msid, comm: &Comm) -> i32 {
    with_env(|mon| mon.rebind_session(msid, comm))
}

/// Flush this process's data to `filename.[rank].prof` (paper: `MPI_M_flush`).
pub fn MPI_M_flush(msid: Msid, filename: &str, flags: Flags) -> i32 {
    with_env(|mon| mon.flush(msid, filename, flags))
}

/// Root flushes all data to `filename_{counts,sizes}.[rank].prof`
/// (paper: `MPI_M_rootflush`).
pub fn MPI_M_rootflush(rank: &Rank, msid: Msid, root: i32, filename: &str, flags: Flags) -> i32 {
    with_env(|mon| {
        if root < 0 {
            return Err(MonError::InvalidRoot);
        }
        mon.rootflush(rank, msid, root as usize, filename, flags)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_mpisim::{Universe, UniverseConfig};
    use mim_topology::{Machine, Placement};

    fn universe(n: usize) -> Universe {
        Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(n)))
    }

    #[test]
    fn listing2_barrier_decomposition() {
        // The paper's Listing 2, line by line.
        let dir = std::env::temp_dir().join(format!("mim-capi-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("barrier").to_string_lossy().into_owned();
        let u = universe(4);
        let base2 = base.clone();
        u.launch(move |rank| {
            assert_eq!(MPI_M_init(rank), MPI_SUCCESS);
            let mut id = MPI_M_MSID_NULL;
            let world = rank.comm_world();
            assert_eq!(MPI_M_start(rank, &world, &mut id), MPI_SUCCESS);
            rank.barrier(&world);
            assert_eq!(MPI_M_suspend(id), MPI_SUCCESS);
            assert_eq!(MPI_M_rootflush(rank, id, 0, &base2, MPI_M_COLL_ONLY), MPI_SUCCESS);
            assert_eq!(MPI_M_free(id), MPI_SUCCESS);
            assert_eq!(MPI_M_finalize(rank), MPI_SUCCESS);
        });
        let counts = std::fs::read_to_string(format!("{base}_counts.0.prof")).unwrap();
        let total: u64 =
            counts.lines().flat_map(|l| l.split(',')).map(|v| v.parse::<u64>().unwrap()).sum();
        assert_eq!(total, 8, "4-rank dissemination barrier: 2 rounds x 4 messages");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_codes_follow_the_paper() {
        let u = universe(2);
        u.launch(|rank| {
            let world = rank.comm_world();
            // Everything before init fails with MISSING_INIT.
            assert_eq!(MPI_M_suspend(MPI_M_ALL_MSID), MPI_M_MISSING_INIT);
            assert_eq!(MPI_M_finalize(rank), MPI_M_MISSING_INIT);
            assert_eq!(MPI_M_init(rank), MPI_SUCCESS);
            // Overlapping environments are rejected.
            assert_eq!(MPI_M_init(rank), MPI_M_MULTIPLE_CALL);
            let mut id = MPI_M_MSID_NULL;
            assert_eq!(MPI_M_start(rank, &world, &mut id), MPI_SUCCESS);
            // Data access while active / double suspend.
            let (mut c, mut s) = ([0u64; 2], [0u64; 2]);
            assert_eq!(
                MPI_M_get_data(id, &mut c, &mut s, MPI_M_ALL_COMM),
                MPI_M_SESSION_NOT_SUSPENDED
            );
            assert_eq!(MPI_M_continue(id), MPI_M_MULTIPLE_CALL);
            // Finalize with an active session.
            assert_eq!(MPI_M_finalize(rank), MPI_M_SESSION_STILL_ACTIVE);
            assert_eq!(MPI_M_suspend(id), MPI_SUCCESS);
            assert_eq!(MPI_M_suspend(id), MPI_M_MULTIPLE_CALL);
            // Invalid root.
            let (mut mc, mut ms) = (vec![0u64; 4], vec![0u64; 4]);
            assert_eq!(
                MPI_M_rootgather_data(rank, id, 99, &mut mc, &mut ms, MPI_M_ALL_COMM),
                MPI_M_INVALID_ROOT
            );
            assert_eq!(MPI_M_free(id), MPI_SUCCESS);
            assert_eq!(MPI_M_free(id), MPI_M_INVALID_MSID);
            assert_eq!(MPI_M_finalize(rank), MPI_SUCCESS);
            // A second environment may follow a finalized one.
            assert_eq!(MPI_M_init(rank), MPI_SUCCESS);
            assert_eq!(MPI_M_finalize(rank), MPI_SUCCESS);
        });
    }

    #[test]
    fn negative_root_is_rejected_before_any_cast() {
        // Regression guard: a negative C root must return INVALID_ROOT from
        // every root-taking entry point instead of wrapping to a huge usize.
        let u = universe(2);
        u.launch(|rank| {
            let world = rank.comm_world();
            assert_eq!(MPI_M_init(rank), MPI_SUCCESS);
            let mut id = MPI_M_MSID_NULL;
            assert_eq!(MPI_M_start(rank, &world, &mut id), MPI_SUCCESS);
            let mut epoch = 0u64;
            let (mut mc, mut ms) = (vec![0u64; 4], vec![0u64; 4]);
            for bad_root in [-1, i32::MIN] {
                assert_eq!(
                    MPI_M_gather_window(
                        rank,
                        id,
                        bad_root,
                        &mut epoch,
                        &mut mc,
                        &mut ms,
                        MPI_M_ALL_COMM
                    ),
                    MPI_M_INVALID_ROOT
                );
            }
            assert_eq!(MPI_M_suspend(id), MPI_SUCCESS);
            for bad_root in [-1, i32::MIN] {
                assert_eq!(
                    MPI_M_rootgather_data(rank, id, bad_root, &mut mc, &mut ms, MPI_M_ALL_COMM),
                    MPI_M_INVALID_ROOT
                );
                assert_eq!(
                    MPI_M_rootflush(
                        rank,
                        id,
                        bad_root,
                        "/nonexistent/never-written",
                        MPI_M_ALL_COMM
                    ),
                    MPI_M_INVALID_ROOT
                );
            }
            assert_eq!(MPI_M_free(id), MPI_SUCCESS);
            assert_eq!(MPI_M_finalize(rank), MPI_SUCCESS);
        });
    }

    #[test]
    fn windows_work_on_an_active_session() {
        // The live-query path: windows advance and gather with NO suspend.
        let u = universe(4);
        u.launch(|rank| {
            let world = rank.comm_world();
            let n = world.size();
            assert_eq!(MPI_M_init(rank), MPI_SUCCESS);
            let mut id = MPI_M_MSID_NULL;
            assert_eq!(MPI_M_start(rank, &world, &mut id), MPI_SUCCESS);
            // ALL is rejected in slot-addressed paths with a typed error.
            let (mut e, mut ev, mut b) = (0u64, 0u64, 0u64);
            assert_eq!(
                MPI_M_window_advance(MPI_M_ALL_MSID, &mut e, &mut ev, &mut b),
                MPI_M_INVALID_MSID
            );

            rank.barrier(&world);
            let mut epoch = 0u64;
            let (mut mc, mut ms) = (vec![0u64; n * n], vec![0u64; n * n]);
            assert_eq!(
                MPI_M_gather_window(rank, id, 0, &mut epoch, &mut mc, &mut ms, MPI_M_COLL_ONLY),
                MPI_SUCCESS
            );
            assert_eq!(epoch, 1, "first sealed window");
            if world.rank() == 0 {
                assert_eq!(mc.iter().sum::<u64>(), 8, "4-rank barrier: 2 rounds x 4 msgs");
            }
            // The gather's own control traffic was muted: a second,
            // traffic-free window is empty at every rank.
            rank.barrier(&world); // this barrier IS recorded (window 2)
            assert_eq!(MPI_M_window_advance(id, &mut e, &mut ev, &mut b), MPI_SUCCESS);
            assert_eq!(e, 2);
            assert_eq!(ev, 2, "window 2 holds only the second barrier's sends");
            // Session stays active and its totals keep both windows.
            assert_eq!(MPI_M_suspend(id), MPI_SUCCESS);
            let (mut c, mut s) = (vec![0u64; n], vec![0u64; n]);
            assert_eq!(MPI_M_get_data(id, &mut c, &mut s, MPI_M_COLL_ONLY), MPI_SUCCESS);
            assert_eq!(c.iter().sum::<u64>(), 4, "two barriers, gather traffic muted");
            assert_eq!(MPI_M_free(id), MPI_SUCCESS);
            assert_eq!(MPI_M_finalize(rank), MPI_SUCCESS);
        });
    }

    #[test]
    fn get_info_and_data_buffers() {
        let u = universe(4);
        u.launch(|rank| {
            let world = rank.comm_world();
            assert_eq!(MPI_M_init(rank), MPI_SUCCESS);
            let mut id = MPI_M_MSID_NULL;
            assert_eq!(MPI_M_start(rank, &world, &mut id), MPI_SUCCESS);
            let (mut provided, mut n) = (0, 0);
            assert_eq!(MPI_M_get_info(id, &mut provided, &mut n), MPI_SUCCESS);
            assert_eq!(n, 4);
            assert_eq!(provided, 3);
            rank.barrier(&world);
            assert_eq!(MPI_M_suspend(id), MPI_SUCCESS);
            let mut counts = vec![0u64; n as usize];
            let mut sizes = vec![0u64; n as usize];
            assert_eq!(MPI_M_get_data(id, &mut counts, &mut sizes, MPI_M_COLL_ONLY), MPI_SUCCESS);
            assert_eq!(counts.iter().sum::<u64>(), 2, "2 dissemination rounds");
            let mut mc = vec![0u64; (n * n) as usize];
            let mut ms = vec![0u64; (n * n) as usize];
            assert_eq!(
                MPI_M_allgather_data(rank, id, &mut mc, &mut ms, MPI_M_COLL_ONLY),
                MPI_SUCCESS
            );
            assert_eq!(mc.iter().sum::<u64>(), 8);
            assert_eq!(MPI_M_free(id), MPI_SUCCESS);
            assert_eq!(MPI_M_finalize(rank), MPI_SUCCESS);
        });
    }
}
