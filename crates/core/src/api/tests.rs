//! End-to-end tests of the monitoring API on the live runtime.

use mim_mpisim::{ExecutorKind, SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement, TopologyTree};
use mim_util::props;

use crate::error::MonError;
use crate::flags::Flags;
use crate::session::Msid;

use super::Monitoring;

fn universe(n: usize) -> Universe {
    Universe::new(UniverseConfig::new(Machine::cluster(2, 2, 4), Placement::packed(n)))
}

#[test]
fn ping_monitored_row_and_matrix() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        if world.rank() == 0 {
            rank.send(&world, 1, 0, &[0u8; 100]);
            rank.send(&world, 1, 0, &[0u8; 50]);
        } else {
            rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
            rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
        }
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::P2P_ONLY).unwrap();
        if world.rank() == 0 {
            assert_eq!(row.counts, vec![0, 2]);
            assert_eq!(row.sizes, vec![0, 150]);
        } else {
            assert_eq!(row.counts, vec![0, 0]);
        }
        let data = mon.allgather_data(rank, id, Flags::P2P_ONLY).unwrap();
        assert_eq!(data.counts.get(0, 1), 2);
        assert_eq!(data.sizes.get(0, 1), 150);
        assert_eq!(data.counts.total(), 2);
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn collective_decomposition_visible() {
    // A binomial bcast over n ranks is decomposed into exactly n-1
    // point-to-point messages of the payload size — the paper's headline
    // feature.
    let n = 8;
    let payload = 4096u64;
    let u = universe(n);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        let mut data = if world.rank() == 0 { vec![0u8; payload as usize] } else { vec![] };
        rank.bcast(&world, 0, &mut data);
        mon.suspend(id).unwrap();
        let got = mon.allgather_data(rank, id, Flags::COLL_ONLY).unwrap();
        assert_eq!(got.counts.total(), (n - 1) as u64);
        assert_eq!(got.sizes.total(), payload * (n - 1) as u64);
        // And nothing was classified as user p2p.
        let p2p = mon.get_data(id, Flags::P2P_ONLY).unwrap();
        assert!(p2p.counts.iter().all(|&c| c == 0));
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn session_sees_traffic_on_other_communicators() {
    // Paper Sec 4.1: a session on the even/odd split records exchanges
    // between processes 0 and 2 even when they use MPI_COMM_WORLD.
    let u = universe(4);
    u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let evens = rank.comm_split(&world, (me % 2) as i64, me as i64);
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &evens).unwrap();
        if me == 0 {
            rank.send(&world, 2, 0, &[0u8; 64]); // member pair, via WORLD
            rank.send(&world, 1, 0, &[0u8; 32]); // 1 is not in my split comm
        }
        if me == 1 || me == 2 {
            rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
        }
        rank.barrier(&world);
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::P2P_ONLY).unwrap();
        if me == 0 {
            // In the even communicator, world rank 2 is comm rank 1.
            assert_eq!(row.counts, vec![0, 1]);
            assert_eq!(row.sizes, vec![0, 64]);
        } else {
            assert!(row.sizes.iter().all(|&b| b == 0));
        }
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn overlapping_sessions_are_independent() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let a = mon.start(rank, &world).unwrap();
        send_one(rank, 10);
        let b = mon.start(rank, &world).unwrap();
        send_one(rank, 20);
        mon.suspend(a).unwrap();
        send_one(rank, 40);
        mon.suspend(b).unwrap();
        if world.rank() == 0 {
            // a saw the first two sends, b the last two.
            assert_eq!(mon.get_data(a, Flags::P2P_ONLY).unwrap().sizes[1], 30);
            assert_eq!(mon.get_data(b, Flags::P2P_ONLY).unwrap().sizes[1], 60);
        }
        mon.free(Msid::ALL).unwrap();
        mon.finalize(rank).unwrap();
    });
}

fn send_one(rank: &mim_mpisim::Rank, bytes: usize) {
    let world = rank.comm_world();
    if world.rank() == 0 {
        rank.send(&world, 1, 0, &vec![0u8; bytes]);
    } else if world.rank() == 1 {
        rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
    }
    rank.barrier(&world);
}

#[test]
fn suspend_resume_reset_state_machine() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        // Data access while active is forbidden.
        assert_eq!(mon.get_data(id, Flags::ALL_COMM).err(), Some(MonError::SessionNotSuspended));
        assert_eq!(mon.reset(id).err(), Some(MonError::SessionNotSuspended));
        assert_eq!(mon.resume(id).err(), Some(MonError::MultipleCall));
        send_one(rank, 10);
        mon.suspend(id).unwrap();
        assert_eq!(mon.suspend(id).err(), Some(MonError::MultipleCall));
        // Suspended sessions do not record.
        send_one(rank, 100);
        if world.rank() == 0 {
            assert_eq!(mon.get_data(id, Flags::P2P_ONLY).unwrap().sizes[1], 10);
        }
        // Resume records again; reset zeroes.
        mon.resume(id).unwrap();
        send_one(rank, 5);
        mon.suspend(id).unwrap();
        if world.rank() == 0 {
            assert_eq!(mon.get_data(id, Flags::P2P_ONLY).unwrap().sizes[1], 15);
        }
        mon.reset(id).unwrap();
        assert_eq!(mon.get_data(id, Flags::P2P_ONLY).unwrap().sizes, vec![0, 0]);
        mon.free(id).unwrap();
        assert_eq!(mon.get_data(id, Flags::P2P_ONLY).err(), Some(MonError::InvalidMsid));
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn finalize_requires_suspended_sessions() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        assert_eq!(mon.finalize(rank).err(), Some(MonError::SessionStillActive));
        // Suspend (without freeing): finalize now succeeds and frees it.
        mon.suspend(id).unwrap();
        mon.finalize(rank).unwrap();
        // The environment is gone: everything reports MISSING_INIT.
        assert_eq!(mon.get_data(id, Flags::ALL_COMM).err(), Some(MonError::MissingInit));
        assert_eq!(mon.suspend(id).err(), Some(MonError::MissingInit));
        assert_eq!(mon.finalize(rank).err(), Some(MonError::MissingInit));
        // A fresh environment can be set up afterwards (paper: init/finalize
        // may be called multiple times as long as environments don't overlap).
        let mon2 = Monitoring::init(rank).unwrap();
        let id2 = mon2.start(rank, &world).unwrap();
        mon2.suspend(id2).unwrap();
        mon2.free(id2).unwrap();
        mon2.finalize(rank).unwrap();
    });
}

#[test]
fn rootgather_and_invalid_root() {
    let u = universe(4);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        send_one(rank, 33);
        mon.suspend(id).unwrap();
        assert_eq!(
            mon.rootgather_data(rank, id, 99, Flags::ALL_COMM).err(),
            Some(MonError::InvalidRoot)
        );
        let data = mon.rootgather_data(rank, id, 2, Flags::P2P_ONLY).unwrap();
        if world.rank() == 2 {
            let data = data.expect("root receives the matrices");
            assert_eq!(data.sizes.get(0, 1), 33);
        } else {
            assert!(data.is_none());
        }
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn barrier_generates_zero_length_messages() {
    // Paper Sec 4.1: "some collective MPI routines might generate
    // point-to-point zero-length messages".
    let u = universe(4);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        rank.barrier(&world);
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::COLL_ONLY).unwrap();
        assert!(row.counts.iter().sum::<u64>() > 0, "barrier sends messages");
        assert_eq!(row.sizes.iter().sum::<u64>(), 0, "barrier messages are empty");
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn one_sided_traffic_classified_as_osc() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let win = rank.win_create(&world, vec![0u8; 128]);
        let id = mon.start(rank, &world).unwrap();
        if world.rank() == 0 {
            rank.put(&win, 1, 0, &[7u8; 128]);
        }
        rank.fence(&win);
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::OSC_ONLY).unwrap();
        if world.rank() == 0 {
            assert_eq!(row.sizes, vec![0, 128]);
            assert_eq!(row.counts, vec![0, 1]);
        }
        // The fence's barrier is collective traffic, not OSC.
        let coll = mon.get_data(id, Flags::COLL_ONLY).unwrap();
        assert!(coll.counts.iter().sum::<u64>() > 0);
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
        rank.win_free(win);
    });
}

#[test]
fn flush_and_rootflush_write_prof_files() {
    let dir = std::env::temp_dir().join(format!("mim-core-flush-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("barrier").to_string_lossy().into_owned();
    let u = universe(2);
    {
        let base = base.clone();
        u.launch(move |rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            let id = mon.start(rank, &world).unwrap();
            if world.rank() == 0 {
                rank.send(&world, 1, 0, &[1u8; 77]);
            } else {
                rank.recv::<u8>(&world, SrcSel::Any, TagSel::Any);
            }
            rank.barrier(&world);
            mon.suspend(id).unwrap();
            mon.flush(id, &base, Flags::P2P_ONLY).unwrap();
            mon.rootflush(rank, id, 0, &base, Flags::P2P_ONLY).unwrap();
            mon.free(id).unwrap();
            mon.finalize(rank).unwrap();
        });
    }
    let rank0 = std::fs::read_to_string(format!("{base}.0.prof")).unwrap();
    assert!(rank0.contains("0 1 1 77"), "rank 0 row file: {rank0}");
    let counts = std::fs::read_to_string(format!("{base}_counts.0.prof")).unwrap();
    assert_eq!(counts, "0,1\n0,0\n");
    let sizes = std::fs::read_to_string(format!("{base}_sizes.0.prof")).unwrap();
    assert_eq!(sizes, "0,77\n0,0\n");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_msid_suspends_everything() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let a = mon.start(rank, &world).unwrap();
        let b = mon.start(rank, &world).unwrap();
        mon.suspend(Msid::ALL).unwrap();
        // Both suspended: data accessible on each.
        mon.get_data(a, Flags::ALL_COMM).unwrap();
        mon.get_data(b, Flags::ALL_COMM).unwrap();
        // ALL resume, then ALL suspend again — idempotent across mixes.
        mon.resume(a).unwrap();
        mon.suspend(Msid::ALL).unwrap();
        mon.free(Msid::ALL).unwrap();
        assert_eq!(mon.get_data(a, Flags::ALL_COMM).err(), Some(MonError::InvalidMsid));
        mon.finalize(rank).unwrap();
    });
}

/// The equivalence harness behind the `props!` below: run one seeded
/// workload on one topology under one executor, with a dense-forced and a
/// sparse-forced monitoring environment watching side by side, and assert
/// that every combination of {dense, sparse} × {star oracle, tree gather}
/// produces bit-identical matrices for every flag selection.
fn check_equivalence(
    machine: Machine,
    placement: Placement,
    n: usize,
    kind: ExecutorKind,
    events: Vec<(usize, usize, u64)>,
    bcast_root: usize,
    gather_root: usize,
) {
    let cfg = UniverseConfig::new(machine, placement).with_executor(kind);
    Universe::new(cfg).launch(move |rank| {
        let world = rank.comm_world();
        let me = world.rank();
        // Two environments observe the same traffic: one forced dense (the
        // seed's literal layout), one forced sparse.
        let dense = Monitoring::init_with_dense_limit(rank, usize::MAX).unwrap();
        let sparse = Monitoring::init_with_dense_limit(rank, 0).unwrap();
        let id_d = dense.start(rank, &world).unwrap();
        // The dense session must not record the sparse session's start
        // barrier (a session never records its own start): park it across
        // the second start so both observe exactly the same traffic.
        dense.suspend(id_d).unwrap();
        let id_s = sparse.start(rank, &world).unwrap();
        dense.resume(id_d).unwrap();

        // Seeded workload covering all three kinds: random matched p2p
        // pairs, a broadcast + barrier, and a one-sided put.
        for &(src, dst, bytes) in &events {
            if me == src {
                rank.send(&world, dst, 7, &vec![0u8; bytes as usize]);
            } else if me == dst {
                rank.recv::<u8>(&world, SrcSel::Rank(src), TagSel::Is(7));
            }
        }
        let mut payload = if me == bcast_root { vec![3u8; 257] } else { Vec::new() };
        rank.bcast(&world, bcast_root, &mut payload);
        let win = rank.win_create(&world, vec![0u8; 64]);
        if me == bcast_root {
            rank.put(&win, (me + 1) % n, 0, &[9u8; 48]);
        }
        rank.fence(&win);

        dense.suspend(id_d).unwrap();
        sparse.suspend(id_s).unwrap();
        for flags in [Flags::P2P_ONLY, Flags::COLL_ONLY, Flags::OSC_ONLY, Flags::ALL_COMM] {
            // Local rows agree between representations.
            assert_eq!(dense.get_data(id_d, flags).unwrap(), sparse.get_data(id_s, flags).unwrap());
            // Star gather on the dense environment is the seed oracle ...
            let oracle = dense.rootgather_data_star(rank, id_d, gather_root, flags).unwrap();
            // ... and tree/star × dense/sparse all reproduce it bit for bit.
            let tree_d = dense.rootgather_data(rank, id_d, gather_root, flags).unwrap();
            let tree_s = sparse.rootgather_data(rank, id_s, gather_root, flags).unwrap();
            let star_s = sparse.rootgather_data_star(rank, id_s, gather_root, flags).unwrap();
            assert_eq!(tree_d, oracle, "dense/tree vs dense/star");
            assert_eq!(tree_s, oracle, "sparse/tree vs dense/star");
            assert_eq!(star_s, oracle, "sparse/star vs dense/star");
            assert_eq!(oracle.is_some(), me == gather_root);
        }
        let cd = dense.trace_counters(rank, id_d).unwrap();
        let cs = sparse.trace_counters(rank, id_s).unwrap();
        assert_eq!((cd.events, cd.bytes), (cs.events, cs.bytes));

        dense.free(id_d).unwrap();
        sparse.free(id_s).unwrap();
        dense.finalize(rank).unwrap();
        sparse.finalize(rank).unwrap();
        rank.win_free(win);
    });
}

props! {
    /// Sparse-vs-dense accumulators and tree-vs-star gathers are
    /// bit-identical across 3 machine topologies and both executors, on a
    /// random workload per case (3 cases ≙ 3 seeds; replay with
    /// MIM_PROP_SEED).
    fn monitoring_equivalence_across_topologies_and_executors(g, cases = 3) {
        // (machine, placement, n): two packed clusters of different shape
        // and awkward size, plus a cyclic placement that splits every
        // communicator across nodes.
        let tree = TopologyTree::new(vec![2, 1, 8]);
        let topologies = [
            (Machine::cluster(2, 2, 4), Placement::packed(8), 8),
            (Machine::cluster(4, 1, 4), Placement::packed(13), 13),
            (Machine::cluster(2, 1, 8), Placement::cyclic_by_level(&tree, 8, 1), 8),
        ];
        for (machine, placement, n) in topologies {
            let events: Vec<(usize, usize, u64)> = g.vec(1..24, |g| {
                let src = g.index(n);
                let mut dst = g.index(n);
                if dst == src {
                    dst = (dst + 1) % n;
                }
                (src, dst, g.gen_range(0u64..2048))
            });
            let bcast_root = g.index(n);
            let gather_root = g.index(n);
            for kind in [ExecutorKind::Threads, ExecutorKind::Tasks] {
                if kind == ExecutorKind::Tasks && !mim_util::fiber::SUPPORTED {
                    continue;
                }
                check_equivalence(
                    machine.clone(),
                    placement.clone(),
                    n,
                    kind,
                    events.clone(),
                    bcast_root,
                    gather_root,
                );
            }
        }
    }
}

#[test]
fn live_window_queries_need_no_suspend() {
    // Acceptance: trace_counters and gather_window work on an ACTIVE
    // session; windows partition traffic; totals keep accumulating.
    let u = universe(4);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();

        send_one(rank, 100);
        let live = mon.trace_counters(rank, id).unwrap();
        assert_eq!(live.epoch, 0);
        if world.rank() == 0 {
            assert_eq!(live.window_bytes, 100, "live counters see the open window");
        }

        let w1 = mon.gather_window(rank, id, 0, Flags::P2P_ONLY).unwrap();
        assert_eq!(w1.epoch, 1, "every rank learns its sealed epoch");
        if world.rank() == 0 {
            let data = w1.data.expect("root receives the window matrices");
            assert_eq!(data.sizes.get(0, 1), 100);
            assert_eq!(data.sizes.total(), 100);
        } else {
            assert!(w1.data.is_none());
        }

        // Second window: only the new traffic, not a re-count of the first.
        send_one(rank, 40);
        let w2 = mon.gather_window(rank, id, 0, Flags::P2P_ONLY).unwrap();
        assert_eq!(w2.epoch, 2);
        if world.rank() == 0 {
            assert_eq!(w2.data.expect("root").sizes.total(), 40);
        }

        // The session never left the ACTIVE state: suspended-only accessors
        // still refuse, and totals cover both windows.
        assert_eq!(mon.get_data(id, Flags::ALL_COMM).err(), Some(MonError::SessionNotSuspended));
        let c = mon.trace_counters(rank, id).unwrap();
        assert_eq!(c.epoch, 2);
        if world.rank() == 0 {
            assert_eq!(c.bytes, 140, "totals span all windows; gather traffic muted");
        }

        mon.suspend(id).unwrap();
        if world.rank() == 0 {
            assert_eq!(mon.get_data(id, Flags::P2P_ONLY).unwrap().sizes[1], 140);
        }
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn get_info_reports_comm_size() {
    let u = universe(4);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        let info = mon.get_info(id).unwrap();
        assert_eq!(info.array_size, 4);
        assert_eq!(info.provided, 3);
        mon.suspend(id).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}
