//! End-to-end tests of the monitoring API on the live runtime.

use mim_mpisim::{SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

use crate::error::MonError;
use crate::flags::Flags;
use crate::session::Msid;

use super::Monitoring;

fn universe(n: usize) -> Universe {
    Universe::new(UniverseConfig::new(Machine::cluster(2, 2, 4), Placement::packed(n)))
}

#[test]
fn ping_monitored_row_and_matrix() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        if world.rank() == 0 {
            rank.send(&world, 1, 0, &[0u8; 100]);
            rank.send(&world, 1, 0, &[0u8; 50]);
        } else {
            rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
            rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
        }
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::P2P_ONLY).unwrap();
        if world.rank() == 0 {
            assert_eq!(row.counts, vec![0, 2]);
            assert_eq!(row.sizes, vec![0, 150]);
        } else {
            assert_eq!(row.counts, vec![0, 0]);
        }
        let data = mon.allgather_data(rank, id, Flags::P2P_ONLY).unwrap();
        assert_eq!(data.counts.get(0, 1), 2);
        assert_eq!(data.sizes.get(0, 1), 150);
        assert_eq!(data.counts.total(), 2);
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn collective_decomposition_visible() {
    // A binomial bcast over n ranks is decomposed into exactly n-1
    // point-to-point messages of the payload size — the paper's headline
    // feature.
    let n = 8;
    let payload = 4096u64;
    let u = universe(n);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        let mut data = if world.rank() == 0 { vec![0u8; payload as usize] } else { vec![] };
        rank.bcast(&world, 0, &mut data);
        mon.suspend(id).unwrap();
        let got = mon.allgather_data(rank, id, Flags::COLL_ONLY).unwrap();
        assert_eq!(got.counts.total(), (n - 1) as u64);
        assert_eq!(got.sizes.total(), payload * (n - 1) as u64);
        // And nothing was classified as user p2p.
        let p2p = mon.get_data(id, Flags::P2P_ONLY).unwrap();
        assert!(p2p.counts.iter().all(|&c| c == 0));
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn session_sees_traffic_on_other_communicators() {
    // Paper Sec 4.1: a session on the even/odd split records exchanges
    // between processes 0 and 2 even when they use MPI_COMM_WORLD.
    let u = universe(4);
    u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let evens = rank.comm_split(&world, (me % 2) as i64, me as i64);
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &evens).unwrap();
        if me == 0 {
            rank.send(&world, 2, 0, &[0u8; 64]); // member pair, via WORLD
            rank.send(&world, 1, 0, &[0u8; 32]); // 1 is not in my split comm
        }
        if me == 1 || me == 2 {
            rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
        }
        rank.barrier(&world);
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::P2P_ONLY).unwrap();
        if me == 0 {
            // In the even communicator, world rank 2 is comm rank 1.
            assert_eq!(row.counts, vec![0, 1]);
            assert_eq!(row.sizes, vec![0, 64]);
        } else {
            assert!(row.sizes.iter().all(|&b| b == 0));
        }
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn overlapping_sessions_are_independent() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let a = mon.start(rank, &world).unwrap();
        send_one(rank, 10);
        let b = mon.start(rank, &world).unwrap();
        send_one(rank, 20);
        mon.suspend(a).unwrap();
        send_one(rank, 40);
        mon.suspend(b).unwrap();
        if world.rank() == 0 {
            // a saw the first two sends, b the last two.
            assert_eq!(mon.get_data(a, Flags::P2P_ONLY).unwrap().sizes[1], 30);
            assert_eq!(mon.get_data(b, Flags::P2P_ONLY).unwrap().sizes[1], 60);
        }
        mon.free(Msid::ALL).unwrap();
        mon.finalize(rank).unwrap();
    });
}

fn send_one(rank: &mim_mpisim::Rank, bytes: usize) {
    let world = rank.comm_world();
    if world.rank() == 0 {
        rank.send(&world, 1, 0, &vec![0u8; bytes]);
    } else if world.rank() == 1 {
        rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
    }
    rank.barrier(&world);
}

#[test]
fn suspend_resume_reset_state_machine() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        // Data access while active is forbidden.
        assert_eq!(mon.get_data(id, Flags::ALL_COMM).err(), Some(MonError::SessionNotSuspended));
        assert_eq!(mon.reset(id).err(), Some(MonError::SessionNotSuspended));
        assert_eq!(mon.resume(id).err(), Some(MonError::MultipleCall));
        send_one(rank, 10);
        mon.suspend(id).unwrap();
        assert_eq!(mon.suspend(id).err(), Some(MonError::MultipleCall));
        // Suspended sessions do not record.
        send_one(rank, 100);
        if world.rank() == 0 {
            assert_eq!(mon.get_data(id, Flags::P2P_ONLY).unwrap().sizes[1], 10);
        }
        // Resume records again; reset zeroes.
        mon.resume(id).unwrap();
        send_one(rank, 5);
        mon.suspend(id).unwrap();
        if world.rank() == 0 {
            assert_eq!(mon.get_data(id, Flags::P2P_ONLY).unwrap().sizes[1], 15);
        }
        mon.reset(id).unwrap();
        assert_eq!(mon.get_data(id, Flags::P2P_ONLY).unwrap().sizes, vec![0, 0]);
        mon.free(id).unwrap();
        assert_eq!(mon.get_data(id, Flags::P2P_ONLY).err(), Some(MonError::InvalidMsid));
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn finalize_requires_suspended_sessions() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        assert_eq!(mon.finalize(rank).err(), Some(MonError::SessionStillActive));
        // Suspend (without freeing): finalize now succeeds and frees it.
        mon.suspend(id).unwrap();
        mon.finalize(rank).unwrap();
        // The environment is gone: everything reports MISSING_INIT.
        assert_eq!(mon.get_data(id, Flags::ALL_COMM).err(), Some(MonError::MissingInit));
        assert_eq!(mon.suspend(id).err(), Some(MonError::MissingInit));
        assert_eq!(mon.finalize(rank).err(), Some(MonError::MissingInit));
        // A fresh environment can be set up afterwards (paper: init/finalize
        // may be called multiple times as long as environments don't overlap).
        let mon2 = Monitoring::init(rank).unwrap();
        let id2 = mon2.start(rank, &world).unwrap();
        mon2.suspend(id2).unwrap();
        mon2.free(id2).unwrap();
        mon2.finalize(rank).unwrap();
    });
}

#[test]
fn rootgather_and_invalid_root() {
    let u = universe(4);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        send_one(rank, 33);
        mon.suspend(id).unwrap();
        assert_eq!(
            mon.rootgather_data(rank, id, 99, Flags::ALL_COMM).err(),
            Some(MonError::InvalidRoot)
        );
        let data = mon.rootgather_data(rank, id, 2, Flags::P2P_ONLY).unwrap();
        if world.rank() == 2 {
            let data = data.expect("root receives the matrices");
            assert_eq!(data.sizes.get(0, 1), 33);
        } else {
            assert!(data.is_none());
        }
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn barrier_generates_zero_length_messages() {
    // Paper Sec 4.1: "some collective MPI routines might generate
    // point-to-point zero-length messages".
    let u = universe(4);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        rank.barrier(&world);
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::COLL_ONLY).unwrap();
        assert!(row.counts.iter().sum::<u64>() > 0, "barrier sends messages");
        assert_eq!(row.sizes.iter().sum::<u64>(), 0, "barrier messages are empty");
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn one_sided_traffic_classified_as_osc() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let win = rank.win_create(&world, vec![0u8; 128]);
        let id = mon.start(rank, &world).unwrap();
        if world.rank() == 0 {
            rank.put(&win, 1, 0, &[7u8; 128]);
        }
        rank.fence(&win);
        mon.suspend(id).unwrap();
        let row = mon.get_data(id, Flags::OSC_ONLY).unwrap();
        if world.rank() == 0 {
            assert_eq!(row.sizes, vec![0, 128]);
            assert_eq!(row.counts, vec![0, 1]);
        }
        // The fence's barrier is collective traffic, not OSC.
        let coll = mon.get_data(id, Flags::COLL_ONLY).unwrap();
        assert!(coll.counts.iter().sum::<u64>() > 0);
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
        rank.win_free(win);
    });
}

#[test]
fn flush_and_rootflush_write_prof_files() {
    let dir = std::env::temp_dir().join(format!("mim-core-flush-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("barrier").to_string_lossy().into_owned();
    let u = universe(2);
    {
        let base = base.clone();
        u.launch(move |rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            let id = mon.start(rank, &world).unwrap();
            if world.rank() == 0 {
                rank.send(&world, 1, 0, &[1u8; 77]);
            } else {
                rank.recv::<u8>(&world, SrcSel::Any, TagSel::Any);
            }
            rank.barrier(&world);
            mon.suspend(id).unwrap();
            mon.flush(id, &base, Flags::P2P_ONLY).unwrap();
            mon.rootflush(rank, id, 0, &base, Flags::P2P_ONLY).unwrap();
            mon.free(id).unwrap();
            mon.finalize(rank).unwrap();
        });
    }
    let rank0 = std::fs::read_to_string(format!("{base}.0.prof")).unwrap();
    assert!(rank0.contains("0 1 1 77"), "rank 0 row file: {rank0}");
    let counts = std::fs::read_to_string(format!("{base}_counts.0.prof")).unwrap();
    assert_eq!(counts, "0,1\n0,0\n");
    let sizes = std::fs::read_to_string(format!("{base}_sizes.0.prof")).unwrap();
    assert_eq!(sizes, "0,77\n0,0\n");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_msid_suspends_everything() {
    let u = universe(2);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let a = mon.start(rank, &world).unwrap();
        let b = mon.start(rank, &world).unwrap();
        mon.suspend(Msid::ALL).unwrap();
        // Both suspended: data accessible on each.
        mon.get_data(a, Flags::ALL_COMM).unwrap();
        mon.get_data(b, Flags::ALL_COMM).unwrap();
        // ALL resume, then ALL suspend again — idempotent across mixes.
        mon.resume(a).unwrap();
        mon.suspend(Msid::ALL).unwrap();
        mon.free(Msid::ALL).unwrap();
        assert_eq!(mon.get_data(a, Flags::ALL_COMM).err(), Some(MonError::InvalidMsid));
        mon.finalize(rank).unwrap();
    });
}

#[test]
fn get_info_reports_comm_size() {
    let u = universe(4);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        let info = mon.get_info(id).unwrap();
        assert_eq!(info.array_size, 4);
        assert_eq!(info.provided, 3);
        mon.suspend(id).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
    });
}
