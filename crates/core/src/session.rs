//! Session state: identifiers, per-kind traffic rows, slot table.

use std::collections::HashMap;

use mim_mpisim::{Comm, PmlEvent};

use crate::error::{MonError, Result};
use crate::flags::Flags;

/// A monitoring-session identifier (the paper's opaque `MPI_M_msid`).
///
/// Encodes a slot index and a generation counter so a freed-then-reused slot
/// cannot be addressed through a stale id (`MPI_M_INVALID_MSID`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Msid(pub(crate) u64);

impl Msid {
    /// The paper's `MPI_M_ALL_MSID`: act on every live session.
    pub const ALL: Msid = Msid(u64::MAX);

    pub(crate) fn encode(slot: usize, generation: u32) -> Msid {
        Msid(((generation as u64) << 32) | slot as u64)
    }

    pub(crate) fn slot(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Lifecycle state of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Recording.
    Active,
    /// Not recording; data accessible.
    Suspended,
}

/// One live session.
pub(crate) struct SessionData {
    pub(crate) comm: Comm,
    /// world rank → communicator rank, for O(1) membership tests on the
    /// send hot path.
    members: HashMap<usize, usize>,
    pub(crate) state: SessionState,
    /// Messages sent by this process, per kind (p2p / coll / osc) and
    /// destination communicator rank.
    counts: [Vec<u64>; 3],
    /// Bytes sent by this process, same indexing.
    sizes: [Vec<u64>; 3],
    /// Total recorded events (all kinds), for the trace-counters API.
    pub(crate) events: u64,
    /// Total recorded bytes (all kinds), same.
    pub(crate) bytes: u64,
}

impl SessionData {
    pub(crate) fn new(comm: Comm) -> Self {
        let n = comm.size();
        let members = comm.group().iter().enumerate().map(|(r, &w)| (w, r)).collect();
        Self {
            comm,
            members,
            state: SessionState::Active,
            counts: [vec![0; n], vec![0; n], vec![0; n]],
            sizes: [vec![0; n], vec![0; n], vec![0; n]],
            events: 0,
            bytes: 0,
        }
    }

    /// Record a wire event if the session is active and both endpoints are
    /// members of the attached communicator — regardless of which
    /// communicator carried the message.
    pub(crate) fn record(&mut self, ev: &PmlEvent) {
        if self.state != SessionState::Active {
            return;
        }
        // The event's sender is this process; it is a member by construction
        // (sessions are started collectively on their communicator), but a
        // session started on a sub-communicator must ignore traffic to
        // non-members.
        let Some(&dst) = self.members.get(&ev.dst_world) else { return };
        if !self.members.contains_key(&ev.src_world) {
            return;
        }
        let k = Flags::kind_index(ev.kind);
        self.counts[k][dst] += 1;
        self.sizes[k][dst] += ev.bytes;
        self.events += 1;
        self.bytes += ev.bytes;
    }

    /// Zero all recorded data.
    pub(crate) fn reset(&mut self) {
        for k in 0..3 {
            self.counts[k].fill(0);
            self.sizes[k].fill(0);
        }
        self.events = 0;
        self.bytes = 0;
    }

    /// This process's (counts, sizes) rows summed over the selected kinds.
    pub(crate) fn row(&self, flags: Flags) -> (Vec<u64>, Vec<u64>) {
        let n = self.comm.size();
        let mut counts = vec![0u64; n];
        let mut sizes = vec![0u64; n];
        for k in flags.selected_indices() {
            for d in 0..n {
                counts[d] += self.counts[k][d];
                sizes[d] += self.sizes[k][d];
            }
        }
        (counts, sizes)
    }
}

/// Fixed-capacity slot table for sessions (the paper has a maximum session
/// count: `MPI_M_SESSION_OVERFLOW`).
///
/// Stale-id safety: every live id carries its slot's generation, bumped on
/// each reuse.  Generations start at [`SessionTable::FIRST_GENERATION`] for
/// fresh and reused slots alike, and a slot whose *next* generation would
/// reach the [`SessionTable::RETIRED`] sentinel is retired — never handed
/// out again — so the counter saturates instead of wrapping and a stale
/// `Msid` from 2³²−2 reuses ago can never validate against a younger
/// session.
pub(crate) struct SessionTable {
    slots: Vec<Option<SessionData>>,
    generations: Vec<u32>,
    max_sessions: usize,
}

/// Paper-faithful cap on simultaneously live sessions.
pub const MAX_SESSIONS: usize = 256;

impl SessionTable {
    /// Generation of every slot's first session (fresh and reused slots are
    /// indistinguishable to id holders).
    pub(crate) const FIRST_GENERATION: u32 = 1;

    /// Sentinel generation of a retired slot: saturation point of the
    /// counter, never encoded into a live `Msid`.
    pub(crate) const RETIRED: u32 = u32::MAX;

    pub(crate) fn new(max_sessions: usize) -> Self {
        Self { slots: Vec::new(), generations: Vec::new(), max_sessions }
    }

    pub(crate) fn insert(&mut self, data: SessionData) -> Result<Msid> {
        let reusable = self
            .slots
            .iter()
            .zip(&self.generations)
            .position(|(s, &g)| s.is_none() && g + 1 < Self::RETIRED);
        if let Some(slot) = reusable {
            self.slots[slot] = Some(data);
            self.generations[slot] += 1;
            return Ok(Msid::encode(slot, self.generations[slot]));
        }
        if self.slots.len() >= self.max_sessions {
            return Err(MonError::SessionOverflow);
        }
        self.slots.push(Some(data));
        self.generations.push(Self::FIRST_GENERATION);
        Ok(Msid::encode(self.slots.len() - 1, Self::FIRST_GENERATION))
    }

    pub(crate) fn get(&self, msid: Msid) -> Result<&SessionData> {
        self.check(msid)?;
        self.slots[msid.slot()].as_ref().ok_or(MonError::InvalidMsid)
    }

    pub(crate) fn get_mut(&mut self, msid: Msid) -> Result<&mut SessionData> {
        self.check(msid)?;
        self.slots[msid.slot()].as_mut().ok_or(MonError::InvalidMsid)
    }

    pub(crate) fn remove(&mut self, msid: Msid) -> Result<SessionData> {
        self.check(msid)?;
        self.slots[msid.slot()].take().ok_or(MonError::InvalidMsid)
    }

    fn check(&self, msid: Msid) -> Result<()> {
        if msid == Msid::ALL {
            return Err(MonError::InvalidMsid);
        }
        let slot = msid.slot();
        if slot >= self.slots.len()
            || self.slots[slot].is_none()
            || self.generations[slot] != msid.generation()
        {
            return Err(MonError::InvalidMsid);
        }
        Ok(())
    }

    /// Msids of every live session.
    pub(crate) fn live_msids(&self) -> Vec<Msid> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| Msid::encode(i, self.generations[i])))
            .collect()
    }

    /// True when any session is active.
    pub(crate) fn any_active(&self) -> bool {
        self.slots.iter().flatten().any(|s| s.state == SessionState::Active)
    }

    /// Record an event into every live session (each filters itself).
    pub(crate) fn record(&mut self, ev: &PmlEvent) {
        for s in self.slots.iter_mut().flatten() {
            s.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_mpisim::MsgKind;
    use std::sync::Arc;

    fn comm3() -> Comm {
        // World ranks 0, 2, 4; "we" are world rank 0 (comm rank 0).
        Comm::from_raw(11, Arc::new(vec![0, 2, 4]), 0)
    }

    fn ev(dst_world: usize, bytes: u64, kind: MsgKind) -> PmlEvent {
        PmlEvent {
            src_world: 0,
            dst_world,
            src_core: 0,
            dst_core: dst_world,
            bytes,
            kind,
            vtime_ns: 0.0,
        }
    }

    #[test]
    fn msid_encoding_roundtrip() {
        let m = Msid::encode(17, 3);
        assert_eq!(m.slot(), 17);
        assert_eq!(m.generation(), 3);
        assert_ne!(m, Msid::ALL);
    }

    #[test]
    fn records_members_only() {
        let mut s = SessionData::new(comm3());
        s.record(&ev(2, 100, MsgKind::P2pUser)); // member, comm rank 1
        s.record(&ev(1, 999, MsgKind::P2pUser)); // not a member
        let (counts, sizes) = s.row(Flags::ALL_COMM);
        assert_eq!(counts, vec![0, 1, 0]);
        assert_eq!(sizes, vec![0, 100, 0]);
    }

    #[test]
    fn kind_separation_and_flag_sums() {
        let mut s = SessionData::new(comm3());
        s.record(&ev(2, 10, MsgKind::P2pUser));
        s.record(&ev(2, 20, MsgKind::Collective));
        s.record(&ev(4, 40, MsgKind::OneSided));
        assert_eq!(s.row(Flags::P2P_ONLY).1, vec![0, 10, 0]);
        assert_eq!(s.row(Flags::COLL_ONLY).1, vec![0, 20, 0]);
        assert_eq!(s.row(Flags::OSC_ONLY).1, vec![0, 0, 40]);
        assert_eq!(s.row(Flags::P2P_ONLY | Flags::COLL_ONLY).1, vec![0, 30, 0]);
        assert_eq!(s.row(Flags::ALL_COMM).0, vec![0, 2, 1]);
    }

    #[test]
    fn suspended_records_nothing_and_reset_zeroes() {
        let mut s = SessionData::new(comm3());
        s.record(&ev(2, 10, MsgKind::P2pUser));
        s.state = SessionState::Suspended;
        s.record(&ev(2, 10, MsgKind::P2pUser));
        assert_eq!(s.row(Flags::ALL_COMM).0, vec![0, 1, 0]);
        s.reset();
        assert_eq!(s.row(Flags::ALL_COMM).1, vec![0, 0, 0]);
    }

    #[test]
    fn table_overflow_and_stale_ids() {
        let mut t = SessionTable::new(2);
        let a = t.insert(SessionData::new(comm3())).unwrap();
        let _b = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!(t.insert(SessionData::new(comm3())), Err(MonError::SessionOverflow));
        t.remove(a).unwrap();
        let c = t.insert(SessionData::new(comm3())).unwrap();
        // Slot is reused but the old id is stale.
        assert_eq!(c.slot(), a.slot());
        assert!(t.get(a).is_err());
        assert!(t.get(c).is_ok());
        assert_eq!(t.get(Msid::ALL).err(), Some(MonError::InvalidMsid));
    }

    #[test]
    fn generations_unified_and_wrap_impossible() {
        let mut t = SessionTable::new(4);
        // Fresh slots and reused slots start ids at the same generation.
        let a = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!(a.generation(), SessionTable::FIRST_GENERATION);
        t.remove(a).unwrap();
        let b = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!((b.slot(), b.generation()), (a.slot(), SessionTable::FIRST_GENERATION + 1));
        assert!(t.get(a).is_err(), "stale id must not validate after reuse");
        t.remove(b).unwrap();

        // Saturate slot 0's generation counter to one step below the
        // retirement sentinel: the slot must be skipped, not wrapped —
        // otherwise a stale Msid from 2^32 generations ago would validate
        // against the new session.
        t.generations[0] = SessionTable::RETIRED - 1;
        let c = t.insert(SessionData::new(comm3())).unwrap();
        assert_ne!(c.slot(), a.slot(), "exhausted slot must be retired, not reused");
        assert_eq!(c.generation(), SessionTable::FIRST_GENERATION);
        let stale = Msid::encode(a.slot(), SessionTable::FIRST_GENERATION);
        assert!(t.get(stale).is_err());
        // A retired slot permanently spends capacity: with max_sessions = 4
        // and one slot retired, only three more sessions fit.
        let _d = t.insert(SessionData::new(comm3())).unwrap();
        let _e = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!(t.insert(SessionData::new(comm3())).err(), Some(MonError::SessionOverflow));
    }

    #[test]
    fn live_msids_and_any_active() {
        let mut t = SessionTable::new(8);
        let a = t.insert(SessionData::new(comm3())).unwrap();
        let b = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!(t.live_msids(), vec![a, b]);
        assert!(t.any_active());
        t.get_mut(a).unwrap().state = SessionState::Suspended;
        t.get_mut(b).unwrap().state = SessionState::Suspended;
        assert!(!t.any_active());
    }
}
