//! Session state: identifiers, per-pair traffic accumulators, slot table.

use std::collections::HashMap;

use mim_mpisim::{Comm, PmlEvent};

use crate::accum::{PairAccum, PairEntry};
use crate::error::{MonError, Result};
use crate::flags::Flags;

/// A monitoring-session identifier (the paper's opaque `MPI_M_msid`).
///
/// Encodes a slot index and a generation counter so a freed-then-reused slot
/// cannot be addressed through a stale id (`MPI_M_INVALID_MSID`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Msid(pub(crate) u64);

impl Msid {
    /// The paper's `MPI_M_ALL_MSID`: act on every live session.
    pub const ALL: Msid = Msid(u64::MAX);

    /// Largest encodable slot: one below `ALL`'s low word, so no encoded id
    /// can ever share `ALL`'s slot bits.
    pub(crate) const MAX_SLOT: usize = (u32::MAX - 1) as usize;

    pub(crate) fn encode(slot: usize, generation: u32) -> Msid {
        // A slot beyond the 32-bit field would silently spill into the
        // generation bits and corrupt both halves of the id.
        assert!(slot <= Self::MAX_SLOT, "session slot {slot} exceeds the 32-bit id space");
        assert!(generation != u32::MAX, "the RETIRED generation must never be encoded");
        Msid(((generation as u64) << 32) | slot as u64)
    }

    pub(crate) fn slot(self) -> usize {
        assert!(self != Msid::ALL, "ALL addresses every session, not slot 0xffff_ffff");
        (self.0 & 0xffff_ffff) as usize
    }

    pub(crate) fn generation(self) -> u32 {
        assert!(self != Msid::ALL, "ALL has no generation");
        (self.0 >> 32) as u32
    }
}

/// Lifecycle state of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Recording.
    Active,
    /// Not recording; data accessible.
    Suspended,
}

/// One sealed epoch window of a session: everything this process recorded
/// between the previous [`advance`](SessionData::advance_window) and this
/// one.  Produced by [`crate::Monitoring::advance_window`] and shipped by
/// [`crate::Monitoring::gather_window`] — the unit of live (no-suspend)
/// introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowDelta {
    /// 1-based index of the sealed window (the session's epoch counter
    /// after sealing).  Ranks advancing their windows through the same
    /// collective calls stay in lockstep.
    pub epoch: u64,
    /// Per-destination traffic of the window, sorted by destination;
    /// untouched pairs are absent.
    pub entries: Vec<PairEntry>,
    /// Messages recorded in the window (all kinds).
    pub events: u64,
    /// Bytes recorded in the window (all kinds).
    pub bytes: u64,
}

/// One live session.
pub(crate) struct SessionData {
    pub(crate) comm: Comm,
    /// world rank → communicator rank, for O(1) membership tests on the
    /// send hot path.
    members: HashMap<usize, usize>,
    pub(crate) state: SessionState,
    /// Everything recorded since start/reset (what the suspended-data
    /// accessors read).
    total: PairAccum,
    /// The current (unsealed) epoch window: recorded in parallel with
    /// `total`, drained by [`SessionData::advance_window`].
    window: PairAccum,
    /// Number of sealed windows since start/reset.
    pub(crate) epoch: u64,
    /// Total recorded events (all kinds), for the trace-counters API.
    pub(crate) events: u64,
    /// Total recorded bytes (all kinds), same.
    pub(crate) bytes: u64,
    /// Events recorded in the current window.
    pub(crate) window_events: u64,
    /// Bytes recorded in the current window.
    pub(crate) window_bytes: u64,
    /// While set, [`SessionData::record`] drops events: the monitoring
    /// plane mutes a session around its own control traffic (e.g. the
    /// tree gather of a live window) so it does not observe itself.
    pub(crate) muted: bool,
}

impl SessionData {
    /// Session with the default threshold (test convenience; the live path
    /// goes through [`SessionData::with_dense_limit`]).
    #[cfg(test)]
    pub(crate) fn new(comm: Comm) -> Self {
        Self::with_dense_limit(comm, PairAccum::DEFAULT_DENSE_LIMIT)
    }

    /// Session with an explicit dense/sparse threshold for its accumulators
    /// (see [`crate::Monitoring::init_with_dense_limit`]).
    pub(crate) fn with_dense_limit(comm: Comm, limit: usize) -> Self {
        let n = comm.size();
        let members = comm.group().iter().enumerate().map(|(r, &w)| (w, r)).collect();
        Self {
            comm,
            members,
            state: SessionState::Active,
            total: PairAccum::with_dense_limit(n, limit),
            window: PairAccum::with_dense_limit(n, limit),
            epoch: 0,
            events: 0,
            bytes: 0,
            window_events: 0,
            window_bytes: 0,
            muted: false,
        }
    }

    /// Record a wire event if the session is active and both endpoints are
    /// members of the attached communicator — regardless of which
    /// communicator carried the message.
    pub(crate) fn record(&mut self, ev: &PmlEvent) {
        if self.state != SessionState::Active || self.muted {
            return;
        }
        // The event's sender is this process; it is a member by construction
        // (sessions are started collectively on their communicator), but a
        // session started on a sub-communicator must ignore traffic to
        // non-members.
        let Some(&dst) = self.members.get(&ev.dst_world) else { return };
        if !self.members.contains_key(&ev.src_world) {
            return;
        }
        let k = Flags::kind_index(ev.kind);
        self.total.record(dst, k, ev.bytes);
        self.window.record(dst, k, ev.bytes);
        self.events += 1;
        self.bytes += ev.bytes;
        self.window_events += 1;
        self.window_bytes += ev.bytes;
    }

    /// Zero all recorded data, including the current window and the epoch
    /// counter.
    pub(crate) fn reset(&mut self) {
        self.total.reset();
        self.window.reset();
        self.epoch = 0;
        self.events = 0;
        self.bytes = 0;
        self.window_events = 0;
        self.window_bytes = 0;
    }

    /// Seal the current epoch window: drain its entries, bump the epoch, and
    /// start recording the next window.  Legal in any session state — the
    /// whole point is that it needs no suspend barrier.
    pub(crate) fn advance_window(&mut self) -> WindowDelta {
        self.epoch += 1;
        let entries = self.window.drain_entries();
        let delta = WindowDelta {
            epoch: self.epoch,
            entries,
            events: self.window_events,
            bytes: self.window_bytes,
        };
        self.window_events = 0;
        self.window_bytes = 0;
        delta
    }

    /// Re-attach the session to a grown or shrunk communicator: every
    /// destination still present keeps its recorded traffic under its *new*
    /// communicator rank (the mapping runs through world ranks, the stable
    /// identity across membership epochs), departed destinations' columns
    /// are dropped, and joiners start at zero.  Totals, the open window and
    /// the epoch counter all survive — a rebind is a change of coordinates,
    /// not a reset.
    pub(crate) fn rebind(&mut self, new_comm: Comm, limit: usize) {
        let members: HashMap<usize, usize> =
            new_comm.group().iter().enumerate().map(|(r, &w)| (w, r)).collect();
        let mut map = vec![None; self.comm.size()];
        for (r, &w) in self.comm.group().iter().enumerate() {
            map[r] = members.get(&w).copied();
        }
        let n = new_comm.size();
        self.total = self.total.reindex(&map, n, limit);
        self.window = self.window.reindex(&map, n, limit);
        self.members = members;
        self.comm = new_comm;
    }

    /// This process's (counts, sizes) rows summed over the selected kinds.
    pub(crate) fn row(&self, flags: Flags) -> (Vec<u64>, Vec<u64>) {
        self.total.row(flags)
    }

    /// Flag-summed sparse row of the session's total data (the gather wire
    /// format; see [`PairAccum::sparse_row`]).
    pub(crate) fn sparse_row(&self, flags: Flags) -> Vec<(u64, u64, u64)> {
        self.total.sparse_row(flags)
    }
}

/// Fixed-capacity slot table for sessions (the paper has a maximum session
/// count: `MPI_M_SESSION_OVERFLOW`).
///
/// Stale-id safety: every live id carries its slot's generation, bumped on
/// each reuse.  Generations start at [`SessionTable::FIRST_GENERATION`] for
/// fresh and reused slots alike, and a slot whose *next* generation would
/// reach the [`SessionTable::RETIRED`] sentinel is retired — never handed
/// out again — so the counter saturates instead of wrapping and a stale
/// `Msid` from 2³²−2 reuses ago can never validate against a younger
/// session.
pub(crate) struct SessionTable {
    slots: Vec<Option<SessionData>>,
    generations: Vec<u32>,
    max_sessions: usize,
}

/// Paper-faithful cap on simultaneously live sessions.
pub const MAX_SESSIONS: usize = 256;

impl SessionTable {
    /// Generation of every slot's first session (fresh and reused slots are
    /// indistinguishable to id holders).
    pub(crate) const FIRST_GENERATION: u32 = 1;

    /// Sentinel generation of a retired slot: saturation point of the
    /// counter, never encoded into a live `Msid`.
    pub(crate) const RETIRED: u32 = u32::MAX;

    pub(crate) fn new(max_sessions: usize) -> Self {
        assert!(max_sessions <= Msid::MAX_SLOT, "slot indices must fit the id's 32-bit field");
        Self { slots: Vec::new(), generations: Vec::new(), max_sessions }
    }

    pub(crate) fn insert(&mut self, data: SessionData) -> Result<Msid> {
        let reusable = self
            .slots
            .iter()
            .zip(&self.generations)
            .position(|(s, &g)| s.is_none() && g + 1 < Self::RETIRED);
        if let Some(slot) = reusable {
            self.slots[slot] = Some(data);
            self.generations[slot] += 1;
            return Ok(Msid::encode(slot, self.generations[slot]));
        }
        if self.slots.len() >= self.max_sessions {
            return Err(MonError::SessionOverflow);
        }
        self.slots.push(Some(data));
        self.generations.push(Self::FIRST_GENERATION);
        Ok(Msid::encode(self.slots.len() - 1, Self::FIRST_GENERATION))
    }

    pub(crate) fn get(&self, msid: Msid) -> Result<&SessionData> {
        self.check(msid)?;
        self.slots[msid.slot()].as_ref().ok_or(MonError::InvalidMsid)
    }

    pub(crate) fn get_mut(&mut self, msid: Msid) -> Result<&mut SessionData> {
        self.check(msid)?;
        self.slots[msid.slot()].as_mut().ok_or(MonError::InvalidMsid)
    }

    pub(crate) fn remove(&mut self, msid: Msid) -> Result<SessionData> {
        self.check(msid)?;
        self.slots[msid.slot()].take().ok_or(MonError::InvalidMsid)
    }

    fn check(&self, msid: Msid) -> Result<()> {
        // ALL is rejected *before* any slot decoding: its low word would
        // alias slot 0xffff_ffff (Msid::slot asserts the same invariant).
        if msid == Msid::ALL {
            return Err(MonError::InvalidMsid);
        }
        let slot = msid.slot();
        if slot >= self.slots.len()
            || self.slots[slot].is_none()
            || self.generations[slot] != msid.generation()
        {
            return Err(MonError::InvalidMsid);
        }
        Ok(())
    }

    /// Msids of every live session.
    pub(crate) fn live_msids(&self) -> Vec<Msid> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| Msid::encode(i, self.generations[i])))
            .collect()
    }

    /// True when any session is active.
    pub(crate) fn any_active(&self) -> bool {
        self.slots.iter().flatten().any(|s| s.state == SessionState::Active)
    }

    /// Record an event into every live session (each filters itself).
    pub(crate) fn record(&mut self, ev: &PmlEvent) {
        for s in self.slots.iter_mut().flatten() {
            s.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_mpisim::MsgKind;
    use std::sync::Arc;

    fn comm3() -> Comm {
        // World ranks 0, 2, 4; "we" are world rank 0 (comm rank 0).
        Comm::from_raw(11, Arc::new(vec![0, 2, 4]), 0)
    }

    fn ev(dst_world: usize, bytes: u64, kind: MsgKind) -> PmlEvent {
        PmlEvent {
            src_world: 0,
            dst_world,
            src_core: 0,
            dst_core: dst_world,
            bytes,
            kind,
            vtime_ns: 0.0,
        }
    }

    #[test]
    fn msid_encoding_roundtrip() {
        let m = Msid::encode(17, 3);
        assert_eq!(m.slot(), 17);
        assert_eq!(m.generation(), 3);
        assert_ne!(m, Msid::ALL);
    }

    #[test]
    #[should_panic(expected = "exceeds the 32-bit id space")]
    fn msid_encode_rejects_oversized_slot() {
        // Regression: `slot as u64` used to spill into the generation bits,
        // silently corrupting both halves of the id.
        let _ = Msid::encode(1usize << 32, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the 32-bit id space")]
    fn msid_encode_rejects_all_aliasing_slot() {
        // Regression: slot 0xffff_ffff would collide with ALL's low word.
        let _ = Msid::encode(u32::MAX as usize, 1);
    }

    #[test]
    #[should_panic(expected = "ALL addresses every session")]
    fn msid_slot_of_all_is_rejected() {
        // Regression: ALL.slot() used to silently alias slot 0xffff_ffff.
        let _ = Msid::ALL.slot();
    }

    #[test]
    fn records_members_only() {
        let mut s = SessionData::new(comm3());
        s.record(&ev(2, 100, MsgKind::P2pUser)); // member, comm rank 1
        s.record(&ev(1, 999, MsgKind::P2pUser)); // not a member
        let (counts, sizes) = s.row(Flags::ALL_COMM);
        assert_eq!(counts, vec![0, 1, 0]);
        assert_eq!(sizes, vec![0, 100, 0]);
    }

    #[test]
    fn kind_separation_and_flag_sums() {
        let mut s = SessionData::new(comm3());
        s.record(&ev(2, 10, MsgKind::P2pUser));
        s.record(&ev(2, 20, MsgKind::Collective));
        s.record(&ev(4, 40, MsgKind::OneSided));
        assert_eq!(s.row(Flags::P2P_ONLY).1, vec![0, 10, 0]);
        assert_eq!(s.row(Flags::COLL_ONLY).1, vec![0, 20, 0]);
        assert_eq!(s.row(Flags::OSC_ONLY).1, vec![0, 0, 40]);
        assert_eq!(s.row(Flags::P2P_ONLY | Flags::COLL_ONLY).1, vec![0, 30, 0]);
        assert_eq!(s.row(Flags::ALL_COMM).0, vec![0, 2, 1]);
        assert_eq!(s.sparse_row(Flags::ALL_COMM), vec![(1, 2, 30), (2, 1, 40)]);
    }

    #[test]
    fn suspended_records_nothing_and_reset_zeroes() {
        let mut s = SessionData::new(comm3());
        s.record(&ev(2, 10, MsgKind::P2pUser));
        s.state = SessionState::Suspended;
        s.record(&ev(2, 10, MsgKind::P2pUser));
        assert_eq!(s.row(Flags::ALL_COMM).0, vec![0, 1, 0]);
        s.reset();
        assert_eq!(s.row(Flags::ALL_COMM).1, vec![0, 0, 0]);
    }

    #[test]
    fn muted_session_drops_events() {
        let mut s = SessionData::new(comm3());
        s.muted = true;
        s.record(&ev(2, 10, MsgKind::P2pUser));
        s.muted = false;
        s.record(&ev(2, 5, MsgKind::P2pUser));
        assert_eq!(s.row(Flags::ALL_COMM).1, vec![0, 5, 0]);
        assert_eq!(s.events, 1);
    }

    #[test]
    fn windows_seal_deltas_while_totals_accumulate() {
        let mut s = SessionData::new(comm3());
        s.record(&ev(2, 10, MsgKind::P2pUser));
        let w1 = s.advance_window();
        assert_eq!(w1.epoch, 1);
        assert_eq!(w1.events, 1);
        assert_eq!(w1.bytes, 10);
        assert_eq!(w1.entries.len(), 1);
        assert_eq!((w1.entries[0].dst, w1.entries[0].sizes[0]), (1, 10));

        s.record(&ev(4, 30, MsgKind::Collective));
        let w2 = s.advance_window();
        assert_eq!(w2.epoch, 2);
        assert_eq!(w2.bytes, 30);
        assert_eq!(w2.entries.len(), 1, "window holds only its own delta");
        assert_eq!(w2.entries[0].dst, 2);

        // An empty window still advances the epoch.
        let w3 = s.advance_window();
        assert_eq!((w3.epoch, w3.events, w3.bytes), (3, 0, 0));
        assert!(w3.entries.is_empty());

        // Totals are unaffected by sealing.
        assert_eq!(s.row(Flags::ALL_COMM).1, vec![0, 10, 30]);
        assert_eq!((s.events, s.bytes), (2, 40));

        // Reset zeroes the epoch counter too.
        s.state = SessionState::Suspended;
        s.reset();
        assert_eq!(s.epoch, 0);
    }

    #[test]
    fn rebind_remaps_by_world_rank_and_keeps_windows() {
        let mut s = SessionData::new(comm3()); // world ranks [0, 2, 4]
        s.record(&ev(2, 10, MsgKind::P2pUser)); // comm rank 1
        s.record(&ev(4, 30, MsgKind::Collective)); // comm rank 2
        let _ = s.advance_window();
        s.record(&ev(4, 5, MsgKind::P2pUser)); // lands in window 2

        // World 2 departs, world 6 joins: [0, 4, 6].
        s.rebind(Comm::from_raw(12, Arc::new(vec![0, 4, 6]), 0), PairAccum::DEFAULT_DENSE_LIMIT);
        assert_eq!(s.row(Flags::ALL_COMM).1, vec![0, 35, 0], "world 4 now comm rank 1");
        assert_eq!(s.row(Flags::ALL_COMM).0, vec![0, 2, 0], "world 2's column dropped");
        assert_eq!(s.epoch, 1, "epoch counter survives the rebind");
        let w2 = s.advance_window();
        assert_eq!(w2.epoch, 2);
        assert_eq!(w2.entries.len(), 1, "open window remapped, not reset");
        assert_eq!((w2.entries[0].dst, w2.entries[0].sizes[0]), (1, 5));
        // Joiner traffic records under the new coordinates.
        s.record(&ev(6, 9, MsgKind::P2pUser));
        assert_eq!(s.row(Flags::P2P_ONLY).1, vec![0, 5, 9]);
        // Departed world 2 is no longer a member: its traffic is ignored.
        s.record(&ev(2, 99, MsgKind::P2pUser));
        assert_eq!(s.row(Flags::P2P_ONLY).1, vec![0, 5, 9]);
    }

    #[test]
    fn table_overflow_and_stale_ids() {
        let mut t = SessionTable::new(2);
        let a = t.insert(SessionData::new(comm3())).unwrap();
        let _b = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!(t.insert(SessionData::new(comm3())).err(), Some(MonError::SessionOverflow));
        t.remove(a).unwrap();
        let c = t.insert(SessionData::new(comm3())).unwrap();
        // Slot is reused but the old id is stale.
        assert_eq!(c.slot(), a.slot());
        assert!(t.get(a).is_err());
        assert!(t.get(c).is_ok());
        assert_eq!(t.get(Msid::ALL).err(), Some(MonError::InvalidMsid));
    }

    #[test]
    fn generations_unified_and_wrap_impossible() {
        let mut t = SessionTable::new(4);
        // Fresh slots and reused slots start ids at the same generation.
        let a = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!(a.generation(), SessionTable::FIRST_GENERATION);
        t.remove(a).unwrap();
        let b = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!((b.slot(), b.generation()), (a.slot(), SessionTable::FIRST_GENERATION + 1));
        assert!(t.get(a).is_err(), "stale id must not validate after reuse");
        t.remove(b).unwrap();

        // Saturate slot 0's generation counter to one step below the
        // retirement sentinel: the slot must be skipped, not wrapped —
        // otherwise a stale Msid from 2^32 generations ago would validate
        // against the new session.
        t.generations[0] = SessionTable::RETIRED - 1;
        let c = t.insert(SessionData::new(comm3())).unwrap();
        assert_ne!(c.slot(), a.slot(), "exhausted slot must be retired, not reused");
        assert_eq!(c.generation(), SessionTable::FIRST_GENERATION);
        let stale = Msid::encode(a.slot(), SessionTable::FIRST_GENERATION);
        assert!(t.get(stale).is_err());
        // A retired slot permanently spends capacity: with max_sessions = 4
        // and one slot retired, only three more sessions fit.
        let _d = t.insert(SessionData::new(comm3())).unwrap();
        let _e = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!(t.insert(SessionData::new(comm3())).err(), Some(MonError::SessionOverflow));
    }

    #[test]
    fn live_msids_and_any_active() {
        let mut t = SessionTable::new(8);
        let a = t.insert(SessionData::new(comm3())).unwrap();
        let b = t.insert(SessionData::new(comm3())).unwrap();
        assert_eq!(t.live_msids(), vec![a, b]);
        assert!(t.any_active());
        t.get_mut(a).unwrap().state = SessionState::Suspended;
        t.get_mut(b).unwrap().state = SessionState::Suspended;
        assert!(!t.any_active());
    }
}
