//! `mim-core` — the MPI introspection monitoring library.
//!
//! This is the paper's primary contribution (Jeannot & Sartori, Inria
//! RR-9292): a high-level library that lets an application *monitor itself*
//! — query, during execution, how many messages and bytes each process sent
//! to each other process — and act on it (e.g. rank reordering).
//!
//! # Sessions
//!
//! All monitoring happens through **sessions** ([`Msid`]) attached to a
//! communicator:
//!
//! * [`Monitoring::start`] creates a session in the *active* state;
//! * [`Monitoring::suspend`] / [`Monitoring::resume`] toggle recording
//!   (the paper's `MPI_M_suspend` / `MPI_M_continue`);
//! * [`Monitoring::reset`] zeroes a suspended session,
//!   [`Monitoring::free`] destroys it;
//! * data access ([`Monitoring::get_data`], [`Monitoring::allgather_data`],
//!   [`Monitoring::rootgather_data`], [`Monitoring::flush`],
//!   [`Monitoring::rootflush`]) is only legal while suspended.
//!
//! Sessions are fully independent: they may overlap, nest, and watch the
//! same code region.  A session records **all** traffic between members of
//! its communicator — even traffic sent through a *different* communicator
//! (paper Sec 4.1: a session on the even/odd split still sees messages
//! between processes 0 and 2 sent on `MPI_COMM_WORLD`).
//!
//! Because the runtime decomposes collectives into point-to-point messages
//! *below* the monitoring probe, sessions see the true per-pair traffic of
//! broadcasts, reduces, etc. — the feature that enables the paper's
//! communication-matrix-driven rank reordering.
//!
//! # Correspondence with the paper's C API
//!
//! | Paper | Here |
//! |---|---|
//! | `MPI_M_init` / `MPI_M_finalize` | [`Monitoring::init`] / [`Monitoring::finalize`] |
//! | `MPI_M_start` / `MPI_M_suspend` / `MPI_M_continue` | `start` / `suspend` / `resume` |
//! | `MPI_M_reset` / `MPI_M_free` | `reset` / `free` |
//! | `MPI_M_get_info` / `MPI_M_get_data` | `get_info` / `get_data` |
//! | `MPI_M_allgather_data` / `MPI_M_rootgather_data` | `allgather_data` / `rootgather_data` |
//! | `MPI_M_flush` / `MPI_M_rootflush` | `flush` / `rootflush` |
//! | `MPI_M_ALL_MSID` | [`Msid::ALL`] |
//! | `MPI_M_P2P_ONLY` … `MPI_M_ALL_COMM` | [`Flags::P2P_ONLY`] … [`Flags::ALL_COMM`] |
//! | error constants | [`MonError`] variants |
//!
//! Output parameters become return values; `MPI_M_DATA_IGNORE` /
//! `MPI_M_INT_IGNORE` are unnecessary (ignore the returned value).
//!
//! For code that wants the paper's C shape verbatim — integer return codes,
//! output parameters, per-process global environment — the [`capi`] module
//! provides the exact function names (`MPI_M_init`, `MPI_M_continue`, …)
//! and constants on top of this API.

pub mod accum;
pub mod api;
pub mod capi;
pub mod error;
pub mod flags;
pub mod session;

pub use accum::{PairAccum, PairCell, PairEntry};
pub use api::{GatheredData, GatheredWindow, Monitoring, SessionInfo, SessionRow, TraceCounters};
pub use error::{MonError, Result};
pub use flags::Flags;
pub use session::{Msid, WindowDelta};
