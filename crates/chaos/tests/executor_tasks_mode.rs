//! Chaos under the M:N executor: retry/backoff timers, duplicate delivery
//! and scheduled crashes all run on parked *tasks*, and a fixed-seed plan
//! must produce the same delivered data and the same virtual-time outcomes
//! as the same plan under thread-per-rank.

use std::collections::BTreeMap;

use mim_chaos::FaultPlan;
use mim_mpisim::{ExecutorKind, RankFailure, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

const N: usize = 6;

/// Per-rank observables of a faulty run: delivered payload streams, retry
/// count, and the completion clock (bit-exact).
type Outcome = Vec<Result<(BTreeMap<(usize, u32), Vec<u64>>, u64, u64), RankFailure>>;

fn run(kind: ExecutorKind, seed: u64) -> Outcome {
    let plan = FaultPlan::new(seed).drop_p(0.2).dup_p(0.15).delay(0.2, 40_000.0).crash_at_ops(4, 9);
    let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(N));
    cfg.executor = kind;
    cfg = cfg.with_injector(plan.into_injector());
    Universe::new(cfg).launch_faulty(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        for t in 0..3u32 {
            for dst in (0..N).filter(|&d| d != me) {
                rank.send(&world, dst, t, &[me as u64 * 100 + u64::from(t)]);
            }
        }
        let mut got = BTreeMap::new();
        for t in 0..3u32 {
            for src in (0..N).filter(|&s| s != me) {
                // Rank 4 crashes mid-run: survivors use the recoverable
                // receive so a missing message is data, not a deadlock.
                if let Ok((v, _st)) = rank.recv_or_failure::<u64>(&world, src, t) {
                    got.insert((src, t), v);
                }
            }
        }
        (got, rank.retry_count(), rank.now_ns().to_bits())
    })
}

#[test]
fn fixed_seed_chaos_replays_identically_across_engines() {
    for seed in [11u64, 42] {
        let threads = run(ExecutorKind::Threads, seed);
        let tasks = run(ExecutorKind::Tasks, seed);
        assert_eq!(threads.len(), tasks.len());
        for (w, (t, k)) in threads.iter().zip(&tasks).enumerate() {
            assert_eq!(t, k, "rank {w} diverged across engines (seed {seed})");
        }
        // The plan actually fired: the crashed rank failed, someone retried.
        assert!(matches!(threads[4], Err(RankFailure::Crashed { .. })));
        let retries: u64 = threads.iter().filter_map(|r| r.as_ref().ok()).map(|o| o.1).sum();
        assert!(retries > 0, "drop plan produced no retries (seed {seed})");
    }
}
