//! End-to-end exactly-once delivery: under a plan that both drops and
//! duplicates transmissions, the retry loop (sender side) plus wire-level
//! sequence dedup (receiver side) must hand the application *exactly* the
//! payload stream of a fault-free run — per (src, dst, tag): same message
//! count, same bytes, same values, same order.  Virtual clocks are NOT
//! compared (faults legitimately cost time); only delivered data is.

use std::collections::BTreeMap;
use std::sync::Arc;

use mim_chaos::FaultPlan;
use mim_mpisim::{FaultInjector, SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};

const N: usize = 6;
const MSGS_PER_PAIR: u64 = 3;

/// Delivered stream at one rank: (src, tag) -> ordered payload vectors.
type Delivered = BTreeMap<(usize, u32), Vec<Vec<u64>>>;

fn topology(t: usize) -> (Machine, Placement) {
    match t {
        0 => (Machine::cluster(1, 1, 8), Placement::packed(N)), // one node
        1 => (Machine::cluster(2, 2, 2), Placement::packed(N)), // 2 nodes, 2 sockets
        _ => (Machine::cluster(3, 1, 4), Placement::packed(N)), // 3 nodes
    }
}

/// All-pairs traffic with value-carrying payloads, then collect what each
/// rank actually received.
fn run(topo: usize, injector: Option<Arc<dyn FaultInjector>>) -> Vec<Delivered> {
    let (machine, placement) = topology(topo);
    let mut cfg = UniverseConfig::new(machine, placement);
    if let Some(i) = injector {
        cfg = cfg.with_injector(i);
    }
    Universe::new(cfg).launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        for t in 0..MSGS_PER_PAIR as u32 {
            for dst in (0..N).filter(|&d| d != me) {
                let payload =
                    vec![me as u64 * 1000 + dst as u64 * 10 + u64::from(t), u64::from(t) * 7];
                rank.send(&world, dst, t, &payload);
            }
        }
        let mut got = Delivered::new();
        for t in 0..MSGS_PER_PAIR as u32 {
            for src in (0..N).filter(|&s| s != me) {
                let (v, st) = rank.recv::<u64>(&world, SrcSel::Rank(src), TagSel::Is(t));
                assert_eq!(st.bytes, 16);
                got.entry((src, t)).or_default().push(v);
            }
        }
        got
    })
}

#[test]
fn drop_and_dup_faults_preserve_exactly_once_delivery() {
    for topo in 0..3 {
        let clean = run(topo, None);
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let plan = FaultPlan::new(seed).drop_p(0.15).dup_p(0.15);
            let faulty = run(topo, Some(plan.into_injector()));
            assert_eq!(
                clean, faulty,
                "delivered streams diverged (topology {topo}, seed {seed:#x})"
            );
        }
    }
}

#[test]
fn degraded_links_slow_but_do_not_corrupt() {
    let plan = FaultPlan::new(7).degrade_link(0, 1, 0.25);
    let clean = run(0, None);
    let degraded = run(0, Some(plan.into_injector()));
    assert_eq!(clean, degraded, "bandwidth degradation must not alter data");
}
