//! The null-chaos property: installing a zero-probability [`FaultPlan`]
//! must leave the simulation *bit-identical* to running with no injector
//! at all — same monitoring matrices, same virtual completion times, same
//! trace events.  This is what makes chaos runs trustworthy: the
//! instrumentation itself is provably free of observable side effects, so
//! any divergence under a live plan is the plan's doing.

use std::sync::Arc;

use mim_chaos::FaultPlan;
use mim_core::{Flags, GatheredData, Monitoring};
use mim_mpisim::{SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};
use mim_trace::{TraceData, TraceEvent, Tracer};
use mim_util::props;

const N: usize = 4;

/// One full monitored run: random traffic, a collective, a gather.
/// Returns everything an observer could compare.
#[allow(clippy::type_complexity)]
fn run(
    msgs: &Arc<Vec<(usize, usize, u64)>>,
    plan: Option<FaultPlan>,
) -> (Vec<f64>, GatheredData, u64, Vec<(String, Vec<TraceEvent>)>) {
    let tracer = Tracer::new(4096);
    let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(N));
    cfg.tracer = Some(Arc::clone(&tracer));
    if let Some(p) = plan {
        cfg = cfg.with_injector(p.into_injector());
    }
    let u = Universe::new(cfg);
    let msgs = Arc::clone(msgs);
    let results = u.launch(move |rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let id = mon.start(rank, &world).unwrap();
        let me = world.rank();
        for &(src, dst, bytes) in msgs.iter().filter(|&&(s, d, _)| s != d) {
            if src == me {
                rank.send_synthetic(&world, dst, 5, bytes);
            }
            if dst == me {
                rank.recv_synthetic(&world, SrcSel::Rank(src), TagSel::Is(5));
            }
        }
        rank.barrier(&world);
        mon.suspend(id).unwrap();
        let g = mon.allgather_data(rank, id, Flags::ALL_COMM).unwrap();
        mon.free(id).unwrap();
        mon.finalize(rank).unwrap();
        assert_eq!(rank.retry_count(), 0, "a null plan must never retry");
        assert_eq!(rank.duplicates_dropped(), 0, "a null plan must never duplicate");
        (rank.now_ns(), g)
    });
    let (times, mut matrices): (Vec<f64>, Vec<GatheredData>) = results.into_iter().unzip();
    let gathered = matrices.pop().expect("allgather puts the matrices everywhere");
    assert!(matrices.iter().all(|m| *m == gathered));
    // Track registration order races across threads; compare by name.  The
    // Recv event's uq_depth reports how many envelopes happened to sit in
    // the unexpected queue when the match landed — a function of OS thread
    // scheduling, racy even between two injector-free runs — so it is
    // normalized out; every virtual-time field is compared exactly.
    let mut snap = tracer.snapshot();
    snap.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, evs) in &mut snap {
        for e in evs {
            if let TraceData::Recv { uq_depth, .. } = &mut e.data {
                *uq_depth = 0;
            }
        }
    }
    (times, gathered, tracer.events_total(), snap)
}

fn arb_msgs(g: &mut mim_util::prop::Gen) -> Arc<Vec<(usize, usize, u64)>> {
    Arc::new(g.vec(1..24, |g| (g.index(N), g.index(N), g.gen_range(1u64..65536))))
}

props! {
    /// No injector vs. the all-zero builder plan.
    fn zero_probability_plan_is_invisible(g, cases = 6) {
        let msgs = arb_msgs(g);
        let seed = g.any_u64();
        let clean = run(&msgs, None);
        let null = run(&msgs, Some(FaultPlan::new(seed)));
        assert_eq!(clean.0, null.0, "virtual completion times diverged");
        assert_eq!(clean.1, null.1, "monitoring matrices diverged");
        assert_eq!(clean.2, null.2, "trace event totals diverged");
        assert_eq!(clean.3, null.3, "trace contents diverged");
    }

    /// Same, through the environment-grammar path with explicit zeros.
    fn parsed_zero_plan_is_invisible(g, cases = 3) {
        let msgs = arb_msgs(g);
        let plan = FaultPlan::parse(g.any_u64(), "drop=0.0,dup=0.0,delay=0.0:0");
        let clean = run(&msgs, None);
        let null = run(&msgs, Some(plan));
        assert_eq!(clean.0, null.0, "virtual completion times diverged");
        assert_eq!(clean.1, null.1, "monitoring matrices diverged");
        assert_eq!(clean.3, null.3, "trace contents diverged");
    }
}
