//! Deterministic fault injection for the simulator: `FaultPlan`.
//!
//! A [`FaultPlan`] is a seeded, declarative schedule of faults — message
//! drop, duplication, extra delay, per-link bandwidth degradation, and
//! rank crashes — installed into a universe through the
//! [`FaultInjector`] seam (`UniverseConfig::with_injector`).  Every
//! decision is a pure function of `(seed, src, dst, op_index, attempt)`,
//! folded through the in-tree splitmix64 mixer; wall-clock time is never
//! consulted, so a fixed seed replays the exact same fault sequence on
//! every run — the property the chaos CI gate (`scripts/check_chaos.py`)
//! verifies byte-for-byte.
//!
//! Plans come from builder calls or from the environment:
//!
//! ```text
//! MIM_CHAOS_SEED=42
//! MIM_CHAOS_PLAN="drop=0.05,dup=0.02,delay=0.1:2000,degrade=0-1:0.5,crash=3@ops:120"
//! ```

use std::sync::Arc;

use mim_mpisim::{CrashPoint, FaultInjector, LinkCtx, SendOutcome};
use mim_util::rng::{splitmix64, Rng};

/// A deterministic, seeded schedule of faults.
///
/// All probabilities are per *transmission attempt* (a retried message is
/// re-rolled with a distinct key, so a plan with `drop_p = 0.5` loses half
/// of all attempts but almost no messages once the runtime's capped-backoff
/// retry loop has run).  The zero plan — every probability 0, no degraded
/// links, no crashes — is exactly [`SendOutcome::CLEAN`] for every attempt
/// and leaves the simulation bit-identical to running with no injector at
/// all (see `tests/null_chaos.rs`).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    delay_p: f64,
    delay_max_ns: f64,
    /// Directed `(src_world, dst_world, bandwidth_scale)` overrides.
    degrade: Vec<(usize, usize, f64)>,
    crashes: Vec<(usize, CrashPoint)>,
    /// Ranks whose plan crash is followed by a rebirth (rolling restart,
    /// `Universe::launch_elastic`).  Each restarts exactly once: only the
    /// original incarnation's crash is covered.
    restarts: Vec<usize>,
    /// Join schedule: `(latent joiner world rank, sponsor op count)` pairs
    /// (see `FaultInjector::join_plan`).
    joins: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// A null plan: no faults, but the given seed is fixed for any
    /// probabilities added later.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_max_ns: 0.0,
            degrade: Vec::new(),
            crashes: Vec::new(),
            restarts: Vec::new(),
            joins: Vec::new(),
        }
    }

    /// Probability that a transmission attempt is silently lost.
    pub fn drop_p(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop_p out of range: {p}");
        self.drop_p = p;
        self
    }

    /// Probability that a delivered message arrives twice.
    pub fn dup_p(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "dup_p out of range: {p}");
        self.dup_p = p;
        self
    }

    /// Probability `p` that a delivered message is late, by a uniform
    /// extra delay in `[0, max_ns)` virtual nanoseconds.
    pub fn delay(mut self, p: f64, max_ns: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "delay p out of range: {p}");
        assert!(max_ns >= 0.0, "delay max_ns must be non-negative: {max_ns}");
        self.delay_p = p;
        self.delay_max_ns = max_ns;
        self
    }

    /// Scale the effective bandwidth of the directed link `src -> dst`
    /// by `scale` (0.5 = half bandwidth, i.e. doubled per-byte cost).
    pub fn degrade_link(mut self, src_world: usize, dst_world: usize, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "bandwidth scale out of (0, 1]: {scale}");
        self.degrade.push((src_world, dst_world, scale));
        self
    }

    /// Crash `world` when its wire-operation counter reaches `ops`.
    pub fn crash_at_ops(mut self, world: usize, ops: u64) -> Self {
        self.crashes.push((world, CrashPoint::OpCount(ops)));
        self
    }

    /// Crash `world` at virtual timestamp `at_ns`.
    pub fn crash_at_time(mut self, world: usize, at_ns: f64) -> Self {
        self.crashes.push((world, CrashPoint::VirtualTimeNs(at_ns)));
        self
    }

    /// Rolling restart: crash `world` when its wire-operation counter
    /// reaches `ops`, then rebirth it (incarnation 1) under
    /// `Universe::launch_elastic`.  Equivalent to `crash_at_ops` under the
    /// non-elastic launchers.
    pub fn restart_at_ops(mut self, world: usize, ops: u64) -> Self {
        self.restarts.push(world);
        self.crash_at_ops(world, ops)
    }

    /// Schedule the admission of latent rank `world` when the sponsor's
    /// (world rank 0's) wire-operation counter reaches `ops` — the join
    /// dual of [`FaultPlan::crash_at_ops`].
    pub fn join_at_ops(mut self, world: usize, ops: u64) -> Self {
        self.joins.push((world, ops));
        self
    }

    /// The seed this plan keys every decision on.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Wrap the plan for `UniverseConfig::with_injector`.
    pub fn into_injector(self) -> Arc<dyn FaultInjector> {
        Arc::new(self)
    }

    /// Build a plan from `MIM_CHAOS_SEED` / `MIM_CHAOS_PLAN`.
    ///
    /// Returns `None` when neither variable is set.  `MIM_CHAOS_SEED`
    /// defaults to 42 when only the plan is given.  Malformed input
    /// panics with the offending clause — a chaos run with a silently
    /// half-parsed plan would be worse than no run.
    pub fn from_env() -> Option<FaultPlan> {
        let seed_var = std::env::var("MIM_CHAOS_SEED").ok();
        let plan_var = std::env::var("MIM_CHAOS_PLAN").ok();
        if seed_var.is_none() && plan_var.is_none() {
            return None;
        }
        let seed = seed_var.map_or(42, |s| {
            s.trim().parse::<u64>().unwrap_or_else(|_| panic!("MIM_CHAOS_SEED not a u64: {s:?}"))
        });
        Some(Self::parse(seed, plan_var.as_deref().unwrap_or("")))
    }

    /// Parse the `MIM_CHAOS_PLAN` grammar: comma-separated clauses
    /// `drop=P`, `dup=P`, `delay=P:MAX_NS`, `degrade=SRC-DST:SCALE`,
    /// `crash=WORLD@ops:N` / `crash=WORLD@ns:T`.  Panics on anything it
    /// does not understand.
    pub fn parse(seed: u64, plan: &str) -> FaultPlan {
        let mut out = FaultPlan::new(seed);
        for clause in plan.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, val) = clause
                .split_once('=')
                .unwrap_or_else(|| panic!("MIM_CHAOS_PLAN clause without '=': {clause:?}"));
            let bad = |what: &str| -> ! { panic!("MIM_CHAOS_PLAN bad {what} in {clause:?}") };
            match key {
                "drop" => out = out.drop_p(val.parse().unwrap_or_else(|_| bad("probability"))),
                "dup" => out = out.dup_p(val.parse().unwrap_or_else(|_| bad("probability"))),
                "delay" => {
                    let (p, max) = val.split_once(':').unwrap_or_else(|| bad("P:MAX_NS pair"));
                    out = out.delay(
                        p.parse().unwrap_or_else(|_| bad("probability")),
                        max.parse().unwrap_or_else(|_| bad("max_ns")),
                    );
                }
                "degrade" => {
                    let (link, scale) = val.split_once(':').unwrap_or_else(|| bad("LINK:SCALE"));
                    let (src, dst) = link.split_once('-').unwrap_or_else(|| bad("SRC-DST link"));
                    out = out.degrade_link(
                        src.parse().unwrap_or_else(|_| bad("src rank")),
                        dst.parse().unwrap_or_else(|_| bad("dst rank")),
                        scale.parse().unwrap_or_else(|_| bad("scale")),
                    );
                }
                "crash" => {
                    let (world, point) = val.split_once('@').unwrap_or_else(|| bad("WORLD@POINT"));
                    let world: usize = world.parse().unwrap_or_else(|_| bad("world rank"));
                    let (kind, n) = point.split_once(':').unwrap_or_else(|| bad("ops:N or ns:T"));
                    out = match kind {
                        "ops" => out.crash_at_ops(world, n.parse().unwrap_or_else(|_| bad("ops"))),
                        "ns" => out.crash_at_time(world, n.parse().unwrap_or_else(|_| bad("time"))),
                        _ => bad("crash point kind (want ops: or ns:)"),
                    };
                }
                "restart" => {
                    let (world, point) = val.split_once('@').unwrap_or_else(|| bad("WORLD@POINT"));
                    let world: usize = world.parse().unwrap_or_else(|_| bad("world rank"));
                    let (kind, n) = point.split_once(':').unwrap_or_else(|| bad("ops:N"));
                    out = match kind {
                        "ops" => {
                            out.restart_at_ops(world, n.parse().unwrap_or_else(|_| bad("ops")))
                        }
                        _ => bad("restart point kind (want ops:)"),
                    };
                }
                "join" => {
                    let (world, point) = val.split_once('@').unwrap_or_else(|| bad("WORLD@POINT"));
                    let world: usize = world.parse().unwrap_or_else(|_| bad("world rank"));
                    let (kind, n) = point.split_once(':').unwrap_or_else(|| bad("ops:N"));
                    out = match kind {
                        "ops" => out.join_at_ops(world, n.parse().unwrap_or_else(|_| bad("ops"))),
                        _ => bad("join point kind (want ops:)"),
                    };
                }
                _ => bad("clause key"),
            }
        }
        out
    }

    /// No probabilistic faults configured (crashes and degradation do not
    /// involve the RNG at all).
    fn is_quiet(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.delay_p == 0.0
    }

    /// The per-decision RNG: seed folded with the attempt's identity.
    /// Stateless across calls, so replay needs no shared mutable state
    /// and is immune to thread scheduling.
    fn decision_rng(&self, link: &LinkCtx, attempt: u32) -> Rng {
        let mut h = self.seed;
        for v in [link.src_world as u64, link.dst_world as u64, link.op_index, u64::from(attempt)] {
            let mut s = h ^ v;
            h = splitmix64(&mut s);
        }
        Rng::seed_from_u64(h)
    }
}

impl FaultInjector for FaultPlan {
    fn on_attempt(&self, link: &LinkCtx, attempt: u32) -> SendOutcome {
        if self.is_quiet() {
            return SendOutcome::CLEAN;
        }
        let mut rng = self.decision_rng(link, attempt);
        // Draw order is part of the replay contract: drop, dup, delay.
        if self.drop_p > 0.0 && rng.gen_bool(self.drop_p) {
            return SendOutcome::Drop;
        }
        let duplicates = u32::from(self.dup_p > 0.0 && rng.gen_bool(self.dup_p));
        let extra_delay_ns = if self.delay_p > 0.0 && rng.gen_bool(self.delay_p) {
            rng.next_f64() * self.delay_max_ns
        } else {
            0.0
        };
        SendOutcome::Deliver { extra_delay_ns, duplicates }
    }

    fn link_bandwidth_scale(&self, src_world: usize, dst_world: usize) -> f64 {
        self.degrade
            .iter()
            .find(|(s, d, _)| *s == src_world && *d == dst_world)
            .map_or(1.0, |(_, _, scale)| *scale)
    }

    fn crash_point(&self, world: usize) -> Option<CrashPoint> {
        self.crashes.iter().find(|(w, _)| *w == world).map(|(_, p)| *p)
    }

    fn restart_after_crash(&self, world: usize, incarnation: u32) -> bool {
        // One rebirth per rank: a reborn body's own crashes (were pre_op not
        // already gated on incarnation 0) stay fatal.
        incarnation == 0 && self.restarts.contains(&world)
    }

    fn join_plan(&self) -> Vec<(usize, u64)> {
        self.joins.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(src: usize, dst: usize, op: u64) -> LinkCtx {
        LinkCtx { src_world: src, dst_world: dst, op_index: op, bytes: 64 }
    }

    #[test]
    fn null_plan_is_clean_without_touching_the_rng() {
        let plan = FaultPlan::new(7);
        for op in 0..100 {
            assert_eq!(plan.on_attempt(&link(0, 1, op), 0), SendOutcome::CLEAN);
        }
        assert_eq!(plan.link_bandwidth_scale(0, 1), 1.0);
        assert_eq!(plan.crash_point(0), None);
    }

    #[test]
    fn decisions_replay_exactly() {
        let mk = || FaultPlan::new(99).drop_p(0.3).dup_p(0.2).delay(0.5, 1000.0);
        let (a, b) = (mk(), mk());
        for src in 0..4 {
            for op in 0..64 {
                for attempt in 0..3 {
                    let l = link(src, (src + 1) % 4, op);
                    assert_eq!(a.on_attempt(&l, attempt), b.on_attempt(&l, attempt));
                    // And stable across repeated calls on one instance.
                    assert_eq!(a.on_attempt(&l, attempt), a.on_attempt(&l, attempt));
                }
            }
        }
    }

    #[test]
    fn distinct_keys_give_distinct_streams() {
        let plan = FaultPlan::new(1).drop_p(0.5);
        let mut drops = 0;
        for op in 0..1000 {
            if plan.on_attempt(&link(0, 1, op), 0) == SendOutcome::Drop {
                drops += 1;
            }
        }
        // A degenerate keying (e.g. ignoring op_index) would give 0 or 1000.
        assert!((300..700).contains(&drops), "drop rate implausible: {drops}/1000");

        // Retries of the same op are re-rolled: some first-attempt drops
        // must be followed by a clean second attempt.
        let recovered = (0..1000)
            .filter(|&op| {
                let l = link(0, 1, op);
                plan.on_attempt(&l, 0) == SendOutcome::Drop
                    && plan.on_attempt(&l, 1) != SendOutcome::Drop
            })
            .count();
        assert!(recovered > 100, "retry re-roll looks broken: {recovered}");
    }

    #[test]
    fn seed_changes_the_schedule() {
        let a = FaultPlan::new(1).drop_p(0.5);
        let b = FaultPlan::new(2).drop_p(0.5);
        let differs =
            (0..256).any(|op| a.on_attempt(&link(0, 1, op), 0) != b.on_attempt(&link(0, 1, op), 0));
        assert!(differs, "two seeds produced identical 256-op schedules");
    }

    #[test]
    fn degrade_and_crash_lookups() {
        let plan =
            FaultPlan::new(0).degrade_link(0, 1, 0.5).crash_at_ops(3, 120).crash_at_time(2, 5000.0);
        assert_eq!(plan.link_bandwidth_scale(0, 1), 0.5);
        assert_eq!(plan.link_bandwidth_scale(1, 0), 1.0, "degradation is directed");
        assert_eq!(plan.crash_point(3), Some(CrashPoint::OpCount(120)));
        assert_eq!(plan.crash_point(2), Some(CrashPoint::VirtualTimeNs(5000.0)));
        assert_eq!(plan.crash_point(0), None);
    }

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            9,
            "drop=0.05, dup=0.02,delay=0.1:2000,degrade=0-1:0.5,crash=3@ops:120,crash=2@ns:5000",
        );
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.drop_p, 0.05);
        assert_eq!(plan.dup_p, 0.02);
        assert_eq!(plan.delay_p, 0.1);
        assert_eq!(plan.delay_max_ns, 2000.0);
        assert_eq!(plan.degrade, vec![(0, 1, 0.5)]);
        assert_eq!(
            plan.crashes,
            vec![(3, CrashPoint::OpCount(120)), (2, CrashPoint::VirtualTimeNs(5000.0))]
        );
    }

    #[test]
    fn parse_churn_grammar() {
        let plan = FaultPlan::parse(5, "restart=3@ops:40,join=8@ops:12");
        assert_eq!(plan.crashes, vec![(3, CrashPoint::OpCount(40))]);
        assert_eq!(plan.restarts, vec![3]);
        assert_eq!(plan.joins, vec![(8, 12)]);
        assert!(plan.restart_after_crash(3, 0));
        assert!(!plan.restart_after_crash(3, 1), "ranks restart exactly once");
        assert!(!plan.restart_after_crash(2, 0));
        assert_eq!(plan.join_plan(), vec![(8, 12)]);
    }

    #[test]
    #[should_panic(expected = "restart point kind")]
    fn parse_rejects_time_restart() {
        let _ = FaultPlan::parse(0, "restart=3@ns:500");
    }

    #[test]
    fn parse_empty_plan_is_null() {
        let plan = FaultPlan::parse(42, "");
        assert!(plan.is_quiet());
        assert!(plan.crashes.is_empty() && plan.degrade.is_empty());
    }

    #[test]
    #[should_panic(expected = "clause key")]
    fn parse_rejects_unknown_clause() {
        let _ = FaultPlan::parse(0, "jitter=0.5");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn parse_rejects_bad_number() {
        let _ = FaultPlan::parse(0, "drop=lots");
    }

    #[test]
    #[should_panic(expected = "without '='")]
    fn parse_rejects_bare_word() {
        let _ = FaultPlan::parse(0, "drop");
    }
}
