//! Property-based tests for statistics and the sparse-matrix generator.

use mim_apps::sparse::{cg_reference, random_spd};
use mim_apps::stats::{mean, median, t_critical_95, variance, welch_diff};
use mim_util::props;

props! {
    fn mean_median_within_bounds(g) {
        let xs = g.vec(1..100, |g| g.gen_range(-1e6f64..1e6));
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((lo..=hi).contains(&mean(&xs)));
        assert!((lo..=hi).contains(&median(&xs)));
    }

    fn variance_non_negative_and_shift_invariant(g) {
        let xs = g.vec(2..60, |g| g.gen_range(-1e3f64..1e3));
        let shift = g.gen_range(-1e3f64..1e3);
        let v = variance(&xs);
        assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        assert!((variance(&shifted) - v).abs() < 1e-6 * v.abs().max(1.0));
    }

    fn welch_is_antisymmetric(g) {
        let a = g.vec(2..40, |g| g.gen_range(-1e3f64..1e3));
        let b = g.vec(2..40, |g| g.gen_range(-1e3f64..1e3));
        let ab = welch_diff(&a, &b);
        let ba = welch_diff(&b, &a);
        assert!((ab.diff + ba.diff).abs() < 1e-9);
        assert!((ab.ci95 - ba.ci95).abs() < 1e-9);
        assert_eq!(ab.significant(), ba.significant());
    }

    fn t_critical_decreases_with_df(g) {
        let df = g.gen_range(1.0f64..200.0);
        let t = t_critical_95(df);
        assert!(t >= t_critical_95(df + 1.0) - 1e-9);
        assert!((1.9..=12.8).contains(&t));
    }

    fn spd_generator_invariants(g) {
        let n = g.gen_range(2usize..60);
        let epr = g.gen_range(1usize..6);
        let seed = g.any_u64();
        let a = random_spd(n, epr, seed);
        assert_eq!(a.order(), n);
        assert!(a.is_symmetric());
        // Strict diagonal dominance on every row.
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i { diag = v } else { off += v.abs() }
            }
            assert!(diag > off);
        }
    }

    fn cg_reference_converges_on_spd(g) {
        let n = g.gen_range(4usize..40);
        let seed = g.any_u64();
        let a = random_spd(n, 3, seed);
        let b = vec![1.0; n];
        let (_, res, iters) = cg_reference(&a, &b, 3 * n, 1e-9);
        assert!(res <= 1e-9, "residual {res} after {iters} iterations");
    }
}
