//! Property-based tests for statistics and the sparse-matrix generator.

use proptest::prelude::*;

use mim_apps::sparse::{cg_reference, random_spd};
use mim_apps::stats::{mean, median, t_critical_95, variance, welch_diff};

proptest! {
    #[test]
    fn mean_median_within_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((lo..=hi).contains(&mean(&xs)));
        prop_assert!((lo..=hi).contains(&median(&xs)));
    }

    #[test]
    fn variance_non_negative_and_shift_invariant(xs in prop::collection::vec(-1e3f64..1e3, 2..60), shift in -1e3f64..1e3) {
        let v = variance(&xs);
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((variance(&shifted) - v).abs() < 1e-6 * v.abs().max(1.0));
    }

    #[test]
    fn welch_is_antisymmetric(a in prop::collection::vec(-1e3f64..1e3, 2..40),
                              b in prop::collection::vec(-1e3f64..1e3, 2..40)) {
        let ab = welch_diff(&a, &b);
        let ba = welch_diff(&b, &a);
        prop_assert!((ab.diff + ba.diff).abs() < 1e-9);
        prop_assert!((ab.ci95 - ba.ci95).abs() < 1e-9);
        prop_assert_eq!(ab.significant(), ba.significant());
    }

    #[test]
    fn t_critical_decreases_with_df(df in 1.0f64..200.0) {
        let t = t_critical_95(df);
        prop_assert!(t >= t_critical_95(df + 1.0) - 1e-9);
        prop_assert!((1.9..=12.8).contains(&t));
    }

    #[test]
    fn spd_generator_invariants(n in 2usize..60, epr in 1usize..6, seed in any::<u64>()) {
        let a = random_spd(n, epr, seed);
        prop_assert_eq!(a.order(), n);
        prop_assert!(a.is_symmetric());
        // Strict diagonal dominance on every row.
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i { diag = v } else { off += v.abs() }
            }
            prop_assert!(diag > off);
        }
    }

    #[test]
    fn cg_reference_converges_on_spd(n in 4usize..40, seed in any::<u64>()) {
        let a = random_spd(n, 3, seed);
        let b = vec![1.0; n];
        let (_, res, iters) = cg_reference(&a, &b, 3 * n, 1e-9);
        prop_assert!(res <= 1e-9, "residual {res} after {iters} iterations");
    }
}
