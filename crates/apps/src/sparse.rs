//! Sparse symmetric positive-definite matrices and a sequential CG
//! reference, standing in for the NPB `makea` generator.

use mim_util::rng::Rng;

/// Compressed-sparse-row square matrix.
#[derive(Debug, Clone)]
pub struct Csr {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// One row as (columns, values).
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// `y = A·x` over rows `rows` only (the owning rank's block).
    pub fn spmv_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input vector length mismatch");
        assert_eq!(y.len(), rows.len(), "output block length mismatch");
        for (out, i) in y.iter_mut().zip(rows) {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            *out = acc;
        }
    }

    /// Full `y = A·x`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.spmv_rows(0..self.n, x, &mut y);
        y
    }

    /// True when the stored matrix is exactly symmetric.
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let (jc, jv) = self.row(j);
                match jc.binary_search(&i) {
                    Ok(pos) if (jv[pos] - v).abs() <= 1e-12 * v.abs().max(1.0) => {}
                    _ => return false,
                }
            }
        }
        true
    }
}

/// Generate a random sparse symmetric positive-definite matrix of order `n`
/// with about `extra_per_row` off-diagonal entries per row, reproducible
/// from `seed`.
///
/// Construction: a random symmetric sparsity pattern with entries in
/// `(0, 1)`, made strictly diagonally dominant (diagonal = off-diagonal row
/// sum + 1), which guarantees SPD — the same spirit as NPB `makea`'s
/// outer-product construction with a diagonal shift.
pub fn random_spd(n: usize, extra_per_row: usize, seed: u64) -> Csr {
    assert!(n > 0, "matrix order must be positive");
    let mut rng = Rng::seed_from_u64(seed);
    // Collect symmetric off-diagonal entries per row.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for _ in 0..extra_per_row {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v = rng.gen_range(0.01..1.0);
            rows[i].push((j, v));
            rows[j].push((i, v));
        }
    }
    // Merge duplicates, add the dominant diagonal, build CSR.
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for (i, row) in rows.iter_mut().enumerate() {
        row.sort_unstable_by_key(|a| a.0);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len() + 1);
        for &(j, v) in row.iter() {
            match merged.last_mut() {
                Some((lj, lv)) if *lj == j => *lv += v,
                _ => merged.push((j, v)),
            }
        }
        let offsum: f64 = merged.iter().map(|&(_, v)| v).sum();
        let dpos = merged.partition_point(|&(j, _)| j < i);
        merged.insert(dpos, (i, offsum + 1.0));
        for (j, v) in merged {
            col_idx.push(j);
            vals.push(v);
        }
        row_ptr.push(col_idx.len());
    }
    Csr { n, row_ptr, col_idx, vals }
}

/// Sequential conjugate gradient: solve `A·x = b`, returning
/// `(x, final residual norm, iterations used)`.
pub fn cg_reference(a: &Csr, b: &[f64], max_iters: usize, tol: f64) -> (Vec<f64>, f64, usize) {
    let n = a.order();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rho = dot(&r, &r);
    let mut iters = 0;
    for _ in 0..max_iters {
        if rho.sqrt() <= tol {
            break;
        }
        iters += 1;
        let q = a.spmv(&p);
        let alpha = rho / dot(&p, &q);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new = dot(&r, &r);
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    (x, rho.sqrt(), iters)
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_seeded_and_symmetric() {
        let a = random_spd(100, 6, 42);
        let b = random_spd(100, 6, 42);
        assert_eq!(a.nnz(), b.nnz());
        assert!(a.is_symmetric());
        assert!(a.nnz() >= 100, "diagonal always present");
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_spd(50, 4, 1);
        let b = random_spd(50, 4, 2);
        assert!(a.nnz() != b.nnz() || a.vals != b.vals);
    }

    #[test]
    fn diagonal_dominance() {
        let a = random_spd(80, 5, 7);
        for i in 0..80 {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i} not dominant: {diag} vs {off}");
        }
    }

    #[test]
    fn cg_solves_small_system() {
        let a = random_spd(60, 5, 3);
        let x_true: Vec<f64> = (0..60).map(|i| (i % 7) as f64 - 3.0).collect();
        let b = a.spmv(&x_true);
        let (x, res, iters) = cg_reference(&a, &b, 200, 1e-10);
        assert!(res <= 1e-10, "residual {res} after {iters} iterations");
        for i in 0..60 {
            assert!((x[i] - x_true[i]).abs() < 1e-6, "x[{i}] = {} vs {}", x[i], x_true[i]);
        }
    }

    #[test]
    fn spmv_rows_matches_full() {
        let a = random_spd(40, 4, 9);
        let x: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
        let full = a.spmv(&x);
        let mut block = vec![0.0; 10];
        a.spmv_rows(10..20, &x, &mut block);
        assert_eq!(&full[10..20], &block[..]);
    }
}
