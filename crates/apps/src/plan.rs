//! Static communication plans for the app kernels: each workload lowers its
//! communication outline into a `mim-analyze` [`Program`] so the analyzer
//! (and the `mim-analyze` CLI / CI gate) can verify it without running a
//! single rank thread.
//!
//! The lowerings mirror what the live kernels actually do on the wire —
//! same peers, same tags, same operation order per rank — with the data
//! erased.  Nonblocking halo exchange is lowered conservatively: every send
//! of an iteration before any receive, which is exactly the order the
//! kernels post them in.

use mim_analyze::{CollKind, CommPlan, Op, Program, Src, Tag, WORLD};
use mim_mpisim::{schedule, Step};

use crate::collbench::CollectiveKind;
use crate::stencil::{StencilConfig, HALO_TAG_BASE};

/// The 2-D Jacobi stencil *is* a communication plan: per iteration each
/// rank exchanges halos with its grid neighbours (row halos on the
/// iteration tag, column halos on the `+0x1000` tag), then one global
/// allreduce produces the checksum.
impl CommPlan for StencilConfig {
    fn plan_name(&self) -> String {
        format!("stencil[{}x{} grid, {} iters]", self.prows, self.pcols, self.iters)
    }

    fn lower(&self) -> Program {
        let n = self.prows * self.pcols;
        let (br, bc) = (self.block_rows() as u64, self.block_cols() as u64);
        let mut p = Program::new(self.plan_name(), n);
        for me in 0..n {
            let (prow, pcol) = (me / self.pcols, me % self.pcols);
            let neighbour = |dr: isize, dc: isize| -> Option<usize> {
                let (nr, nc) = (prow as isize + dr, pcol as isize + dc);
                (nr >= 0 && nc >= 0 && nr < self.prows as isize && nc < self.pcols as isize)
                    .then(|| nr as usize * self.pcols + nc as usize)
            };
            let sides = [
                (neighbour(-1, 0), bc * 8, 0u32),
                (neighbour(1, 0), bc * 8, 0),
                (neighbour(0, -1), br * 8, 0x1000),
                (neighbour(0, 1), br * 8, 0x1000),
            ];
            for it in 0..self.iters {
                let tag = HALO_TAG_BASE + it as u32;
                // The kernel completes each isend eagerly before posting the
                // matching irecv; all four receives are only *waited on*
                // after the last post, so: sends first, then the receives in
                // posted order.
                for (peer, bytes, dtag) in sides {
                    if let Some(dst) = peer {
                        p.push(me, Op::Send { comm: WORLD, dst, tag: tag + dtag, bytes });
                    }
                }
                for (peer, _, dtag) in sides {
                    if let Some(src) = peer {
                        p.push(
                            me,
                            Op::Recv { comm: WORLD, src: Src::Rank(src), tag: Tag::Is(tag + dtag) },
                        );
                    }
                }
            }
            p.push(me, Op::Coll { comm: WORLD, kind: CollKind::Allreduce, root: None });
        }
        p
    }
}

/// Communication outline of a distributed CG run ([`crate::cg::run_cg`]):
/// one allreduce for the initial `ρ`, then per iteration an allgather of
/// the search direction and two dot-product allreduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgPlan {
    /// Communicator size.
    pub nprocs: usize,
    /// CG iterations.
    pub iters: usize,
}

impl CommPlan for CgPlan {
    fn plan_name(&self) -> String {
        format!("cg[{} ranks, {} iters]", self.nprocs, self.iters)
    }

    fn lower(&self) -> Program {
        let mut p = Program::new(self.plan_name(), self.nprocs);
        let allreduce = Op::Coll { comm: WORLD, kind: CollKind::Allreduce, root: None };
        let allgather = Op::Coll { comm: WORLD, kind: CollKind::Allgather, root: None };
        for r in 0..self.nprocs {
            p.push(r, allreduce);
            for _ in 0..self.iters {
                p.push(r, allgather);
                p.push(r, allreduce);
                p.push(r, allreduce);
            }
        }
        p
    }
}

/// The grouped-allgather micro-benchmark's combined plan
/// ([`crate::groups::grouped_allgather_gain`]): groups of `group_size`
/// consecutive ranks each ring-allgather on their *own sub-communicator*,
/// all groups concurrently — the sub-communicators carry the matching
/// scope, so identical local step sequences in different groups can never
/// cross-match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedAllgatherPlan {
    /// Total ranks (a multiple of `group_size`).
    pub nprocs: usize,
    /// Ranks per group.
    pub group_size: usize,
    /// Allgather block size per member.
    pub block_bytes: u64,
}

impl CommPlan for GroupedAllgatherPlan {
    fn plan_name(&self) -> String {
        format!("grouped_allgather[{} ranks / groups of {}]", self.nprocs, self.group_size)
    }

    fn lower(&self) -> Program {
        assert!(
            self.nprocs.is_multiple_of(self.group_size),
            "{} ranks not divisible into {}-groups",
            self.nprocs,
            self.group_size
        );
        let ring = schedule::allgather_ring(self.group_size, self.block_bytes);
        let mut p = Program::new(self.plan_name(), self.nprocs);
        for base in (0..self.nprocs).step_by(self.group_size) {
            let comm = p.add_comm((base..base + self.group_size).collect());
            for local in 0..self.group_size {
                for s in ring.rank_steps(local) {
                    p.push(
                        base + local,
                        match *s {
                            Step::Send { peer, bytes } => {
                                Op::Send { comm, dst: base + peer, tag: 0, bytes }
                            }
                            Step::Recv { peer } => {
                                Op::Recv { comm, src: Src::Rank(base + peer), tag: Tag::Is(0) }
                            }
                        },
                    );
                }
            }
        }
        p
    }
}

/// A Fig 5 collective under analysis: the point-to-point decomposition of
/// [`CollectiveKind`] at a given size, as a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectivePlan {
    /// Which collective/algorithm.
    pub kind: CollectiveKind,
    /// Number of ranks (rooted at 0, like the benchmark).
    pub nprocs: usize,
    /// Payload bytes.
    pub bytes: u64,
}

impl CommPlan for CollectivePlan {
    fn plan_name(&self) -> String {
        format!("collbench[{}, {} ranks, {} B]", self.kind.label(), self.nprocs, self.bytes)
    }

    fn lower(&self) -> Program {
        let lowered = self.kind.schedule(self.nprocs, self.bytes).lower();
        let mut p = Program::new(self.plan_name(), self.nprocs);
        for r in 0..self.nprocs {
            for &op in lowered.rank_ops(r) {
                p.push(r, op);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_analyze::{analyze, Verdict};

    #[test]
    fn app_plans_are_deadlock_free() {
        let plans: Vec<Program> = vec![
            StencilConfig { rows: 16, cols: 16, prows: 2, pcols: 4, iters: 3 }.lower(),
            StencilConfig { rows: 8, cols: 8, prows: 1, pcols: 1, iters: 2 }.lower(),
            CgPlan { nprocs: 8, iters: 25 }.lower(),
            GroupedAllgatherPlan { nprocs: 12, group_size: 4, block_bytes: 256 }.lower(),
            CollectivePlan { kind: CollectiveKind::ReduceBinary, nprocs: 16, bytes: 4096 }.lower(),
            CollectivePlan { kind: CollectiveKind::BcastBinomial, nprocs: 16, bytes: 4096 }.lower(),
        ];
        for plan in plans {
            let report = analyze(&plan);
            assert!(matches!(report.verdict, Verdict::DeadlockFree), "{}: {report}", report.plan);
            assert!(report.is_clean(), "{}: {report}", report.plan);
        }
    }

    #[test]
    fn stencil_plan_message_volume_matches_grid() {
        // 2x2 grid, 1 iteration: each interior edge of the process grid
        // carries two messages (one each way) -> 4 edges * 2 = 8 sends.
        let cfg = StencilConfig { rows: 8, cols: 8, prows: 2, pcols: 2, iters: 1 };
        let p = cfg.lower();
        let sends: usize = (0..p.nranks())
            .map(|r| p.rank_ops(r).iter().filter(|op| matches!(op, Op::Send { .. })).count())
            .sum();
        assert_eq!(sends, 8);
    }

    #[test]
    fn grouped_plan_scopes_channels_per_group() {
        let p = GroupedAllgatherPlan { nprocs: 8, group_size: 4, block_bytes: 64 }.lower();
        assert_eq!(p.ncomms(), 3); // world + two groups
        let report = analyze(&p);
        // Each group: 4 ranks * 3 blocks around the ring.
        assert_eq!(report.channels.len(), 8);
        assert!(report.channels.iter().all(|c| c.messages == 3 && c.bytes == 192));
    }
}
