//! Network-utilization monitoring and prediction (paper Sec 7).
//!
//! The paper's discussion points at a follow-up use of introspection
//! monitoring (Tseng et al., EuroPar'19): sample the session periodically to
//! build a bandwidth time series, predict near-future utilization, and
//! schedule background traffic — e.g. fetching checkpoints — into the
//! windows where the network is under-utilized.
//!
//! This module implements that loop's building blocks on top of `mim-core`:
//!
//! * [`UtilizationSampler`] — the suspend → `get_data` → `reset` → continue
//!   sampling cycle, yielding bytes-per-interval samples;
//! * [`EwmaPredictor`] — an exponentially-weighted moving-average predictor
//!   with idle-window detection.

use mim_core::{Flags, Monitoring, Msid, Result};
use mim_mpisim::Rank;

/// One utilization sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// Virtual time at the end of the sampling interval (seconds).
    pub t_s: f64,
    /// Bytes this process sent during the interval.
    pub bytes: u64,
    /// Observed send bandwidth over the interval (bytes/second).
    pub bandwidth: f64,
}

/// Periodic sampler over a monitoring session: every call to
/// [`UtilizationSampler::sample`] returns the traffic since the previous
/// call and resets the session, exactly the Fig 2 measurement discipline.
pub struct UtilizationSampler {
    msid: Msid,
    flags: Flags,
    last_t_s: f64,
}

impl UtilizationSampler {
    /// Wrap an *active* session created by the caller.
    pub fn new(rank: &Rank, msid: Msid, flags: Flags) -> Self {
        Self { msid, flags, last_t_s: rank.now_s() }
    }

    /// Close the current interval: suspend, read, reset, resume.
    ///
    /// # Errors
    /// Propagates monitoring errors (e.g. a freed session).
    pub fn sample(&mut self, rank: &Rank, mon: &Monitoring) -> Result<UtilizationSample> {
        mon.suspend(self.msid)?;
        let row = mon.get_data(self.msid, self.flags)?;
        mon.reset(self.msid)?;
        mon.resume(self.msid)?;
        let now = rank.now_s();
        let dt = (now - self.last_t_s).max(1e-12);
        self.last_t_s = now;
        let bytes: u64 = row.sizes.iter().sum();
        Ok(UtilizationSample { t_s: now, bytes, bandwidth: bytes as f64 / dt })
    }
}

/// Exponentially-weighted moving-average bandwidth predictor with an idle
/// threshold: the "is the network under-utilized right now (and likely to
/// stay so)?" oracle the checkpoint-prefetch use-case needs.
#[derive(Debug, Clone)]
pub struct EwmaPredictor {
    alpha: f64,
    estimate: Option<f64>,
    /// Bandwidth below which the network counts as idle (bytes/s).
    pub idle_threshold: f64,
}

impl EwmaPredictor {
    /// `alpha` ∈ (0, 1] weighs the newest sample; `idle_threshold` in
    /// bytes/second.
    pub fn new(alpha: f64, idle_threshold: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, estimate: None, idle_threshold }
    }

    /// Feed one sample; returns the updated prediction (bytes/s).
    pub fn observe(&mut self, sample: UtilizationSample) -> f64 {
        let e = match self.estimate {
            None => sample.bandwidth,
            Some(prev) => self.alpha * sample.bandwidth + (1.0 - self.alpha) * prev,
        };
        self.estimate = Some(e);
        e
    }

    /// Current predicted bandwidth (bytes/s); `None` before any sample.
    pub fn predicted(&self) -> Option<f64> {
        self.estimate
    }

    /// True when the predicted utilization is below the idle threshold —
    /// a good moment to schedule background transfers.
    pub fn network_idle(&self) -> bool {
        self.estimate.is_some_and(|e| e < self.idle_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_mpisim::{SrcSel, TagSel, Universe, UniverseConfig};
    use mim_topology::{Machine, Placement};

    fn sample(t: f64, bw: f64) -> UtilizationSample {
        UtilizationSample { t_s: t, bytes: bw as u64, bandwidth: bw }
    }

    #[test]
    fn ewma_converges_to_constant_signal() {
        let mut p = EwmaPredictor::new(0.3, 10.0);
        assert!(p.predicted().is_none());
        assert!(!p.network_idle());
        for i in 0..50 {
            p.observe(sample(i as f64, 100.0));
        }
        assert!((p.predicted().unwrap() - 100.0).abs() < 1e-6);
        assert!(!p.network_idle());
    }

    #[test]
    fn ewma_detects_idle_after_burst() {
        let mut p = EwmaPredictor::new(0.5, 50.0);
        p.observe(sample(0.0, 1000.0));
        assert!(!p.network_idle());
        for i in 1..12 {
            p.observe(sample(i as f64, 0.0));
        }
        assert!(p.network_idle(), "estimate {:?}", p.predicted());
    }

    #[test]
    fn sampler_tracks_bursts_and_silence() {
        let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 2), Placement::packed(2)));
        let idle_flags = u.launch(|rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            let id = mon.start(rank, &world).unwrap();
            if world.rank() == 1 {
                for _ in 0..6 {
                    rank.recv_synthetic(&world, SrcSel::Rank(0), TagSel::Any);
                }
                mon.suspend(id).unwrap();
                mon.free(id).unwrap();
                mon.finalize(rank).unwrap();
                return Vec::new();
            }
            let mut sampler = UtilizationSampler::new(rank, id, Flags::P2P_ONLY);
            let mut predictor = EwmaPredictor::new(0.6, 1e6); // 1 MB/s idle line
            let mut idle_trace = Vec::new();
            // Busy phase: 100 MB/s for 3 intervals of 10 ms.
            for _ in 0..3 {
                rank.send_synthetic(&world, 1, 0, 1_000_000);
                rank.sleep_ns(10e6);
                let s = sampler.sample(rank, &mon).unwrap();
                predictor.observe(s);
                idle_trace.push(predictor.network_idle());
            }
            // Quiet phase: a trickle for 6 intervals.
            for _ in 0..3 {
                rank.send_synthetic(&world, 1, 0, 100);
                rank.sleep_ns(10e6);
                let s = sampler.sample(rank, &mon).unwrap();
                predictor.observe(s);
                idle_trace.push(predictor.network_idle());
                rank.sleep_ns(10e6);
                let s = sampler.sample(rank, &mon).unwrap();
                predictor.observe(s);
                idle_trace.push(predictor.network_idle());
            }
            mon.suspend(id).unwrap();
            mon.free(id).unwrap();
            mon.finalize(rank).unwrap();
            idle_trace
        });
        let trace = &idle_flags[0];
        assert!(!trace[0] && !trace[1] && !trace[2], "busy phase must not read idle: {trace:?}");
        assert!(*trace.last().unwrap(), "quiet phase must be detected: {trace:?}");
    }
}
