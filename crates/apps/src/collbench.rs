//! Collective-optimization pipeline of paper Sec 6.3 (Fig 5): monitor a
//! collective's point-to-point decomposition, reorder the ranks with
//! TreeMatch, and compare the collective's runtime before and after.
//!
//! The monitoring → matrix → TreeMatch → `comm_split` pipeline runs live on
//! the threaded runtime; the before/after collective *timings* come from the
//! deterministic discrete-event evaluator with per-node NIC contention
//! ([`mim_mpisim::schedule::evaluate_contended`]), which is what makes
//! bandwidth-bound tree collectives placement-sensitive in the first place.

use mim_core::{Flags, Monitoring};
use mim_mpisim::{schedule, Schedule, Universe, UniverseConfig};
use mim_reorder::monitored_reorder;
use mim_topology::{inverse_permutation, Machine, Placement};

/// Which collective (and algorithm) the paper's Fig 5 measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// `MPI_Reduce`, binary-tree algorithm (Fig 5a).
    ReduceBinary,
    /// `MPI_Bcast`, binomial-tree algorithm (Fig 5b).
    BcastBinomial,
}

impl CollectiveKind {
    /// The collective's point-to-point schedule for `n` ranks rooted at 0.
    pub fn schedule(self, n: usize, bytes: u64) -> Schedule {
        match self {
            CollectiveKind::ReduceBinary => schedule::reduce_binary(n, 0, bytes),
            CollectiveKind::BcastBinomial => schedule::bcast_binomial(n, 0, bytes),
        }
    }

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::ReduceBinary => "MPI_Reduce/binary",
            CollectiveKind::BcastBinomial => "MPI_Bcast/binomial",
        }
    }
}

/// One point of Fig 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollOptPoint {
    /// Number of ranks.
    pub np: usize,
    /// Buffer size in 4-byte integers.
    pub buf_ints: u64,
    /// Collective runtime without monitoring, round-robin mapping (ns).
    /// Reduce: time at the root; bcast: total (max over ranks).
    pub baseline_ns: f64,
    /// Same collective after introspection monitoring + rank reordering.
    pub reordered_ns: f64,
}

impl CollOptPoint {
    /// Speedup of the reordered collective.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.reordered_ns
    }
}

/// Compute the reordering permutation for a collective's monitored
/// decomposition: runs the live pipeline (session → gather at rank 0 →
/// TreeMatch → broadcast → split) and returns `k`.
pub fn monitored_permutation(
    machine: &Machine,
    placement: &Placement,
    sched: &Schedule,
) -> Vec<usize> {
    let u = Universe::new(UniverseConfig::new(machine.clone(), placement.clone()));
    let ks = u.launch(|rank| {
        let world = rank.comm_world();
        let mon = Monitoring::init(rank).unwrap();
        let outcome = monitored_reorder(rank, &mon, &world, Flags::COLL_ONLY, |comm| {
            schedule::execute(rank, comm, sched)
        });
        mon.finalize(rank).unwrap();
        // Sanity: the optimized communicator really assigns rank k[me].
        assert_eq!(outcome.comm.rank(), outcome.k[world.rank()]);
        outcome.k
    });
    ks.into_iter().next().unwrap()
}

/// Run the full pipeline for one `(np, buffer)` point: time the collective
/// on the paper's "round-robin" baseline mapping (cyclic over the nodes, the
/// mapping a user gets "without any specification"), monitor its
/// decomposition live, reorder, and time it again under the new rank→core
/// mapping.
pub fn collective_opt(
    machine: Machine,
    np: usize,
    kind: CollectiveKind,
    buf_ints: u64,
) -> CollOptPoint {
    assert!(np <= machine.num_cores(), "{np} ranks exceed the machine");
    let placement = Placement::cyclic_by_level(&machine.tree, np, machine.node_level);
    let bytes = buf_ints * 4;
    let sched = kind.schedule(np, bytes);
    let k = monitored_permutation(&machine, &placement, &sched);
    let inv = inverse_permutation(&k);
    // Schedule rank r runs on the process holding (new) rank r: old rank
    // inv[r], whose core never moved.
    let cores_base: Vec<usize> = (0..np).map(|r| placement.core_of(r)).collect();
    let cores_opt: Vec<usize> = (0..np).map(|r| cores_base[inv[r]]).collect();
    let cfg = UniverseConfig::new(machine.clone(), placement);
    let time = |cores: &[usize]| {
        let per_rank = schedule::evaluate_contended(
            &sched,
            &machine,
            cores,
            cfg.send_overhead_ns,
            cfg.recv_overhead_ns,
        );
        match kind {
            // Reduce: the paper plots the time at the root (schedule rank 0).
            CollectiveKind::ReduceBinary => per_rank[0],
            // Bcast: total time = max over ranks.
            CollectiveKind::BcastBinomial => per_rank.into_iter().fold(0.0f64, f64::max),
        }
    };
    CollOptPoint { np, buf_ints, baseline_ns: time(&cores_base), reordered_ns: time(&cores_opt) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_reordering_helps_on_spread_ranks() {
        // 16 ranks over 2 nodes, large buffers: the binary tree's heavy
        // edges get pulled inside nodes.
        let p =
            collective_opt(Machine::cluster(2, 1, 8), 16, CollectiveKind::ReduceBinary, 500_000);
        assert!(
            p.reordered_ns < p.baseline_ns,
            "reduce got slower: {} -> {}",
            p.baseline_ns,
            p.reordered_ns
        );
    }

    #[test]
    fn bcast_reordering_helps() {
        let p =
            collective_opt(Machine::cluster(2, 1, 8), 16, CollectiveKind::BcastBinomial, 500_000);
        assert!(
            p.reordered_ns < p.baseline_ns,
            "bcast got slower: {} -> {}",
            p.baseline_ns,
            p.reordered_ns
        );
        assert!(p.speedup() > 1.0);
    }

    #[test]
    fn all_buffer_sizes_benefit() {
        // Paper: "we are able to optimize the collective communication
        // runtime for all the buffer size" — small ones via the latency
        // ratio, large ones via bandwidth and NIC contention.
        for buf in [100u64, 10_000, 1_000_000] {
            let p =
                collective_opt(Machine::cluster(2, 1, 8), 16, CollectiveKind::ReduceBinary, buf);
            assert!(p.speedup() > 1.0, "no gain at {buf} ints: {:?}", p);
        }
    }

    #[test]
    fn schedules_have_tree_shape() {
        for kind in [CollectiveKind::ReduceBinary, CollectiveKind::BcastBinomial] {
            let s = kind.schedule(12, 100);
            assert_eq!(s.total_messages(), 11);
            s.validate().unwrap();
        }
    }
}
