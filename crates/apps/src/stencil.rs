//! Distributed 2-D Jacobi stencil (heat diffusion) with halo exchange.
//!
//! The second application workload (after CG): a process grid owns blocks
//! of a global grid and exchanges halos with its four neighbours every
//! iteration through nonblocking point-to-point — a rank-based
//! nearest-neighbour pattern, the textbook case for topology-aware rank
//! reordering (the paper's introduction motivates exactly this affinity).

use mim_mpisim::{Comm, Rank, SrcSel, TagSel};

/// Stencil problem description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilConfig {
    /// Global grid height (interior points).
    pub rows: usize,
    /// Global grid width (interior points).
    pub cols: usize,
    /// Process-grid height; `prows * pcols` must equal the communicator size.
    pub prows: usize,
    /// Process-grid width.
    pub pcols: usize,
    /// Jacobi iterations.
    pub iters: usize,
}

impl StencilConfig {
    /// Block height per process.
    pub fn block_rows(&self) -> usize {
        assert!(self.rows.is_multiple_of(self.prows), "rows must divide evenly");
        self.rows / self.prows
    }

    /// Block width per process.
    pub fn block_cols(&self) -> usize {
        assert!(self.cols.is_multiple_of(self.pcols), "cols must divide evenly");
        self.cols / self.pcols
    }
}

/// Per-rank outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilStats {
    /// Sum of all interior values after the last iteration (global checksum).
    pub checksum: f64,
    /// Virtual time of the run on this rank (ns).
    pub total_ns: f64,
    /// Virtual time spent in halo exchanges and reductions (ns).
    pub comm_ns: f64,
}

/// Boundary condition: the global top edge is held at 1.0, the other edges
/// at 0.0, interior starts at 0.0 (heat flowing in from the top).
fn boundary_top() -> f64 {
    1.0
}

/// Sequential reference implementation (same sweep, same boundaries).
pub fn jacobi_reference(cfg: StencilConfig) -> Vec<f64> {
    let (r, c) = (cfg.rows, cfg.cols);
    let mut u = vec![0.0f64; r * c];
    let mut next = u.clone();
    let at = |u: &[f64], i: isize, j: isize| -> f64 {
        if i < 0 {
            boundary_top()
        } else if j < 0 || i >= r as isize || j >= c as isize {
            0.0
        } else {
            u[i as usize * c + j as usize]
        }
    };
    for _ in 0..cfg.iters {
        for i in 0..r {
            for j in 0..c {
                let (i, j) = (i as isize, j as isize);
                next[i as usize * c + j as usize] = 0.25
                    * (at(&u, i - 1, j) + at(&u, i + 1, j) + at(&u, i, j - 1) + at(&u, i, j + 1));
            }
        }
        std::mem::swap(&mut u, &mut next);
    }
    u
}

pub(crate) const HALO_TAG_BASE: u32 = 0x00A0_0000;

/// Run the distributed Jacobi sweep over `comm` (process grid
/// `prows × pcols`, row-major rank numbering).  Returns this rank's block
/// and its statistics; the checksum is globally reduced so every rank can
/// verify agreement.
///
/// # Panics
/// Panics when the communicator size does not match the process grid, or
/// the grid does not divide evenly.
pub fn run_stencil(rank: &Rank, comm: &Comm, cfg: StencilConfig) -> (Vec<f64>, StencilStats) {
    assert_eq!(comm.size(), cfg.prows * cfg.pcols, "communicator size vs process grid");
    let (br, bc) = (cfg.block_rows(), cfg.block_cols());
    let me = comm.rank();
    let (prow, pcol) = (me / cfg.pcols, me % cfg.pcols);
    let neighbour = |dr: isize, dc: isize| -> Option<usize> {
        let (nr, nc) = (prow as isize + dr, pcol as isize + dc);
        (nr >= 0 && nc >= 0 && nr < cfg.prows as isize && nc < cfg.pcols as isize)
            .then(|| nr as usize * cfg.pcols + nc as usize)
    };
    let (up, down, left, right) =
        (neighbour(-1, 0), neighbour(1, 0), neighbour(0, -1), neighbour(0, 1));

    let start_ns = rank.now_ns();
    let mut comm_ns = 0.0;
    let mut u = vec![0.0f64; br * bc];
    let mut next = u.clone();
    // Halo buffers (row above/below, column left/right of the block).
    let mut halo_up;
    let mut halo_down;
    let mut halo_left;
    let mut halo_right;
    for it in 0..cfg.iters {
        let tag = HALO_TAG_BASE + it as u32;
        // Exchange halos with the four neighbours (nonblocking).
        let t0 = rank.now_ns();
        let mut reqs = Vec::new();
        if let Some(p) = up {
            rank.isend(comm, p, tag, &u[0..bc]).wait(rank);
            reqs.push((0u8, rank.irecv(comm, SrcSel::Rank(p), TagSel::Is(tag))));
        }
        if let Some(p) = down {
            rank.isend(comm, p, tag, &u[(br - 1) * bc..br * bc]).wait(rank);
            reqs.push((1, rank.irecv(comm, SrcSel::Rank(p), TagSel::Is(tag))));
        }
        let col: Vec<f64> = (0..br).map(|i| u[i * bc]).collect();
        if let Some(p) = left {
            rank.isend(comm, p, tag + 0x1000, &col).wait(rank);
            reqs.push((2, rank.irecv(comm, SrcSel::Rank(p), TagSel::Is(tag + 0x1000))));
        }
        let col: Vec<f64> = (0..br).map(|i| u[i * bc + bc - 1]).collect();
        if let Some(p) = right {
            rank.isend(comm, p, tag + 0x1000, &col).wait(rank);
            reqs.push((3, rank.irecv(comm, SrcSel::Rank(p), TagSel::Is(tag + 0x1000))));
        }
        halo_up = (prow == 0).then(|| vec![boundary_top(); bc]);
        halo_down = (prow == cfg.prows - 1).then(|| vec![0.0; bc]);
        halo_left = (pcol == 0).then(|| vec![0.0; br]);
        halo_right = (pcol == cfg.pcols - 1).then(|| vec![0.0; br]);
        for (side, req) in reqs {
            let (data, _) = req.wait::<f64>(rank);
            match side {
                0 => halo_up = Some(data),
                1 => halo_down = Some(data),
                2 => halo_left = Some(data),
                _ => halo_right = Some(data),
            }
        }
        comm_ns += rank.now_ns() - t0;
        let (hu, hd, hl, hr) = (
            halo_up.as_ref().unwrap(),
            halo_down.as_ref().unwrap(),
            halo_left.as_ref().unwrap(),
            halo_right.as_ref().unwrap(),
        );
        // Jacobi sweep over the block.
        for i in 0..br {
            for j in 0..bc {
                let n = if i == 0 { hu[j] } else { u[(i - 1) * bc + j] };
                let s = if i == br - 1 { hd[j] } else { u[(i + 1) * bc + j] };
                let w = if j == 0 { hl[i] } else { u[i * bc + j - 1] };
                let e = if j == bc - 1 { hr[i] } else { u[i * bc + j + 1] };
                next[i * bc + j] = 0.25 * (n + s + w + e);
            }
        }
        std::mem::swap(&mut u, &mut next);
        // Charge the sweep: 4 flops per point at the CG crate's flop speed.
        rank.compute_ns(4.0 * (br * bc) as f64 * 0.5);
    }
    let t0 = rank.now_ns();
    let local_sum: f64 = u.iter().sum();
    let checksum = rank.allreduce(comm, &[local_sum], |a, b| a + b)[0];
    comm_ns += rank.now_ns() - t0;
    let stats = StencilStats { checksum, total_ns: rank.now_ns() - start_ns, comm_ns };
    (u, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_mpisim::{Universe, UniverseConfig};
    use mim_topology::{Machine, Placement};

    fn gather_global(blocks: &[Vec<f64>], cfg: StencilConfig) -> Vec<f64> {
        let (br, bc) = (cfg.block_rows(), cfg.block_cols());
        let mut global = vec![0.0; cfg.rows * cfg.cols];
        for (r, block) in blocks.iter().enumerate() {
            let (prow, pcol) = (r / cfg.pcols, r % cfg.pcols);
            for i in 0..br {
                for j in 0..bc {
                    global[(prow * br + i) * cfg.cols + pcol * bc + j] = block[i * bc + j];
                }
            }
        }
        global
    }

    #[test]
    fn distributed_matches_sequential() {
        for (prows, pcols) in [(1usize, 1usize), (2, 2), (2, 4), (4, 2)] {
            let cfg = StencilConfig { rows: 16, cols: 16, prows, pcols, iters: 12 };
            let n = prows * pcols;
            let u =
                Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 8), Placement::packed(n)));
            let blocks: Vec<Vec<f64>> = u
                .launch(move |rank| run_stencil(rank, &rank.comm_world(), cfg).0)
                .into_iter()
                .collect();
            let got = gather_global(&blocks, cfg);
            let expect = jacobi_reference(cfg);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-12, "{prows}x{pcols}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn heat_flows_from_the_top() {
        let cfg = StencilConfig { rows: 8, cols: 8, prows: 2, pcols: 2, iters: 30 };
        let u = Universe::new(UniverseConfig::new(Machine::cluster(1, 1, 4), Placement::packed(4)));
        let blocks = u.launch(move |rank| run_stencil(rank, &rank.comm_world(), cfg).0);
        let global = gather_global(&blocks, cfg);
        // Top rows are warmer than bottom rows.
        let top: f64 = global[..8].iter().sum();
        let bottom: f64 = global[56..].iter().sum();
        assert!(top > bottom, "top {top} vs bottom {bottom}");
        assert!(top > 0.0);
    }

    #[test]
    fn checksum_agrees_on_all_ranks() {
        let cfg = StencilConfig { rows: 8, cols: 8, prows: 2, pcols: 2, iters: 5 };
        let u = Universe::new(UniverseConfig::new(Machine::cluster(1, 1, 4), Placement::packed(4)));
        let stats = u.launch(move |rank| run_stencil(rank, &rank.comm_world(), cfg).1);
        for s in &stats[1..] {
            assert_eq!(s.checksum, stats[0].checksum);
        }
        assert!(stats[0].comm_ns > 0.0);
    }
}
