//! The built-in plan table: every collective schedule generator and app
//! kernel in the workspace, lowered to a `mim-analyze` [`Program`] from a
//! shared [`Shape`].
//!
//! Both command-line front-ends — `mim-analyze` (static verification) and
//! `mim-explore` (schedule exploration) — resolve plan names through this
//! one table, so a plan added here is immediately analyzable *and*
//! explorable, and the two tools can never disagree about what
//! `bcast_binomial --n 48` means.

use mim_analyze::{CommPlan, Program};
use mim_mpisim::schedule;

use crate::collbench::CollectiveKind;
use crate::plan::{CgPlan, CollectivePlan, GroupedAllgatherPlan};
use crate::stencil::StencilConfig;

/// Shape parameters shared by every built-in plan.
#[derive(Debug, Clone, Copy)]
pub struct Shape {
    /// Number of ranks.
    pub n: usize,
    /// Root for rooted plans.
    pub root: usize,
    /// Payload size.
    pub bytes: u64,
    /// Segment size for segmented plans.
    pub seg: u64,
}

impl Default for Shape {
    fn default() -> Self {
        Shape { n: 8, root: 0, bytes: 4096, seg: 1024 }
    }
}

/// Names [`built_in`] resolves, in presentation order.
pub const PLANS: &[&str] = &[
    "bcast_binomial",
    "bcast_binary",
    "bcast_binary_segmented",
    "reduce_binomial",
    "reduce_binary",
    "allgather_ring",
    "barrier_dissemination",
    "allreduce_recursive_doubling",
    "alltoall_pairwise",
    "stencil",
    "cg",
    "grouped_allgather",
    "collbench_reduce_binary",
    "collbench_bcast_binomial",
];

/// Largest divisor of `n` not exceeding `limit` (always ≥ 1).
fn divisor_at_most(n: usize, limit: usize) -> usize {
    (1..=limit.min(n)).rev().find(|d| n.is_multiple_of(*d)).unwrap_or(1)
}

/// Lower one named built-in plan at the given shape.
///
/// Fails on an unknown name or a shape the plan cannot take (e.g. a root
/// outside `0..n`).
pub fn built_in(name: &str, s: &Shape) -> Result<Program, String> {
    let (n, root, bytes) = (s.n, s.root, s.bytes);
    if n == 0 {
        return Err("plans need at least 1 rank".into());
    }
    if root >= n {
        return Err(format!("--root {root} out of range for --n {n}"));
    }
    let plan = match name {
        "bcast_binomial" => schedule::bcast_binomial(n, root, bytes).lower(),
        "bcast_binary" => schedule::bcast_binary(n, root, bytes).lower(),
        "bcast_binary_segmented" => schedule::bcast_binary_segmented(n, root, bytes, s.seg).lower(),
        "reduce_binomial" => schedule::reduce_binomial(n, root, bytes).lower(),
        "reduce_binary" => schedule::reduce_binary(n, root, bytes).lower(),
        "allgather_ring" => schedule::allgather_ring(n, bytes).lower(),
        "barrier_dissemination" => schedule::barrier_dissemination(n).lower(),
        "allreduce_recursive_doubling" => schedule::allreduce_recursive_doubling(n, bytes).lower(),
        "alltoall_pairwise" => schedule::alltoall_pairwise(n, bytes).lower(),
        "stencil" => {
            // Factor n into the squarest process grid and give each rank a
            // 4x4 block.
            let prows = divisor_at_most(n, n.isqrt());
            let pcols = n / prows;
            StencilConfig { rows: prows * 4, cols: pcols * 4, prows, pcols, iters: 3 }.lower()
        }
        "cg" => CgPlan { nprocs: n, iters: 25 }.lower(),
        "grouped_allgather" => {
            // Prefer several small groups; a prime n falls back to one
            // group of n (a group of 1 would ring zero messages).
            let d = divisor_at_most(n, 4.max(n.isqrt()));
            let group_size = if d > 1 { d } else { n };
            GroupedAllgatherPlan { nprocs: n, group_size, block_bytes: bytes }.lower()
        }
        "collbench_reduce_binary" => {
            CollectivePlan { kind: CollectiveKind::ReduceBinary, nprocs: n, bytes }.lower()
        }
        "collbench_bcast_binomial" => {
            CollectivePlan { kind: CollectiveKind::BcastBinomial, nprocs: n, bytes }.lower()
        }
        other => return Err(format!("unknown plan '{other}' (try --list)")),
    };
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_plan_lowers() {
        let s = Shape::default();
        for name in PLANS {
            let p = built_in(name, &s).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(p.total_ops() > 0, "{name} lowered to an empty program");
        }
    }

    #[test]
    fn bad_shapes_are_rejected() {
        assert!(built_in("bcast_binomial", &Shape { root: 9, ..Shape::default() }).is_err());
        assert!(built_in("no_such_plan", &Shape::default()).is_err());
        assert!(built_in("cg", &Shape { n: 0, ..Shape::default() }).is_err());
    }
}
