//! Statistics used by the overhead experiment (paper Fig 4): sample means,
//! 95% confidence intervals, and Welch's unpaired unequal-variance t
//! machinery.

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty sample");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance.
pub fn variance(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 2, "variance needs at least two samples");
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (of a copy; does not reorder the input).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of an empty sample");
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Two-sided 95% critical value of Student's t for `df` degrees of freedom
/// (table for small df, normal approximation past 120).
pub fn t_critical_95(df: f64) -> f64 {
    const TABLE: [(f64, f64); 16] = [
        (1.0, 12.706),
        (2.0, 4.303),
        (3.0, 3.182),
        (4.0, 2.776),
        (5.0, 2.571),
        (6.0, 2.447),
        (8.0, 2.306),
        (10.0, 2.228),
        (15.0, 2.131),
        (20.0, 2.086),
        (30.0, 2.042),
        (40.0, 2.021),
        (60.0, 2.000),
        (80.0, 1.990),
        (100.0, 1.984),
        (120.0, 1.980),
    ];
    assert!(df >= 1.0, "degrees of freedom must be >= 1");
    if df >= 120.0 {
        return 1.96;
    }
    // Linear interpolation over the table.
    let mut prev = TABLE[0];
    for &entry in &TABLE[1..] {
        if df <= entry.0 {
            let t = (df - prev.0) / (entry.0 - prev.0);
            return prev.1 + t * (entry.1 - prev.1);
        }
        prev = entry;
    }
    1.96
}

/// Welch's unpaired comparison of two samples: difference of means and the
/// half-width of its 95% confidence interval (unequal variances,
/// Welch–Satterthwaite degrees of freedom) — exactly the error bars of the
/// paper's Fig 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchDiff {
    /// `mean(a) - mean(b)`.
    pub diff: f64,
    /// Half-width of the 95% CI around `diff`.
    pub ci95: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
}

impl WelchDiff {
    /// True when 0 lies outside the confidence interval.
    pub fn significant(&self) -> bool {
        self.diff.abs() > self.ci95
    }
}

/// Compare two samples with Welch's method.
pub fn welch_diff(a: &[f64], b: &[f64]) -> WelchDiff {
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (va, vb) = (variance(a), variance(b));
    let sa = va / na;
    let sb = vb / nb;
    let se = (sa + sb).sqrt();
    let df = if sa + sb == 0.0 {
        na + nb - 2.0
    } else {
        (sa + sb).powi(2) / (sa * sa / (na - 1.0) + sb * sb / (nb - 1.0))
    };
    WelchDiff { diff: mean(a) - mean(b), ci95: t_critical_95(df.max(1.0)) * se, df }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn t_table_monotone_and_bounded() {
        let mut prev = f64::INFINITY;
        for df in [1.0, 2.0, 3.0, 7.0, 12.0, 25.0, 50.0, 90.0, 119.0, 500.0] {
            let t = t_critical_95(df);
            assert!(t <= prev + 1e-9, "t must not increase with df");
            assert!((1.9..=12.8).contains(&t));
            prev = t;
        }
        assert_eq!(t_critical_95(1000.0), 1.96);
    }

    #[test]
    fn welch_detects_separation() {
        let a: Vec<f64> = (0..30).map(|i| 100.0 + (i % 3) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 90.0 + (i % 3) as f64).collect();
        let w = welch_diff(&a, &b);
        assert!((w.diff - 10.0).abs() < 1e-9);
        assert!(w.significant());
    }

    #[test]
    fn welch_accepts_identical() {
        let a: Vec<f64> = (0..50).map(|i| 10.0 + (i % 7) as f64).collect();
        let w = welch_diff(&a, &a);
        assert_eq!(w.diff, 0.0);
        assert!(!w.significant());
    }

    #[test]
    fn welch_zero_variance() {
        let a = [5.0, 5.0, 5.0];
        let b = [5.0, 5.0, 5.0];
        let w = welch_diff(&a, &b);
        assert_eq!(w.diff, 0.0);
        assert_eq!(w.ci95, 0.0);
    }
}
