//! Distributed conjugate gradient (NPB CG-style), the paper's Sec 6.5
//! application.
//!
//! Row-block distribution with real numerics: every iteration performs a
//! ring allgather of the search direction (heavy, rank-neighbour traffic)
//! plus three allreduce dot products — a fixed, rank-based communication
//! pattern, which is exactly what makes CG "perfectly suited for the
//! reordering use-case" (same pattern every iteration).
//!
//! NPB class sizes are scaled to simulator scale; the communication
//! *pattern* is preserved (see EXPERIMENTS.md for the substitution note).

use mim_mpisim::{Comm, Rank};

use crate::sparse::{dot, random_spd, Csr};

/// A scaled NPB problem class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgClass {
    /// Class letter (NPB naming).
    pub name: &'static str,
    /// Matrix order before padding to the communicator size.
    pub na: usize,
    /// Off-diagonal entries generated per row.
    pub extra_per_row: usize,
    /// CG iterations per run (NPB uses 25 for B–D, 15 for S/A).
    pub iters: usize,
    /// Floating-point operations per iteration of the *full-scale* NPB
    /// class (total published Mop counts / iterations).  The numerics run
    /// on the scaled matrix, but the virtual clock is charged the
    /// full-scale compute so the communication/computation balance — which
    /// Fig 7's ratios depend on — matches the paper's runs.
    pub flops_per_iter: f64,
}

/// Scaled-down counterparts of the NPB classes used in the paper (B, C, D)
/// plus the small classes for testing.
pub const CLASSES: [CgClass; 5] = [
    CgClass { name: "S", na: 512, extra_per_row: 4, iters: 15, flops_per_iter: 4.4e6 },
    CgClass { name: "A", na: 2048, extra_per_row: 6, iters: 15, flops_per_iter: 1.0e8 },
    CgClass { name: "B", na: 4096, extra_per_row: 8, iters: 25, flops_per_iter: 7.3e8 },
    CgClass { name: "C", na: 8192, extra_per_row: 9, iters: 25, flops_per_iter: 1.9e9 },
    CgClass { name: "D", na: 16384, extra_per_row: 10, iters: 25, flops_per_iter: 1.74e10 },
];

/// Look up a class by letter.
pub fn class(name: &str) -> CgClass {
    *CLASSES.iter().find(|c| c.name == name).expect("unknown CG class")
}

/// Generate the class's matrix padded so its order divides `nprocs`
/// (padding rows are decoupled: diagonal 1, zero right-hand side).
pub fn generate_matrix(class: CgClass, nprocs: usize, seed: u64) -> Csr {
    let na = class.na.div_ceil(nprocs) * nprocs;
    random_spd(na, class.extra_per_row, seed)
}

/// Per-rank outcome of a distributed CG run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgStats {
    /// Final residual norm `‖b − A·x‖₂`.
    pub residual: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Virtual wall time of the run on this rank (ns).
    pub total_ns: f64,
    /// Virtual time this rank spent inside communication calls (ns) — the
    /// paper's "time spent in MPI calls" measurement.
    pub comm_ns: f64,
}

/// Effective compute speed used to charge the virtual clock for local work:
/// nanoseconds per floating-point operation (2 GFlop/s).
const NS_PER_FLOP: f64 = 0.5;

/// Solve `A·x = 1` with `iters` CG iterations over `comm` (row-block
/// distribution).  Returns this rank's block of `x` and its statistics.
///
/// The iteration pattern is rank-based: allgather (ring) + 2 allreduces, so
/// a rank reordering changes which physical cores exchange the heavy ring
/// traffic without touching the numerics.
///
/// # Panics
/// Panics when the matrix order is not a multiple of the communicator size.
pub fn run_cg(rank: &Rank, comm: &Comm, a: &Csr, iters: usize) -> (Vec<f64>, CgStats) {
    run_cg_charged(rank, comm, a, iters, 0.0)
}

/// [`run_cg`] with an explicit full-scale compute charge: every iteration
/// additionally advances the virtual clock by
/// `charged_flops_per_iter / comm.size() · NS_PER_FLOP` on each rank,
/// emulating the class's real per-rank compute share (see [`CgClass`]).
pub fn run_cg_charged(
    rank: &Rank,
    comm: &Comm,
    a: &Csr,
    iters: usize,
    charged_flops_per_iter: f64,
) -> (Vec<f64>, CgStats) {
    let n = comm.size();
    let na = a.order();
    assert!(na.is_multiple_of(n), "matrix order {na} not divisible by {n} ranks");
    let rows_per = na / n;
    let me = comm.rank();
    let my_rows = me * rows_per..(me + 1) * rows_per;

    let start_ns = rank.now_ns();
    let mut comm_ns = 0.0;

    // b = 1 everywhere; x = 0; r = b; p = r.
    let b_local = vec![1.0f64; rows_per];
    let mut x = vec![0.0f64; rows_per];
    let mut r = b_local.clone();
    let mut p = r.clone();
    let t0 = rank.now_ns();
    let mut rho = rank.allreduce(comm, &[dot(&r, &r)], |a, b| a + b)[0];
    comm_ns += rank.now_ns() - t0;

    let mut q = vec![0.0f64; rows_per];
    for _ in 0..iters {
        // Gather the full search direction (the heavy ring).
        let t0 = rank.now_ns();
        let p_full = rank.allgather(comm, &p);
        comm_ns += rank.now_ns() - t0;
        // Local mat-vec, charged to the virtual clock.
        a.spmv_rows(my_rows.clone(), &p_full, &mut q);
        let local_nnz = (my_rows.end - my_rows.start).max(1) * (a.nnz() / na.max(1)).max(1);
        rank.compute_ns(2.0 * local_nnz as f64 * NS_PER_FLOP);
        let t0 = rank.now_ns();
        let pq = rank.allreduce(comm, &[dot(&p, &q)], |a, b| a + b)[0];
        comm_ns += rank.now_ns() - t0;
        let alpha = rho / pq;
        for i in 0..rows_per {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let t0 = rank.now_ns();
        let rho_new = rank.allreduce(comm, &[dot(&r, &r)], |a, b| a + b)[0];
        comm_ns += rank.now_ns() - t0;
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..rows_per {
            p[i] = r[i] + beta * p[i];
        }
        rank.compute_ns(6.0 * rows_per as f64 * NS_PER_FLOP);
        rank.compute_ns(charged_flops_per_iter / n as f64 * NS_PER_FLOP);
    }
    let stats = CgStats {
        residual: rho.sqrt(),
        iterations: iters,
        total_ns: rank.now_ns() - start_ns,
        comm_ns,
    };
    (x, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::cg_reference;
    use mim_mpisim::{Universe, UniverseConfig};
    use mim_topology::{Machine, Placement};

    #[test]
    fn distributed_cg_matches_sequential() {
        let cls = CgClass { name: "T", na: 240, extra_per_row: 4, iters: 20, flops_per_iter: 0.0 };
        let a = generate_matrix(cls, 8, 11);
        let na = a.order();
        let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(8)));
        let a2 = a.clone();
        let results = u.launch(move |rank| {
            let world = rank.comm_world();
            let (x_local, stats) = run_cg(rank, &world, &a2, cls.iters);
            (x_local, stats)
        });
        // Stitch the distributed solution together.
        let mut x = Vec::with_capacity(na);
        for (block, _) in &results {
            x.extend_from_slice(block);
        }
        let (x_ref, res_ref, _) = cg_reference(&a, &vec![1.0; na], cls.iters, 0.0);
        for i in 0..na {
            assert!(
                (x[i] - x_ref[i]).abs() < 1e-8 * x_ref[i].abs().max(1.0),
                "x[{i}]: {} vs {}",
                x[i],
                x_ref[i]
            );
        }
        // Residuals agree and communication time was accounted.
        let (_, stats0) = &results[0];
        assert!((stats0.residual - res_ref).abs() < 1e-8 * res_ref.max(1e-30));
        assert!(stats0.comm_ns > 0.0);
        assert!(stats0.total_ns >= stats0.comm_ns);
    }

    #[test]
    fn all_ranks_report_same_residual() {
        let cls = CgClass { name: "T", na: 128, extra_per_row: 3, iters: 10, flops_per_iter: 0.0 };
        let a = generate_matrix(cls, 4, 5);
        let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 2), Placement::packed(4)));
        let residuals = u.launch(move |rank| {
            let world = rank.comm_world();
            run_cg(rank, &world, &a, cls.iters).1.residual
        });
        for r in &residuals[1..] {
            assert_eq!(*r, residuals[0]);
        }
    }

    #[test]
    fn residual_decreases_with_iterations() {
        let cls = CgClass { name: "T", na: 256, extra_per_row: 4, iters: 4, flops_per_iter: 0.0 };
        let a = generate_matrix(cls, 4, 17);
        let run = |iters: usize| {
            let a = a.clone();
            let u =
                Universe::new(UniverseConfig::new(Machine::cluster(1, 1, 4), Placement::packed(4)));
            u.launch(move |rank| {
                let world = rank.comm_world();
                run_cg(rank, &world, &a, iters).1.residual
            })[0]
        };
        assert!(run(12) < run(3));
    }

    #[test]
    fn classes_are_well_formed() {
        for c in CLASSES {
            assert!(c.na > 0 && c.iters > 0);
        }
        assert_eq!(class("B").na, 4096);
        let m = generate_matrix(class("S"), 7, 1);
        assert_eq!(m.order() % 7, 0);
    }
}
