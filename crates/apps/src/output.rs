//! CSV and ASCII-chart emitters for the benchmark harness.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The repository's `results/` directory (created on demand).  Benchmarks
/// write their CSVs here; the path can be overridden with the
/// `MIM_RESULTS_DIR` environment variable.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("MIM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Write a CSV file with a header line and stringly-typed rows.
pub fn write_csv(path: &Path, header: &str, rows: &[Vec<String>]) {
    let mut f = std::io::BufWriter::new(fs::File::create(path).expect("create CSV"));
    writeln!(f, "{header}").expect("write CSV header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write CSV row");
    }
    f.flush().expect("flush CSV");
}

/// Render a simple aligned table for terminal output.
pub fn ascii_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(ncols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: &[String]| {
        for (c, cell) in cells.iter().enumerate().take(ncols) {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[c]));
        }
        out.push('\n');
    };
    emit(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    emit(&mut out, &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        emit(&mut out, row);
    }
    out
}

/// Render a heatmap of `values[row][col]` with a diverging character ramp —
/// negative values (red in the paper's Fig 6) as `-`/`=`, positive (green)
/// as `+`/`#`.
pub fn ascii_heatmap(row_labels: &[String], col_labels: &[String], values: &[Vec<f64>]) -> String {
    let cell = |v: f64| -> &'static str {
        if v <= -50.0 {
            " == "
        } else if v < 0.0 {
            "  - "
        } else if v < 25.0 {
            "  + "
        } else if v < 60.0 {
            " ++ "
        } else {
            " ## "
        }
    };
    let label_w = row_labels.iter().map(String::len).max().unwrap_or(0).max(8);
    let mut out = String::new();
    out.push_str(&format!("{:>label_w$} |", "iters\\buf"));
    for c in col_labels {
        out.push_str(&format!("{c:>5}"));
    }
    out.push('\n');
    for (r, row) in values.iter().enumerate() {
        out.push_str(&format!("{:>label_w$} |", row_labels[r]));
        for &v in row {
            out.push_str(&format!("{:>5}", cell(v)));
        }
        out.push('\n');
    }
    out.push_str("legend: ## >60%  ++ 25..60%  + 0..25%  - <0%  == <-50%\n");
    out
}

/// Format a nanosecond duration human-readably.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = ascii_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[1].starts_with('-') || lines[1].contains("---"));
    }

    #[test]
    fn heatmap_ramp() {
        let h = ascii_heatmap(
            &["1".into(), "10".into()],
            &["1".into(), "2".into()],
            &[vec![-80.0, -10.0], vec![30.0, 95.0]],
        );
        assert!(h.contains("==") && h.contains('-') && h.contains("++") && h.contains("##"));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(1.5e9), "1.50s");
        assert_eq!(fmt_ns(2.5e6), "2.50ms");
        assert_eq!(fmt_ns(3.0e3), "3.00us");
        assert_eq!(fmt_ns(42.0), "42ns");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mim-csv-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        write_csv(&p, "x,y", &[vec!["1".into(), "2".into()]]);
        assert_eq!(fs::read_to_string(&p).unwrap(), "x,y\n1,2\n");
        fs::remove_dir_all(&dir).ok();
    }
}
