//! The grouped-allgather micro-benchmark of paper Sec 6.4 (Fig 6).
//!
//! Groups of ranks run an `MPI_Allgather` per iteration on their own
//! sub-communicator.  The initial mapping is cyclic over the nodes, so every
//! group's members are spread across the machine and each ring hop crosses
//! the network; reordering each group packs its members.  The paper's gain
//! for `n` iterations is `100·(t1 − (t2 + t3)) / t1` with `t1`/`t3` the
//! before/after times of `n` iterations and `t2` the reordering cost.
//!
//! The monitoring/reordering pipeline (and `t2`) run live on the threaded
//! runtime; per-iteration times come from the deterministic contended
//! evaluator over the *combined* schedule of all groups rung concurrently —
//! the groups share each node's NIC, which is most of the effect.  Because
//! iterations are deterministic, the harness measures per-iteration times
//! once and extrapolates over the iteration axis (see EXPERIMENTS.md).

use mim_core::{Flags, Monitoring};
use mim_mpisim::{schedule, Schedule, Step, Universe, UniverseConfig};
use mim_reorder::monitored_reorder;
use mim_topology::{inverse_permutation, Machine, Placement};

/// Measured components of the Fig 6 gain formula.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupGain {
    /// Virtual time of one allgather iteration before reordering (ns, max
    /// over ranks, all groups running concurrently).
    pub per_iter_before_ns: f64,
    /// Same, after reordering.
    pub per_iter_after_ns: f64,
    /// Reordering cost `t2` (ns, max over ranks), including the TreeMatch
    /// computation charged on each group's root.
    pub reorder_ns: f64,
}

impl GroupGain {
    /// The paper's gain percentage for `iters` iterations:
    /// `100·(t1 − (t2 + t3)) / t1`.
    pub fn gain_percent(&self, iters: u64) -> f64 {
        let t1 = iters as f64 * self.per_iter_before_ns;
        let t3 = iters as f64 * self.per_iter_after_ns;
        100.0 * (t1 - (self.reorder_ns + t3)) / t1
    }
}

/// Embed each group's ring-allgather into one world-sized schedule: all
/// groups run concurrently (they do in the benchmark, and they contend for
/// the NICs).
#[allow(clippy::needless_range_loop)] // indices address several arrays at once
fn combined_ring_schedule(nprocs: usize, group_size: usize, block_bytes: u64) -> Schedule {
    let ring = schedule::allgather_ring(group_size, block_bytes);
    let mut steps = vec![Vec::new(); nprocs];
    for world in 0..nprocs {
        let base = world - world % group_size;
        let local = world - base;
        steps[world] = ring
            .rank_steps(local)
            .iter()
            .map(|s| match *s {
                Step::Send { peer, bytes } => Step::Send { peer: base + peer, bytes },
                Step::Recv { peer } => Step::Recv { peer: base + peer },
            })
            .collect();
    }
    Schedule::new(steps)
}

/// Run the micro-benchmark: `nprocs` ranks placed cyclically over the nodes
/// of `machine`, split into groups of `group_size` consecutive ranks, each
/// group allgathering `buf_ints` 4-byte integers per member per iteration.
///
/// # Panics
/// Panics when `nprocs` is not a multiple of `group_size` or exceeds the
/// machine.
pub fn grouped_allgather_gain(
    machine: Machine,
    nprocs: usize,
    group_size: usize,
    buf_ints: u64,
) -> GroupGain {
    assert!(
        nprocs.is_multiple_of(group_size),
        "{nprocs} ranks not divisible into {group_size}-groups"
    );
    let placement = Placement::cyclic_by_level(&machine.tree, nprocs, machine.node_level);
    let cfg = UniverseConfig::new(machine.clone(), placement.clone());
    let (send_oh, recv_oh) = (cfg.send_overhead_ns, cfg.recv_overhead_ns);
    let u = Universe::new(cfg);
    let block_bytes = buf_ints * 4;
    // Live pipeline: each group monitors one allgather and reorders itself.
    let results = u.launch(move |rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let group = rank.comm_split(&world, (me / group_size) as i64, me as i64);
        let sched = schedule::allgather_ring(group_size, block_bytes);
        let mon = Monitoring::init(rank).unwrap();
        rank.barrier(&world);
        let t0 = rank.now_ns();
        let outcome = monitored_reorder(rank, &mon, &group, Flags::COLL_ONLY, |comm| {
            schedule::execute(rank, comm, &sched)
        });
        rank.barrier(&world);
        let _ = t0;
        mon.finalize(rank).unwrap();
        // t2 = the reordering machinery only; the monitored iteration
        // replaces one "before" iteration (the paper's init-phase trick).
        (outcome.reorder_cost_ns, outcome.k[group.rank()])
    });
    let reorder_ns = results.iter().map(|r| r.0).fold(0.0f64, f64::max);
    // Assemble the world-level new rank→core mapping: within group g, new
    // group-rank r is held by the old member at inv_k[r].
    let cores_base: Vec<usize> = (0..nprocs).map(|r| placement.core_of(r)).collect();
    let mut cores_opt = vec![0usize; nprocs];
    for base in (0..nprocs).step_by(group_size) {
        let k: Vec<usize> = (0..group_size).map(|i| results[base + i].1).collect();
        let inv = inverse_permutation(&k);
        for r in 0..group_size {
            cores_opt[base + r] = cores_base[base + inv[r]];
        }
    }
    let combined = combined_ring_schedule(nprocs, group_size, block_bytes);
    let makespan = |cores: &[usize]| {
        schedule::evaluate_contended(&combined, &machine, cores, send_oh, recv_oh)
            .into_iter()
            .fold(0.0f64, f64::max)
    };
    GroupGain {
        per_iter_before_ns: makespan(&cores_base),
        per_iter_after_ns: makespan(&cores_opt),
        reorder_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_schedule_is_valid() {
        let s = combined_ring_schedule(12, 4, 100);
        s.validate().unwrap();
        assert_eq!(s.total_messages(), 12 * 3);
        assert_eq!(s.total_bytes(), 12 * 3 * 100);
    }

    #[test]
    fn reordering_shrinks_the_iteration() {
        // 16 ranks cyclic over 2 nodes, groups of 8, big buffers: every ring
        // hop crosses the network before reordering, almost none after.
        let g = grouped_allgather_gain(Machine::cluster(2, 1, 8), 16, 8, 100_000);
        assert!(
            g.per_iter_after_ns < g.per_iter_before_ns,
            "after {} !< before {}",
            g.per_iter_after_ns,
            g.per_iter_before_ns
        );
        assert!(g.reorder_ns > 0.0);
    }

    #[test]
    fn gain_signs_follow_the_paper() {
        let g = grouped_allgather_gain(Machine::cluster(2, 1, 8), 16, 8, 100_000);
        // Few iterations: the reordering cost dominates — lower gain.
        assert!(g.gain_percent(1) < g.gain_percent(10_000));
        // Many iterations amortize the reordering: positive gain.
        assert!(g.gain_percent(10_000) > 0.0, "gain at 10k iterations: {}", g.gain_percent(10_000));
    }

    #[test]
    fn single_iteration_cannot_amortize() {
        // With one iteration of tiny buffers, the reordering cost cannot pay
        // off — the paper's red region.
        let g = grouped_allgather_gain(Machine::cluster(2, 1, 8), 16, 8, 10);
        assert!(g.gain_percent(1) < 0.0, "gain at 1 iteration: {}", g.gain_percent(1));
    }
}
