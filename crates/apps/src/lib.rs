//! `mim-apps` — example applications and experiment workloads.
//!
//! * [`cg`] — an NPB-style distributed conjugate-gradient solver (the
//!   paper's Sec 6.5 application), with real sparse SPD numerics and a
//!   rank-based per-iteration communication pattern;
//! * [`sparse`] — seeded sparse SPD matrix generation (à la NPB `makea`)
//!   and a sequential CG reference;
//! * [`stencil`] — a 2-D Jacobi heat-diffusion solver with nonblocking halo
//!   exchange (the nearest-neighbour pattern the paper's intro motivates);
//! * [`groups`] — the grouped-allgather micro-benchmark of Sec 6.4 (Fig 6);
//! * [`collbench`] — the collective-optimization pipeline of Sec 6.3 (Fig 5);
//! * [`netpredict`] — network-utilization sampling and prediction (the
//!   paper's Sec 7 outlook);
//! * [`plan`] — static communication plans: the app kernels lowered into
//!   `mim-analyze` programs for ahead-of-run verification;
//! * [`builtin`] — the named plan table shared by the `mim-analyze` and
//!   `mim-explore` command-line front-ends;
//! * [`stats`] — means, confidence intervals, Welch's t-test (Fig 4's
//!   statistics);
//! * [`output`] — CSV and ASCII-chart emitters for the benchmark harness.

pub mod builtin;
pub mod cg;
pub mod collbench;
pub mod groups;
pub mod netpredict;
pub mod output;
pub mod plan;
pub mod sparse;
pub mod stats;
pub mod stencil;
