//! Diagnostics: stable codes, severities, source locations, verdicts, and
//! the [`Report`] bundling everything one analysis run produced.
//!
//! Every finding carries a stable code (`MIM-A001`…) so CI gates, editors
//! and tests can match on identity rather than message text, and a
//! `(rank, step)` location pointing into the plan's per-rank op outline.
//! Reports render both human-readable (via [`fmt::Display`]) and as JSON
//! ([`Report::to_json`]) — hand-rolled, the workspace is dependency-free.

use std::fmt;

use crate::plan::CommId;
use crate::race::{Determinism, IndependenceMap};

/// Stable diagnostic codes.  Codes are append-only: a released code never
/// changes meaning, new checks take the next free number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Malformed plan: peer out of range, rank outside the communicator,
    /// unknown communicator/window id.
    A001,
    /// Definite deadlock: circular wait in the wait-for graph.
    A002,
    /// Unmatched send: a message no receive ever consumes.
    A003,
    /// Orphan receive: no sender can ever satisfy it.
    A004,
    /// Wildcard receive: matching is nondeterministic, the verdict is only
    /// `PotentialDeadlock`-sound.
    A005,
    /// Collective mismatch: members disagree on the operation kind (or some
    /// member never reaches the collective).
    A006,
    /// Collective root mismatch: members disagree on the root rank.
    A007,
    /// Conflicting one-sided accesses in the same epoch.
    A008,
    /// Epoch error: accesses never closed by a fence, or fence participation
    /// mismatch.
    A009,
    /// Potential deadlock: the canonical replay stalled, but wildcard
    /// nondeterminism means another matching might progress.
    A010,
    /// Wildcard match race: a wildcard receive has racing sends on at
    /// least two distinct channels, so different schedules produce
    /// different matchings.
    A011,
    /// Tag collision: two racing senders use the same tag toward one
    /// wildcard, so arrival order alone picks the match.
    A012,
    /// Nondeterministic delivery: two wildcard receives of one rank can
    /// swap their canonical matches, reordering the observable receives.
    A013,
    /// Collective/point-to-point interleaving hazard: a racing send sits
    /// in a different collective phase than the wildcard it races.
    A014,
    /// Crossing send: a racing send is canonically matched elsewhere (or
    /// nowhere) yet unordered with the wildcard — another schedule can
    /// steal the match.
    A015,
    /// Result-visible race: the racing send also satisfies a later
    /// receive of the same rank, so the race's outcome feeds a later
    /// match.
    A016,
}

impl Code {
    /// The stable `MIM-Axxx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::A001 => "MIM-A001",
            Code::A002 => "MIM-A002",
            Code::A003 => "MIM-A003",
            Code::A004 => "MIM-A004",
            Code::A005 => "MIM-A005",
            Code::A006 => "MIM-A006",
            Code::A007 => "MIM-A007",
            Code::A008 => "MIM-A008",
            Code::A009 => "MIM-A009",
            Code::A010 => "MIM-A010",
            Code::A011 => "MIM-A011",
            Code::A012 => "MIM-A012",
            Code::A013 => "MIM-A013",
            Code::A014 => "MIM-A014",
            Code::A015 => "MIM-A015",
            Code::A016 => "MIM-A016",
        }
    }

    /// One-line summary of what the code means.
    pub fn summary(self) -> &'static str {
        match self {
            Code::A001 => "malformed plan",
            Code::A002 => "definite deadlock (circular wait)",
            Code::A003 => "unmatched send",
            Code::A004 => "orphan receive",
            Code::A005 => "wildcard receive (nondeterministic matching)",
            Code::A006 => "collective mismatch",
            Code::A007 => "collective root mismatch",
            Code::A008 => "conflicting one-sided accesses",
            Code::A009 => "epoch/fence error",
            Code::A010 => "potential deadlock under wildcard nondeterminism",
            Code::A011 => "wildcard match race (racing sends)",
            Code::A012 => "tag collision on a wildcard channel",
            Code::A013 => "nondeterministic delivery reorders observable receives",
            Code::A014 => "collective/point-to-point interleaving hazard",
            Code::A015 => "send unordered with a crossing wildcard",
            Code::A016 => "race outcome feeds a later match (result-visible)",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational only.
    Info,
    /// Suspicious but not necessarily wrong.
    Warning,
    /// The plan is broken; executions will hang, drop traffic, or diverge.
    Error,
}

impl Severity {
    /// Lower-case label used in both output formats.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A source location inside a plan: rank `rank`, op index `step` of that
/// rank's outline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// World rank.
    pub rank: usize,
    /// 0-based index into the rank's op list.
    pub step: usize,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} @ step {}", self.rank, self.step)
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Stable code.
    pub code: Code,
    /// Severity level.
    pub severity: Severity,
    /// Where in the plan, when attributable to one site.
    pub loc: Option<Loc>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity.as_str(), self.code, self.message)?;
        if let Some(loc) = self.loc {
            write!(f, " ({loc})")?;
        }
        Ok(())
    }
}

/// One edge of a reported wait chain: who waits, where, on whom, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked rank.
    pub rank: usize,
    /// The op index it is blocked at.
    pub step: usize,
    /// The rank it waits for.
    pub waits_for: usize,
    /// What it is waiting on ("a message from rank 3 (comm 0, tag 7)",
    /// "collective barrier #2 on comm 1", …).
    pub what: String,
}

/// The deadlock lattice: verdicts ordered from best to worst.
///
/// `DeadlockFree ⊑ PotentialDeadlock ⊑ DefiniteDeadlock`, with `Malformed`
/// as the bottom element (the plan could not be interpreted, no execution
/// claim is made).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The canonical replay completed and matching is deterministic: every
    /// real execution completes.
    DeadlockFree,
    /// Wildcard receives make matching nondeterministic.  The replay's
    /// outcome holds for the canonical matching only; other matchings are
    /// unverified.  `wildcard_sites` lists the nondeterministic receives.
    PotentialDeadlock {
        /// The wildcard receive sites introducing nondeterminism.
        wildcard_sites: Vec<Loc>,
    },
    /// The replay stalled and matching is deterministic: every real
    /// execution deadlocks.  `cycle` is the circular wait, rank by rank
    /// (or, when the chain ends at a terminated rank, the blocking chain).
    DefiniteDeadlock {
        /// The wait-for chain; closed when a true cycle exists.
        cycle: Vec<WaitEdge>,
    },
    /// The plan references out-of-range ranks or unknown handles; analysis
    /// did not run.
    Malformed,
}

impl Verdict {
    /// Short lower-snake label used in both output formats.
    pub fn kind(&self) -> &'static str {
        match self {
            Verdict::DeadlockFree => "deadlock_free",
            Verdict::PotentialDeadlock { .. } => "potential_deadlock",
            Verdict::DefiniteDeadlock { .. } => "definite_deadlock",
            Verdict::Malformed => "malformed",
        }
    }
}

/// Per-channel traffic totals, keyed the way matching is:
/// `(comm, src, dst, tag)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelUse {
    /// Matching scope.
    pub comm: CommId,
    /// Sending world rank.
    pub src: usize,
    /// Receiving world rank.
    pub dst: usize,
    /// Message tag.
    pub tag: u32,
    /// Messages sent on the channel.
    pub messages: u64,
    /// Payload bytes sent on the channel.
    pub bytes: u64,
}

/// Everything one analysis run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Name of the analyzed plan.
    pub plan: String,
    /// Rank count of the analyzed plan.
    pub nranks: usize,
    /// Total op count of the analyzed plan.
    pub total_ops: usize,
    /// Where the plan sits in the deadlock lattice.
    pub verdict: Verdict,
    /// The schedule-sensitivity axis, orthogonal to the deadlock lattice:
    /// can different schedules produce different matchings?
    pub determinism: Determinism,
    /// The static independence relation over wildcard receive sites that
    /// `mim-explore` consumes to prune its schedule search.
    pub independence: IndependenceMap,
    /// All findings, in discovery order.
    pub diags: Vec<Diag>,
    /// Per-channel traffic observed by the replay, sorted by
    /// `(comm, src, dst, tag)`.
    pub channels: Vec<ChannelUse>,
}

impl Report {
    /// No error-severity findings (warnings and infos are allowed).
    pub fn is_clean(&self) -> bool {
        self.diags.iter().all(|d| d.severity != Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diag> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Render as a JSON document (schema `mim-analyze-report-v2`; v2 adds
    /// the `determinism` and `independence` objects).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 128 * self.diags.len());
        s.push_str("{\"schema\":\"mim-analyze-report-v2\",");
        s.push_str(&format!(
            "\"plan\":{},\"nranks\":{},\"total_ops\":{},",
            json_string(&self.plan),
            self.nranks,
            self.total_ops
        ));
        s.push_str("\"verdict\":{\"kind\":\"");
        s.push_str(self.verdict.kind());
        s.push('"');
        match &self.verdict {
            Verdict::PotentialDeadlock { wildcard_sites } => {
                s.push_str(",\"wildcard_sites\":[");
                for (i, l) in wildcard_sites.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("{{\"rank\":{},\"step\":{}}}", l.rank, l.step));
                }
                s.push(']');
            }
            Verdict::DefiniteDeadlock { cycle } => {
                s.push_str(",\"cycle\":[");
                for (i, e) in cycle.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"rank\":{},\"step\":{},\"waits_for\":{},\"what\":{}}}",
                        e.rank,
                        e.step,
                        e.waits_for,
                        json_string(&e.what)
                    ));
                }
                s.push(']');
            }
            Verdict::DeadlockFree | Verdict::Malformed => {}
        }
        s.push_str("},\"determinism\":{\"kind\":\"");
        s.push_str(self.determinism.kind());
        s.push('"');
        if let Determinism::SchedSensitive { codes } = &self.determinism {
            s.push_str(",\"codes\":[");
            for (i, c) in codes.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{c}\""));
            }
            s.push(']');
        }
        s.push_str(&format!(
            "}},\"independence\":{{\"wildcard_sites\":{},\"benign\":{},\"racy\":{},\
             \"hb_edges\":{}}}",
            self.independence.wildcard_sites(),
            self.independence.benign.len(),
            self.independence.racy.len(),
            self.independence.hb_edges
        ));
        s.push_str(",\"diags\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\"",
                d.code,
                d.severity.as_str()
            ));
            if let Some(loc) = d.loc {
                s.push_str(&format!(",\"rank\":{},\"step\":{}", loc.rank, loc.step));
            }
            s.push_str(&format!(",\"message\":{}}}", json_string(&d.message)));
        }
        s.push_str("],\"channels\":[");
        for (i, c) in self.channels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"comm\":{},\"src\":{},\"dst\":{},\"tag\":{},\"messages\":{},\"bytes\":{}}}",
                c.comm.0, c.src, c.dst, c.tag, c.messages, c.bytes
            ));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan {}: {} ranks, {} ops", self.plan, self.nranks, self.total_ops)?;
        let (msgs, bytes) =
            self.channels.iter().fold((0u64, 0u64), |(m, b), c| (m + c.messages, b + c.bytes));
        writeln!(
            f,
            "channels: {} distinct ({} messages, {} bytes)",
            self.channels.len(),
            msgs,
            bytes
        )?;
        write!(f, "verdict: ")?;
        match &self.verdict {
            Verdict::DeadlockFree => writeln!(f, "deadlock-free")?,
            Verdict::PotentialDeadlock { wildcard_sites } => {
                writeln!(
                    f,
                    "potential deadlock ({} wildcard receive{})",
                    wildcard_sites.len(),
                    if wildcard_sites.len() == 1 { "" } else { "s" }
                )?;
            }
            Verdict::DefiniteDeadlock { cycle } => {
                writeln!(f, "definite deadlock")?;
                for e in cycle {
                    writeln!(f, "  rank {} @ step {}: waits for {}", e.rank, e.step, e.what)?;
                }
            }
            Verdict::Malformed => writeln!(f, "malformed plan")?,
        }
        match &self.determinism {
            Determinism::Deterministic => writeln!(f, "determinism: deterministic")?,
            Determinism::SchedSensitive { codes } => writeln!(
                f,
                "determinism: schedule-sensitive ({})",
                codes.iter().map(|c| c.as_str()).collect::<Vec<_>>().join(", ")
            )?,
            Determinism::Unknown => writeln!(f, "determinism: unknown")?,
        }
        if self.independence.wildcard_sites() > 0 {
            writeln!(
                f,
                "independence: {} wildcard site{} ({} benign, {} racy), {} hb edges",
                self.independence.wildcard_sites(),
                if self.independence.wildcard_sites() == 1 { "" } else { "s" },
                self.independence.benign.len(),
                self.independence.racy.len(),
                self.independence.hb_edges
            )?;
        }
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Escape a string as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
