//! The analyzer: a deterministic replay of the plan's matching semantics
//! plus a wait-for-graph post-mortem when the replay stalls.
//!
//! The replay mirrors the runtime's eager-send model: sends never block,
//! each receive consumes the earliest-arrived matching message (per-channel
//! FIFO, so a specific receive takes its channel's head; a wildcard receive
//! takes the matching message with the globally smallest arrival sequence —
//! the *canonical matching*), collectives and fences are barriers over
//! their communicator.  When every rank runs to completion the plan is
//! deadlock-free under the canonical matching; when the replay stalls, the
//! blocked ranks form a wait-for graph whose cycle (found by DFS) *is* the
//! deadlock, reported rank by rank.
//!
//! Wildcard receives make matching nondeterministic, so any verdict in
//! their presence is only canonical-matching-sound: completion becomes
//! [`Verdict::PotentialDeadlock`], and a stall is reported as potential
//! rather than definite (another matching might progress).

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::diag::{ChannelUse, Code, Diag, Loc, Report, Severity, Verdict, WaitEdge};
use crate::plan::{CollKind, CommId, CommPlan, Op, Program, Src, Tag, WinId};
use crate::race::{self, Determinism, IndependenceMap};

/// Matching-scope channel key: `(comm, src, dst, tag)`.
type ChanKey = (CommId, usize, usize, u32);

/// Why a rank is parked.
#[derive(Debug, Clone, Copy)]
enum Blocked {
    /// At a `Recv` whose match has not arrived (details re-read from the op).
    Recv,
    /// At occurrence `occ` of a collective on `comm`.
    Coll { comm: CommId, occ: usize },
    /// At occurrence `occ` of a fence on `win`.
    Fence { win: WinId, occ: usize },
}

/// One member's arrival at a collective/fence occurrence.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    rank: usize,
    step: usize,
    kind: CollKind,
    root: Option<usize>,
}

/// One one-sided access inside the current epoch of a window.
#[derive(Debug, Clone, Copy)]
struct Access {
    origin: usize,
    step: usize,
    target: usize,
    offset: u64,
    bytes: u64,
    /// `true` for put (a write); accumulate is tracked separately.
    write: bool,
    accumulate: bool,
}

/// Statically verify a communication plan.
///
/// Lowers `plan` via [`CommPlan::lower`] and analyzes the resulting
/// [`Program`]; see [`analyze_program`].
pub fn analyze(plan: &impl CommPlan) -> Report {
    analyze_program(&plan.lower())
}

/// Statically verify an already-lowered [`Program`].
pub fn analyze_program(p: &Program) -> Report {
    let mut diags = Vec::new();
    check_well_formed(p, &mut diags);
    if !diags.is_empty() {
        return Report {
            plan: p.name().to_string(),
            nranks: p.nranks(),
            total_ops: p.total_ops(),
            verdict: Verdict::Malformed,
            determinism: Determinism::Unknown,
            independence: IndependenceMap::empty(p.nranks()),
            diags,
            channels: Vec::new(),
        };
    }
    Replay::new(p).run(diags)
}

/// A001 pass: every rank/handle an op references must exist and be in
/// scope.  Replay assumes this (it indexes unchecked), so analysis stops
/// here when anything fails.
fn check_well_formed(p: &Program, diags: &mut Vec<Diag>) {
    let n = p.nranks();
    let mut push = |rank: usize, step: usize, msg: String| {
        diags.push(Diag {
            code: Code::A001,
            severity: Severity::Error,
            loc: Some(Loc { rank, step }),
            message: msg,
        });
    };
    for r in 0..n {
        for (i, op) in p.rank_ops(r).iter().enumerate() {
            let comm_of = |win: WinId| p.win_comm(win);
            let (comm, peer) = match *op {
                Op::Send { comm, dst, .. } => (Some(comm), Some(dst)),
                Op::Recv { comm, src: Src::Rank(s), .. } => (Some(comm), Some(s)),
                Op::Recv { comm, src: Src::Any, .. } => (Some(comm), None),
                Op::Coll { comm, root, .. } => (Some(comm), root),
                Op::Put { win, target, .. }
                | Op::Get { win, target, .. }
                | Op::Accumulate { win, target, .. } => match comm_of(win) {
                    Some(c) => (Some(c), Some(target)),
                    None => {
                        push(r, i, format!("unknown window id {}", win.0));
                        continue;
                    }
                },
                Op::Fence { win } => match comm_of(win) {
                    Some(c) => (Some(c), None),
                    None => {
                        push(r, i, format!("unknown window id {}", win.0));
                        continue;
                    }
                },
            };
            let Some(comm) = comm else { continue };
            let Some(members) = p.comm_members(comm) else {
                push(r, i, format!("unknown communicator id {}", comm.0));
                continue;
            };
            if !members.contains(&r) {
                push(r, i, format!("rank {r} is not a member of comm {}", comm.0));
            }
            if let Some(peer) = peer {
                if peer >= n {
                    push(r, i, format!("peer rank {peer} is out of range (nranks = {n})"));
                } else if !members.contains(&peer) {
                    push(r, i, format!("peer rank {peer} is not a member of comm {}", comm.0));
                }
            }
        }
    }
}

struct Replay<'p> {
    p: &'p Program,
    pc: Vec<usize>,
    blocked: Vec<Option<Blocked>>,
    /// Per-channel FIFO of (arrival seq, bytes).
    channels: HashMap<ChanKey, VecDeque<(u64, u64)>>,
    /// Per-destination pending messages in global arrival order.
    arrivals: Vec<BTreeMap<u64, ChanKey>>,
    next_seq: u64,
    totals: BTreeMap<ChanKey, (u64, u64)>,
    /// Per comm: completed-or-open collective occurrences.
    coll_occ: Vec<Vec<Vec<Arrival>>>,
    /// Per comm, per rank: how many collectives this rank has completed.
    coll_idx: Vec<Vec<usize>>,
    /// Per win: fence occurrences / per-rank completed-fence counters.
    fence_occ: Vec<Vec<Vec<Arrival>>>,
    fence_idx: Vec<Vec<usize>>,
    /// Per win: one-sided accesses of the currently open epoch.
    epoch: Vec<Vec<Access>>,
    wildcard_sites: Vec<Loc>,
    /// Arrival seq → the send op that produced it (for the match log).
    send_locs: HashMap<u64, Loc>,
    /// The canonical matching as `(send, recv)` location pairs.
    matches: Vec<(Loc, Loc)>,
    diags: Vec<Diag>,
}

impl<'p> Replay<'p> {
    fn new(p: &'p Program) -> Self {
        let n = p.nranks();
        Self {
            p,
            pc: vec![0; n],
            blocked: vec![None; n],
            channels: HashMap::new(),
            arrivals: vec![BTreeMap::new(); n],
            next_seq: 0,
            totals: BTreeMap::new(),
            coll_occ: vec![Vec::new(); p.ncomms()],
            coll_idx: vec![vec![0; n]; p.ncomms()],
            fence_occ: vec![Vec::new(); p.nwins()],
            fence_idx: vec![vec![0; n]; p.nwins()],
            epoch: vec![Vec::new(); p.nwins()],
            wildcard_sites: Vec::new(),
            send_locs: HashMap::new(),
            matches: Vec::new(),
            diags: Vec::new(),
        }
    }

    fn done(&self, r: usize) -> bool {
        self.pc[r] == self.p.rank_ops(r).len()
    }

    /// Find the earliest-arrived pending message for a receive, returning
    /// its `(seq, channel)` without consuming it.
    fn find_match(&self, r: usize, comm: CommId, src: Src, tag: Tag) -> Option<(u64, ChanKey)> {
        match (src, tag) {
            (Src::Rank(s), Tag::Is(t)) => {
                let key = (comm, s, r, t);
                let head = self.channels.get(&key)?.front()?;
                Some((head.0, key))
            }
            _ => self.arrivals[r]
                .iter()
                .find(|(_, &(c, s, _, t))| {
                    c == comm
                        && tag.admits(t)
                        && match src {
                            Src::Rank(want) => s == want,
                            Src::Any => true,
                        }
                })
                .map(|(&seq, &key)| (seq, key)),
        }
    }

    fn consume(&mut self, r: usize, seq: u64, key: ChanKey) {
        if let Some(q) = self.channels.get_mut(&key) {
            let head = q.pop_front();
            debug_assert_eq!(
                head.map(|(s, _)| s),
                Some(seq),
                "wildcard match must take its channel's head"
            );
            if q.is_empty() {
                self.channels.remove(&key);
            }
        }
        self.arrivals[r].remove(&seq);
    }

    /// Close the epoch of `win` at a completed fence: report conflicting
    /// accesses, then clear the log.
    fn close_epoch(&mut self, win: WinId) {
        let log = std::mem::take(&mut self.epoch[win.0 as usize]);
        for (i, a) in log.iter().enumerate() {
            for b in &log[i + 1..] {
                if a.origin == b.origin || a.target != b.target {
                    continue;
                }
                let overlap = a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
                if !overlap {
                    continue;
                }
                // Accumulates commute with each other; everything else
                // racing on the same bytes is a conflict when at least one
                // side writes.
                if (a.accumulate && b.accumulate) || (!a.write && !b.write) {
                    continue;
                }
                self.diags.push(Diag {
                    code: Code::A008,
                    severity: Severity::Warning,
                    loc: Some(Loc { rank: a.origin, step: a.step }),
                    message: format!(
                        "conflicting one-sided accesses in one epoch of window {}: rank {} \
                         (step {}) and rank {} (step {}) touch bytes [{}, {}) ∩ [{}, {}) of \
                         rank {}'s window",
                        win.0,
                        a.origin,
                        a.step,
                        b.origin,
                        b.step,
                        a.offset,
                        a.offset + a.bytes,
                        b.offset,
                        b.offset + b.bytes,
                        a.target
                    ),
                });
            }
        }
    }

    /// Check kind/root agreement of a completed collective occurrence.
    fn check_coll_agreement(&mut self, comm: CommId, occ: usize, arrivals: &[Arrival]) {
        let first = arrivals[0];
        for a in &arrivals[1..] {
            if a.kind != first.kind {
                self.diags.push(Diag {
                    code: Code::A006,
                    severity: Severity::Error,
                    loc: Some(Loc { rank: a.rank, step: a.step }),
                    message: format!(
                        "collective #{occ} on comm {}: rank {} calls {} but rank {} calls {}",
                        comm.0, a.rank, a.kind, first.rank, first.kind
                    ),
                });
            } else if a.root != first.root {
                let fmt_root = |r: Option<usize>| {
                    r.map_or_else(|| "no root".to_string(), |r| format!("root {r}"))
                };
                self.diags.push(Diag {
                    code: Code::A007,
                    severity: Severity::Error,
                    loc: Some(Loc { rank: a.rank, step: a.step }),
                    message: format!(
                        "collective {} #{occ} on comm {}: rank {} uses {} but rank {} uses {}",
                        first.kind,
                        comm.0,
                        a.rank,
                        fmt_root(a.root),
                        first.rank,
                        fmt_root(first.root)
                    ),
                });
            }
        }
    }

    /// Run rank `r` until it blocks or finishes; returns ranks to wake.
    fn step_rank(&mut self, r: usize) -> Vec<usize> {
        let mut wake = Vec::new();
        while self.pc[r] < self.p.rank_ops(r).len() {
            let step = self.pc[r];
            match self.p.rank_ops(r)[step] {
                Op::Send { comm, dst, tag, bytes } => {
                    let key = (comm, r, dst, tag);
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.send_locs.insert(seq, Loc { rank: r, step });
                    self.channels.entry(key).or_default().push_back((seq, bytes));
                    self.arrivals[dst].insert(seq, key);
                    let t = self.totals.entry(key).or_default();
                    t.0 += 1;
                    t.1 += bytes;
                    if matches!(self.blocked[dst], Some(Blocked::Recv)) {
                        self.blocked[dst] = None;
                        wake.push(dst);
                    }
                }
                Op::Recv { comm, src, tag } => {
                    if matches!(src, Src::Any) || matches!(tag, Tag::Any) {
                        let loc = Loc { rank: r, step };
                        if self.wildcard_sites.last() != Some(&loc) {
                            self.wildcard_sites.push(loc);
                        }
                    }
                    match self.find_match(r, comm, src, tag) {
                        Some((seq, key)) => {
                            if let Some(&s) = self.send_locs.get(&seq) {
                                self.matches.push((s, Loc { rank: r, step }));
                            }
                            self.consume(r, seq, key);
                        }
                        None => {
                            self.blocked[r] = Some(Blocked::Recv);
                            return wake;
                        }
                    }
                }
                Op::Coll { comm, kind, root } => {
                    let c = comm.0 as usize;
                    let occ = self.coll_idx[c][r];
                    if self.coll_occ[c].len() <= occ {
                        self.coll_occ[c].resize(occ + 1, Vec::new());
                    }
                    self.coll_occ[c][occ].push(Arrival { rank: r, step, kind, root });
                    // Well-formedness guarantees the comm exists; 0 never
                    // equals a non-empty arrival count, so a (impossible)
                    // miss simply parks the rank.
                    let members = self.p.comm_members(comm).map_or(0, <[usize]>::len);
                    if self.coll_occ[c][occ].len() == members {
                        let arrivals = std::mem::take(&mut self.coll_occ[c][occ]);
                        self.check_coll_agreement(comm, occ, &arrivals);
                        for a in &arrivals {
                            self.coll_idx[c][a.rank] = occ + 1;
                            if a.rank != r {
                                self.blocked[a.rank] = None;
                                self.pc[a.rank] += 1;
                                wake.push(a.rank);
                            }
                        }
                    } else {
                        self.blocked[r] = Some(Blocked::Coll { comm, occ });
                        return wake;
                    }
                }
                Op::Put { win, target, offset, bytes } => {
                    self.epoch[win.0 as usize].push(Access {
                        origin: r,
                        step,
                        target,
                        offset,
                        bytes,
                        write: true,
                        accumulate: false,
                    });
                }
                Op::Get { win, target, offset, bytes } => {
                    self.epoch[win.0 as usize].push(Access {
                        origin: r,
                        step,
                        target,
                        offset,
                        bytes,
                        write: false,
                        accumulate: false,
                    });
                }
                Op::Accumulate { win, target, offset, bytes } => {
                    self.epoch[win.0 as usize].push(Access {
                        origin: r,
                        step,
                        target,
                        offset,
                        bytes,
                        write: true,
                        accumulate: true,
                    });
                }
                Op::Fence { win } => {
                    let w = win.0 as usize;
                    let occ = self.fence_idx[w][r];
                    if self.fence_occ[w].len() <= occ {
                        self.fence_occ[w].resize(occ + 1, Vec::new());
                    }
                    self.fence_occ[w][occ].push(Arrival {
                        rank: r,
                        step,
                        kind: CollKind::Barrier,
                        root: None,
                    });
                    let members = self
                        .p
                        .win_comm(win)
                        .and_then(|c| self.p.comm_members(c))
                        .map_or(0, <[usize]>::len);
                    if self.fence_occ[w][occ].len() == members {
                        let arrivals = std::mem::take(&mut self.fence_occ[w][occ]);
                        self.close_epoch(win);
                        for a in &arrivals {
                            self.fence_idx[w][a.rank] = occ + 1;
                            if a.rank != r {
                                self.blocked[a.rank] = None;
                                self.pc[a.rank] += 1;
                                wake.push(a.rank);
                            }
                        }
                    } else {
                        self.blocked[r] = Some(Blocked::Fence { win, occ });
                        return wake;
                    }
                }
            }
            self.pc[r] += 1;
        }
        wake
    }

    fn run(mut self, mut preexisting: Vec<Diag>) -> Report {
        let n = self.p.nranks();
        let mut runnable: Vec<usize> = (0..n).rev().collect();
        while let Some(r) = runnable.pop() {
            if self.blocked[r].is_some() || self.done(r) {
                continue;
            }
            let woken = self.step_rank(r);
            runnable.extend(woken);
        }
        let stalled: Vec<usize> = (0..n).filter(|&r| !self.done(r)).collect();
        let verdict =
            if stalled.is_empty() { self.finish_clean() } else { self.post_mortem(&stalled) };
        let channels = self
            .totals
            .iter()
            .map(|(&(comm, src, dst, tag), &(messages, bytes))| ChannelUse {
                comm,
                src,
                dst,
                tag,
                messages,
                bytes,
            })
            .collect();
        preexisting.append(&mut self.diags);
        let (determinism, independence) = race::race_pass(self.p, &self.matches, &mut preexisting);
        Report {
            plan: self.p.name().to_string(),
            nranks: n,
            total_ops: self.p.total_ops(),
            verdict,
            determinism,
            independence,
            diags: preexisting,
            channels,
        }
    }

    /// All ranks completed: flag leftover traffic and unclosed epochs, then
    /// classify by wildcard presence.
    fn finish_clean(&mut self) -> Verdict {
        let mut leftover: Vec<(ChanKey, usize)> =
            self.channels.iter().map(|(&k, q)| (k, q.len())).filter(|&(_, len)| len > 0).collect();
        leftover.sort_unstable();
        for ((comm, src, dst, tag), count) in leftover {
            self.diags.push(Diag {
                code: Code::A003,
                severity: Severity::Error,
                loc: None,
                message: format!(
                    "channel {src}→{dst} (comm {}, tag {tag}) has {count} send{} that \
                     are never received",
                    comm.0,
                    if count == 1 { "" } else { "s" }
                ),
            });
        }
        for (w, log) in self.epoch.iter().enumerate() {
            if !log.is_empty() {
                self.diags.push(Diag {
                    code: Code::A009,
                    severity: Severity::Error,
                    loc: Some(Loc { rank: log[0].origin, step: log[0].step }),
                    message: format!(
                        "window {w}: {} one-sided access{} never closed by a fence",
                        log.len(),
                        if log.len() == 1 { "" } else { "es" }
                    ),
                });
            }
        }
        if self.wildcard_sites.is_empty() {
            Verdict::DeadlockFree
        } else {
            let sites = self.wildcard_sites.clone();
            let shown: Vec<String> = sites.iter().take(8).map(|l| format!("{l}")).collect();
            self.diags.push(Diag {
                code: Code::A005,
                severity: Severity::Warning,
                loc: Some(sites[0]),
                message: format!(
                    "{} wildcard receive{} make matching nondeterministic ({}{}); the \
                     deadlock-free verdict holds for the canonical matching only",
                    sites.len(),
                    if sites.len() == 1 { "" } else { "s" },
                    shown.join("; "),
                    if sites.len() > 8 { "; …" } else { "" }
                ),
            });
            Verdict::PotentialDeadlock { wildcard_sites: sites }
        }
    }

    /// Does rank `s` still have a send matching `(comm, → dst, tag)` at or
    /// after its current pc?
    fn has_future_send(&self, s: usize, comm: CommId, dst: usize, tag: Tag) -> bool {
        self.p.rank_ops(s)[self.pc[s]..].iter().any(|op| {
            matches!(*op, Op::Send { comm: c, dst: d, tag: t, .. }
                if c == comm && d == dst && tag.admits(t))
        })
    }

    /// The replay stalled: build the wait-for graph over the blocked ranks,
    /// report orphans / missing participants, find a cycle, classify.
    fn post_mortem(&mut self, stalled: &[usize]) -> Verdict {
        // Adjacency: r → (waits_for, description).  All stalled ranks are
        // blocked (a runnable rank would have been stepped).
        let mut edges: HashMap<usize, Vec<(usize, String)>> = HashMap::new();
        for &r in stalled {
            let step = self.pc[r];
            let mut out: Vec<(usize, String)> = Vec::new();
            // A stalled rank is always blocked (a runnable one would have
            // been stepped); a miss just contributes no wait edges.
            let Some(blocked) = self.blocked[r] else { continue };
            match blocked {
                Blocked::Recv => {
                    let Op::Recv { comm, src, tag } = self.p.rank_ops(r)[step] else {
                        unreachable!("Blocked::Recv parks at a Recv op");
                    };
                    let tag_str = match tag {
                        Tag::Is(t) => format!("tag {t}"),
                        Tag::Any => "any tag".to_string(),
                    };
                    let candidates: Vec<usize> = match src {
                        Src::Rank(s) => vec![s],
                        Src::Any => (0..self.p.nranks()).filter(|&s| s != r).collect(),
                    };
                    let mut live = Vec::new();
                    for s in candidates {
                        if !self.done(s) && self.has_future_send(s, comm, r, tag) {
                            live.push(s);
                        }
                    }
                    if live.is_empty() {
                        let from = match src {
                            Src::Rank(s) => format!(
                                "rank {s}{}",
                                if self.done(s) { " (terminated)" } else { "" }
                            ),
                            Src::Any => "any source".to_string(),
                        };
                        self.diags.push(Diag {
                            code: Code::A004,
                            severity: Severity::Error,
                            loc: Some(Loc { rank: r, step }),
                            message: format!(
                                "orphan receive: rank {r} waits for a message from {from} \
                                 (comm {}, {tag_str}) that no remaining send can satisfy",
                                comm.0
                            ),
                        });
                    }
                    for s in live {
                        out.push((
                            s,
                            format!("a message from rank {s} (comm {}, {tag_str})", comm.0),
                        ));
                    }
                }
                Blocked::Coll { comm, occ } => {
                    let Op::Coll { kind, .. } = self.p.rank_ops(r)[step] else {
                        unreachable!("Blocked::Coll parks at a Coll op");
                    };
                    let arrived = move |b: Option<Blocked>| matches!(b, Some(Blocked::Coll { comm: c, occ: o }) if c == comm && o == occ);
                    self.missing_members(comm, &arrived, &mut out, &mut |missing, done| {
                        if done {
                            Some(Diag {
                                code: Code::A006,
                                severity: Severity::Error,
                                loc: Some(Loc { rank: r, step }),
                                message: format!(
                                    "collective {kind} #{occ} on comm {}: rank {missing} \
                                     terminated without participating",
                                    comm.0
                                ),
                            })
                        } else {
                            None
                        }
                    });
                    for (_, what) in &mut out {
                        *what = format!("collective {kind} #{occ} on comm {}: {what}", comm.0);
                    }
                }
                Blocked::Fence { win, occ } => {
                    let Some(comm) = self.p.win_comm(win) else { continue };
                    let arrived = move |b: Option<Blocked>| matches!(b, Some(Blocked::Fence { win: w, occ: o }) if w == win && o == occ);
                    self.missing_members(comm, &arrived, &mut out, &mut |missing, done| {
                        if done {
                            Some(Diag {
                                code: Code::A009,
                                severity: Severity::Error,
                                loc: Some(Loc { rank: r, step }),
                                message: format!(
                                    "fence #{occ} on window {}: rank {missing} terminated \
                                     without fencing",
                                    win.0
                                ),
                            })
                        } else {
                            None
                        }
                    });
                    for (_, what) in &mut out {
                        *what = format!("fence #{occ} on window {}: {what}", win.0);
                    }
                }
            }
            edges.insert(r, out);
        }
        let chain = find_cycle(stalled, &edges, &self.pc);
        let closed = chain
            .last()
            .zip(chain.first())
            .is_some_and(|(last, first)| last.waits_for == first.rank);
        let describe = |chain: &[WaitEdge]| {
            chain
                .iter()
                .map(|e| format!("rank {} (step {}) → rank {}", e.rank, e.step, e.waits_for))
                .collect::<Vec<_>>()
                .join(", ")
        };
        if self.wildcard_sites.is_empty()
            && !stalled.iter().any(|&r| {
                matches!(self.blocked[r], Some(Blocked::Recv))
                    && matches!(
                        self.p.rank_ops(r)[self.pc[r]],
                        Op::Recv { src: Src::Any, .. } | Op::Recv { tag: Tag::Any, .. }
                    )
            })
        {
            if !chain.is_empty() {
                self.diags.push(Diag {
                    code: Code::A002,
                    severity: Severity::Error,
                    loc: chain.first().map(|e| Loc { rank: e.rank, step: e.step }),
                    message: format!(
                        "definite deadlock: {} among {} rank{}: {}",
                        if closed { "circular wait" } else { "blocked chain" },
                        chain.len(),
                        if chain.len() == 1 { "" } else { "s" },
                        describe(&chain)
                    ),
                });
            }
            Verdict::DefiniteDeadlock { cycle: chain }
        } else {
            let mut sites = self.wildcard_sites.clone();
            for &r in stalled {
                if matches!(self.blocked[r], Some(Blocked::Recv))
                    && matches!(
                        self.p.rank_ops(r)[self.pc[r]],
                        Op::Recv { src: Src::Any, .. } | Op::Recv { tag: Tag::Any, .. }
                    )
                {
                    let loc = Loc { rank: r, step: self.pc[r] };
                    if !sites.contains(&loc) {
                        sites.push(loc);
                    }
                }
            }
            self.diags.push(Diag {
                code: Code::A010,
                severity: Severity::Error,
                loc: chain.first().map(|e| Loc { rank: e.rank, step: e.step }),
                message: format!(
                    "potential deadlock: the canonical matching stalls ({}), but wildcard \
                     receives make matching nondeterministic — another matching might progress",
                    if chain.is_empty() { "no progress".to_string() } else { describe(&chain) }
                ),
            });
            Verdict::PotentialDeadlock { wildcard_sites: sites }
        }
    }

    /// Append an edge per not-yet-arrived member of `comm`; `arrived` tests
    /// whether a member's park state is *this* barrier occurrence, and
    /// `on_missing` turns a terminated member into a diagnostic instead.
    fn missing_members(
        &mut self,
        comm: CommId,
        arrived: &dyn Fn(Option<Blocked>) -> bool,
        out: &mut Vec<(usize, String)>,
        on_missing: &mut dyn FnMut(usize, bool) -> Option<Diag>,
    ) {
        let Some(members) = self.p.comm_members(comm).map(<[usize]>::to_vec) else { return };
        for m in members {
            if arrived(self.blocked[m]) {
                continue;
            }
            let done = self.done(m);
            if let Some(d) = on_missing(m, done) {
                self.diags.push(d);
            }
            if !done {
                out.push((m, format!("rank {m} has not arrived")));
            }
        }
    }
}

/// DFS for a cycle in the wait-for graph; returns the cycle as `WaitEdge`s
/// (closed: the last edge waits for the first rank).  When no cycle exists
/// the graph is a DAG into terminated/orphaned ranks; the longest blocking
/// chain from the lowest stalled rank is returned instead so reports always
/// show *why* nothing moves.
fn find_cycle(
    stalled: &[usize],
    edges: &HashMap<usize, Vec<(usize, String)>>,
    pc: &[usize],
) -> Vec<WaitEdge> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: HashMap<usize, Color> = stalled.iter().map(|&r| (r, Color::White)).collect();
    // Iterative DFS keeping the grey path; on a grey hit, the path suffix
    // from that node is the cycle.
    for &start in stalled {
        if color[&start] != Color::White {
            continue;
        }
        let mut path: Vec<(usize, usize)> = vec![(start, 0)]; // (node, next edge index)
        color.insert(start, Color::Grey);
        while let Some(frame) = path.last_mut() {
            let node = frame.0;
            let outs = edges.get(&node).map_or(&[][..], Vec::as_slice);
            if frame.1 >= outs.len() {
                color.insert(node, Color::Black);
                path.pop();
                continue;
            }
            let (next, _) = outs[frame.1];
            frame.1 += 1;
            match color.get(&next).copied() {
                Some(Color::Grey) => {
                    // Cycle: suffix of `path` starting at `next`.  A grey
                    // node is by construction on the path; a miss would
                    // just keep searching.
                    let Some(pos) = path.iter().position(|&(n, _)| n == next) else { continue };
                    let cycle_nodes: Vec<usize> = path[pos..].iter().map(|&(n, _)| n).collect();
                    let mut out = Vec::new();
                    for (i, &n) in cycle_nodes.iter().enumerate() {
                        let to = cycle_nodes[(i + 1) % cycle_nodes.len()];
                        let what = edges
                            .get(&n)
                            .and_then(|v| v.iter().find(|&&(w, _)| w == to))
                            .map_or_else(String::new, |(_, s)| s.clone());
                        out.push(WaitEdge { rank: n, step: pc[n], waits_for: to, what });
                    }
                    return out;
                }
                Some(Color::White) => {
                    color.insert(next, Color::Grey);
                    path.push((next, 0));
                }
                _ => {} // Black or not-stalled (terminated): skip.
            }
        }
    }
    // No cycle: walk first-edges from the lowest stalled rank.
    let mut out = Vec::new();
    let Some(&start) = stalled.first() else { return out };
    let mut seen = vec![start];
    let mut node = start;
    while let Some((next, what)) = edges.get(&node).and_then(|v| v.first()).cloned() {
        out.push(WaitEdge { rank: node, step: pc[node], waits_for: next, what });
        if seen.contains(&next) || !edges.contains_key(&next) {
            break;
        }
        seen.push(next);
        node = next;
    }
    out
}
