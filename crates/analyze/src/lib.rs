//! `mim-analyze` — static communication-graph verification.
//!
//! The monitoring library observes communication *dynamically*; this crate
//! is its static complement: it proves a communication plan deadlock-free —
//! or pinpoints the circular wait, rank by rank — without running the DES
//! or the threaded runtime at all.
//!
//! The pipeline:
//!
//! 1. anything that can describe its communication ahead of time (an
//!    `mpisim` `Schedule`, the collective generators, the app kernels in
//!    `mim-apps`, a JSON plan file) implements [`CommPlan`] and lowers
//!    itself into a per-rank operation outline ([`Program`]);
//! 2. [`analyze`] replays the outline under the runtime's matching
//!    semantics — per-`(comm, src, dst, tag)` FIFO channels, eager sends,
//!    blocking receives (wildcards take the earliest arrival), barrier
//!    collectives and fences;
//! 3. a vector-clock happens-before pass ([`race`]) classifies every
//!    wildcard receive as benign or racy, yielding a determinism verdict
//!    (`Deterministic | SchedSensitive`) orthogonal to the deadlock
//!    lattice plus the [`IndependenceMap`] `mim-explore` uses to prune
//!    its schedule search;
//! 4. the result is a [`Report`]: a verdict on the deadlock lattice
//!    (`DeadlockFree ⊑ PotentialDeadlock ⊑ DefiniteDeadlock`, with
//!    `Malformed` at the bottom), the determinism axis, *all* findings of
//!    the run as coded diagnostics (`MIM-A001`…), and per-channel traffic
//!    totals — rendered human-readable or as JSON.
//!
//! Soundness is cross-validated against the simulator: property tests in
//! `mim-mpisim` assert that a `DeadlockFree` verdict implies the DES
//! evaluator completes and a `DefiniteDeadlock` verdict reproduces the
//! runtime's deadline panic.

pub mod check;
pub mod diag;
pub mod json;
pub mod plan;
pub mod race;

pub use check::{analyze, analyze_program};
pub use diag::{ChannelUse, Code, Diag, Loc, Report, Severity, Verdict, WaitEdge};
pub use json::{program_from_json, Json};
pub use plan::{CollKind, CommId, CommPlan, Op, Program, Src, Tag, WinId, WORLD};
pub use race::{Determinism, IndependenceMap};

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank(ops0: Vec<Op>, ops1: Vec<Op>) -> Program {
        let mut p = Program::new("test", 2);
        for op in ops0 {
            p.push(0, op);
        }
        for op in ops1 {
            p.push(1, op);
        }
        p
    }

    fn send(dst: usize) -> Op {
        Op::Send { comm: WORLD, dst, tag: 0, bytes: 8 }
    }

    fn recv(src: usize) -> Op {
        Op::Recv { comm: WORLD, src: Src::Rank(src), tag: Tag::Is(0) }
    }

    #[test]
    fn ping_pong_is_deadlock_free() {
        let p = two_rank(vec![send(1), recv(1)], vec![recv(0), send(0)]);
        let r = analyze(&p);
        assert_eq!(r.verdict, Verdict::DeadlockFree);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.channels.len(), 2);
    }

    #[test]
    fn crossed_order_reports_the_cycle() {
        // Both ranks receive first: the textbook circular wait.
        let p = two_rank(vec![recv(1), send(1)], vec![recv(0), send(0)]);
        let r = analyze(&p);
        let Verdict::DefiniteDeadlock { cycle } = &r.verdict else {
            panic!("expected definite deadlock, got {:?}", r.verdict);
        };
        assert_eq!(cycle.len(), 2, "cycle: {cycle:?}");
        let ranks: Vec<usize> = cycle.iter().map(|e| e.rank).collect();
        let waits: Vec<usize> = cycle.iter().map(|e| e.waits_for).collect();
        assert!(ranks.contains(&0) && ranks.contains(&1));
        assert!(waits.contains(&0) && waits.contains(&1));
        // Every edge of the reported cycle is at step 0 (both blocked on
        // their first op).
        assert!(cycle.iter().all(|e| e.step == 0));
        assert!(r.diags.iter().any(|d| d.code == Code::A002 && d.severity == Severity::Error));
    }

    #[test]
    fn three_rank_cycle_is_found() {
        // 0 waits on 2, 2 waits on 1, 1 waits on 0.
        let mut p = Program::new("ring3", 3);
        p.push(0, recv(2));
        p.push(0, send(1));
        p.push(1, recv(0));
        p.push(1, send(2));
        p.push(2, recv(1));
        p.push(2, send(0));
        let r = analyze(&p);
        let Verdict::DefiniteDeadlock { cycle } = &r.verdict else {
            panic!("expected definite deadlock, got {:?}", r.verdict);
        };
        assert_eq!(cycle.len(), 3);
        // The cycle closes: each edge's target is the next edge's rank.
        for (i, e) in cycle.iter().enumerate() {
            assert_eq!(e.waits_for, cycle[(i + 1) % 3].rank);
        }
    }

    #[test]
    fn unmatched_send_flagged() {
        let p = two_rank(vec![send(1), send(1)], vec![recv(0)]);
        let r = analyze(&p);
        assert_eq!(r.verdict, Verdict::DeadlockFree);
        let d: Vec<_> = r.diags.iter().filter(|d| d.code == Code::A003).collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("never received"), "{}", d[0].message);
    }

    #[test]
    fn orphan_receive_flagged() {
        // Rank 1 terminates without sending; rank 0 waits forever.
        let p = two_rank(vec![recv(1)], vec![]);
        let r = analyze(&p);
        assert!(matches!(r.verdict, Verdict::DefiniteDeadlock { .. }), "{:?}", r.verdict);
        assert!(r.diags.iter().any(|d| d.code == Code::A004
            && d.message.contains("terminated")
            && d.loc == Some(Loc { rank: 0, step: 0 })));
    }

    #[test]
    fn wildcard_completion_is_potential() {
        let p =
            two_rank(vec![Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Any }], vec![send(0)]);
        let r = analyze(&p);
        let Verdict::PotentialDeadlock { wildcard_sites } = &r.verdict else {
            panic!("expected potential deadlock, got {:?}", r.verdict);
        };
        assert_eq!(wildcard_sites, &[Loc { rank: 0, step: 0 }]);
        assert!(r.is_clean(), "wildcards alone are a warning, not an error: {r}");
        assert!(r.diags.iter().any(|d| d.code == Code::A005));
    }

    #[test]
    fn wildcard_stall_is_potential_not_definite() {
        // Rank 0 blocks on a wildcard receive nobody satisfies.
        let p =
            two_rank(vec![Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Any }], vec![recv(0)]);
        let r = analyze(&p);
        assert!(matches!(r.verdict, Verdict::PotentialDeadlock { .. }), "{:?}", r.verdict);
        assert!(r.diags.iter().any(|d| d.code == Code::A010 && d.severity == Severity::Error));
    }

    #[test]
    fn wildcard_takes_earliest_arrival() {
        // Rank 1 then rank 2 send; the wildcard receive pairs with rank 1's
        // (earlier) message, leaving rank 2's for the specific receive.
        let mut p = Program::new("canon", 3);
        p.push(1, send(0));
        p.push(2, send(0));
        p.push(0, Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Any });
        p.push(0, recv(2));
        let r = analyze(&p);
        assert!(matches!(r.verdict, Verdict::PotentialDeadlock { .. }));
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn collective_mismatch_flagged() {
        let p = two_rank(
            vec![Op::Coll { comm: WORLD, kind: CollKind::Barrier, root: None }],
            vec![Op::Coll { comm: WORLD, kind: CollKind::Allreduce, root: None }],
        );
        let r = analyze(&p);
        assert!(r.diags.iter().any(|d| d.code == Code::A006), "{r}");
    }

    #[test]
    fn collective_root_mismatch_flagged() {
        let p = two_rank(
            vec![Op::Coll { comm: WORLD, kind: CollKind::Bcast, root: Some(0) }],
            vec![Op::Coll { comm: WORLD, kind: CollKind::Bcast, root: Some(1) }],
        );
        let r = analyze(&p);
        assert!(r.diags.iter().any(|d| d.code == Code::A007), "{r}");
    }

    #[test]
    fn missing_collective_participant_flagged() {
        let p =
            two_rank(vec![Op::Coll { comm: WORLD, kind: CollKind::Barrier, root: None }], vec![]);
        let r = analyze(&p);
        assert!(matches!(r.verdict, Verdict::DefiniteDeadlock { .. }));
        assert!(r.diags.iter().any(
            |d| d.code == Code::A006 && d.message.contains("terminated without participating")
        ));
    }

    #[test]
    fn cross_communicator_barrier_deadlock_found() {
        // Comm A = {0, 1}, comm B = {0, 1}: rank 0 barriers on A then B,
        // rank 1 on B then A — a circular wait between two barriers.
        let mut p = Program::new("xcomm", 2);
        let a = p.add_comm(vec![0, 1]);
        let b = p.add_comm(vec![0, 1]);
        p.push(0, Op::Coll { comm: a, kind: CollKind::Barrier, root: None });
        p.push(0, Op::Coll { comm: b, kind: CollKind::Barrier, root: None });
        p.push(1, Op::Coll { comm: b, kind: CollKind::Barrier, root: None });
        p.push(1, Op::Coll { comm: a, kind: CollKind::Barrier, root: None });
        let r = analyze(&p);
        let Verdict::DefiniteDeadlock { cycle } = &r.verdict else {
            panic!("expected definite deadlock, got {:?}", r.verdict);
        };
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn conflicting_puts_in_one_epoch_flagged() {
        let mut p = Program::new("rma", 3);
        let w = p.add_window(WORLD);
        p.push(0, Op::Put { win: w, target: 2, offset: 0, bytes: 16 });
        p.push(1, Op::Put { win: w, target: 2, offset: 8, bytes: 16 });
        for r in 0..3 {
            p.push(r, Op::Fence { win: w });
        }
        let r = analyze(&p);
        assert_eq!(r.verdict, Verdict::DeadlockFree);
        assert!(r.diags.iter().any(|d| d.code == Code::A008), "{r}");
        // Disjoint ranges or accumulate pairs are fine.
        let mut p = Program::new("rma-ok", 3);
        let w = p.add_window(WORLD);
        p.push(0, Op::Accumulate { win: w, target: 2, offset: 0, bytes: 16 });
        p.push(1, Op::Accumulate { win: w, target: 2, offset: 8, bytes: 16 });
        p.push(0, Op::Put { win: w, target: 1, offset: 0, bytes: 8 });
        p.push(2, Op::Put { win: w, target: 1, offset: 8, bytes: 8 });
        for r in 0..3 {
            p.push(r, Op::Fence { win: w });
        }
        let r = analyze(&p);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unfenced_epoch_flagged() {
        let mut p = Program::new("rma-unfenced", 2);
        let w = p.add_window(WORLD);
        p.push(0, Op::Put { win: w, target: 1, offset: 0, bytes: 8 });
        let r = analyze(&p);
        assert!(r.diags.iter().any(|d| d.code == Code::A009), "{r}");
    }

    #[test]
    fn malformed_plan_is_bottom() {
        let p = two_rank(vec![send(7)], vec![]);
        let r = analyze(&p);
        assert_eq!(r.verdict, Verdict::Malformed);
        assert!(r.diags.iter().any(|d| d.code == Code::A001 && d.message.contains("out of range")));
        // Rank outside its communicator is A001 too.
        let mut p = Program::new("nonmember", 3);
        let sub = p.add_comm(vec![0, 1]);
        p.push(2, Op::Coll { comm: sub, kind: CollKind::Barrier, root: None });
        let r = analyze(&p);
        assert_eq!(r.verdict, Verdict::Malformed);
        assert!(r.diags.iter().any(|d| d.message.contains("not a member")));
    }

    #[test]
    fn subcommunicator_traffic_is_scoped() {
        // The same (src, dst, tag) triple on two comms forms two channels.
        let mut p = Program::new("scoped", 2);
        let sub = p.add_comm(vec![0, 1]);
        p.push(0, send(1));
        p.push(0, Op::Send { comm: sub, dst: 1, tag: 0, bytes: 32 });
        p.push(1, Op::Recv { comm: sub, src: Src::Rank(0), tag: Tag::Is(0) });
        p.push(1, recv(0));
        let r = analyze(&p);
        assert_eq!(r.verdict, Verdict::DeadlockFree, "{r}");
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.channels.len(), 2);
        assert_eq!(r.channels.iter().map(|c| c.bytes).sum::<u64>(), 40);
    }

    #[test]
    fn report_renders_both_formats() {
        let p = two_rank(vec![recv(1), send(1)], vec![recv(0), send(0)]);
        let r = analyze(&p);
        let pretty = r.to_string();
        assert!(pretty.contains("definite deadlock"), "{pretty}");
        assert!(pretty.contains("MIM-A002"), "{pretty}");
        let json = r.to_json();
        assert!(json.contains("\"schema\":\"mim-analyze-report-v2\""), "{json}");
        assert!(json.contains("\"determinism\":{\"kind\":\"deterministic\"}"), "{json}");
        assert!(json.contains("\"independence\":{\"wildcard_sites\":0"), "{json}");
        assert!(json.contains("\"kind\":\"definite_deadlock\""), "{json}");
        assert!(json.contains("\"cycle\":["), "{json}");
        // The JSON must round-trip through our own parser.
        let doc = Json::parse(&json).unwrap();
        assert_eq!(
            doc.get("verdict").and_then(|v| v.get("kind")).and_then(Json::as_str),
            Some("definite_deadlock")
        );
    }

    #[test]
    fn json_plan_round_trip() {
        let text = r#"{
            "name": "crossed",
            "nranks": 2,
            "ranks": [
                [{"op": "recv", "src": 1}, {"op": "send", "dst": 1, "bytes": 4}],
                [{"op": "recv", "src": 0}, {"op": "send", "dst": 0, "bytes": 4}]
            ]
        }"#;
        let p = program_from_json(text).unwrap();
        assert_eq!(p.nranks(), 2);
        let r = analyze(&p);
        assert!(matches!(r.verdict, Verdict::DefiniteDeadlock { .. }));
        // Windows + collectives + wildcards decode too.
        let text = r#"{
            "nranks": 2,
            "comms": [[0, 1]],
            "windows": [1],
            "ranks": [
                [{"op": "put", "win": 0, "target": 1, "bytes": 8},
                 {"op": "fence", "win": 0},
                 {"op": "coll", "kind": "bcast", "root": 0},
                 {"op": "recv", "src": "any", "tag": "any"}],
                [{"op": "fence", "win": 0},
                 {"op": "coll", "kind": "bcast", "root": 0},
                 {"op": "send", "dst": 0}]
            ]
        }"#;
        let p = program_from_json(text).unwrap();
        let r = analyze(&p);
        assert!(matches!(r.verdict, Verdict::PotentialDeadlock { .. }), "{r}");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn json_errors_are_reported() {
        assert!(program_from_json("{").is_err());
        assert!(program_from_json("{}").unwrap_err().contains("nranks"));
        assert!(program_from_json(r#"{"nranks": 1, "ranks": []}"#).unwrap_err().contains("1"));
        assert!(program_from_json(r#"{"nranks": 1, "ranks": [[{"op": "warp", "dst": 0}]]}"#)
            .unwrap_err()
            .contains("unknown op"));
    }
}
