//! A minimal JSON reader (the workspace is dependency-free) plus the
//! JSON-described plan format the `mim-analyze` CLI accepts.
//!
//! The plan document mirrors [`Program`] directly:
//!
//! ```json
//! {
//!   "name": "crossed",
//!   "nranks": 2,
//!   "comms": [[0, 1]],
//!   "windows": [0],
//!   "ranks": [
//!     [{"op": "recv", "src": 1},          {"op": "send", "dst": 1, "bytes": 4}],
//!     [{"op": "recv", "src": "any"},      {"op": "send", "dst": 0, "bytes": 4}]
//!   ]
//! }
//! ```
//!
//! * `comms` (optional) lists *additional* communicators (world is always
//!   comm 0; the first entry here becomes comm 1, and so on);
//! * `windows` (optional) lists one communicator id per window;
//! * ops: `send` (`dst`, `bytes`, optional `tag`/`comm`), `recv` (`src` as a
//!   rank or `"any"`, optional `tag` as a number or `"any"`, optional
//!   `comm`), `coll` (`kind`, optional `root`/`comm`), `put`/`get`/`acc`
//!   (`win`, `target`, optional `offset`/`bytes`), `fence` (`win`).

use std::fmt;

use crate::plan::{CollKind, CommId, Op, Program, Src, Tag, WinId};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (f64 covers every integer the plan format needs).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) => Some(n as u64),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { pos: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any plan
                            // file; map them to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(s) };
                    let c = text.chars().next().ok_or_else(|| self.err("bad utf8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

/// Decode a JSON plan document (see the module docs for the format).
///
/// # Errors
/// Returns a human-readable description of the first syntax or schema
/// problem.
pub fn program_from_json(text: &str) -> Result<Program, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let name = doc.get("name").and_then(Json::as_str).unwrap_or("json-plan").to_string();
    let nranks =
        doc.get("nranks").and_then(Json::as_u64).ok_or("missing or invalid \"nranks\"")? as usize;
    let mut prog = Program::new(name, nranks);
    if let Some(comms) = doc.get("comms") {
        for (i, c) in comms.as_arr().ok_or("\"comms\" must be an array")?.iter().enumerate() {
            let members: Vec<usize> = c
                .as_arr()
                .ok_or_else(|| format!("comms[{i}] must be an array of ranks"))?
                .iter()
                .map(|m| m.as_u64().map(|v| v as usize))
                .collect::<Option<_>>()
                .ok_or_else(|| format!("comms[{i}] must contain non-negative ranks"))?;
            prog.add_comm(members);
        }
    }
    if let Some(wins) = doc.get("windows") {
        for (i, w) in wins.as_arr().ok_or("\"windows\" must be an array")?.iter().enumerate() {
            let comm =
                w.as_u64().ok_or_else(|| format!("windows[{i}] must be a communicator id"))?;
            prog.add_window(CommId(comm as u32));
        }
    }
    let ranks = doc.get("ranks").and_then(Json::as_arr).ok_or("missing \"ranks\" array")?;
    if ranks.len() != nranks {
        return Err(format!("\"ranks\" has {} entries but nranks = {nranks}", ranks.len()));
    }
    for (r, ops) in ranks.iter().enumerate() {
        let ops = ops.as_arr().ok_or_else(|| format!("ranks[{r}] must be an array of ops"))?;
        for (i, op) in ops.iter().enumerate() {
            let op = decode_op(op).map_err(|e| format!("ranks[{r}][{i}]: {e}"))?;
            prog.push(r, op);
        }
    }
    Ok(prog)
}

fn decode_op(j: &Json) -> Result<Op, String> {
    let kind = j.get("op").and_then(Json::as_str).ok_or("missing \"op\" field")?;
    let comm = CommId(j.get("comm").and_then(Json::as_u64).unwrap_or(0) as u32);
    let u = |field: &str, default: u64| -> Result<u64, String> {
        match j.get(field) {
            None => Ok(default),
            Some(v) => v.as_u64().ok_or_else(|| format!("invalid \"{field}\"")),
        }
    };
    let required = |field: &str| -> Result<u64, String> {
        j.get(field).and_then(Json::as_u64).ok_or_else(|| format!("missing or invalid \"{field}\""))
    };
    match kind {
        "send" => Ok(Op::Send {
            comm,
            dst: required("dst")? as usize,
            tag: u("tag", 0)? as u32,
            bytes: u("bytes", 0)?,
        }),
        "recv" => {
            let src = match j.get("src") {
                Some(Json::Str(s)) if s == "any" => Src::Any,
                Some(v) => {
                    Src::Rank(v.as_u64().ok_or("invalid \"src\" (rank or \"any\")")? as usize)
                }
                None => return Err("missing \"src\" (rank or \"any\")".into()),
            };
            let tag = match j.get("tag") {
                Some(Json::Str(s)) if s == "any" => Tag::Any,
                Some(v) => Tag::Is(v.as_u64().ok_or("invalid \"tag\" (number or \"any\")")? as u32),
                None => Tag::Is(0),
            };
            Ok(Op::Recv { comm, src, tag })
        }
        "coll" => {
            let kind = match j.get("kind").and_then(Json::as_str).ok_or("missing \"kind\"")? {
                "barrier" => CollKind::Barrier,
                "bcast" => CollKind::Bcast,
                "reduce" => CollKind::Reduce,
                "allreduce" => CollKind::Allreduce,
                "allgather" => CollKind::Allgather,
                "alltoall" => CollKind::Alltoall,
                "gather" => CollKind::Gather,
                "scatter" => CollKind::Scatter,
                "reduce_scatter" => CollKind::ReduceScatter,
                "scan" => CollKind::Scan,
                other => return Err(format!("unknown collective kind {other:?}")),
            };
            let root = j.get("root").map(|v| v.as_u64().ok_or("invalid \"root\"")).transpose()?;
            Ok(Op::Coll { comm, kind, root: root.map(|r| r as usize) })
        }
        "put" | "get" | "acc" => {
            let win = WinId(required("win")? as u32);
            let target = required("target")? as usize;
            let offset = u("offset", 0)?;
            let bytes = u("bytes", 0)?;
            Ok(match kind {
                "put" => Op::Put { win, target, offset, bytes },
                "get" => Op::Get { win, target, offset, bytes },
                _ => Op::Accumulate { win, target, offset, bytes },
            })
        }
        "fence" => Ok(Op::Fence { win: WinId(required("win")? as u32) }),
        other => Err(format!("unknown op {other:?}")),
    }
}
