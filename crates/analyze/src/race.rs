//! Static happens-before race pass: vector clocks over the plan IR,
//! determinism verdicts (MIM-A011…A016), and the independence map that
//! lets `mim-explore` prune its schedule search.
//!
//! Two happens-before relations are computed over the same per-op vector
//! clocks:
//!
//! * the **static** relation — program order plus collective/fence barrier
//!   edges only.  These edges hold under *every* schedule, so anything the
//!   static relation proves ordered (or every-order-equivalent) may be
//!   removed from exploration without losing behaviors; it alone feeds the
//!   [`IndependenceMap`];
//! * the **canonical** relation — the static edges plus the match edges of
//!   the analyzer's canonical replay (each matched receive additionally
//!   joins its sender's clock).  It holds for one schedule only and is
//!   used to *sharpen diagnostics* (which races reorder observable
//!   receives, which feed later matches), never to prune.
//!
//! A wildcard receive site is classified one of two ways:
//!
//! * **benign** — its matching commutes.  Either it sits in a maximal run
//!   of identical-pattern wildcard receives that canonically consumes
//!   *exactly* the set of admissible sends (any permutation of the block
//!   drains the same messages, and plans are straight-line, so no later
//!   behavior can observe the order), or its racing send set spans at most
//!   one channel (per-channel FIFO then forces the match).
//! * **racy** — at least two distinct channels race for it: MIM-A011, with
//!   A012–A016 scoped to the same site when the sharper patterns apply.
//!
//! The racing set of a site `W` is every admissible send `S` with
//! `¬hb(W, S)` under the static relation.  Sends *before* `W` stay in the
//! set deliberately: an earlier unforced match can leave them pending, so
//! only sends provably after `W` are excluded.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Code, Diag, Loc, Severity};
use crate::plan::{CommId, Op, Program, Src, Tag};

/// The schedule-sensitivity axis of a report, orthogonal to the deadlock
/// lattice: can different schedules produce different matchings?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Determinism {
    /// No wildcard race survives the happens-before analysis: every
    /// schedule produces the same matching, so the canonical replay's
    /// outcome is *the* outcome and one explored schedule decides the plan.
    Deterministic,
    /// At least one wildcard receive has racing senders on distinct
    /// channels; schedules can diverge.  `codes` lists the race
    /// diagnostics that were emitted (always includes [`Code::A011`]).
    SchedSensitive {
        /// Sorted, deduplicated race diagnostic codes.
        codes: Vec<Code>,
    },
    /// The plan is malformed; no determinism claim is made.
    Unknown,
}

impl Determinism {
    /// Short lower-snake label used in both output formats.
    pub fn kind(&self) -> &'static str {
        match self {
            Determinism::Deterministic => "deterministic",
            Determinism::SchedSensitive { .. } => "sched_sensitive",
            Determinism::Unknown => "unknown",
        }
    }
}

/// The static independence relation `mim-explore` consumes: which wildcard
/// receive sites commute with their senders under every schedule.
///
/// Contract with the explorer: a site in `benign` may be dropped from the
/// persistent-set computation — its match decisions are still *recorded*
/// (decision logs stay comparable) but never seed a backtrack point, and
/// sends admitted only by benign sites are not race-flagged.  Sites in
/// `racy` must keep branching the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndependenceMap {
    /// Rank count of the analyzed program.
    pub nranks: usize,
    /// Wildcard receive sites proven order-insensitive.
    pub benign: BTreeSet<(usize, usize)>,
    /// Wildcard receive sites with a genuine multi-channel race.
    pub racy: BTreeSet<(usize, usize)>,
    /// Edges the race pass materialized in the static happens-before
    /// graph: program-order edges plus directed barrier member pairs.
    /// Zero when the plan has no wildcards (the pass short-circuits).
    pub hb_edges: usize,
}

impl IndependenceMap {
    /// The empty relation (no wildcard sites classified).
    pub fn empty(nranks: usize) -> Self {
        IndependenceMap { nranks, benign: BTreeSet::new(), racy: BTreeSet::new(), hb_edges: 0 }
    }

    /// Is the wildcard receive at `(rank, step)` proven order-insensitive?
    pub fn wildcard_is_benign(&self, rank: usize, step: usize) -> bool {
        self.benign.contains(&(rank, step))
    }

    /// Total wildcard sites classified (benign + racy).
    pub fn wildcard_sites(&self) -> usize {
        self.benign.len() + self.racy.len()
    }
}

/// Per-op vector clocks: `vc[rank][step]` is that op's clock, assigned
/// when the pass executed it.  `a` happens-before `b` iff `b`'s clock has
/// seen `a`'s increment of `a.rank`'s component.
struct Clocks {
    vc: Vec<Vec<Vec<u64>>>,
}

impl Clocks {
    fn hb(&self, a: Loc, b: Loc) -> bool {
        if a.rank == b.rank {
            return a.step < b.step;
        }
        self.vc[b.rank][b.step][a.rank] >= self.vc[a.rank][a.step][a.rank]
    }
}

/// Barrier key: collectives per communicator, fences per window (mirroring
/// the replay's separate occurrence counters).
type BarrierKey = (bool, u32, usize);

/// Compute per-op vector clocks by replaying the plan's *synchronization*
/// only: sends and one-sided ops are local, collectives and fences are
/// barriers (completion joins every member's clock), and — in canonical
/// mode (`match_of_recv` present) — each matched receive additionally
/// joins its sender's clock.
///
/// Ranks parked forever (a barrier that never completes, an unmatched
/// receive in canonical mode) get program-order-only clocks for their
/// remaining ops: fewer edges, never wrong ones.
///
/// Returns the clocks and the number of directed barrier member pairs, the
/// barrier half of the [`IndependenceMap::hb_edges`] stat.
fn vc_pass(p: &Program, match_of_recv: Option<&BTreeMap<(usize, usize), Loc>>) -> (Clocks, usize) {
    let n = p.nranks();
    let mut cur: Vec<Vec<u64>> = vec![vec![0; n]; n];
    let mut vc: Vec<Vec<Vec<u64>>> =
        (0..n).map(|r| vec![Vec::new(); p.rank_ops(r).len()]).collect();
    let mut pc = vec![0usize; n];
    let mut coll_idx: Vec<Vec<usize>> = vec![vec![0; n]; p.ncomms()];
    let mut fence_idx: Vec<Vec<usize>> = vec![vec![0; n]; p.nwins()];
    let mut arrived: BTreeMap<BarrierKey, Vec<usize>> = BTreeMap::new();
    let mut barrier_pairs = 0usize;

    // One local (non-blocking) step of rank `r`.
    let tick = |cur: &mut Vec<Vec<u64>>, vc: &mut Vec<Vec<Vec<u64>>>, r: usize, step: usize| {
        cur[r][r] += 1;
        vc[r][step] = cur[r].clone();
    };

    let mut progressed = true;
    while progressed {
        progressed = false;
        for r in 0..n {
            'rank: while pc[r] < p.rank_ops(r).len() {
                let step = pc[r];
                let barrier: Option<(BarrierKey, CommId)> = match p.rank_ops(r)[step] {
                    Op::Coll { comm, .. } => {
                        Some(((false, comm.0, coll_idx[comm.0 as usize][r]), comm))
                    }
                    Op::Fence { win } => match p.win_comm(win) {
                        Some(comm) => Some(((true, win.0, fence_idx[win.0 as usize][r]), comm)),
                        None => break 'rank, // malformed: parked forever
                    },
                    Op::Recv { .. } => {
                        if let Some(matches) = match_of_recv {
                            match matches.get(&(r, step)) {
                                Some(&s) => {
                                    // Wait for the matched send's clock,
                                    // then join it (the match edge).
                                    if vc[s.rank][s.step].is_empty() {
                                        break 'rank;
                                    }
                                    let send_vc = vc[s.rank][s.step].clone();
                                    for (c, &sv) in cur[r].iter_mut().zip(&send_vc) {
                                        *c = (*c).max(sv);
                                    }
                                    tick(&mut cur, &mut vc, r, step);
                                    pc[r] += 1;
                                    progressed = true;
                                    continue 'rank;
                                }
                                // Canonically unmatched: parked forever.
                                None => break 'rank,
                            }
                        }
                        tick(&mut cur, &mut vc, r, step);
                        pc[r] += 1;
                        progressed = true;
                        continue 'rank;
                    }
                    _ => {
                        tick(&mut cur, &mut vc, r, step);
                        pc[r] += 1;
                        progressed = true;
                        continue 'rank;
                    }
                };
                let Some((key, comm)) = barrier else { break 'rank };
                let members = p.comm_members(comm).map_or(&[][..], |m| m);
                let waiting = arrived.entry(key).or_default();
                if !waiting.contains(&r) {
                    waiting.push(r);
                }
                if members.is_empty() || waiting.len() < members.len() {
                    break 'rank; // parked in the barrier
                }
                // Barrier complete: join every member's clock, advance all.
                let done = arrived.remove(&key).unwrap_or_default();
                let mut joined = vec![0u64; n];
                for &m in &done {
                    for (j, &c) in joined.iter_mut().zip(&cur[m]) {
                        *j = (*j).max(c);
                    }
                }
                barrier_pairs += done.len() * done.len().saturating_sub(1);
                for &m in &done {
                    cur[m] = joined.clone();
                    let mstep = pc[m];
                    tick(&mut cur, &mut vc, m, mstep);
                    pc[m] += 1;
                    if key.0 {
                        fence_idx[key.1 as usize][m] += 1;
                    } else {
                        coll_idx[key.1 as usize][m] += 1;
                    }
                }
                progressed = true;
            }
        }
    }
    // Parked ranks: program-order-only clocks for whatever remains.
    for (r, rank_pc) in pc.iter_mut().enumerate() {
        while *rank_pc < p.rank_ops(r).len() {
            let step = *rank_pc;
            tick(&mut cur, &mut vc, r, step);
            *rank_pc += 1;
        }
    }
    (Clocks { vc }, barrier_pairs)
}

/// A wildcard receive site and the pattern it matches on.
#[derive(Debug, Clone, Copy)]
struct WildSite {
    loc: Loc,
    comm: CommId,
    src: Src,
    tag: Tag,
}

/// One send, with its matching coordinates.
#[derive(Debug, Clone, Copy)]
struct SendSite {
    loc: Loc,
    comm: CommId,
    dst: usize,
    tag: u32,
}

fn admits(w: &WildSite, s: &SendSite) -> bool {
    s.dst == w.loc.rank
        && s.comm == w.comm
        && w.tag.admits(s.tag)
        && match w.src {
            Src::Any => true,
            Src::Rank(want) => s.loc.rank == want,
        }
}

/// Does the (possibly non-wildcard) receive pattern admit the send?
fn recv_admits(comm: CommId, src: Src, tag: Tag, s: &SendSite) -> bool {
    s.comm == comm
        && tag.admits(s.tag)
        && match src {
            Src::Any => true,
            Src::Rank(want) => s.loc.rank == want,
        }
}

/// Number of collectives on `comm` preceding `step` at `rank` — the
/// "collective phase" an op sits in (pure program order, so it is
/// schedule-independent).
fn coll_phase(p: &Program, comm: CommId, rank: usize, step: usize) -> usize {
    p.rank_ops(rank)[..step]
        .iter()
        .filter(|op| matches!(op, Op::Coll { comm: c, .. } if *c == comm))
        .count()
}

/// Run the happens-before race pass over a well-formed program.
///
/// `matches` is the canonical replay's match log as `(send, recv)`
/// location pairs.  Appends MIM-A011…A016 warnings to `diags` and returns
/// the determinism verdict plus the independence map.
pub(crate) fn race_pass(
    p: &Program,
    matches: &[(Loc, Loc)],
    diags: &mut Vec<Diag>,
) -> (Determinism, IndependenceMap) {
    let n = p.nranks();
    let mut sends: Vec<SendSite> = Vec::new();
    let mut wilds: Vec<WildSite> = Vec::new();
    for r in 0..n {
        for (step, op) in p.rank_ops(r).iter().enumerate() {
            match *op {
                Op::Send { comm, dst, tag, .. } => {
                    sends.push(SendSite { loc: Loc { rank: r, step }, comm, dst, tag });
                }
                Op::Recv { comm, src, tag }
                    if matches!(src, Src::Any) || matches!(tag, Tag::Any) =>
                {
                    wilds.push(WildSite { loc: Loc { rank: r, step }, comm, src, tag });
                }
                _ => {}
            }
        }
    }
    if wilds.is_empty() {
        // No wildcards, no races: matching is a pure function of program
        // order and FIFO channels.
        return (Determinism::Deterministic, IndependenceMap::empty(n));
    }

    let match_of_recv: BTreeMap<(usize, usize), Loc> =
        matches.iter().map(|&(s, r)| ((r.rank, r.step), s)).collect();
    let match_of_send: BTreeMap<(usize, usize), Loc> =
        matches.iter().map(|&(s, r)| ((s.rank, s.step), r)).collect();

    let (static_hb, barrier_pairs) = vc_pass(p, None);
    let (canon_hb, _) = vc_pass(p, Some(&match_of_recv));
    let po_edges: usize = (0..n).map(|r| p.rank_ops(r).len().saturating_sub(1)).sum();

    let mut map = IndependenceMap::empty(n);
    map.hb_edges = po_edges + barrier_pairs;

    // Benign blocks: maximal runs of consecutive identical-pattern
    // wildcard receives that canonically consume exactly their admissible
    // send set.  Any permutation of such a block drains the same messages.
    let mut in_benign_block: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut i = 0;
    while i < wilds.len() {
        let w = wilds[i];
        let mut j = i + 1;
        while j < wilds.len() {
            let x = wilds[j];
            let consecutive = x.loc.rank == w.loc.rank
                && x.loc.step == wilds[j - 1].loc.step + 1
                && x.comm == w.comm
                && x.src == w.src
                && x.tag == w.tag;
            if !consecutive {
                break;
            }
            j += 1;
        }
        let block = &wilds[i..j];
        let adm: Vec<&SendSite> = sends.iter().filter(|&s| admits(&w, s)).collect();
        let in_block = |l: Loc| {
            l.rank == w.loc.rank
                && l.step >= block[0].loc.step
                && l.step <= block[j - i - 1].loc.step
        };
        let benign = adm.len() == block.len()
            && adm.iter().all(|s| {
                match_of_send.get(&(s.loc.rank, s.loc.step)).is_some_and(|&r| in_block(r))
            });
        if benign {
            for x in block {
                in_benign_block.insert((x.loc.rank, x.loc.step));
            }
        }
        i = j;
    }

    // Classify every site; emit diagnostics for the racy ones.
    let mut codes: BTreeSet<Code> = BTreeSet::new();
    let mut racy_sites: Vec<(WildSite, Vec<SendSite>)> = Vec::new();
    for w in &wilds {
        let site = (w.loc.rank, w.loc.step);
        if in_benign_block.contains(&site) {
            map.benign.insert(site);
            continue;
        }
        // The racing set: admissible sends not provably after the receive.
        let racing: Vec<SendSite> = sends
            .iter()
            .filter(|&s| admits(w, s) && !static_hb.hb(w.loc, s.loc))
            .copied()
            .collect();
        let channels: BTreeSet<(usize, u32)> = racing.iter().map(|s| (s.loc.rank, s.tag)).collect();
        if channels.len() < 2 {
            // Zero or one channel: FIFO forces the match (or the receive
            // blocks forever) — no schedule can change the outcome here.
            map.benign.insert(site);
            continue;
        }
        map.racy.insert(site);

        let shown: Vec<String> = racing
            .iter()
            .take(6)
            .map(|s| format!("rank {} @ step {} (tag {})", s.loc.rank, s.loc.step, s.tag))
            .collect();
        codes.insert(Code::A011);
        diags.push(Diag {
            code: Code::A011,
            severity: Severity::Warning,
            loc: Some(w.loc),
            message: format!(
                "wildcard receive races over {} sends on {} channels: {}{}",
                racing.len(),
                channels.len(),
                shown.join(", "),
                if racing.len() > 6 { ", …" } else { "" }
            ),
        });

        // A012: two racing senders share a tag — delivery order alone
        // decides which message the wildcard sees.
        let mut tags: BTreeMap<u32, BTreeSet<usize>> = BTreeMap::new();
        for s in &racing {
            tags.entry(s.tag).or_default().insert(s.loc.rank);
        }
        if let Some((&tag, ranks)) = tags.iter().find(|(_, ranks)| ranks.len() >= 2) {
            codes.insert(Code::A012);
            diags.push(Diag {
                code: Code::A012,
                severity: Severity::Warning,
                loc: Some(w.loc),
                message: format!(
                    "tag collision: {} racing senders ({}) all use tag {tag} on comm {} — \
                     arrival order picks the match",
                    ranks.len(),
                    ranks.iter().map(|r| format!("rank {r}")).collect::<Vec<_>>().join(", "),
                    w.comm.0
                ),
            });
        }

        // A014: a racing send sits in a different collective phase than the
        // receive — point-to-point traffic leaking across a barrier whose
        // ordering the sender does not actually share.
        if let Some(s) = racing.iter().find(|s| {
            coll_phase(p, w.comm, s.loc.rank, s.loc.step)
                != coll_phase(p, w.comm, w.loc.rank, w.loc.step)
        }) {
            codes.insert(Code::A014);
            diags.push(Diag {
                code: Code::A014,
                severity: Severity::Warning,
                loc: Some(w.loc),
                message: format!(
                    "collective/point-to-point interleaving hazard: racing send at rank {} @ \
                     step {} is in collective phase {} of comm {} but the wildcard receive is \
                     in phase {}",
                    s.loc.rank,
                    s.loc.step,
                    coll_phase(p, w.comm, s.loc.rank, s.loc.step),
                    w.comm.0,
                    coll_phase(p, w.comm, w.loc.rank, w.loc.step)
                ),
            });
        }

        // A015: a racing send the canonical matching pairs elsewhere (or
        // nowhere) — the send crosses this wildcard without being ordered
        // against it.
        let crossing = racing
            .iter()
            .filter(|s| match_of_send.get(&(s.loc.rank, s.loc.step)) != Some(&w.loc))
            .count();
        if crossing > 0 {
            codes.insert(Code::A015);
            diags.push(Diag {
                code: Code::A015,
                severity: Severity::Warning,
                loc: Some(w.loc),
                message: format!(
                    "{crossing} racing send{} match elsewhere (or nowhere) under the canonical \
                     matching yet are unordered with this wildcard — another schedule can \
                     steal the match",
                    if crossing == 1 { "" } else { "s" }
                ),
            });
        }

        // A016: the race is result-visible — some racing send is also
        // admissible by a *later* receive of the same rank, so which
        // message the wildcard takes feeds a later match.
        let later_recv = p.rank_ops(w.loc.rank).iter().enumerate().skip(w.loc.step + 1).find_map(
            |(step, op)| match *op {
                Op::Recv { comm, src, tag } => {
                    racing.iter().find(|&s| recv_admits(comm, src, tag, s)).map(|s| (step, s.loc))
                }
                _ => None,
            },
        );
        if let Some((step, send)) = later_recv {
            codes.insert(Code::A016);
            diags.push(Diag {
                code: Code::A016,
                severity: Severity::Warning,
                loc: Some(w.loc),
                message: format!(
                    "result-visible race: the send at rank {} @ step {} is wanted both here \
                     and by the receive at rank {} @ step {step} — the race's outcome feeds a \
                     later match",
                    send.rank, send.step, w.loc.rank
                ),
            });
        }

        racy_sites.push((*w, racing));
    }

    // A013: two racy wildcards at one rank whose canonical matches are
    // cross-admissible and concurrent under the canonical relation — the
    // observable receive order itself can flip.
    for (ai, (w1, _)) in racy_sites.iter().enumerate() {
        for (w2, _) in racy_sites.iter().skip(ai + 1) {
            if w1.loc.rank != w2.loc.rank {
                continue;
            }
            let (m1, m2) = match (
                match_of_recv.get(&(w1.loc.rank, w1.loc.step)),
                match_of_recv.get(&(w2.loc.rank, w2.loc.step)),
            ) {
                (Some(&m1), Some(&m2)) => (m1, m2),
                _ => continue,
            };
            let s1 = sends.iter().find(|s| s.loc == m1);
            let s2 = sends.iter().find(|s| s.loc == m2);
            let (Some(s1), Some(s2)) = (s1, s2) else { continue };
            let cross = admits(w1, s2) && admits(w2, s1);
            let concurrent = !canon_hb.hb(m1, m2) && !canon_hb.hb(m2, m1);
            if cross && concurrent {
                codes.insert(Code::A013);
                diags.push(Diag {
                    code: Code::A013,
                    severity: Severity::Warning,
                    loc: Some(w1.loc),
                    message: format!(
                        "nondeterministic delivery: the receives at steps {} and {} of rank {} \
                         canonically take concurrent sends (rank {} @ step {}, rank {} @ step \
                         {}) that each admit the other's slot — delivery order reorders the \
                         observable receives",
                        w1.loc.step, w2.loc.step, w1.loc.rank, m1.rank, m1.step, m2.rank, m2.step
                    ),
                });
            }
        }
    }

    let determinism = if map.racy.is_empty() {
        Determinism::Deterministic
    } else {
        Determinism::SchedSensitive { codes: codes.into_iter().collect() }
    };
    (determinism, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::analyze_program;
    use crate::plan::WORLD;

    fn send(dst: usize, tag: u32) -> Op {
        Op::Send { comm: WORLD, dst, tag, bytes: 8 }
    }

    fn wild_any() -> Op {
        Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Any }
    }

    #[test]
    fn wildcard_free_plans_are_deterministic() {
        let mut p = Program::new("pp", 2);
        p.push(0, send(1, 0));
        p.push(1, Op::Recv { comm: WORLD, src: Src::Rank(0), tag: Tag::Is(0) });
        let r = analyze_program(&p);
        assert_eq!(r.determinism, Determinism::Deterministic);
        assert_eq!(r.independence.wildcard_sites(), 0);
    }

    #[test]
    fn single_channel_wildcard_is_benign() {
        // One sender, one wildcard: FIFO forces the match.
        let mut p = Program::new("single", 2);
        p.push(0, wild_any());
        p.push(1, send(0, 0));
        let r = analyze_program(&p);
        assert_eq!(r.determinism, Determinism::Deterministic, "{r}");
        assert!(r.independence.wildcard_is_benign(0, 0));
    }

    #[test]
    fn benign_block_commutes() {
        // wildcard_clean in miniature: 3 identical wildcards drain exactly
        // the 3 admissible sends.
        let mut p = Program::new("block", 4);
        for _ in 0..3 {
            p.push(0, wild_any());
        }
        for r in 1..4 {
            p.push(r, send(0, r as u32));
        }
        let r = analyze_program(&p);
        assert_eq!(r.determinism, Determinism::Deterministic, "{r}");
        assert_eq!(r.independence.benign.len(), 3);
        assert!(r.independence.racy.is_empty());
    }

    #[test]
    fn crossing_wildcard_is_racy_and_result_visible() {
        // wildcard_race in miniature: the wildcard and a later specific
        // receive both want rank 1's message.
        let mut p = Program::new("race", 3);
        p.push(0, wild_any());
        p.push(0, Op::Recv { comm: WORLD, src: Src::Rank(1), tag: Tag::Is(0) });
        p.push(1, send(0, 0));
        p.push(2, send(0, 0));
        let r = analyze_program(&p);
        let Determinism::SchedSensitive { codes } = &r.determinism else {
            panic!("expected sched_sensitive, got {:?}", r.determinism);
        };
        for c in [Code::A011, Code::A012, Code::A015, Code::A016] {
            assert!(codes.contains(&c), "missing {c} in {codes:?}");
        }
        assert!(r.independence.racy.contains(&(0, 0)));
    }

    #[test]
    fn barrier_serializes_the_race() {
        // Same shape, but rank 2's send moves past a barrier the receive
        // is before: the static relation orders W → send, the race is gone.
        let mut p = Program::new("serial", 3);
        p.push(0, Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Is(0) });
        for r in 0..3 {
            p.push(r, Op::Coll { comm: WORLD, kind: crate::plan::CollKind::Barrier, root: None });
        }
        p.push(0, Op::Recv { comm: WORLD, src: Src::Rank(2), tag: Tag::Is(0) });
        p.push(1, send(0, 0));
        let r = analyze_program(&p);
        // Both sends sit *after* their barriers here, so the wildcard's
        // racing set is empty and the canonical replay stalls at the
        // wildcard — still deterministic, every schedule agrees.
        assert_eq!(r.determinism, Determinism::Deterministic, "{r}");

        // The properly-serialized twin: rank 1 sends before the barrier,
        // rank 2 after.  One racing channel each — deterministic.
        let mut p = Program::new("serial2", 3);
        p.push(0, Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Is(0) });
        p.push(1, send(0, 0));
        for r in 0..3 {
            p.push(r, Op::Coll { comm: WORLD, kind: crate::plan::CollKind::Barrier, root: None });
        }
        p.push(0, Op::Recv { comm: WORLD, src: Src::Rank(2), tag: Tag::Is(0) });
        p.push(2, send(0, 0));
        let r = analyze_program(&p);
        assert_eq!(r.determinism, Determinism::Deterministic, "{r}");
        assert!(r.independence.wildcard_is_benign(0, 0));

        // And the unserialized twin (both sends race the wildcard).
        let mut p = Program::new("unserial", 3);
        p.push(0, Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Is(0) });
        p.push(0, Op::Recv { comm: WORLD, src: Src::Rank(2), tag: Tag::Is(0) });
        p.push(1, send(0, 0));
        p.push(2, send(0, 0));
        let r = analyze_program(&p);
        assert!(matches!(r.determinism, Determinism::SchedSensitive { .. }), "{r}");
    }

    #[test]
    fn reorderable_pair_is_a013() {
        // Two wildcards at rank 0 over three concurrent senders: the block
        // cannot drain its admissible set (3 sends, 2 slots), both sites
        // race, and the two canonical matches come from different ranks,
        // each admitting the other's slot.
        let mut p = Program::new("pair", 4);
        p.push(0, wild_any());
        p.push(0, wild_any());
        p.push(1, send(0, 0));
        p.push(2, send(0, 0));
        p.push(3, send(0, 0));
        let r = analyze_program(&p);
        let Determinism::SchedSensitive { codes } = &r.determinism else {
            panic!("expected sched_sensitive, got {:?}", r.determinism);
        };
        assert!(codes.contains(&Code::A013), "missing A013 in {codes:?}");
    }

    #[test]
    fn cross_phase_send_is_a014() {
        // Rank 1 sends before the barrier, ranks 2 and 3 after; the
        // wildcards sit after it, so rank 1's racing send crosses the
        // phase (and 3 admissible sends for 2 slots keeps the block racy).
        let mut p = Program::new("phase", 4);
        p.push(1, send(0, 0));
        for r in 0..4 {
            p.push(r, Op::Coll { comm: WORLD, kind: crate::plan::CollKind::Barrier, root: None });
        }
        p.push(0, wild_any());
        p.push(0, wild_any());
        p.push(2, send(0, 0));
        p.push(3, send(0, 0));
        let r = analyze_program(&p);
        let Determinism::SchedSensitive { codes } = &r.determinism else {
            panic!("expected sched_sensitive, got {:?}", r.determinism);
        };
        assert!(codes.contains(&Code::A014), "missing A014 in {codes:?}");
    }

    #[test]
    fn vector_clocks_order_across_barriers() {
        let mut p = Program::new("vc", 2);
        p.push(0, send(1, 0));
        for r in 0..2 {
            p.push(r, Op::Coll { comm: WORLD, kind: crate::plan::CollKind::Barrier, root: None });
        }
        p.push(1, send(0, 0));
        p.push(0, Op::Recv { comm: WORLD, src: Src::Rank(1), tag: Tag::Is(0) });
        p.push(1, Op::Recv { comm: WORLD, src: Src::Rank(0), tag: Tag::Is(0) });
        let (clocks, pairs) = vc_pass(&p, None);
        // Rank 0's pre-barrier send happens-before rank 1's post-barrier
        // send; the reverse does not hold.
        assert!(clocks.hb(Loc { rank: 0, step: 0 }, Loc { rank: 1, step: 1 }));
        assert!(!clocks.hb(Loc { rank: 1, step: 1 }, Loc { rank: 0, step: 0 }));
        // Concurrent: the two post-barrier receives.
        assert!(!clocks.hb(Loc { rank: 0, step: 2 }, Loc { rank: 1, step: 2 }));
        assert!(!clocks.hb(Loc { rank: 1, step: 2 }, Loc { rank: 0, step: 2 }));
        assert_eq!(pairs, 2, "one 2-member barrier contributes 2 directed pairs");
    }
}
