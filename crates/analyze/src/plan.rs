//! The analyzer's input language: a *communication plan*.
//!
//! A plan ([`Program`]) is the pure communication outline of a parallel
//! job — per rank, an ordered list of operations ([`Op`]) with everything
//! data-dependent erased.  It deliberately keeps only what the matching
//! semantics can see: communicator scope, peer, tag, byte count, wildcard
//! selectors, collective kind/root, and one-sided epoch structure.
//!
//! Anything that can describe its communication ahead of time implements
//! [`CommPlan`] and lowers itself into a `Program`; `mim-mpisim`'s
//! `Schedule` and the app kernels in `mim-apps` do exactly that.  Peers are
//! always *world* ranks — a sub-communicator contributes matching scope
//! (its [`CommId`] is part of every channel key) and collective membership,
//! not a second rank numbering.

use std::fmt;

/// A communicator handle inside a [`Program`].  `CommId(0)` is always the
/// world communicator spanning every rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommId(pub u32);

/// The world communicator (all ranks), present in every program.
pub const WORLD: CommId = CommId(0);

/// A one-sided window handle inside a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WinId(pub u32);

/// Receive source selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// Match messages from this world rank only.
    Rank(usize),
    /// `MPI_ANY_SOURCE`: match any sender.
    Any,
}

/// Receive tag selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Match this tag only.
    Is(u32),
    /// `MPI_ANY_TAG`: match any tag.
    Any,
}

impl Tag {
    /// Does a message tagged `tag` satisfy this selector?
    pub fn admits(self, tag: u32) -> bool {
        match self {
            Tag::Is(t) => t == tag,
            Tag::Any => true,
        }
    }
}

/// Which collective a [`Op::Coll`] op stands for.  The analyzer only needs
/// identity (for cross-rank agreement) and rootedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollKind {
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Bcast` (rooted).
    Bcast,
    /// `MPI_Reduce` (rooted).
    Reduce,
    /// `MPI_Allreduce`.
    Allreduce,
    /// `MPI_Allgather` / `MPI_Allgatherv`.
    Allgather,
    /// `MPI_Alltoall`.
    Alltoall,
    /// `MPI_Gather` (rooted).
    Gather,
    /// `MPI_Scatter` (rooted).
    Scatter,
    /// `MPI_Reduce_scatter`.
    ReduceScatter,
    /// `MPI_Scan` / `MPI_Exscan`.
    Scan,
}

impl fmt::Display for CollKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollKind::Barrier => "barrier",
            CollKind::Bcast => "bcast",
            CollKind::Reduce => "reduce",
            CollKind::Allreduce => "allreduce",
            CollKind::Allgather => "allgather",
            CollKind::Alltoall => "alltoall",
            CollKind::Gather => "gather",
            CollKind::Scatter => "scatter",
            CollKind::ReduceScatter => "reduce_scatter",
            CollKind::Scan => "scan",
        };
        f.write_str(s)
    }
}

/// One operation of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Eager send of `bytes` to world rank `dst`, matched on
    /// `(comm, src, dst, tag)` with per-channel FIFO (non-overtaking) order.
    Send {
        /// Matching scope.
        comm: CommId,
        /// Destination world rank.
        dst: usize,
        /// Message tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// Blocking receive.
    Recv {
        /// Matching scope.
        comm: CommId,
        /// Source selector (possibly `MPI_ANY_SOURCE`).
        src: Src,
        /// Tag selector (possibly `MPI_ANY_TAG`).
        tag: Tag,
    },
    /// A collective over `comm`; every member must issue the same kind (and
    /// root, when rooted) at the same collective occurrence.
    Coll {
        /// The communicator the collective spans.
        comm: CommId,
        /// Which collective.
        kind: CollKind,
        /// Root world rank for rooted collectives, `None` otherwise.
        root: Option<usize>,
    },
    /// One-sided put into window `win` at `target`.
    Put {
        /// Target window.
        win: WinId,
        /// Target world rank.
        target: usize,
        /// Byte offset inside the target's window.
        offset: u64,
        /// Bytes written.
        bytes: u64,
    },
    /// One-sided get from window `win` at `target`.
    Get {
        /// Target window.
        win: WinId,
        /// Target world rank.
        target: usize,
        /// Byte offset inside the target's window.
        offset: u64,
        /// Bytes read.
        bytes: u64,
    },
    /// One-sided accumulate into window `win` at `target` (element-wise
    /// reduction — concurrent accumulates to the same location are legal).
    Accumulate {
        /// Target window.
        win: WinId,
        /// Target world rank.
        target: usize,
        /// Byte offset inside the target's window.
        offset: u64,
        /// Bytes combined.
        bytes: u64,
    },
    /// `MPI_Win_fence`: a barrier over the window's communicator closing
    /// the current access epoch.
    Fence {
        /// The window whose epoch closes.
        win: WinId,
    },
}

/// A complete communication plan: per-rank operation outlines plus the
/// communicator and window tables they reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    nranks: usize,
    /// `comms[c]` = sorted member world-ranks of `CommId(c)`; entry 0 is
    /// the world communicator.
    comms: Vec<Vec<usize>>,
    /// `wins[w]` = the communicator `WinId(w)` spans.
    wins: Vec<CommId>,
    ranks: Vec<Vec<Op>>,
}

impl Program {
    /// An empty plan over `nranks` ranks with only the world communicator.
    pub fn new(name: impl Into<String>, nranks: usize) -> Self {
        Self {
            name: name.into(),
            nranks,
            comms: vec![(0..nranks).collect()],
            wins: Vec::new(),
            ranks: vec![Vec::new(); nranks],
        }
    }

    /// Plan name (reports echo it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Register a sub-communicator over `members` (world ranks, deduplicated
    /// and sorted).  Returns its handle.
    pub fn add_comm(&mut self, mut members: Vec<usize>) -> CommId {
        members.sort_unstable();
        members.dedup();
        self.comms.push(members);
        CommId((self.comms.len() - 1) as u32)
    }

    /// Register a one-sided window spanning `comm`.  Returns its handle.
    pub fn add_window(&mut self, comm: CommId) -> WinId {
        self.wins.push(comm);
        WinId(self.wins.len() as u32 - 1)
    }

    /// Append `op` to rank `rank`'s program.
    ///
    /// # Panics
    /// Panics when `rank` is out of range (the *ops themselves* are checked
    /// by the analyzer, not here).
    pub fn push(&mut self, rank: usize, op: Op) {
        self.ranks[rank].push(op);
    }

    /// Rank `r`'s program.
    pub fn rank_ops(&self, r: usize) -> &[Op] {
        &self.ranks[r]
    }

    /// Members of `comm`, or `None` for an unknown id.
    pub fn comm_members(&self, comm: CommId) -> Option<&[usize]> {
        self.comms.get(comm.0 as usize).map(Vec::as_slice)
    }

    /// The communicator a window spans, or `None` for an unknown id.
    pub fn win_comm(&self, win: WinId) -> Option<CommId> {
        self.wins.get(win.0 as usize).copied()
    }

    /// Number of registered communicators (including world).
    pub fn ncomms(&self) -> usize {
        self.comms.len()
    }

    /// Number of registered windows.
    pub fn nwins(&self) -> usize {
        self.wins.len()
    }

    /// Total operation count over all ranks.
    pub fn total_ops(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }

    /// Does any rank contain a wildcard (`ANY_SOURCE`/`ANY_TAG`) receive?
    pub fn has_wildcards(&self) -> bool {
        self.ranks
            .iter()
            .flatten()
            .any(|op| matches!(op, Op::Recv { src: Src::Any, .. } | Op::Recv { tag: Tag::Any, .. }))
    }
}

/// Anything that can describe its communication structure ahead of time.
///
/// Implementors lower themselves into a [`Program`] which
/// [`crate::analyze`] then verifies without executing anything.
pub trait CommPlan {
    /// A stable human-readable name for reports.
    fn plan_name(&self) -> String;

    /// Lower into the analyzer's per-rank operation outline.
    fn lower(&self) -> Program;
}

impl CommPlan for Program {
    fn plan_name(&self) -> String {
        self.name.clone()
    }

    fn lower(&self) -> Program {
        self.clone()
    }
}
