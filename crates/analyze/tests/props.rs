//! Program-level property tests: randomly built *valid* plans must come out
//! clean, and targeted corruptions (wrong tag, wrong root, wrong collective
//! kind) must each be flagged — and only the corrupted plan, never its
//! pristine twin.
//!
//! Validity of the generator: messages are emitted in one global order, the
//! send appended to `src` and the exact-selector receive appended to `dst`
//! at the same point of that order.  By induction over the order every
//! operation only waits on earlier-ordered ones, so the plan always
//! completes; collectives are only inserted at global phase boundaries that
//! no message crosses backwards.

use mim_analyze::{analyze_program, Code, CollKind, Op, Program, Src, Tag, Verdict, WORLD};
use mim_util::prop::Gen;

/// A plan under construction: per-rank op lists (mutable, unlike
/// [`Program`]) plus the positions of every send and collective op.
struct Draft {
    n: usize,
    ops: Vec<Vec<Op>>,
    sends: Vec<(usize, usize)>,
    colls: Vec<(usize, usize)>,
}

impl Draft {
    fn build(&self) -> Program {
        let mut p = Program::new("prop-plan", self.n);
        for (r, ops) in self.ops.iter().enumerate() {
            for &op in ops {
                p.push(r, op);
            }
        }
        p
    }
}

/// A random valid plan.  With `rooted_only`, every phase boundary is a
/// rooted collective and there is at least one boundary.
fn random_valid_draft(g: &mut Gen, rooted_only: bool) -> Draft {
    let n = g.gen_range(2usize..9);
    let mut d = Draft { n, ops: vec![Vec::new(); n], sends: Vec::new(), colls: Vec::new() };
    let phases = if rooted_only { g.gen_range(2usize..4) } else { g.gen_range(1usize..4) };
    for phase in 0..phases {
        for _ in 0..g.gen_range(1usize..12) {
            let src = g.index(n);
            let dst = (src + 1 + g.index(n - 1)) % n;
            let tag = g.gen_range(0u32..4);
            let bytes = g.gen_range(1u64..10_000);
            d.sends.push((src, d.ops[src].len()));
            d.ops[src].push(Op::Send { comm: WORLD, dst, tag, bytes });
            d.ops[dst].push(Op::Recv { comm: WORLD, src: Src::Rank(src), tag: Tag::Is(tag) });
        }
        if phase + 1 < phases {
            let (kind, root) = if rooted_only {
                (*g.choose(&[CollKind::Bcast, CollKind::Reduce]), Some(g.index(n)))
            } else {
                match g.index(4) {
                    0 => (CollKind::Barrier, None),
                    1 => (CollKind::Allreduce, None),
                    2 => (CollKind::Bcast, Some(g.index(n))),
                    _ => (CollKind::Reduce, Some(g.index(n))),
                }
            };
            for r in 0..n {
                d.colls.push((r, d.ops[r].len()));
                d.ops[r].push(Op::Coll { comm: WORLD, kind, root });
            }
        }
    }
    d
}

fn has_code(report: &mim_analyze::Report, code: Code) -> bool {
    report.diags.iter().any(|d| d.code == code)
}

mim_util::props! {
    /// The generator only produces clean, deadlock-free plans.
    fn random_valid_programs_are_clean(g) {
        let report = analyze_program(&random_valid_draft(g, false).build());
        assert!(matches!(report.verdict, Verdict::DeadlockFree), "{report}");
        assert!(report.is_clean(), "{report}");
    }

    /// Re-tagging one send breaks its match: the channel loses a message
    /// some exact-tag receive was counting on, so the plan either stalls or
    /// leaves the send unreceived — never clean.
    fn wrong_tag_is_flagged(g) {
        let mut d = random_valid_draft(g, false);
        assert!(analyze_program(&d.build()).is_clean(), "pristine twin flagged");
        let &(r, i) = g.choose(&d.sends);
        let Op::Send { ref mut tag, .. } = d.ops[r][i] else { unreachable!() };
        *tag = 99; // no receive in the plan admits tag 99
        let report = analyze_program(&d.build());
        assert!(!report.is_clean(), "wrong tag not flagged: {report}");
        assert!(
            !matches!(report.verdict, Verdict::DeadlockFree) || has_code(&report, Code::A003),
            "wrong tag left no trace: {report}"
        );
    }

    /// One rank disagreeing on a rooted collective's root is an A007.
    fn wrong_root_is_flagged(g) {
        let mut d = random_valid_draft(g, true);
        assert!(analyze_program(&d.build()).is_clean(), "pristine twin flagged");
        let &(r, i) = g.choose(&d.colls);
        let n = d.n;
        let Op::Coll { ref mut root, .. } = d.ops[r][i] else { unreachable!() };
        *root = Some((root.unwrap() + 1 + g.index(n - 1)) % n);
        let report = analyze_program(&d.build());
        assert!(!report.is_clean(), "wrong root not flagged: {report}");
        assert!(has_code(&report, Code::A007), "expected A007: {report}");
    }

    /// One rank issuing a different collective at the same occurrence is an
    /// A006 (kind mismatch).
    fn wrong_kind_is_flagged(g) {
        let mut d = random_valid_draft(g, true);
        assert!(analyze_program(&d.build()).is_clean(), "pristine twin flagged");
        let &(r, i) = g.choose(&d.colls);
        let Op::Coll { ref mut kind, ref mut root, .. } = d.ops[r][i] else { unreachable!() };
        *kind = CollKind::Alltoall;
        *root = None;
        let report = analyze_program(&d.build());
        assert!(!report.is_clean(), "wrong kind not flagged: {report}");
        assert!(has_code(&report, Code::A006), "expected A006: {report}");
    }
}
