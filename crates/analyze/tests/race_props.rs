//! Corruption twins for the happens-before race pass: a plan whose
//! wildcard is statically forced stays `Deterministic`, and a single
//! targeted mutation — retargeting a send onto the wildcard's channel, or
//! deleting the barrier that serialized two senders — flips exactly the
//! corrupted twin to `SchedSensitive` with a concrete MIM-A011.  The
//! pristine twin is re-checked in every case: the diagnostic must come
//! from the corruption, never from the generator.

use mim_analyze::{analyze_program, Code, CollKind, Determinism, Op, Program, Src, Tag, WORLD};

fn push_barrier(p: &mut Program) {
    for r in 0..p.nranks() {
        p.push(r, Op::Coll { comm: WORLD, kind: CollKind::Barrier, root: None });
    }
}

fn has_code(report: &mim_analyze::Report, code: Code) -> bool {
    report.diags.iter().any(|d| d.code == code)
}

fn sched_sensitive_with(report: &mim_analyze::Report, code: Code) -> bool {
    matches!(&report.determinism, Determinism::SchedSensitive { codes } if codes.contains(&code))
}

/// rank 0 posts one wildcard receive; rank 1 sends to it; rank 2 sends the
/// same tag *elsewhere* (to rank 3, which receives it exactly).  The
/// wildcard admits a single channel, so the match is FIFO-forced.
fn forced_wildcard_plan(n: usize, tag: u32, bytes: u64) -> Program {
    assert!(n >= 4);
    let mut p = Program::new("forced-wildcard", n);
    p.push(0, Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Is(tag) });
    p.push(1, Op::Send { comm: WORLD, dst: 0, tag, bytes });
    p.push(2, Op::Send { comm: WORLD, dst: 3, tag, bytes });
    p.push(3, Op::Recv { comm: WORLD, src: Src::Rank(2), tag: Tag::Is(tag) });
    p
}

/// rank 0 posts a wildcard, then a barrier serializes the suite, then a
/// specific receive drains the late sender: rank 1 sends before the
/// barrier, rank 2 after it.  The barrier's happens-before edge removes
/// rank 2's send from the wildcard's racing set.
fn serialized_senders_plan(n: usize, tag: u32, bytes: u64, serialized: bool) -> Program {
    assert!(n >= 3);
    let mut p = Program::new("serialized-senders", n);
    p.push(0, Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Is(tag) });
    p.push(1, Op::Send { comm: WORLD, dst: 0, tag, bytes });
    if serialized {
        push_barrier(&mut p);
    }
    p.push(2, Op::Send { comm: WORLD, dst: 0, tag, bytes });
    p.push(0, Op::Recv { comm: WORLD, src: Src::Rank(2), tag: Tag::Is(tag) });
    p
}

mim_util::props! {
    /// Retargeting the unrelated send onto the wildcard's destination
    /// creates a second racing channel: the corrupted twin (and only it)
    /// turns `SchedSensitive` with an MIM-A011 naming the racing sends.
    fn retargeted_send_races_the_wildcard(g) {
        let n = g.gen_range(4usize..9);
        let tag = g.gen_range(0u32..4);
        let bytes = g.gen_range(1u64..4096);

        let pristine = analyze_program(&forced_wildcard_plan(n, tag, bytes));
        assert!(
            matches!(pristine.determinism, Determinism::Deterministic),
            "pristine twin not deterministic: {pristine}"
        );
        assert!(pristine.independence.wildcard_is_benign(0, 0), "{pristine}");
        assert!(!has_code(&pristine, Code::A011), "{pristine}");

        // The same ops with rank 2's send redirected at the wildcard.
        let mut corrupted = Program::new("forced-wildcard", n);
        corrupted.push(0, Op::Recv { comm: WORLD, src: Src::Any, tag: Tag::Is(tag) });
        corrupted.push(1, Op::Send { comm: WORLD, dst: 0, tag, bytes });
        corrupted.push(2, Op::Send { comm: WORLD, dst: 0, tag, bytes });
        corrupted.push(3, Op::Recv { comm: WORLD, src: Src::Rank(2), tag: Tag::Is(tag) });
        let report = analyze_program(&corrupted);
        assert!(has_code(&report, Code::A011), "retargeted send not flagged: {report}");
        assert!(
            sched_sensitive_with(&report, Code::A011),
            "verdict axis missing the race: {report}"
        );
        assert!(!report.independence.wildcard_is_benign(0, 0), "{report}");
    }

    /// Two senders racing for one wildcard are an MIM-A011 — until a
    /// barrier between them serializes the race, at which point the
    /// diagnostic disappears and the site is proven benign.
    fn interposed_barrier_serializes_the_race(g) {
        let n = g.gen_range(3usize..9);
        let tag = g.gen_range(0u32..4);
        let bytes = g.gen_range(1u64..4096);

        let racy = analyze_program(&serialized_senders_plan(n, tag, bytes, false));
        assert!(has_code(&racy, Code::A011), "unserialized race not flagged: {racy}");
        assert!(sched_sensitive_with(&racy, Code::A011), "{racy}");

        let serial = analyze_program(&serialized_senders_plan(n, tag, bytes, true));
        assert!(!has_code(&serial, Code::A011), "barrier did not clear the race: {serial}");
        assert!(
            matches!(serial.determinism, Determinism::Deterministic),
            "serialized twin not deterministic: {serial}"
        );
        assert!(serial.independence.wildcard_is_benign(0, 0), "{serial}");
    }
}
