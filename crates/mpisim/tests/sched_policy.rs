//! Schedule-policy seam tests: the canonical policy is bit-identical to no
//! policy at all (across both executors), a scripted policy really steers
//! wildcard matching, the starvation watchdog stays quiet under a policy,
//! and deadline panics carry the policy's decision log.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mim_mpisim::trace::{TraceData, TraceEvent, Tracer};
use mim_mpisim::{
    CanonicalPolicy, Decision, ExecutorKind, Rank, SchedulePolicy, SrcSel, TagSel, Universe,
    UniverseConfig,
};
use mim_topology::{Machine, Placement};
use mim_util::props;
use mim_util::rng::Rng;

/// Scripted test policy: fixed choices (canonical 0 past the script), every
/// decision recorded.
#[derive(Debug, Default)]
struct Scripted {
    script: Vec<usize>,
    at: Mutex<usize>,
    log: Mutex<String>,
}

impl Scripted {
    fn new(script: Vec<usize>) -> Arc<Self> {
        Arc::new(Scripted { script, ..Default::default() })
    }
}

impl SchedulePolicy for Scripted {
    fn choose(&self, decision: Decision<'_>) -> usize {
        let mut at = self.at.lock().unwrap();
        let pick = self.script.get(*at).copied().unwrap_or(0);
        *at += 1;
        let _ = write!(
            self.log.lock().unwrap(),
            "{}:{}/{};",
            decision.kind_code(),
            pick,
            decision.len()
        );
        pick
    }

    fn decision_log(&self) -> Option<String> {
        Some(self.log.lock().unwrap().clone())
    }
}

/// Everything a run shows the outside world, bit-exact (completion clocks
/// as raw f64 bits).
#[derive(Debug, PartialEq)]
struct Observables {
    completion_bits: Vec<u64>,
    results: Vec<Vec<i64>>,
    nic: Vec<(u64, u64, u64)>,
    traces: Vec<(String, Vec<TraceEvent>)>,
}

/// Deterministic mixed workload (specific-source ring + collectives) — no
/// wildcards, whose winner is wall-clock arrival order and thus not
/// comparable across runs.
fn workload(rank: &Rank, seed: u64) -> Vec<i64> {
    let world = rank.comm_world();
    let n = world.size();
    let me = world.rank();
    let mut rng = Rng::seed_from_u64(seed);
    let bytes = rng.gen_range(64u64..4096);
    let root = rng.gen_range(0usize..n);
    let mut acc: Vec<i64> = Vec::new();

    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    rank.send(&world, right, 1, &[(me * 7) as i64]);
    let (v, st) = rank.recv::<i64>(&world, SrcSel::Rank(left), TagSel::Is(1));
    acc.extend(&v);
    acc.push(st.bytes as i64);
    rank.send_synthetic(&world, right, 2, bytes);
    rank.recv_synthetic(&world, SrcSel::Rank(left), TagSel::Is(2));

    acc.extend(rank.allreduce(&world, &[me as i64 + 1], |a, b| a + b));
    let mut b = if me == root { vec![seed as i64] } else { Vec::new() };
    rank.bcast(&world, root, &mut b);
    acc.extend(&b);
    rank.barrier(&world);
    acc
}

fn run(kind: ExecutorKind, n: usize, seed: u64, policed: bool) -> Observables {
    let tracer = Tracer::new(1 << 14);
    let mut cfg = UniverseConfig::new(Machine::cluster(2, 2, 4), Placement::packed(n));
    cfg.executor = kind;
    cfg.tracer = Some(Arc::clone(&tracer));
    if policed {
        cfg = cfg.with_schedule_policy(Arc::new(CanonicalPolicy));
    }
    let u = Universe::new(cfg);
    let mut results = Vec::new();
    let mut completion_bits = Vec::new();
    for (r, t) in u.launch(|rank| (workload(rank, seed), rank.now_ns().to_bits())) {
        results.push(r);
        completion_bits.push(t);
    }
    let nic = (0..u.nic().num_nodes())
        .map(|nd| (u.nic().xmit_bytes(nd), u.nic().xmit_msgs(nd), u.nic().retries(nd)))
        .collect();
    let mut traces = tracer.snapshot();
    traces.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, evs) in &mut traces {
        for e in evs.iter_mut() {
            if let TraceData::Recv { uq_depth, .. } = &mut e.data {
                *uq_depth = 0;
            }
        }
    }
    Observables { completion_bits, results, nic, traces }
}

props! {
    /// The tentpole's default-path guarantee: installing the canonical
    /// policy changes *nothing*, on either executor — results, completion
    /// clocks, NIC counters and traces are bit-identical to the un-policed
    /// run.
    fn canonical_policy_is_bit_identical(g, cases = 8) {
        let n = g.gen_range(2usize..9);
        let seed = g.next_u64();
        for kind in [ExecutorKind::Threads, ExecutorKind::Tasks] {
            let plain = run(kind, n, seed, false);
            let policed = run(kind, n, seed, true);
            assert_eq!(
                plain, policed,
                "canonical policy diverged from default ({kind:?}, n={n}, seed={seed})"
            );
        }
    }
}

/// A scripted wildcard choice really steers matching: two messages from the
/// same sender on different tags are queued, and the policy takes the
/// *later-arrival* channel first (canonical order is per-sender FIFO, so
/// the slate order is deterministic even under thread-per-rank).
#[test]
fn scripted_policy_steers_wildcard_match() {
    let policy = Scripted::new(vec![1]);
    let cfg = UniverseConfig::new(Machine::cluster(1, 1, 4), Placement::packed(2))
        .with_schedule_policy(policy.clone());
    let u = Universe::new(cfg);
    let tags = u.launch(|rank| {
        let world = rank.comm_world();
        if rank.world_rank() == 1 {
            rank.send(&world, 0, 5, &[1i64]);
            rank.send(&world, 0, 6, &[2i64]);
        }
        rank.barrier(&world);
        if rank.world_rank() == 0 {
            let (_, a) = rank.recv::<i64>(&world, SrcSel::Any, TagSel::Any);
            let (_, b) = rank.recv::<i64>(&world, SrcSel::Any, TagSel::Any);
            vec![a.tag, b.tag]
        } else {
            Vec::new()
        }
    });
    // Canonical order would deliver tag 5 first (earliest arrival); the
    // script's "1" picks the second eligible channel.
    assert_eq!(tags[0], vec![6, 5]);
    let log = policy.decision_log().unwrap();
    assert!(log.contains("w:1/2"), "wildcard decision missing from log: {log:?}");
}

/// Satellite: the starvation watchdog must NOT abort (exit 107) while a
/// schedule policy is installed, even when a rank body burns its worker
/// for several wall-clock deadlines while a peer waits parked.  Without
/// the suspension this test kills the whole test process.
#[test]
fn watchdog_suspended_under_policy() {
    if !mim_util::fiber::SUPPORTED {
        return;
    }
    let mut cfg = UniverseConfig::new(Machine::cluster(1, 1, 4), Placement::packed(2))
        .with_schedule_policy(Arc::new(CanonicalPolicy));
    cfg.executor = ExecutorKind::Tasks;
    cfg.deadline = Duration::from_millis(150);
    let u = Universe::new(cfg);
    let got = u.launch(|rank| {
        let world = rank.comm_world();
        if rank.world_rank() == 1 {
            // Hog the (single) worker far past the watchdog deadline while
            // rank 0 sits parked — the exact starvation signature.
            std::thread::sleep(Duration::from_millis(600));
            rank.send(&world, 0, 1, &[42i64]);
            0
        } else {
            let (v, _) = rank.recv::<i64>(&world, SrcSel::Rank(1), TagSel::Is(1));
            v[0]
        }
    });
    assert_eq!(got, vec![42, 0]);
}

/// Satellite regression: `Rank::gather_tree` validates arity at the seam,
/// before the collective allocates a tag — a caller bug fails loudly and
/// uniformly instead of desynchronizing the universe.
#[test]
#[should_panic(expected = "gather_tree: arity must be at least 2")]
fn gather_tree_rejects_arity_below_two() {
    let cfg = UniverseConfig::new(Machine::cluster(1, 1, 4), Placement::packed(2));
    let u = Universe::new(cfg);
    u.launch(|rank| {
        let world = rank.comm_world();
        let order = vec![0, 1];
        rank.gather_tree(&world, 0, 1, &order, &[rank.world_rank() as u64])
    });
}

/// Satellite: a deadline panic raised *during exploration* must carry the
/// policy's decision log — the replay witness — after the flight dump.
#[test]
#[should_panic(expected = "schedule decisions (replay witness)")]
fn deadline_panic_carries_decision_log() {
    let policy = Scripted::new(vec![0]);
    let mut cfg = UniverseConfig::new(Machine::cluster(1, 1, 4), Placement::packed(2))
        .with_schedule_policy(policy);
    cfg.deadline = Duration::from_millis(100);
    let u = Universe::new(cfg);
    u.launch(|rank| {
        let world = rank.comm_world();
        if rank.world_rank() == 0 {
            // Rank 1 never sends: the deadline fires and the panic payload
            // must include the decision log.
            rank.recv::<i64>(&world, SrcSel::Rank(1), TagSel::Is(9));
        }
    });
}
