//! Threads-vs-Tasks equivalence: the M:N rank executor must be *invisible*
//! in every simulated observable.  Virtual clocks are per-rank and advance
//! only through the cost model, so completion times, NIC counters and
//! per-rank trace streams are bit-identical across execution engines — on
//! any seed, any topology, any worker count.
//!
//! The one normalization: `Recv.uq_depth` (and nothing else) measures
//! *wall-clock arrival order* into the unexpected queue, which is genuinely
//! scheduling-dependent; it is zeroed on both sides before comparing.

use std::sync::Arc;

use mim_mpisim::trace::{TraceData, TraceEvent, Tracer};
use mim_mpisim::{ExecutorKind, Rank, SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};
use mim_util::props;
use mim_util::rng::Rng;

/// Everything a universe run can show the outside world, bit-exact.
/// Completion times are compared as raw `f64` bits: "close" is not
/// equivalent.
#[derive(Debug, PartialEq)]
struct Observables {
    completion_bits: Vec<u64>,
    results: Vec<Vec<i64>>,
    nic: Vec<(u64, u64, u64)>,
    traces: Vec<(String, Vec<TraceEvent>)>,
}

/// A deterministic mixed workload (p2p ring + collectives + communicator
/// surgery), parameterized by `seed`.  No wildcard receives: wildcard
/// *matching* takes whatever arrived first in wall time, so a workload
/// whose data flow depends on it would not be comparable across engines
/// (that path gets its own test below).
fn workload(rank: &Rank, seed: u64) -> Vec<i64> {
    let world = rank.comm_world();
    let n = world.size();
    let me = world.rank();
    let mut rng = Rng::seed_from_u64(seed);
    let bytes = rng.gen_range(64u64..8192);
    let root = rng.gen_range(0usize..n);
    let rounds = rng.gen_range(1usize..4);
    let mut acc: Vec<i64> = Vec::new();

    for round in 0..rounds {
        // Ring exchange with specific sources (sends never block: channels
        // are unbounded; only receives park).
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        rank.send(&world, right, round as u32, &[(me * 10 + round) as i64]);
        let (v, st) = rank.recv::<i64>(&world, SrcSel::Rank(left), TagSel::Is(round as u32));
        acc.extend(&v);
        acc.push(st.bytes as i64);

        // Synthetic bulk traffic exercises the cost model without buffers.
        rank.send_synthetic(&world, right, 100 + round as u32, bytes);
        rank.recv_synthetic(&world, SrcSel::Rank(left), TagSel::Is(100 + round as u32));
    }

    // Collectives: every flavor of tree/ring decomposition in the stack.
    let sum = rank.allreduce(&world, &[me as i64 + 1], |a, b| a + b);
    acc.extend(&sum);
    let mut b = if me == root { vec![seed as i64] } else { Vec::new() };
    rank.bcast(&world, root, &mut b);
    acc.extend(&b);
    let all = rank.allgather(&world, &[(me as i64) * 3]);
    acc.extend(&all);
    rank.barrier(&world);

    // Communicator surgery: split into parity halves, reduce within.
    let half = rank.comm_split(&world, (me % 2) as i64, me as i64);
    let r = rank.allreduce(&half, &[me as i64], |a, b| a.max(b));
    acc.extend(&r);
    acc
}

/// Run the workload under one engine and collect every observable.
fn run(kind: ExecutorKind, machine: &Machine, n: usize, seed: u64) -> Observables {
    let tracer = Tracer::new(1 << 14);
    let mut cfg = UniverseConfig::new(machine.clone(), Placement::packed(n));
    cfg.executor = kind;
    cfg.tracer = Some(Arc::clone(&tracer));
    let u = Universe::new(cfg);
    let mut results = Vec::new();
    let mut completion_bits = Vec::new();
    for (r, t) in u.launch(|rank| (workload(rank, seed), rank.now_ns().to_bits())) {
        results.push(r);
        completion_bits.push(t);
    }
    let nic = (0..u.nic().num_nodes())
        .map(|nd| (u.nic().xmit_bytes(nd), u.nic().xmit_msgs(nd), u.nic().retries(nd)))
        .collect();
    let mut traces = tracer.snapshot();
    traces.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, evs) in &mut traces {
        for e in evs.iter_mut() {
            if let TraceData::Recv { uq_depth, .. } = &mut e.data {
                *uq_depth = 0;
            }
        }
    }
    Observables { completion_bits, results, nic, traces }
}

fn assert_equivalent(machine: &Machine, n: usize, seed: u64) {
    let threads = run(ExecutorKind::Threads, machine, n, seed);
    let tasks = run(ExecutorKind::Tasks, machine, n, seed);
    assert_eq!(
        threads, tasks,
        "Threads and Tasks engines diverged (machine={machine:?}, n={n}, seed={seed})"
    );
}

/// The tentpole acceptance matrix: three topologies × three seeds, all
/// bit-identical.  Three distinct machine shapes: flat single-node,
/// multi-node cluster, and the paper's plafrim machine.
#[test]
fn engines_agree_across_three_topologies_and_three_seeds() {
    let topologies = [
        ("flat", Machine::cluster(1, 1, 16), 12),
        ("cluster", Machine::cluster(4, 2, 4), 16),
        ("plafrim", Machine::plafrim(3), 9),
    ];
    for (name, machine, n) in &topologies {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            eprintln!("equivalence: topology={name} n={n} seed={seed}");
            assert_equivalent(machine, *n, seed);
        }
    }
}

/// Tasks mode must honor `MIM_WORKERS`: results are identical from a
/// single-worker pool up to an oversubscribed one.
#[test]
fn tasks_results_do_not_depend_on_worker_count() {
    let machine = Machine::cluster(2, 1, 8);
    let baseline = run(ExecutorKind::Threads, &machine, 8, 7);
    for workers in ["1", "2", "13"] {
        std::env::set_var("MIM_WORKERS", workers);
        let tasks = run(ExecutorKind::Tasks, &machine, 8, 7);
        std::env::remove_var("MIM_WORKERS");
        assert_eq!(baseline, tasks, "diverged at MIM_WORKERS={workers}");
    }
}

props! {
    /// Randomized equivalence: any machine shape, any rank count, any seed.
    fn engines_agree_on_random_universes(g, cases = 6) {
        let nodes = g.gen_range(1usize..4);
        let sockets = g.gen_range(1usize..3);
        let cores = g.gen_range(2usize..5);
        let machine = Machine::cluster(nodes, sockets, cores);
        let max = nodes * sockets * cores;
        let n = g.gen_range(2usize..=max.min(12));
        let seed = g.any_u64();
        assert_equivalent(&machine, n, seed);
    }
}

/// A *wildcard* receive parked across a peer's crash notice: the death
/// notice (fault context) must wake the parked task, get filed in the
/// unexpected queue without matching the user-context wildcard, and the
/// task must park again until the real message lands.
#[test]
fn wildcard_recv_parked_across_a_crash_notice() {
    #[derive(Debug)]
    struct CrashRank2;
    impl mim_mpisim::FaultInjector for CrashRank2 {
        fn on_attempt(
            &self,
            _link: &mim_mpisim::LinkCtx,
            _attempt: u32,
        ) -> mim_mpisim::SendOutcome {
            mim_mpisim::SendOutcome::Deliver { extra_delay_ns: 0.0, duplicates: 0 }
        }
        fn crash_point(&self, world: usize) -> Option<mim_mpisim::CrashPoint> {
            (world == 2).then_some(mim_mpisim::CrashPoint::OpCount(0))
        }
    }
    let mut cfg = UniverseConfig::new(Machine::cluster(1, 1, 4), Placement::packed(3));
    cfg.executor = ExecutorKind::Tasks;
    cfg.injector = Some(Arc::new(CrashRank2));
    let u = Universe::new(cfg);
    let results = u.launch_faulty(|rank| {
        let world = rank.comm_world();
        match rank.world_rank() {
            0 => {
                // Parks on a wildcard; rank 2's death notice arrives first
                // (it crashes on its very first op, rank 1 sends later).
                let (v, st) = rank.recv::<i64>(&world, SrcSel::Any, TagSel::Is(9));
                assert_eq!(st.src, 1);
                v[0]
            }
            1 => {
                // A virtual-time delay plus a real wall delay so the death
                // notice has every chance to land while rank 0 is parked.
                rank.sleep_ns(1_000_000.0);
                std::thread::sleep(std::time::Duration::from_millis(20));
                rank.send(&world, 0, 9, &[77i64]);
                0
            }
            _ => {
                // Crashes before this send happens.
                rank.send(&world, 0, 9, &[-1i64]);
                -1
            }
        }
    });
    assert_eq!(results[0].as_ref().ok(), Some(&77));
    assert_eq!(results[1].as_ref().ok(), Some(&0));
    assert!(matches!(results[2], Err(mim_mpisim::RankFailure::Crashed { .. })));
}

/// `comm_shrink` while the surviving peers are parked: the liveness
/// exchange and the shrunk-communicator collective both run entirely on
/// parked-task wakeups (no thread ever blocks).
#[test]
fn comm_shrink_while_peers_are_parked() {
    #[derive(Debug)]
    struct CrashRank1;
    impl mim_mpisim::FaultInjector for CrashRank1 {
        fn on_attempt(
            &self,
            _link: &mim_mpisim::LinkCtx,
            _attempt: u32,
        ) -> mim_mpisim::SendOutcome {
            mim_mpisim::SendOutcome::Deliver { extra_delay_ns: 0.0, duplicates: 0 }
        }
        fn crash_point(&self, world: usize) -> Option<mim_mpisim::CrashPoint> {
            // Op 0 is the ring send, op 1 the ring recv; the third wire op
            // (an extra send) trips this and never delivers.
            (world == 1).then_some(mim_mpisim::CrashPoint::OpCount(2))
        }
    }
    let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 3), Placement::packed(5));
    cfg.executor = ExecutorKind::Tasks;
    cfg.injector = Some(Arc::new(CrashRank1));
    let u = Universe::new(cfg);
    let results = u.launch_faulty(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        // Everyone trades a ring message (ops 1 and 2 for every rank), then
        // rank 1 dies attempting a third wire op — before the detector
        // phase, with its ring traffic already delivered.
        let right = (me + 1) % world.size();
        let left = (me + world.size() - 1) % world.size();
        rank.send_synthetic(&world, right, 0, 256);
        rank.recv_synthetic(&world, SrcSel::Rank(left), TagSel::Is(0));
        if me == 1 {
            rank.send_synthetic(&world, 0, 5, 1); // pre-op fires the crash
        }
        // Survivors agree on the dead set while parked in the detector's
        // ping/death-notice waits, then rebuild and reduce.
        let alive = rank.liveness_exchange(&world);
        assert_eq!(alive, vec![true, false, true, true, true]);
        let shrunk = rank.comm_shrink(&world, &alive);
        let total = rank.allreduce(&shrunk, &[me as i64], |a, b| a + b);
        total[0]
    });
    // World ranks 0,2,3,4 survive; sum of their world ranks (== comm ranks
    // in world) is 0+2+3+4.
    for (w, r) in results.iter().enumerate() {
        if w == 1 {
            assert!(matches!(r, Err(mim_mpisim::RankFailure::Crashed { .. })));
        } else {
            assert_eq!(r.as_ref().ok(), Some(&9));
        }
    }
}

/// The starvation watchdog: a rank that burns its worker without a single
/// scheduler interaction, while a peer waits parked, must abort the whole
/// process with exit code 107 and a "starvation" diagnostic (a fiber cannot
/// be preempted or unwound from outside).  Runs in a subprocess because the
/// abort takes the process down.
#[test]
fn starvation_watchdog_aborts_a_never_yielding_rank() {
    if std::env::var("MIM_STARVE_CHILD").is_ok() {
        let mut cfg = UniverseConfig::new(Machine::cluster(1, 1, 2), Placement::packed(2));
        cfg.executor = ExecutorKind::Tasks;
        cfg.deadline = std::time::Duration::from_millis(400);
        let u = Universe::new(cfg);
        u.launch(|rank| {
            if rank.world_rank() == 0 {
                // Never yields, never sends: pure worker-burning spin.
                // Bounded so a watchdog bug fails the parent assert instead
                // of hanging the suite.
                for _ in 0..600 {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            } else {
                // Parks forever behind the spinner.
                let _ = rank.recv::<i64>(&rank.comm_world(), SrcSel::Rank(0), TagSel::Any);
            }
        });
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["--exact", "starvation_watchdog_aborts_a_never_yielding_rank", "--nocapture"])
        .env("MIM_STARVE_CHILD", "1")
        .env("MIM_WORKERS", "1")
        .env_remove("MIM_EXECUTOR")
        .output()
        .expect("spawn child test process");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(107),
        "child should abort with the starvation exit code; stderr:\n{stderr}"
    );
    assert!(stderr.contains("starvation"), "diagnostic missing from stderr:\n{stderr}");
}
