//! Property-based tests for the message-passing runtime.

use mim_core::{Flags, Monitoring};
use mim_mpisim::trace::{TraceData, Tracer};
use mim_mpisim::{schedule, Scalar, SrcSel, TagSel, Universe, UniverseConfig};
use mim_topology::{Machine, Placement};
use mim_util::props;
use mim_util::rng::Rng;

props! {
    fn scalar_roundtrip_f64(g) {
        let v = g.vec(0..50, |g| g.any_f64());
        let back = f64::from_bytes(&f64::to_bytes(&v));
        assert_eq!(back.len(), v.len());
        for (a, b) in back.iter().zip(&v) {
            assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }

    fn scalar_roundtrip_i32(g) {
        let v = g.vec(0..50, |g| g.any_i32());
        assert_eq!(i32::from_bytes(&i32::to_bytes(&v)), v);
    }

    fn scalar_roundtrip_u64(g) {
        let v = g.vec(0..50, |g| g.any_u64());
        assert_eq!(u64::from_bytes(&u64::to_bytes(&v)), v);
    }

    fn schedules_validate_for_any_shape(g) {
        let n = g.gen_range(1usize..24);
        let root = g.index(n);
        let bytes = g.gen_range(0u64..1_000_000);
        for s in [
            schedule::bcast_binomial(n, root, bytes),
            schedule::bcast_binary(n, root, bytes),
            schedule::reduce_binomial(n, root, bytes),
            schedule::reduce_binary(n, root, bytes),
            schedule::allgather_ring(n, bytes),
            schedule::barrier_dissemination(n),
            schedule::allreduce_recursive_doubling(n, bytes),
        ] {
            // The replaying validator must accept every generator, and its
            // per-channel report must agree with the message multiset.
            let totals = s.validate_totals().unwrap();
            assert_eq!(
                totals.iter().map(|t| t.messages as usize).sum::<usize>(),
                s.total_messages()
            );
            assert_eq!(totals.iter().map(|t| t.bytes).sum::<u64>(), s.total_bytes());
            let mut from_multiset: std::collections::HashMap<(usize, usize), (u64, u64)> =
                std::collections::HashMap::new();
            for (src, dst, b) in s.message_multiset() {
                let e = from_multiset.entry((src, dst)).or_default();
                e.0 += 1;
                e.1 += b;
            }
            for t in &totals {
                assert_eq!(from_multiset.get(&(t.src, t.dst)), Some(&(t.messages, t.bytes)));
            }
        }
        assert_eq!(schedule::bcast_binomial(n, root, bytes).total_messages(), n - 1);
        assert_eq!(schedule::reduce_binary(n, root, bytes).total_messages(), n - 1);
    }

    fn contended_evaluation_never_faster(g) {
        let n = g.gen_range(2usize..12);
        let bytes = g.gen_range(1u64..2_000_000);
        // Adding NIC contention can only delay completions.
        let machine = Machine::cluster(2, 1, 8);
        let cores: Vec<usize> = (0..n).map(|r| (r % 2) * 8 + r / 2).collect();
        let s = schedule::allgather_ring(n, bytes);
        let free = schedule::evaluate(&s, &machine, &cores, 100.0, 50.0);
        let cont = schedule::evaluate_contended(&s, &machine, &cores, 100.0, 50.0);
        for (f, c) in free.iter().zip(&cont) {
            assert!(c >= f, "contention made a rank faster: {c} < {f}");
        }
    }
}

// Thread-spawning cases are kept few but still property-driven.
props! {
    fn evaluator_matches_live_runtime(g, cases = 12) {
        let n = g.gen_range(2usize..8);
        let bytes = g.gen_range(0u64..100_000);
        let root = g.index(n);
        let machine = Machine::cluster(2, 2, 2);
        let placement = Placement::packed(n);
        let cores: Vec<usize> = (0..n).map(|r| placement.core_of(r)).collect();
        let cfg = UniverseConfig::new(machine.clone(), placement);
        let (soh, roh) = (cfg.send_overhead_ns, cfg.recv_overhead_ns);
        for sched in [
            schedule::bcast_binomial(n, root, bytes),
            schedule::reduce_binary(n, root, bytes),
            schedule::allgather_ring(n, bytes),
        ] {
            let expect = schedule::evaluate(&sched, &machine, &cores, soh, roh);
            let machine2 = machine.clone();
            let u = Universe::new(UniverseConfig::new(machine2, Placement::packed(n)));
            let got = u.launch(|rank| {
                let world = rank.comm_world();
                schedule::execute(rank, &world, &sched);
                rank.now_ns()
            });
            for r in 0..n {
                assert!((got[r] - expect[r]).abs() < 1e-6,
                    "rank {r}: live {} vs analytic {}", got[r], expect[r]);
            }
        }
    }

    fn per_channel_fifo_is_preserved(g, cases = 12) {
        // Rank 0 sends a numbered sequence with arbitrary tags; rank 1
        // receives with ANY_TAG and must see the numbers in order.
        let tags = g.vec(1..20, |g| g.gen_range(0u32..3));
        let count = tags.len();
        let u = Universe::new(UniverseConfig::new(Machine::cluster(1, 1, 2), Placement::packed(2)));
        let ok = u.launch(move |rank| {
            let world = rank.comm_world();
            if world.rank() == 0 {
                for (i, &t) in tags.iter().enumerate() {
                    rank.send(&world, 1, t, &[i as u64]);
                }
                true
            } else {
                let mut last = None;
                for _ in 0..count {
                    let (v, _) = rank.recv::<u64>(&world, SrcSel::Rank(0), TagSel::Any);
                    if let Some(prev) = last {
                        if v[0] != prev + 1 {
                            return false;
                        }
                    } else if v[0] != 0 {
                        return false;
                    }
                    last = Some(v[0]);
                }
                true
            }
        });
        assert!(ok.iter().all(|&b| b));
    }

    fn collectives_correct_on_random_subcomm(g, cases = 12) {
        // Split the world by arbitrary colors and allreduce within each part.
        let n = g.gen_range(2usize..10);
        let colors: Vec<i64> = (0..n).map(|_| g.gen_range(0i64..2)).collect();
        let colors2 = colors.clone();
        let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 8), Placement::packed(n)));
        u.launch(move |rank| {
            let world = rank.comm_world();
            let me = world.rank();
            let sub = rank.comm_split(&world, colors2[me], me as i64);
            let sum = rank.allreduce(&sub, &[me as u64], |a, b| a + b)[0];
            let expect: u64 = (0..n).filter(|&r| colors2[r] == colors2[me]).map(|r| r as u64).sum();
            assert_eq!(sum, expect);
        });
        let _ = colors;
    }
}

props! {
    /// Reduce-scatter equals a naive reduce-then-slice reference for random
    /// inputs, any rank count, any block size.
    fn reduce_scatter_matches_reference(g, cases = 10) {
        let n = g.gen_range(1usize..10);
        let block = g.gen_range(1usize..5);
        let seed = g.any_u64();
        let inputs: Vec<Vec<i64>> = {
            let mut rng = Rng::seed_from_u64(seed);
            (0..n).map(|_| (0..n * block).map(|_| rng.gen_range(-100i64..100)).collect()).collect()
        };
        let expect: Vec<i64> = (0..n * block)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect();
        let inputs2 = inputs.clone();
        let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 8), Placement::packed(n)));
        u.launch(move |rank| {
            let world = rank.comm_world();
            let me = world.rank();
            let out = rank.reduce_scatter(&world, &inputs2[me], |a, b| a + b);
            assert_eq!(out, expect[me * block..(me + 1) * block].to_vec());
        });
    }

    /// Scan equals the prefix sums of the contributions.
    fn scan_matches_prefix_sums(g, cases = 10) {
        let n = g.gen_range(1usize..12);
        let vals = g.vec(12..12, |g| g.gen_range(-50i64..50));
        let vals2 = vals.clone();
        let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 8), Placement::packed(n)));
        u.launch(move |rank| {
            let world = rank.comm_world();
            let me = world.rank();
            let out = rank.scan(&world, &[vals2[me]], |a, b| a + b);
            let expect: i64 = vals2[..=me].iter().sum();
            assert_eq!(out, vec![expect]);
        });
    }

    /// The flight-recorder trace and the monitoring library observe the same
    /// wire events: for a random workload mixing point-to-point, collective
    /// and one-sided traffic, the per-pair message counts and byte totals
    /// reconstructed from the trace rings (between each rank's session
    /// `start` and `suspend` markers) equal the matrices produced by
    /// `rootgather_data`, for every `Flags` selection.
    fn trace_totals_match_monitoring_matrices(g, cases = 6) {
        let n = g.gen_range(2usize..6);
        // Random point-to-point traffic: (src, dst, bytes), executed in
        // program order by every rank (sends are eager, so this cannot
        // deadlock regardless of the generated order).
        let p2p: Vec<(usize, usize, usize)> = g.vec(0..8, |g| {
            let src = g.index(n);
            let dst = g.index(n);
            (src, dst, g.gen_range(0usize..300))
        });
        let bcast_root = g.index(n);
        let bcast_len = g.gen_range(0usize..200);
        let reduce_len = g.gen_range(1usize..8);
        // One-sided epoch: every rank puts a random amount into a random
        // target window.
        let osc: Vec<(usize, usize)> = (0..n).map(|_| (g.index(n), g.gen_range(0usize..64))).collect();

        const FLAG_SETS: [Flags; 4] =
            [Flags::P2P_ONLY, Flags::COLL_ONLY, Flags::OSC_ONLY, Flags::ALL_COMM];
        let tracer = Tracer::new(1 << 14); // deep rings: nothing may drop
        let mut cfg = UniverseConfig::new(Machine::cluster(2, 1, 8), Placement::packed(n));
        cfg.tracer = Some(tracer.clone());
        let (p2p2, osc2) = (p2p.clone(), osc.clone());
        let gathered = Universe::new(cfg).launch(move |rank| {
            let world = rank.comm_world();
            let me = world.rank();
            let mon = Monitoring::init(rank).unwrap();
            let msid = mon.start(rank, &world).unwrap();
            for &(src, dst, len) in &p2p2 {
                if me == src {
                    rank.send(&world, dst, 7, &vec![0u8; len]);
                }
                if me == dst {
                    rank.recv::<u8>(&world, SrcSel::Rank(src), TagSel::Is(7));
                }
            }
            let mut data = if me == bcast_root { vec![1u8; bcast_len] } else { vec![] };
            rank.bcast(&world, bcast_root, &mut data);
            rank.allreduce(&world, &vec![me as u64; reduce_len], |a, b| a + b);
            let win = rank.win_create(&world, vec![0u8; 64]);
            let (target, len) = osc2[me];
            rank.put(&win, target, 0, &vec![0u8; len]);
            rank.fence(&win);
            rank.win_free(win);
            mon.suspend(msid).unwrap();
            let out: Vec<_> = FLAG_SETS
                .iter()
                .map(|&f| mon.rootgather_data(rank, msid, 0, f).unwrap())
                .collect();
            mon.free(msid).unwrap();
            mon.finalize(rank).unwrap();
            out
        });

        // Reconstruct per-(src, dst, kind) totals from the trace rings: on
        // each rank's track, every `send` between that rank's session start
        // and suspend markers is traffic the session observed.
        let mut totals: std::collections::HashMap<(usize, usize, &'static str), (u64, u64)> =
            std::collections::HashMap::new();
        for (track, events) in tracer.snapshot() {
            let Some(src) = track.strip_prefix("rank").and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            let mut watching = false;
            for ev in &events {
                match ev.data {
                    TraceData::Session { action: "start", .. } => watching = true,
                    TraceData::Session { action: "suspend", .. } => watching = false,
                    TraceData::Send { dst, bytes, kind, .. } if watching => {
                        let e = totals.entry((src, dst, kind)).or_default();
                        e.0 += 1;
                        e.1 += bytes;
                    }
                    _ => {}
                }
            }
        }
        let kinds_of = |f: Flags| -> Vec<&'static str> {
            let mut k = vec![];
            if f.contains(Flags::P2P_ONLY) { k.push("p2p"); }
            if f.contains(Flags::COLL_ONLY) { k.push("coll"); }
            if f.contains(Flags::OSC_ONLY) { k.push("osc"); }
            k
        };
        for (fi, &flags) in FLAG_SETS.iter().enumerate() {
            let data = gathered[0][fi].as_ref().expect("root 0 receives the matrices");
            for s in 0..n {
                for d in 0..n {
                    let (mut count, mut bytes) = (0u64, 0u64);
                    for kind in kinds_of(flags) {
                        if let Some(&(c, b)) = totals.get(&(s, d, kind)) {
                            count += c;
                            bytes += b;
                        }
                    }
                    assert_eq!(data.counts.get(s, d), count,
                        "count mismatch {s}->{d} under {flags:?}");
                    assert_eq!(data.sizes.get(s, d), bytes,
                        "bytes mismatch {s}->{d} under {flags:?}");
                }
            }
        }
    }

    /// Segmented broadcast delivers identical data for any segment size.
    fn segmented_bcast_any_segmentation(g, cases = 10) {
        let n = g.gen_range(1usize..12);
        let seg = g.gen_range(1usize..40);
        let len = g.gen_range(0usize..60);
        let u = Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 8), Placement::packed(n)));
        u.launch(move |rank| {
            let world = rank.comm_world();
            let payload: Vec<u32> = (0..len as u32).collect();
            let mut data = if world.rank() == 0 { payload.clone() } else { vec![] };
            rank.bcast_segmented(&world, 0, &mut data, seg);
            assert_eq!(data, payload);
        });
    }
}
