//! Schedule-control seam: the three nondeterminism points of the runtime,
//! each consulting an injectable [`SchedulePolicy`].
//!
//! A virtual-time simulation is deterministic *given* a schedule, but three
//! places let real-machine scheduling leak into which schedule runs:
//!
//! 1. **Wildcard take** ([`crate::mailbox`]): when an `ANY_SOURCE`/`ANY_TAG`
//!    receive has several eligible `(src, tag)` channels queued, MPI lets
//!    any of them win.  The default picks the earliest arrival; a policy may
//!    pick any candidate.
//! 2. **Task resume** ([`crate::exec`], `ExecutorKind::Tasks`): which
//!    runnable rank task a worker resumes next.  The default is the
//!    work-stealing order; a policy forces one worker and picks explicitly.
//! 3. **Wire delivery** (`Shared::post` in [`crate::runtime`], the funnel
//!    below the [`crate::pml`] layer that every NIC delivery takes): the
//!    order staged envelopes are released to their destination mailboxes.
//!    The default releases in posting (FIFO) order.
//!
//! With no policy installed nothing changes — the hooks are a single
//! `Option` test, and the canonical policy (always index 0) is bit-identical
//! to no policy at all, verified by `props!` equivalence properties.  The
//! `mim-explore` crate builds recording, random, scripted and replay
//! policies on this trait and drives them from a schedule explorer.

use std::sync::Arc;

/// One scheduling decision offered to a policy: a slate of candidates in
/// *canonical order* (the order the un-policed runtime would consider them),
/// from which the policy picks an index.  Index 0 always reproduces the
/// default behavior.
#[derive(Debug)]
pub enum Decision<'a> {
    /// Which runnable task (by world rank) a worker resumes next.
    /// `racy` — when non-empty, `racy[i]` marks candidates whose next
    /// operation can affect a wildcard match (model-executor metadata for
    /// DPOR pruning; the live executor passes an empty slice).
    TaskResume {
        /// Runnable task indices (world ranks) in canonical dispatch order.
        candidates: &'a [usize],
        /// Per-candidate race relevance; empty when unknown.
        racy: &'a [bool],
    },
    /// Which eligible `(src_world, tag)` channel a wildcard receive takes,
    /// in head-arrival order (index 0 = earliest arrival = MPI default).
    WildcardTake {
        /// The receiving world rank.
        rank: usize,
        /// Eligible channels in head-arrival order.
        candidates: &'a [(usize, u32)],
    },
    /// Which staged wire delivery `(src_world, dst_world)` is released to
    /// its destination mailbox next, in posting (FIFO) order.
    WireDelivery {
        /// Staged deliveries in posting order.
        candidates: &'a [(usize, usize)],
    },
}

impl Decision<'_> {
    /// Number of candidates on the slate.
    pub fn len(&self) -> usize {
        match self {
            Decision::TaskResume { candidates, .. } => candidates.len(),
            Decision::WildcardTake { candidates, .. } => candidates.len(),
            Decision::WireDelivery { candidates } => candidates.len(),
        }
    }

    /// True when the slate is empty (never offered by the runtime).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Single-letter kind code used in serialized decision logs
    /// (`r` resume, `w` wildcard, `d` delivery).
    pub fn kind_code(&self) -> char {
        match self {
            Decision::TaskResume { .. } => 'r',
            Decision::WildcardTake { .. } => 'w',
            Decision::WireDelivery { .. } => 'd',
        }
    }
}

/// An external scheduler for the runtime's nondeterminism points.
///
/// Implementations use interior mutability (`&self` methods, the runtime
/// shares one policy across ranks and workers) and must be cheap: `choose`
/// sits on the mailbox and dispatch hot paths.  The runtime only consults a
/// policy when a decision has **at least two** candidates; singleton slates
/// are taken without a call, so decision logs contain exactly the branch
/// points of the schedule.
pub trait SchedulePolicy: Send + Sync + std::fmt::Debug {
    /// Pick a candidate index (`0..decision.len()`).  Out-of-range returns
    /// are clamped to the last candidate rather than trusted.
    fn choose(&self, decision: Decision<'_>) -> usize;

    /// Serialized log of every decision taken so far, for witness files and
    /// deadlock-panic payloads.  `None` when the policy does not record.
    fn decision_log(&self) -> Option<String> {
        None
    }

    /// When true (the default), the starvation watchdog's abort is
    /// suspended while this policy is installed: a policy deliberately
    /// holding tasks parked is exploring a schedule, not starving.
    fn virtual_watchdog(&self) -> bool {
        true
    }
}

/// The identity policy: always index 0, i.e. exactly the un-policed
/// runtime's behavior.  Used as the equivalence-property anchor and as the
/// canonical first schedule of an exploration.
#[derive(Debug, Default, Clone, Copy)]
pub struct CanonicalPolicy;

impl SchedulePolicy for CanonicalPolicy {
    fn choose(&self, _decision: Decision<'_>) -> usize {
        0
    }
}

/// Shared handle to an installed policy (the runtime clones it into every
/// rank's mailbox and into the executor).
pub type PolicyHandle = Arc<dyn SchedulePolicy>;

/// Clamp a policy's chosen index onto a slate of `n` candidates.
pub(crate) fn clamp_choice(chosen: usize, n: usize) -> usize {
    chosen.min(n.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_picks_zero_and_codes_are_stable() {
        let p = CanonicalPolicy;
        let cands = [(1usize, 0u32), (2, 0)];
        let d = Decision::WildcardTake { rank: 0, candidates: &cands };
        assert_eq!(d.kind_code(), 'w');
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(p.choose(d), 0);
        assert!(p.decision_log().is_none());
        assert!(p.virtual_watchdog());
        let r = Decision::TaskResume { candidates: &[0, 1], racy: &[] };
        assert_eq!(r.kind_code(), 'r');
        let w = Decision::WireDelivery { candidates: &[(0, 1)] };
        assert_eq!(w.kind_code(), 'd');
        assert_eq!(clamp_choice(5, 2), 1);
        assert_eq!(clamp_choice(0, 2), 0);
    }
}
