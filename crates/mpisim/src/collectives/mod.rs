//! Collective operations implemented on top of point-to-point messages.
//!
//! Every algorithm here decomposes into `wire_send`/`wire_recv` calls with
//! `MsgKind::Collective`, so the PML interposition layer — and therefore the
//! monitoring library — observes the *actual* per-pair traffic of the
//! collective, which is the paper's key capability ("we monitor communication
//! once a collective has been decomposed into its point-to-point messages").
//!
//! Algorithms follow the classic MPICH/Open MPI implementations:
//!
//! * [`barrier`] — dissemination (zero-byte messages);
//! * [`bcast_binomial`] / [`bcast_binary`] — binomial / binary broadcast tree;
//! * [`reduce_binomial`] / [`reduce_binary`] — mirrored reduce trees
//!   (the paper's Fig 5a uses the binary tree);
//! * [`allreduce_recursive_doubling`] — with the standard fold-in step for
//!   non-power-of-two rank counts;
//! * [`gather_linear`], [`scatter_linear`], [`allgather_ring`],
//!   [`alltoall_pairwise`].

mod extra;
mod helpers;
mod tree;
mod varcount;

pub use extra::{
    allgather_recursive_doubling, bcast_binary_segmented, reduce_scatter_block, scan_inclusive,
};
pub use helpers::{binomial_peers, combine, vrank_of, world_of_vrank};
pub use tree::gather_tree_kary;
pub use varcount::{allgatherv, gatherv, scatterv};

use crate::comm::Comm;
use crate::datatype::Scalar;
use crate::envelope::{Ctx, MsgKind, Payload};
use crate::runtime::{Rank, SrcSel, TagSel};

fn csend<T: Scalar>(rank: &Rank, comm: &Comm, dst: usize, tag: u32, data: &[T]) {
    rank.wire_send(
        comm,
        dst,
        tag,
        Ctx::Coll,
        MsgKind::Collective,
        Payload::Bytes(T::to_bytes(data)),
    );
}

fn crecv<T: Scalar>(rank: &Rank, comm: &Comm, src: usize, tag: u32) -> Vec<T> {
    let env = rank.wire_recv(comm, SrcSel::Rank(src), TagSel::Is(tag), Ctx::Coll);
    T::from_bytes(&env.payload.expect_bytes())
}

fn csend_zero(rank: &Rank, comm: &Comm, dst: usize, tag: u32) {
    rank.wire_send(comm, dst, tag, Ctx::Coll, MsgKind::Collective, Payload::Bytes(Vec::new()));
}

fn crecv_zero(rank: &Rank, comm: &Comm, src: usize, tag: u32) {
    rank.wire_recv(comm, SrcSel::Rank(src), TagSel::Is(tag), Ctx::Coll);
}

/// Dissemination barrier: ⌈log₂ n⌉ rounds of zero-byte messages
/// (the zero-length point-to-point messages the paper warns about).
pub fn barrier(rank: &Rank, comm: &Comm) {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    let mut dist = 1;
    while dist < n {
        let to = (me + dist) % n;
        let from = (me + n - dist % n) % n;
        csend_zero(rank, comm, to, tag);
        crecv_zero(rank, comm, from, tag);
        dist <<= 1;
    }
}

/// Binomial-tree broadcast from `root` (the algorithm of the paper's Fig 5b).
pub fn bcast_binomial<T: Scalar>(rank: &Rank, comm: &Comm, root: usize, data: &mut Vec<T>) {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    if n == 1 {
        return;
    }
    let me = comm.rank();
    let vrank = vrank_of(me, root, n);
    // Receive once from the parent...
    let mut mask = 1;
    while mask < n {
        if vrank & mask != 0 {
            let parent = world_of_vrank(vrank - mask, root, n);
            *data = crecv(rank, comm, parent, tag);
            break;
        }
        mask <<= 1;
    }
    // ...then forward to children, widest subtree first.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < n {
            let child = world_of_vrank(vrank + mask, root, n);
            csend(rank, comm, child, tag, data);
        }
        mask >>= 1;
    }
}

/// Binary-tree broadcast from `root` (ablation partner of the binomial tree).
pub fn bcast_binary<T: Scalar>(rank: &Rank, comm: &Comm, root: usize, data: &mut Vec<T>) {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    if n == 1 {
        return;
    }
    let me = comm.rank();
    let vrank = vrank_of(me, root, n);
    if vrank != 0 {
        let parent = world_of_vrank((vrank - 1) / 2, root, n);
        *data = crecv(rank, comm, parent, tag);
    }
    for child_v in [2 * vrank + 1, 2 * vrank + 2] {
        if child_v < n {
            csend(rank, comm, world_of_vrank(child_v, root, n), tag, data);
        }
    }
}

/// Binomial-tree reduce to `root` with a commutative `op`; returns the
/// result at the root, `None` elsewhere.
pub fn reduce_binomial<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    root: usize,
    data: &[T],
    op: impl Fn(T, T) -> T,
) -> Option<Vec<T>> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    let vrank = vrank_of(me, root, n);
    let mut acc = data.to_vec();
    let mut mask = 1;
    while mask < n {
        if vrank & mask == 0 {
            let peer_v = vrank | mask;
            if peer_v < n {
                let other: Vec<T> = crecv(rank, comm, world_of_vrank(peer_v, root, n), tag);
                combine(&mut acc, &other, &op);
            }
        } else {
            let parent = world_of_vrank(vrank & !mask, root, n);
            csend(rank, comm, parent, tag, &acc);
            return None;
        }
        mask <<= 1;
    }
    Some(acc)
}

/// Binary-tree reduce to `root` (the algorithm of the paper's Fig 5a).
pub fn reduce_binary<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    root: usize,
    data: &[T],
    op: impl Fn(T, T) -> T,
) -> Option<Vec<T>> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    let vrank = vrank_of(me, root, n);
    let mut acc = data.to_vec();
    for child_v in [2 * vrank + 1, 2 * vrank + 2] {
        if child_v < n {
            let other: Vec<T> = crecv(rank, comm, world_of_vrank(child_v, root, n), tag);
            combine(&mut acc, &other, &op);
        }
    }
    if vrank == 0 {
        Some(acc)
    } else {
        let parent = world_of_vrank((vrank - 1) / 2, root, n);
        csend(rank, comm, parent, tag, &acc);
        None
    }
}

/// Recursive-doubling allreduce.  Non-power-of-two rank counts use the
/// standard fold: the first `2·rem` ranks pair up so `pow2` ranks run the
/// doubling, then results are pushed back to the folded ranks.
pub fn allreduce_recursive_doubling<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    data: &[T],
    op: impl Fn(T, T) -> T,
) -> Vec<T> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    let mut acc = data.to_vec();
    if n == 1 {
        return acc;
    }
    let pow2 = n.next_power_of_two() >> usize::from(!n.is_power_of_two());
    let rem = n - pow2;
    // Fold phase: ranks [0, 2*rem) pair up (even sends to odd).
    let newrank: Option<usize> = if me < 2 * rem {
        if me.is_multiple_of(2) {
            csend(rank, comm, me + 1, tag, &acc);
            None
        } else {
            let other: Vec<T> = crecv(rank, comm, me - 1, tag);
            combine(&mut acc, &other, &op);
            Some(me / 2)
        }
    } else {
        Some(me - rem)
    };
    // Recursive doubling among `pow2` participants.
    if let Some(nr) = newrank {
        let to_old = |r: usize| if r < rem { 2 * r + 1 } else { r + rem };
        let mut mask = 1;
        while mask < pow2 {
            let peer = to_old(nr ^ mask);
            csend(rank, comm, peer, tag, &acc);
            let other: Vec<T> = crecv(rank, comm, peer, tag);
            combine(&mut acc, &other, &op);
            mask <<= 1;
        }
    }
    // Unfold: odd folded ranks push the result back to their even partner.
    if me < 2 * rem {
        if me.is_multiple_of(2) {
            acc = crecv(rank, comm, me + 1, tag);
        } else {
            csend(rank, comm, me - 1, tag, &acc);
        }
    }
    acc
}

/// Linear gather of equal-size contributions; `Some(concatenation)` at root.
pub fn gather_linear<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    root: usize,
    data: &[T],
) -> Option<Vec<T>> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    if me != root {
        csend(rank, comm, root, tag, data);
        return None;
    }
    let mut out = Vec::with_capacity(data.len() * n);
    for r in 0..n {
        if r == root {
            out.extend_from_slice(data);
        } else {
            out.extend(crecv::<T>(rank, comm, r, tag));
        }
    }
    Some(out)
}

/// Linear scatter of equal-size chunks from `root`; `data` must be
/// `Some(n·chunk)` at the root and is ignored elsewhere.
pub fn scatter_linear<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    root: usize,
    data: Option<&[T]>,
) -> Vec<T> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    if me == root {
        let data = data.expect("scatter root must provide data");
        assert!(data.len().is_multiple_of(n), "scatter buffer not divisible by communicator size");
        let chunk = data.len() / n;
        for r in 0..n {
            if r != root {
                csend(rank, comm, r, tag, &data[r * chunk..(r + 1) * chunk]);
            }
        }
        data[root * chunk..(root + 1) * chunk].to_vec()
    } else {
        crecv(rank, comm, root, tag)
    }
}

/// Ring allgather of equal-size contributions: `n-1` steps, each rank
/// forwarding one block to its right neighbour.
pub fn allgather_ring<T: Scalar>(rank: &Rank, comm: &Comm, data: &[T]) -> Vec<T> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    let block = data.len();
    let mut out = Vec::with_capacity(n * block);
    let mut blocks: Vec<Option<Vec<T>>> = vec![None; n];
    blocks[me] = Some(data.to_vec());
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    for step in 0..n.saturating_sub(1) {
        let send_idx = (me + n - step) % n;
        let recv_idx = (me + n - step - 1) % n;
        let to_send = blocks[send_idx].as_ref().expect("ring block not yet received");
        csend(rank, comm, right, tag, to_send);
        blocks[recv_idx] = Some(crecv(rank, comm, left, tag));
    }
    for b in blocks {
        let b = b.expect("missing allgather block");
        debug_assert_eq!(b.len(), block, "allgather contributions must be equal-sized");
        out.extend(b);
    }
    out
}

/// Pairwise (ring-offset) all-to-all: step `i` exchanges chunk with the
/// ranks at offset `±i`.
pub fn alltoall_pairwise<T: Scalar>(rank: &Rank, comm: &Comm, data: &[T]) -> Vec<T> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    assert!(data.len().is_multiple_of(n), "alltoall buffer not divisible by communicator size");
    let chunk = data.len() / n;
    let mut out = vec![None; n];
    out[me] = Some(data[me * chunk..(me + 1) * chunk].to_vec());
    for step in 1..n {
        let to = (me + step) % n;
        let from = (me + n - step) % n;
        csend(rank, comm, to, tag, &data[to * chunk..(to + 1) * chunk]);
        out[from] = Some(crecv(rank, comm, from, tag));
    }
    out.into_iter().flat_map(|b| b.expect("missing alltoall chunk")).collect()
}

#[cfg(test)]
mod tests;
