//! Shared helpers for tree-structured collectives.

/// Virtual rank relative to the root: the root gets vrank 0.
pub fn vrank_of(rank: usize, root: usize, n: usize) -> usize {
    (rank + n - root) % n
}

/// Inverse of [`vrank_of`].
pub fn world_of_vrank(vrank: usize, root: usize, n: usize) -> usize {
    (vrank + root) % n
}

/// Element-wise in-place combine: `acc[i] = op(acc[i], other[i])`.
///
/// # Panics
/// Panics when the slices differ in length (mismatched reduce contributions).
pub fn combine<T: Copy>(acc: &mut [T], other: &[T], op: impl Fn(T, T) -> T) {
    assert_eq!(acc.len(), other.len(), "reduce contributions differ in length");
    for (a, &b) in acc.iter_mut().zip(other) {
        *a = op(*a, b);
    }
}

/// Children and parent of a rank in a binomial tree rooted at vrank 0:
/// returns `(parent, children)` in *virtual* ranks.  Used by the schedule
/// generator so the synthetic pattern matches the live algorithm exactly.
pub fn binomial_peers(vrank: usize, n: usize) -> (Option<usize>, Vec<usize>) {
    let mut parent = None;
    let mut mask = 1;
    while mask < n {
        if vrank & mask != 0 {
            parent = Some(vrank - mask);
            break;
        }
        mask <<= 1;
    }
    let mut children = Vec::new();
    let top = if parent.is_some() { mask >> 1 } else { prev_pow2_at_least(n) };
    let mut m = top;
    while m > 0 {
        if vrank + m < n && vrank & m == 0 {
            children.push(vrank + m);
        }
        m >>= 1;
    }
    (parent, children)
}

fn prev_pow2_at_least(n: usize) -> usize {
    // Highest power of two < n... or the mask value the broadcast loop ends
    // with: smallest power of two >= n, halved.
    let mut mask = 1;
    while mask < n {
        mask <<= 1;
    }
    mask >> 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vrank_roundtrip() {
        for n in [1, 2, 5, 8] {
            for root in 0..n {
                for r in 0..n {
                    assert_eq!(world_of_vrank(vrank_of(r, root, n), root, n), r);
                }
            }
        }
    }

    #[test]
    fn combine_applies_elementwise() {
        let mut a = vec![1, 2, 3];
        combine(&mut a, &[10, 20, 30], |x, y| x + y);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    #[should_panic]
    fn combine_rejects_mismatch() {
        let mut a = vec![1];
        combine(&mut a, &[1, 2], |x, _| x);
    }

    #[test]
    fn binomial_tree_is_consistent() {
        // Every non-root has exactly one parent, and parent/child lists agree.
        for n in [1usize, 2, 3, 4, 6, 7, 8, 13, 16] {
            let mut seen_as_child = vec![0usize; n];
            for v in 0..n {
                let (parent, children) = binomial_peers(v, n);
                if v == 0 {
                    assert!(parent.is_none());
                } else {
                    let p = parent.expect("non-root must have a parent");
                    let (_, pc) = binomial_peers(p, n);
                    assert!(pc.contains(&v), "parent {p} of {v} must list it (n={n})");
                }
                for &c in &children {
                    seen_as_child[c] += 1;
                    let (cp, _) = binomial_peers(c, n);
                    assert_eq!(cp, Some(v));
                }
            }
            assert_eq!(seen_as_child[0], 0);
            assert!(seen_as_child[1..].iter().all(|&c| c == 1), "n={n}: {seen_as_child:?}");
        }
    }
}
