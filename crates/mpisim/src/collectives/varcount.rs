//! Variable-count collectives (`MPI_Gatherv` / `MPI_Scatterv` /
//! `MPI_Allgatherv`): ranks contribute or receive blocks of different sizes.
//!
//! Message sizes carry their own length in this runtime, so no explicit
//! count arrays are needed on the receive side — the API stays idiomatic
//! while the wire traffic matches the MPI originals.

use super::{crecv, csend};
use crate::comm::Comm;
use crate::datatype::Scalar;
use crate::runtime::Rank;

/// Gather variable-size contributions at `root`, concatenated in rank
/// order; `Some(data, displacements)` at the root (displacements index the
/// start of each rank's block), `None` elsewhere.
pub fn gatherv<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    root: usize,
    data: &[T],
) -> Option<(Vec<T>, Vec<usize>)> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    if me != root {
        csend(rank, comm, root, tag, data);
        return None;
    }
    let mut out = Vec::new();
    let mut displs = Vec::with_capacity(n);
    for r in 0..n {
        displs.push(out.len());
        if r == root {
            out.extend_from_slice(data);
        } else {
            out.extend(crecv::<T>(rank, comm, r, tag));
        }
    }
    Some((out, displs))
}

/// Scatter variable-size chunks from `root`: the root provides one slice
/// per rank, everyone receives theirs.
///
/// # Panics
/// Panics when the root's chunk list does not match the communicator size.
pub fn scatterv<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    root: usize,
    chunks: Option<&[&[T]]>,
) -> Vec<T> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    if me == root {
        let chunks = chunks.expect("scatterv root must provide chunks");
        assert_eq!(chunks.len(), n, "one chunk per rank required");
        for (r, chunk) in chunks.iter().enumerate() {
            if r != root {
                csend(rank, comm, r, tag, chunk);
            }
        }
        chunks[root].to_vec()
    } else {
        crecv(rank, comm, root, tag)
    }
}

/// Allgather of variable-size contributions: everyone receives the
/// rank-ordered concatenation and the per-rank displacements.
/// Ring algorithm, like the equal-count variant.
pub fn allgatherv<T: Scalar>(rank: &Rank, comm: &Comm, data: &[T]) -> (Vec<T>, Vec<usize>) {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    let mut blocks: Vec<Option<Vec<T>>> = vec![None; n];
    blocks[me] = Some(data.to_vec());
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    for step in 0..n.saturating_sub(1) {
        let send_idx = (me + n - step) % n;
        let recv_idx = (me + n - step - 1) % n;
        let to_send = blocks[send_idx].as_ref().expect("ring block not yet received");
        csend(rank, comm, right, tag, to_send);
        blocks[recv_idx] = Some(crecv(rank, comm, left, tag));
    }
    let mut out = Vec::new();
    let mut displs = Vec::with_capacity(n);
    for b in blocks {
        displs.push(out.len());
        out.extend(b.expect("missing allgatherv block"));
    }
    (out, displs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_topology::{Machine, Placement};

    use crate::runtime::{Universe, UniverseConfig};

    fn universe(n: usize) -> Universe {
        Universe::new(UniverseConfig::new(Machine::cluster(2, 2, 4), Placement::packed(n)))
    }

    /// Rank r contributes r+1 values of value r.
    fn contribution(r: usize) -> Vec<u32> {
        vec![r as u32; r + 1]
    }

    fn expected_concat(n: usize) -> (Vec<u32>, Vec<usize>) {
        let mut out = Vec::new();
        let mut displs = Vec::new();
        for r in 0..n {
            displs.push(out.len());
            out.extend(contribution(r));
        }
        (out, displs)
    }

    #[test]
    fn gatherv_concatenates_unequal_blocks() {
        for n in [1usize, 2, 5, 8, 11] {
            let root = n / 2;
            let u = universe(n);
            u.launch(move |rank| {
                let world = rank.comm_world();
                let mine = contribution(world.rank());
                let out = gatherv(rank, &world, root, &mine);
                if world.rank() == root {
                    let (data, displs) = out.expect("root receives");
                    let (edata, edispls) = expected_concat(n);
                    assert_eq!(data, edata, "n={n}");
                    assert_eq!(displs, edispls);
                } else {
                    assert!(out.is_none());
                }
            });
        }
    }

    #[test]
    fn scatterv_distributes_unequal_chunks() {
        for n in [1usize, 3, 6, 9] {
            let u = universe(n);
            u.launch(move |rank| {
                let world = rank.comm_world();
                let storage: Vec<Vec<u32>> = (0..n).map(contribution).collect();
                let chunks: Vec<&[u32]> = storage.iter().map(Vec::as_slice).collect();
                let mine =
                    scatterv(rank, &world, 0, (world.rank() == 0).then_some(chunks.as_slice()));
                assert_eq!(mine, contribution(world.rank()), "n={n}");
            });
        }
    }

    #[test]
    fn allgatherv_everyone_gets_everything() {
        for n in [1usize, 2, 4, 7, 10] {
            let u = universe(n);
            u.launch(move |rank| {
                let world = rank.comm_world();
                let mine = contribution(world.rank());
                let (data, displs) = allgatherv(rank, &world, &mine);
                let (edata, edispls) = expected_concat(n);
                assert_eq!(data, edata, "n={n}");
                assert_eq!(displs, edispls);
            });
        }
    }

    #[test]
    fn empty_contributions_are_fine() {
        let u = universe(4);
        u.launch(|rank| {
            let world = rank.comm_world();
            let mine: Vec<u64> = if world.rank() == 2 { vec![7, 8] } else { vec![] };
            let (data, displs) = allgatherv(rank, &world, &mine);
            assert_eq!(data, vec![7, 8]);
            assert_eq!(displs, vec![0, 0, 0, 2]);
        });
    }
}
