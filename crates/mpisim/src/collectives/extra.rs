//! Additional collective algorithms: reduce-scatter, scan, recursive-
//! doubling allgather, and segmented (pipelined) broadcast.
//!
//! The segmented broadcast matters for the Fig 5 discussion: production
//! MPI libraries never ship an 800 MB buffer as one message — they chunk it
//! so tree levels pipeline, which changes how much a bad rank order hurts.

use super::{combine, crecv, csend, vrank_of, world_of_vrank};
use crate::comm::Comm;
use crate::datatype::Scalar;
use crate::runtime::Rank;

/// Reduce-scatter with equal blocks: every rank contributes `n·block` items
/// and receives the element-wise reduction of block `rank`.  Implemented as
/// recursive halving for power-of-two sizes, with a reduce + scatter
/// fallback otherwise (the classic MPICH structure).
pub fn reduce_scatter_block<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    data: &[T],
    op: impl Fn(T, T) -> T,
) -> Vec<T> {
    let n = comm.size();
    assert!(
        data.len().is_multiple_of(n),
        "reduce_scatter buffer not divisible by communicator size"
    );
    let block = data.len() / n;
    let me = comm.rank();
    if n == 1 {
        return data.to_vec();
    }
    if !n.is_power_of_two() {
        // Fallback: binomial reduce to rank 0, then linear scatter.
        let reduced = super::reduce_binomial(rank, comm, 0, data, &op);
        return super::scatter_linear(rank, comm, 0, reduced.as_deref());
    }
    // Recursive halving: at each step exchange the half of the buffer the
    // peer is responsible for, and keep reducing the half we own.
    let tag = rank.next_coll_tag(comm);
    let mut acc = data.to_vec();
    // Owned block range, in blocks.
    let (mut lo, mut hi) = (0usize, n);
    let mut mask = n / 2;
    while mask > 0 {
        let peer = me ^ mask;
        let mid = (lo + hi) / 2;
        let (send_range, keep_range) = if me & mask == 0 {
            // Peer owns the upper half.
            ((mid * block)..(hi * block), (lo * block)..(mid * block))
        } else {
            ((lo * block)..(mid * block), (mid * block)..(hi * block))
        };
        csend(rank, comm, peer, tag, &acc[send_range]);
        let other: Vec<T> = crecv(rank, comm, peer, tag);
        let keep = keep_range.clone();
        combine(&mut acc[keep], &other, &op);
        if me & mask == 0 {
            hi = mid;
        } else {
            lo = mid;
        }
        mask >>= 1;
    }
    debug_assert_eq!(hi - lo, 1);
    debug_assert_eq!(lo, me);
    acc[lo * block..hi * block].to_vec()
}

/// Inclusive scan (`MPI_Scan`): rank `r` receives
/// `op(data₀, …, data_r)` element-wise.  Linear chain algorithm.
pub fn scan_inclusive<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    data: &[T],
    op: impl Fn(T, T) -> T,
) -> Vec<T> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    let mut acc = data.to_vec();
    if me > 0 {
        let prefix: Vec<T> = crecv(rank, comm, me - 1, tag);
        // acc = op(prefix, mine): fold the predecessor's prefix in front.
        let mut merged = prefix;
        combine(&mut merged, &acc, &op);
        acc = merged;
    }
    if me + 1 < n {
        csend(rank, comm, me + 1, tag, &acc);
    }
    acc
}

/// Recursive-doubling allgather for power-of-two sizes (⌈log₂ n⌉ rounds of
/// doubling exchanges); falls back to the ring otherwise.
pub fn allgather_recursive_doubling<T: Scalar>(rank: &Rank, comm: &Comm, data: &[T]) -> Vec<T> {
    let n = comm.size();
    if !n.is_power_of_two() {
        return super::allgather_ring(rank, comm, data);
    }
    let tag = rank.next_coll_tag(comm);
    let me = comm.rank();
    let block = data.len();
    // Working buffer holds a contiguous run of blocks; track which.
    let mut have_lo = me;
    let mut buf = data.to_vec();
    let mut mask = 1;
    while mask < n {
        let peer = me ^ mask;
        csend(rank, comm, peer, tag, &buf);
        let other: Vec<T> = crecv(rank, comm, peer, tag);
        // The peer's run is adjacent: below us if its group bit is 0.
        if peer & mask != 0 || peer > me {
            buf.extend(other);
        } else {
            have_lo -= mask;
            let mut merged = other;
            merged.extend(buf);
            buf = merged;
        }
        mask <<= 1;
    }
    debug_assert_eq!(have_lo, 0);
    debug_assert_eq!(buf.len(), n * block);
    buf
}

/// Segmented (pipelined) binary-tree broadcast: the buffer is cut into
/// `ceil(len / seg_items)` segments, each forwarded down the same binary
/// tree; interior ranks forward segment `s` while segment `s+1` is still in
/// flight, so the tree pipelines.  Production MPIs use exactly this shape
/// (chain/binary trees) for large-message broadcasts — a binomial tree
/// cannot pipeline, because the root's own send serialization already
/// dominates its makespan.  With `seg_items >= len` this degenerates to the
/// plain binary-tree broadcast.
pub fn bcast_binary_segmented<T: Scalar>(
    rank: &Rank,
    comm: &Comm,
    root: usize,
    data: &mut Vec<T>,
    seg_items: usize,
) -> usize {
    assert!(seg_items > 0, "segment size must be positive");
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    if n == 1 {
        return 0;
    }
    let me = comm.rank();
    let vrank = vrank_of(me, root, n);
    // Parent/children in the binary tree (children 2v+1, 2v+2).
    let parent = (vrank != 0).then(|| world_of_vrank((vrank - 1) / 2, root, n));
    let children: Vec<usize> = [2 * vrank + 1, 2 * vrank + 2]
        .into_iter()
        .filter(|&c| c < n)
        .map(|c| world_of_vrank(c, root, n))
        .collect();
    // The root knows the segment count; everyone else learns it from the
    // first header segment (we prepend a 1-item length header to segment 0
    // conceptually — here the segment stream is self-terminating: the
    // sender sends `nsegs` as a tiny first message).
    let nsegs = if me == root {
        let nsegs = data.len().div_ceil(seg_items).max(1);
        for &c in &children {
            csend(rank, comm, c, tag, &[nsegs as u64]);
        }
        nsegs
    } else {
        let hdr: Vec<u64> = crecv(rank, comm, parent.expect("non-root has a parent"), tag);
        for &c in &children {
            csend(rank, comm, c, tag, &hdr);
        }
        hdr[0] as usize
    };
    if me != root {
        data.clear();
    }
    for s in 0..nsegs {
        if me == root {
            let seg = &data[s * seg_items..((s + 1) * seg_items).min(data.len())];
            for &c in &children {
                csend(rank, comm, c, tag, seg);
            }
        } else {
            let seg: Vec<T> = crecv(rank, comm, parent.expect("non-root has a parent"), tag);
            for &c in &children {
                csend(rank, comm, c, tag, &seg);
            }
            data.extend(seg);
        }
    }
    nsegs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_topology::{Machine, Placement};

    use crate::runtime::{Universe, UniverseConfig};

    fn universe(n: usize) -> Universe {
        Universe::new(UniverseConfig::new(Machine::cluster(4, 2, 4), Placement::packed(n)))
    }

    const SIZES: &[usize] = &[1, 2, 3, 4, 6, 8, 12, 16];

    #[test]
    fn reduce_scatter_sums_blocks() {
        for &n in SIZES {
            let u = universe(n);
            u.launch(|rank| {
                let world = rank.comm_world();
                let me = world.rank() as u64;
                // data[j*2..j*2+2] is my contribution to rank j's block.
                let data: Vec<u64> =
                    (0..n).flat_map(|j| [me + j as u64, 2 * me + j as u64]).collect();
                let out = reduce_scatter_block(rank, &world, &data, |a, b| a + b);
                let ranks_sum: u64 = (0..n as u64).sum();
                let j = world.rank() as u64;
                assert_eq!(
                    out,
                    vec![ranks_sum + n as u64 * j, 2 * ranks_sum + n as u64 * j],
                    "n={n}"
                );
            });
        }
    }

    #[test]
    fn scan_computes_prefixes() {
        for &n in SIZES {
            let u = universe(n);
            u.launch(|rank| {
                let world = rank.comm_world();
                let me = world.rank() as i64;
                let out = scan_inclusive(rank, &world, &[me, 1], |a, b| a + b);
                let prefix: i64 = (0..=me).sum();
                assert_eq!(out, vec![prefix, me + 1], "n={n}");
            });
        }
    }

    #[test]
    fn rd_allgather_matches_ring() {
        for &n in SIZES {
            let u = universe(n);
            u.launch(|rank| {
                let world = rank.comm_world();
                let me = world.rank() as u32;
                let out = allgather_recursive_doubling(rank, &world, &[me, 10 * me]);
                let expect: Vec<u32> = (0..n as u32).flat_map(|r| [r, 10 * r]).collect();
                assert_eq!(out, expect, "n={n}");
            });
        }
    }

    #[test]
    fn segmented_bcast_delivers_and_segments() {
        for &n in SIZES {
            for seg in [1usize, 3, 7, 100] {
                let u = universe(n);
                u.launch(move |rank| {
                    let world = rank.comm_world();
                    let payload: Vec<i32> = (0..17).collect();
                    let mut data = if world.rank() == 0 { payload.clone() } else { vec![] };
                    let nsegs = bcast_binary_segmented(rank, &world, 0, &mut data, seg);
                    assert_eq!(data, payload, "n={n} seg={seg}");
                    if n > 1 {
                        assert_eq!(nsegs, 17usize.div_ceil(seg), "n={n} seg={seg}");
                    }
                });
            }
        }
    }

    #[test]
    fn segmented_bcast_pipelines_in_virtual_time() {
        // Deep tree path over slow cross-node links: with segments, interior
        // ranks forward chunk s while chunk s+1 is in flight, so the last
        // rank finishes earlier than with one huge message.  (Segmenting
        // only pays when the transfer time dwarfs per-message overheads —
        // exactly the regime of the paper's 800 MB Fig 5 buffers.)
        let n = 16;
        let items = 1 << 20; // 4 MiB of i32
        let time_with_seg = |seg: usize| {
            let machine = Machine::cluster(2, 1, 8);
            let tree = machine.tree.clone();
            let placement = Placement::cyclic_by_level(&tree, n, machine.node_level);
            let u = Universe::new(UniverseConfig::new(machine, placement));
            let times = u.launch(move |rank| {
                let world = rank.comm_world();
                let mut data = if world.rank() == 0 { vec![1i32; items] } else { vec![] };
                bcast_binary_segmented(rank, &world, 0, &mut data, seg);
                rank.now_ns()
            });
            times.into_iter().fold(0.0f64, f64::max)
        };
        let chunked = time_with_seg(items / 8);
        let whole = time_with_seg(items + 1);
        assert!(chunked < whole, "pipelining should help: chunked {chunked} vs whole {whole}");
    }

    #[test]
    fn non_power_of_two_reduce_scatter_falls_back() {
        let u = universe(6);
        u.launch(|rank| {
            let world = rank.comm_world();
            let data = vec![1.0f64; 6];
            let out = reduce_scatter_block(rank, &world, &data, |a, b| a + b);
            assert_eq!(out, vec![6.0]);
        });
    }
}
