//! K-ary tree gather of variable-size contributions along an explicit rank
//! order.
//!
//! The monitoring library's root gather used to be a star: every rank sends
//! its row straight to the root, an O(n) serial hotspot at the root's
//! mailbox.  This collective routes the same data along a k-ary tree laid
//! over a caller-chosen rank order — the monitoring plane passes an order
//! sorted by machine topology, so subtrees aggregate within a node before
//! one member forwards the combined buffer across the network.

use crate::comm::Comm;
use crate::runtime::Rank;

use super::{crecv, csend};

/// Position `p`'s parent in the implicit k-ary heap over `order`.
fn parent_pos(p: usize, arity: usize) -> usize {
    (p - 1) / arity
}

/// Gather each rank's `data` (any length, possibly empty) to `root`,
/// routing along the k-ary tree induced by `order`: `order[0]` must be
/// `root`, and the rank at position `p` is the child of the rank at
/// position `(p-1)/arity`.  Every rank frames its contribution as
/// `[comm_rank, len, payload…]`, appends its children's subtree buffers and
/// forwards the lot to its parent; the root returns `Some(rows)` with
/// `rows[r]` = rank `r`'s contribution, everyone else `None`.
///
/// `order` may list a **subset** of the communicator — the current live
/// membership under churn — as long as it is duplicate-free and starts with
/// the root.  A caller whose rank is absent from `order` returns `None`
/// immediately (it neither sends nor receives); at the root, rows for
/// absent ranks come back empty, mirroring `rootgather_partial`'s
/// zeroed-dead-rows contract.  Dead or departed ranks simply must not be
/// listed; they never have to call at all.
///
/// # Panics
/// Panics when `arity < 2`, `order` repeats or overflows the communicator,
/// the root is not first, or (at the root) a contribution frame is
/// malformed — all programming errors of the caller, which must pass
/// identical `order`/`arity` on every participating rank.
pub fn gather_tree_kary(
    rank: &Rank,
    comm: &Comm,
    root: usize,
    arity: usize,
    order: &[usize],
    data: &[u64],
) -> Option<Vec<Vec<u64>>> {
    let tag = rank.next_coll_tag(comm);
    let n = comm.size();
    let me = comm.rank();
    assert!(arity >= 2, "gather tree arity must be at least 2");
    assert!(!order.is_empty() && order.len() <= n, "order must list 1..={n} live ranks");
    assert_eq!(order[0], root, "order[0] must be the gather root");
    let mut pos_of = vec![usize::MAX; n];
    for (p, &r) in order.iter().enumerate() {
        assert!(r < n && pos_of[r] == usize::MAX, "order must list distinct ranks below {n}");
        pos_of[r] = p;
    }
    let pos = pos_of[me];
    if pos == usize::MAX {
        // Not part of the live membership this gather covers: contribute
        // nothing and touch no channel.  (The coll tag above was still
        // consumed, keeping this rank's tag stream aligned with peers that
        // may include it in a later window.)
        return None;
    }

    // Own frame first, then each child's subtree buffer in position order —
    // a deterministic concatenation, so the traffic shape is identical on
    // every run.
    let mut buf = Vec::with_capacity(2 + data.len());
    buf.push(me as u64);
    buf.push(data.len() as u64);
    buf.extend_from_slice(data);
    let first_child = pos * arity + 1;
    for &child_rank in order.iter().skip(first_child).take(arity) {
        buf.extend(crecv::<u64>(rank, comm, child_rank, tag));
    }

    if pos != 0 {
        csend(rank, comm, order[parent_pos(pos, arity)], tag, &buf);
        return None;
    }

    // Root: unpack the concatenated frames into per-rank rows.
    let mut rows: Vec<Option<Vec<u64>>> = vec![None; n];
    let mut at = 0;
    while at < buf.len() {
        assert!(at + 2 <= buf.len(), "truncated gather frame header");
        let src = buf[at] as usize;
        let len = buf[at + 1] as usize;
        at += 2;
        assert!(src < n && rows[src].is_none(), "duplicate or out-of-range gather frame");
        assert!(pos_of[src] != usize::MAX, "gather frame from rank {src} absent from order");
        assert!(at + len <= buf.len(), "truncated gather frame payload");
        rows[src] = Some(buf[at..at + len].to_vec());
        at += len;
    }
    Some(
        rows.into_iter()
            .enumerate()
            .map(|(r, row)| match row {
                Some(row) => row,
                None => {
                    assert!(pos_of[r] == usize::MAX, "live rank {r} contributed no gather frame");
                    Vec::new()
                }
            })
            .collect(),
    )
}
