//! Correctness tests for collectives against sequential references,
//! over power-of-two and awkward rank counts.

use mim_topology::{Machine, Placement};

use crate::runtime::{Universe, UniverseConfig};

use super::*;

fn universe(n: usize) -> Universe {
    let machine = Machine::cluster(4, 2, 4); // 32 cores
    assert!(n <= 32);
    Universe::new(UniverseConfig::new(machine, Placement::packed(n)))
}

const SIZES: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 12, 16];

#[test]
fn bcast_binomial_delivers_everywhere() {
    for &n in SIZES {
        for root in [0, n / 2, n - 1] {
            let u = universe(n);
            u.launch(|rank| {
                let world = rank.comm_world();
                let mut data = if world.rank() == root { vec![42i64, 43, 44] } else { Vec::new() };
                bcast_binomial(rank, &world, root, &mut data);
                assert_eq!(data, vec![42, 43, 44], "n={n} root={root}");
            });
        }
    }
}

#[test]
fn bcast_binary_delivers_everywhere() {
    for &n in SIZES {
        for root in [0, n - 1] {
            let u = universe(n);
            u.launch(|rank| {
                let world = rank.comm_world();
                let mut data = if world.rank() == root { vec![7u32; 10] } else { Vec::new() };
                bcast_binary(rank, &world, root, &mut data);
                assert_eq!(data, vec![7u32; 10], "n={n} root={root}");
            });
        }
    }
}

#[test]
fn reduce_binomial_sums() {
    for &n in SIZES {
        for root in [0, n - 1] {
            let u = universe(n);
            u.launch(|rank| {
                let world = rank.comm_world();
                let me = world.rank() as i64;
                let data = vec![me, 2 * me];
                let out = reduce_binomial(rank, &world, root, &data, |a, b| a + b);
                if world.rank() == root {
                    let s: i64 = (0..n as i64).sum();
                    assert_eq!(out, Some(vec![s, 2 * s]), "n={n} root={root}");
                } else {
                    assert!(out.is_none());
                }
            });
        }
    }
}

#[test]
fn reduce_binary_max() {
    for &n in SIZES {
        let u = universe(n);
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = world.rank() as f64;
            let data = vec![me, -me];
            let out = reduce_binary(rank, &world, 0, &data, f64::max);
            if world.rank() == 0 {
                assert_eq!(out, Some(vec![(n - 1) as f64, 0.0]), "n={n}");
            }
        });
    }
}

#[test]
fn allreduce_sums_any_n() {
    for &n in SIZES {
        let u = universe(n);
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = world.rank() as u64;
            let out = allreduce_recursive_doubling(rank, &world, &[me, 1], |a, b| a + b);
            let s: u64 = (0..n as u64).sum();
            assert_eq!(out, vec![s, n as u64], "n={n}");
        });
    }
}

#[test]
fn allreduce_min() {
    let u = universe(7);
    u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank() as i32;
        let out = allreduce_recursive_doubling(rank, &world, &[me + 10], i32::min);
        assert_eq!(out, vec![10]);
    });
}

#[test]
fn gather_concatenates_in_rank_order() {
    for &n in SIZES {
        let root = n / 2;
        let u = universe(n);
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = world.rank() as u16;
            let out = gather_linear(rank, &world, root, &[me, me]);
            if world.rank() == root {
                let expect: Vec<u16> = (0..n as u16).flat_map(|r| [r, r]).collect();
                assert_eq!(out, Some(expect), "n={n}");
            } else {
                assert!(out.is_none());
            }
        });
    }
}

#[test]
fn scatter_distributes_chunks() {
    for &n in SIZES {
        let u = universe(n);
        u.launch(|rank| {
            let world = rank.comm_world();
            let root = 0;
            let data: Option<Vec<i32>> =
                (world.rank() == root).then(|| (0..(3 * n) as i32).collect());
            let mine = scatter_linear(rank, &world, root, data.as_deref());
            let me = world.rank() as i32;
            assert_eq!(mine, vec![3 * me, 3 * me + 1, 3 * me + 2], "n={n}");
        });
    }
}

#[test]
fn allgather_ring_orders_blocks() {
    for &n in SIZES {
        let u = universe(n);
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = world.rank() as u64;
            let out = allgather_ring(rank, &world, &[me * 10, me * 10 + 1]);
            let expect: Vec<u64> = (0..n as u64).flat_map(|r| [r * 10, r * 10 + 1]).collect();
            assert_eq!(out, expect, "n={n}");
        });
    }
}

#[test]
fn alltoall_transposes() {
    for &n in SIZES {
        let u = universe(n);
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = world.rank();
            // data[j] = value I hold for rank j.
            let data: Vec<u32> = (0..n).map(|j| (me * 100 + j) as u32).collect();
            let out = alltoall_pairwise(rank, &world, &data);
            // out[j] = value rank j held for me.
            let expect: Vec<u32> = (0..n).map(|j| (j * 100 + me) as u32).collect();
            assert_eq!(out, expect, "n={n}");
        });
    }
}

#[test]
fn barrier_synchronizes_virtual_time() {
    let u = universe(8);
    let times = u.launch(|rank| {
        let world = rank.comm_world();
        // Rank 3 is late.
        if rank.world_rank() == 3 {
            rank.compute_ns(1e6);
        }
        barrier(rank, &world);
        rank.now_ns()
    });
    // After the barrier, everyone's clock is past the late rank's start.
    for (r, &t) in times.iter().enumerate() {
        assert!(t >= 1e6, "rank {r} finished the barrier at {t} < 1e6");
    }
}

#[test]
fn collectives_work_on_subcommunicators() {
    let u = universe(8);
    u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let sub = rank.comm_split(&world, (me % 2) as i64, me as i64);
        let out = allreduce_recursive_doubling(rank, &sub, &[1u64], |a, b| a + b);
        assert_eq!(out, vec![4]);
        // Mixed traffic: collective on world while subs are alive.
        let mut v = if me == 0 { vec![5u8] } else { Vec::new() };
        bcast_binomial(rank, &world, 0, &mut v);
        assert_eq!(v, vec![5]);
    });
}

#[test]
fn back_to_back_collectives_do_not_cross_match() {
    // Two bcasts in a row with different payloads: the sequence tag must
    // keep them apart even though sends are eager.
    let u = universe(5);
    u.launch(|rank| {
        let world = rank.comm_world();
        let mut a = if world.rank() == 0 { vec![1u8] } else { Vec::new() };
        let mut b = if world.rank() == 0 { vec![2u8] } else { Vec::new() };
        bcast_binomial(rank, &world, 0, &mut a);
        bcast_binomial(rank, &world, 0, &mut b);
        assert_eq!((a, b), (vec![1u8], vec![2u8]));
    });
}

#[test]
fn gather_tree_collects_variable_rows_any_order() {
    // Every rank contributes a different-length row (rank r sends r items);
    // various arities and orders must all deliver rows[r] intact at the root.
    for &n in SIZES {
        for root in [0, n / 2, n - 1] {
            for arity in [2, 3, 8] {
                let u = universe(n);
                u.launch(move |rank| {
                    let world = rank.comm_world();
                    let me = world.rank();
                    let data: Vec<u64> = (0..me as u64).map(|i| me as u64 * 100 + i).collect();
                    // A non-trivial deterministic order: root first, then
                    // the remaining ranks reversed.
                    let mut order = vec![root];
                    order.extend((0..n).rev().filter(|&r| r != root));
                    let out = gather_tree_kary(rank, &world, root, arity, &order, &data);
                    if me == root {
                        let rows = out.expect("root gets rows");
                        assert_eq!(rows.len(), n);
                        for (r, row) in rows.iter().enumerate() {
                            let want: Vec<u64> =
                                (0..r as u64).map(|i| r as u64 * 100 + i).collect();
                            assert_eq!(row, &want, "n={n} root={root} arity={arity} r={r}");
                        }
                    } else {
                        assert!(out.is_none());
                    }
                });
            }
        }
    }
}

#[test]
fn gather_tree_handles_empty_contributions() {
    let u = universe(6);
    u.launch(|rank| {
        let world = rank.comm_world();
        let me = world.rank();
        let data = if me % 2 == 0 { vec![me as u64] } else { Vec::new() };
        let order: Vec<usize> = (0..6).collect();
        let out = gather_tree_kary(rank, &world, 0, 2, &order, &data);
        if me == 0 {
            let rows = out.expect("root gets rows");
            for (r, row) in rows.iter().enumerate() {
                if r % 2 == 0 {
                    assert_eq!(row, &vec![r as u64]);
                } else {
                    assert!(row.is_empty());
                }
            }
        }
    });
}
