//! Simulated NIC hardware counters.
//!
//! Models the Infiniband/OmniPath per-port transmit counters the paper reads
//! from `/sys/class/infiniband/.../counters/port_xmit_data` (Sec 6.1): one
//! counter per *node*, incremented for every message that crosses the
//! network, counting payload plus a per-message protocol header.  Like the
//! real file — and unlike the introspection library — the counter carries no
//! sender/receiver rank semantics: it only knows bytes left the node.
//!
//! `port_xmit_data` is exposed in 4-byte units ("the number read in this file
//! has to be multiplied by the number of planes of the card (in general 4)").
//!
//! Executor independence: counters are charged at wire-send time, keyed on
//! node indices derived from the placement, and timestamped with the
//! *virtual* clock — nothing here knows whether the sending rank is an OS
//! thread or a parked/resumed task, which is why `executor_equivalence`
//! can require bit-identical NIC totals across both engines.

use std::sync::atomic::{AtomicU64, Ordering};

use mim_util::sync::Mutex;

use crate::envelope::MsgKind;
use crate::pml::{PmlEvent, PmlHook};

/// One timestamped counter increment, used by the Fig 2/3 sampling harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicEvent {
    /// Virtual time at which the bytes hit the wire (ns).
    pub vtime_ns: f64,
    /// Node whose transmit counter incremented.
    pub node: usize,
    /// Bytes counted (payload + header).
    pub wire_bytes: u64,
}

/// Per-node transmit counters, fed from the PML layer.
pub struct NicCounters {
    /// Node of each core (`core → node`), precomputed for hook speed.
    core_to_node: Vec<usize>,
    xmit_bytes: Vec<AtomicU64>,
    xmit_msgs: Vec<AtomicU64>,
    retries: Vec<AtomicU64>,
    header_bytes: u64,
    events: Mutex<Option<Vec<NicEvent>>>,
}

impl NicCounters {
    /// Build counters for a machine with the given per-core node mapping and
    /// per-message header overhead (bytes added by the wire protocol).
    pub fn new(core_to_node: Vec<usize>, header_bytes: u64) -> Self {
        let nodes = core_to_node.iter().copied().max().map_or(0, |m| m + 1);
        Self {
            core_to_node,
            xmit_bytes: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            xmit_msgs: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            retries: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            header_bytes,
            events: Mutex::new(None),
        }
    }

    /// Start recording timestamped events (for sampling experiments).
    pub fn enable_event_log(&self) {
        *self.events.lock() = Some(Vec::new());
    }

    /// Stop recording and return the log (sorted by virtual time).
    pub fn take_event_log(&self) -> Vec<NicEvent> {
        let mut log = self.events.lock().take().unwrap_or_default();
        log.sort_by(|a, b| a.vtime_ns.total_cmp(&b.vtime_ns));
        log
    }

    /// Total bytes transmitted by a node's NIC (payload + headers).
    pub fn xmit_bytes(&self, node: usize) -> u64 {
        self.xmit_bytes[node].load(Ordering::Relaxed)
    }

    /// Number of messages transmitted by a node's NIC.
    pub fn xmit_msgs(&self, node: usize) -> u64 {
        self.xmit_msgs[node].load(Ordering::Relaxed)
    }

    /// The raw `port_xmit_data` value: byte count divided by 4, as read from
    /// the sysfs file before the ×4 lane correction.
    pub fn port_xmit_data(&self, node: usize) -> u64 {
        self.xmit_bytes(node) / 4
    }

    /// Number of nodes with counters.
    pub fn num_nodes(&self) -> usize {
        self.xmit_bytes.len()
    }

    /// Record one wire-level retransmission issued by a core on this node.
    ///
    /// Unlike `xmit_*` (which mirror `port_xmit_data` and only see
    /// cross-node traffic), retries count at *every* link: the retransmit
    /// timer lives in the sender's protocol engine, which fires whether or
    /// not the bytes would have left the node.
    pub fn count_retry(&self, src_core: usize) {
        self.retries[self.core_to_node[src_core]].fetch_add(1, Ordering::Relaxed);
    }

    /// Retransmissions issued by a node's cores.
    pub fn retries(&self, node: usize) -> u64 {
        self.retries[node].load(Ordering::Relaxed)
    }

    /// Total retransmissions across all nodes.
    pub fn retries_total(&self) -> u64 {
        self.retries.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl PmlHook for NicCounters {
    fn on_send(&self, ev: &PmlEvent) {
        let src_node = self.core_to_node[ev.src_core];
        let dst_node = self.core_to_node[ev.dst_core];
        if src_node == dst_node {
            return; // intra-node traffic never reaches the NIC
        }
        // One-sided gets travel target→origin on the wire but are *issued*
        // by the origin; the NIC still charges the node the data leaves from,
        // which for our eager model is the sender's node in every case.
        let _ = MsgKind::OneSided;
        let wire = ev.bytes + self.header_bytes;
        self.xmit_bytes[src_node].fetch_add(wire, Ordering::Relaxed);
        self.xmit_msgs[src_node].fetch_add(1, Ordering::Relaxed);
        let mut guard = self.events.lock();
        if let Some(log) = guard.as_mut() {
            log.push(NicEvent { vtime_ns: ev.vtime_ns, node: src_node, wire_bytes: wire });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src_core: usize, dst_core: usize, bytes: u64, t: f64) -> PmlEvent {
        PmlEvent {
            src_world: 0,
            dst_world: 1,
            src_core,
            dst_core,
            bytes,
            kind: MsgKind::P2pUser,
            vtime_ns: t,
        }
    }

    /// 2 nodes × 2 cores.
    fn nic(header: u64) -> NicCounters {
        NicCounters::new(vec![0, 0, 1, 1], header)
    }

    #[test]
    fn intra_node_invisible() {
        let n = nic(0);
        n.on_send(&ev(0, 1, 1000, 0.0));
        assert_eq!(n.xmit_bytes(0), 0);
        assert_eq!(n.xmit_msgs(0), 0);
    }

    #[test]
    fn cross_node_counted_with_header() {
        let n = nic(64);
        n.on_send(&ev(0, 2, 1000, 0.0));
        n.on_send(&ev(1, 3, 500, 1.0));
        n.on_send(&ev(2, 0, 100, 2.0));
        assert_eq!(n.xmit_bytes(0), 1000 + 64 + 500 + 64);
        assert_eq!(n.xmit_msgs(0), 2);
        assert_eq!(n.xmit_bytes(1), 164);
        assert_eq!(n.port_xmit_data(0), (1000 + 64 + 500 + 64) / 4);
    }

    #[test]
    fn retries_counted_per_sender_node() {
        let n = nic(0);
        n.count_retry(0);
        n.count_retry(1); // same node as core 0
        n.count_retry(2);
        assert_eq!(n.retries(0), 2);
        assert_eq!(n.retries(1), 1);
        assert_eq!(n.retries_total(), 3);
        // Retries never leak into the sysfs-mirroring counters.
        assert_eq!(n.xmit_msgs(0), 0);
    }

    #[test]
    fn event_log_sorted() {
        let n = nic(0);
        n.enable_event_log();
        n.on_send(&ev(0, 2, 10, 5.0));
        n.on_send(&ev(0, 2, 20, 1.0));
        n.on_send(&ev(0, 1, 99, 0.0)); // intra-node: not logged
        let log = n.take_event_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].wire_bytes, 20);
        assert_eq!(log[1].wire_bytes, 10);
        // Log is consumed.
        assert!(n.take_event_log().is_empty());
    }
}
