//! Nonblocking point-to-point operations (`MPI_Isend` / `MPI_Irecv` /
//! `MPI_Wait` / `MPI_Iprobe`).
//!
//! Sends are buffered-eager in this runtime, so an `isend` completes
//! immediately — its request exists for API symmetry.  An `irecv` captures
//! the matching pattern at post time and performs the match at
//! [`RecvRequest::wait`]; the virtual-time outcome is identical to a
//! blocking receive issued at the wait point (`max(local, arrival)`), which
//! models perfect communication/computation overlap.  Simplification vs
//! MPI: when several *pending* requests have overlapping wildcard patterns,
//! matching order is wait order, not post order.

use crate::comm::Comm;
use crate::datatype::Scalar;
use crate::envelope::{Ctx, MsgKind, Payload};
use crate::mailbox::MatchPattern;
use crate::runtime::{Rank, SrcSel, Status, TagSel};

/// Handle of a nonblocking send (eager: already complete).
#[derive(Debug)]
#[must_use = "requests should be completed with wait()"]
pub struct SendRequest {
    _private: (),
}

impl SendRequest {
    /// Complete the send (a no-op under the eager model).
    pub fn wait(self, _rank: &Rank) {}

    /// True — eager sends are complete at post time.
    pub fn test(&self, _rank: &Rank) -> bool {
        true
    }
}

/// Handle of a posted nonblocking receive.
#[derive(Debug)]
#[must_use = "an unposted wait() loses the message"]
pub struct RecvRequest {
    comm_id: u64,
    src_world: Option<usize>,
    tag: TagSel,
    /// Group snapshot for translating the sender back to a comm rank.
    group: Vec<usize>,
}

impl RecvRequest {
    fn pattern(&self) -> MatchPattern {
        MatchPattern {
            comm_id: self.comm_id,
            ctx: Ctx::Pt2pt,
            src: match self.src_world {
                None => crate::mailbox::SrcSel::Any,
                Some(w) => crate::mailbox::SrcSel::World(w),
            },
            tag: self.tag,
        }
    }

    /// Block until a matching message arrives and return its data.
    pub fn wait<T: Scalar>(self, rank: &Rank) -> (Vec<T>, Status) {
        let env = rank.mailbox_recv(&self.pattern());
        let src = self
            .group
            .iter()
            .position(|&w| w == env.src_world)
            .expect("sender not in communicator");
        let status = Status { src, tag: env.tag, bytes: env.payload.len_bytes() };
        (T::from_bytes(&env.payload.expect_bytes()), status)
    }

    /// Nonblocking completion test: is a matching message already here?
    pub fn test(&self, rank: &Rank) -> bool {
        rank.mailbox_iprobe(&self.pattern())
    }
}

/// Complete a batch of receive requests in order (`MPI_Waitall` for
/// homogeneous element types); returns data and status per request.
pub fn waitall_recv<T: Scalar>(rank: &Rank, reqs: Vec<RecvRequest>) -> Vec<(Vec<T>, Status)> {
    reqs.into_iter().map(|r| r.wait::<T>(rank)).collect()
}

impl Rank {
    /// Nonblocking typed send (completes immediately under the eager model,
    /// like a buffered `MPI_Ibsend`).
    pub fn isend<T: Scalar>(&self, comm: &Comm, dst: usize, tag: u32, data: &[T]) -> SendRequest {
        self.wire_send(
            comm,
            dst,
            tag,
            Ctx::Pt2pt,
            MsgKind::P2pUser,
            Payload::Bytes(T::to_bytes(data)),
        );
        SendRequest { _private: () }
    }

    /// Post a nonblocking receive; complete it with [`RecvRequest::wait`].
    pub fn irecv(&self, comm: &Comm, src: SrcSel, tag: TagSel) -> RecvRequest {
        RecvRequest {
            comm_id: comm.id(),
            src_world: match src {
                SrcSel::Any => None,
                SrcSel::Rank(r) => Some(comm.world_rank_of(r)),
            },
            tag,
            group: comm.group().to_vec(),
        }
    }

    /// `MPI_Iprobe`: is a matching user message pending?
    pub fn iprobe(&self, comm: &Comm, src: SrcSel, tag: TagSel) -> bool {
        let pat = MatchPattern {
            comm_id: comm.id(),
            ctx: Ctx::Pt2pt,
            src: match src {
                SrcSel::Any => crate::mailbox::SrcSel::Any,
                SrcSel::Rank(r) => crate::mailbox::SrcSel::World(comm.world_rank_of(r)),
            },
            tag,
        };
        self.mailbox_iprobe(&pat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Universe, UniverseConfig};
    use mim_topology::{Machine, Placement};

    fn universe(n: usize) -> Universe {
        Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(n)))
    }

    #[test]
    fn isend_irecv_roundtrip() {
        let u = universe(2);
        u.launch(|rank| {
            let world = rank.comm_world();
            if world.rank() == 0 {
                let req = rank.isend(&world, 1, 5, &[1.5f64, 2.5]);
                req.wait(rank);
            } else {
                let req = rank.irecv(&world, SrcSel::Rank(0), TagSel::Is(5));
                let (v, st) = req.wait::<f64>(rank);
                assert_eq!(v, vec![1.5, 2.5]);
                assert_eq!(st.src, 0);
                assert_eq!(st.bytes, 16);
            }
        });
    }

    #[test]
    fn symmetric_exchange_cannot_deadlock() {
        // Classic head-to-head exchange that deadlocks with rendezvous
        // blocking sends; nonblocking makes the intent explicit.
        let u = universe(2);
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = world.rank();
            let peer = 1 - me;
            let sreq = rank.isend(&world, peer, 1, &[me as u32; 1000]);
            let rreq = rank.irecv(&world, SrcSel::Rank(peer), TagSel::Is(1));
            let (v, _) = rreq.wait::<u32>(rank);
            sreq.wait(rank);
            assert_eq!(v, vec![peer as u32; 1000]);
        });
    }

    #[test]
    fn test_and_iprobe_observe_arrival() {
        let u = universe(2);
        u.launch(|rank| {
            let world = rank.comm_world();
            if world.rank() == 0 {
                // Wait for the go-signal so the probe definitely ran first.
                rank.recv::<u8>(&world, SrcSel::Rank(1), TagSel::Is(0));
                rank.send(&world, 1, 7, &[9u8]);
            } else {
                let req = rank.irecv(&world, SrcSel::Rank(0), TagSel::Is(7));
                assert!(!req.test(rank), "nothing sent yet");
                assert!(!rank.iprobe(&world, SrcSel::Any, TagSel::Is(7)));
                rank.send(&world, 0, 0, &[0u8]); // go
                let (v, _) = req.wait::<u8>(rank);
                assert_eq!(v, vec![9]);
            }
        });
    }

    #[test]
    fn overlap_advances_clock_like_late_recv() {
        // Post early, compute, wait late: the receive costs only the wait-
        // point synchronization, i.e. compute/communication overlap.
        let u = universe(2);
        let times = u.launch(|rank| {
            let world = rank.comm_world();
            if world.rank() == 0 {
                rank.send(&world, 1, 1, &vec![0u8; 1 << 20]);
                0.0
            } else {
                let req = rank.irecv(&world, SrcSel::Rank(0), TagSel::Is(1));
                rank.compute_ns(1e9); // 1 virtual second of work
                let t0 = rank.now_ns();
                req.wait::<u8>(rank);
                rank.now_ns() - t0
            }
        });
        // The message arrived long before the wait: only the receive
        // overhead is paid at the wait point.
        assert!(times[1] < 1000.0, "wait cost {} ns, expected overhead only", times[1]);
    }

    #[test]
    fn waitall_completes_a_batch() {
        let u = universe(4);
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = world.rank();
            for dst in 0..4 {
                if dst != me {
                    let _ = rank.isend(&world, dst, 2, &[me as u16]);
                }
            }
            let reqs: Vec<RecvRequest> = (0..4)
                .filter(|&src| src != me)
                .map(|src| rank.irecv(&world, SrcSel::Rank(src), TagSel::Is(2)))
                .collect();
            let results = waitall_recv::<u16>(rank, reqs);
            let got: Vec<u16> = results.iter().map(|(v, _)| v[0]).collect();
            let expect: Vec<u16> = (0..4).filter(|&s| s != me).map(|s| s as u16).collect();
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn irecv_isolated_per_communicator() {
        let u = universe(2);
        u.launch(|rank| {
            let world = rank.comm_world();
            let dup = rank.comm_dup(&world);
            if world.rank() == 0 {
                rank.send(&dup, 1, 3, &[1u8]);
                rank.send(&world, 1, 3, &[2u8]);
            } else {
                let (v, _) = rank.irecv(&world, SrcSel::Any, TagSel::Is(3)).wait::<u8>(rank);
                assert_eq!(v, vec![2]);
                let (v, _) = rank.irecv(&dup, SrcSel::Any, TagSel::Is(3)).wait::<u8>(rank);
                assert_eq!(v, vec![1]);
            }
        });
    }
}
