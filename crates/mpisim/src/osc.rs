//! One-sided communication (RMA): windows, put / get / accumulate, fence.
//!
//! Windows expose a byte buffer per rank; origins access target buffers
//! directly through a shared registry (the moral equivalent of RDMA), with
//! virtual time charged at the origin and every operation reported to the
//! PML layer as `MsgKind::OneSided`, which is what the monitoring library's
//! `MPI_M_OSC_ONLY` flag selects.
//!
//! Accounting convention: all three operations are recorded at the *origin*
//! as `origin → target` with the number of bytes moved — for `get` the data
//! physically flows the other way, but the pair and the volume (what the
//! monitoring matrix stores) are identical.  Synchronization follows the
//! active-target fence model: operations are eager, [`Rank::fence`] is a
//! barrier delimiting epochs.

use std::sync::Arc;

use mim_trace::TraceData;
use mim_util::sync::Mutex;

use crate::comm::Comm;
use crate::datatype::Scalar;
use crate::envelope::MsgKind;
use crate::pml::PmlEvent;
use crate::runtime::Rank;

/// A one-sided window: one shared byte buffer per communicator rank.
pub struct Window {
    id: u64,
    comm: Comm,
    local: Arc<Mutex<Vec<u8>>>,
}

impl Window {
    /// The communicator the window was created on.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Window id (unique per universe).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Rank {
    /// Collectively create a window exposing `local` on every member of `comm`.
    pub fn win_create(&self, comm: &Comm, local: Vec<u8>) -> Window {
        let mut base = vec![if comm.rank() == 0 { self.shared().alloc_ids(1) } else { 0 }];
        self.bcast(comm, 0, &mut base);
        let id = base[0];
        let local = Arc::new(Mutex::new(local));
        self.shared().windows.lock().insert((id, comm.rank()), Arc::clone(&local));
        self.barrier(comm); // everyone's buffer is registered past this point
        Window { id, comm: comm.clone(), local }
    }

    /// Collectively free a window.
    pub fn win_free(&self, win: Window) {
        self.barrier(&win.comm); // pending epoch accesses complete first
        self.shared().windows.lock().remove(&(win.id, win.comm.rank()));
    }

    /// Snapshot of this rank's window buffer.
    pub fn win_local(&self, win: &Window) -> Vec<u8> {
        win.local.lock().clone()
    }

    /// Overwrite (a part of) this rank's own window buffer.
    pub fn win_local_write(&self, win: &Window, offset: usize, data: &[u8]) {
        win.local.lock()[offset..offset + data.len()].copy_from_slice(data);
    }

    fn target_buffer(&self, win: &Window, target: usize) -> Arc<Mutex<Vec<u8>>> {
        Arc::clone(
            self.shared()
                .windows
                .lock()
                .get(&(win.id, target))
                .expect("window not exposed on target (win_create not completed?)"),
        )
    }

    fn osc_event(&self, win: &Window, target: usize, bytes: u64) {
        let dst_world = win.comm.world_rank_of(target);
        let dst_core = self.placement().core_of(dst_world);
        // Charge the origin the same wire cost a send would pay.
        self.compute_ns(self.machine().message_ns(self.core(), dst_core, bytes));
        let ev = PmlEvent {
            src_world: self.world_rank(),
            dst_world,
            src_core: self.core(),
            dst_core,
            bytes,
            kind: MsgKind::OneSided,
            vtime_ns: self.now_ns(),
        };
        self.dispatch_pml(&ev);
        // One-sided data bypasses `wire_send` (no envelope), so the trace
        // event is recorded here to keep the dump's byte totals complete.
        self.record_trace(
            self.now_ns(),
            TraceData::Send {
                dst: dst_world,
                bytes,
                kind: MsgKind::OneSided.label(),
                comm: win.comm.id(),
                tag: 0,
                coll: None,
            },
        );
    }

    /// `MPI_Put`: write `data` into `target`'s window at byte `offset`.
    pub fn put(&self, win: &Window, target: usize, offset: usize, data: &[u8]) {
        self.osc_event(win, target, data.len() as u64);
        let buf = self.target_buffer(win, target);
        buf.lock()[offset..offset + data.len()].copy_from_slice(data);
    }

    /// `MPI_Get`: read `len` bytes from `target`'s window at byte `offset`.
    pub fn get(&self, win: &Window, target: usize, offset: usize, len: usize) -> Vec<u8> {
        self.osc_event(win, target, len as u64);
        let buf = self.target_buffer(win, target);
        let guard = buf.lock();
        guard[offset..offset + len].to_vec()
    }

    /// `MPI_Accumulate`: combine `data` element-wise into `target`'s window
    /// starting at element `offset_elems`, under the window's lock (atomic
    /// with respect to concurrent accumulates).
    pub fn accumulate<T: Scalar>(
        &self,
        win: &Window,
        target: usize,
        offset_elems: usize,
        data: &[T],
        op: impl Fn(T, T) -> T,
    ) {
        self.osc_event(win, target, (data.len() * T::SIZE) as u64);
        let buf = self.target_buffer(win, target);
        let mut guard = buf.lock();
        let start = offset_elems * T::SIZE;
        let end = start + data.len() * T::SIZE;
        let mut current = T::from_bytes(&guard[start..end]);
        for (c, &d) in current.iter_mut().zip(data) {
            *c = op(*c, d);
        }
        guard[start..end].copy_from_slice(&T::to_bytes(&current));
    }

    /// `MPI_Win_fence`: close the current access epoch (barrier).
    pub fn fence(&self, win: &Window) {
        self.barrier(&win.comm);
    }
}

#[cfg(test)]
mod tests {
    use mim_topology::{Machine, Placement};

    use crate::runtime::{Universe, UniverseConfig};

    fn universe(n: usize) -> Universe {
        Universe::new(UniverseConfig::new(Machine::cluster(2, 1, 4), Placement::packed(n)))
    }

    #[test]
    fn put_then_fence_visible_at_target() {
        let u = universe(4);
        u.launch(|rank| {
            let world = rank.comm_world();
            let win = rank.win_create(&world, vec![0u8; 8]);
            if world.rank() != 0 {
                let r = world.rank() as u8;
                rank.put(&win, 0, world.rank(), &[r]);
            }
            rank.fence(&win);
            if world.rank() == 0 {
                assert_eq!(rank.win_local(&win), vec![0, 1, 2, 3, 0, 0, 0, 0]);
            }
            rank.win_free(win);
        });
    }

    #[test]
    fn get_reads_remote_data() {
        let u = universe(2);
        u.launch(|rank| {
            let world = rank.comm_world();
            let mine = vec![world.rank() as u8 + 10; 4];
            let win = rank.win_create(&world, mine);
            rank.fence(&win);
            let peer = 1 - world.rank();
            let got = rank.get(&win, peer, 1, 2);
            assert_eq!(got, vec![peer as u8 + 10; 2]);
            rank.win_free(win);
        });
    }

    #[test]
    fn accumulate_sums_atomically() {
        let u = universe(4);
        u.launch(|rank| {
            let world = rank.comm_world();
            let win = rank.win_create(&world, vec![0u8; 8]); // one u64
            rank.accumulate::<u64>(&win, 0, 0, &[world.rank() as u64 + 1], |a, b| a + b);
            rank.fence(&win);
            if world.rank() == 0 {
                let total = u64::from_le_bytes(rank.win_local(&win).try_into().unwrap());
                assert_eq!(total, 1 + 2 + 3 + 4);
            }
            rank.win_free(win);
        });
    }

    #[test]
    fn osc_advances_origin_clock() {
        let u = universe(2);
        let times = u.launch(|rank| {
            let world = rank.comm_world();
            let win = rank.win_create(&world, vec![0u8; 1024]);
            let before = rank.now_ns();
            if world.rank() == 0 {
                rank.put(&win, 1, 0, &[1u8; 1024]);
            }
            let delta = rank.now_ns() - before;
            rank.fence(&win);
            rank.win_free(win);
            delta
        });
        assert!(times[0] > 0.0, "put must cost virtual time");
        assert_eq!(times[1], 0.0, "target pays nothing before the fence");
    }
}
