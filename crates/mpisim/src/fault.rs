//! Fault-injection seam and failure taxonomy.
//!
//! The runtime stays fault-free by default: a [`FaultInjector`] is an
//! *optional* oracle installed through [`crate::UniverseConfig::with_injector`]
//! that the wire layer consults at every send attempt.  Because the injector
//! decides everything at the sender — drop this attempt, duplicate the
//! delivery, stretch the arrival — recovery can be *simulated* rather than
//! round-tripped: a dropped attempt charges the sender a retransmission
//! timeout in virtual time and the next attempt is re-judged, exactly as an
//! eager protocol with sender-side ack timers would behave.  Concrete
//! deterministic plans live in `mim-chaos`; this module only defines the seam
//! so the runtime carries no policy.
//!
//! Failure *handling* types also live here: [`RankFailure`] (what
//! `Universe::launch_faulty` reports per rank) and [`PeerFailure`] (what
//! `Rank::recv_or_failure` reports when the peer died), plus the internal
//! fault-protocol constants (death notices and liveness pings travel on a
//! reserved communicator id and context so they can never match user traffic).
//!
//! Executor independence: every injector verdict is a pure function of
//! virtual identifiers (`seed, src, dst, op_index, attempt`), and both the
//! retransmission backoff and the crash points are charged to the virtual
//! clock — so a fixed-seed plan replays bit-identically whether ranks are
//! OS threads or M:N tasks (`executor_tasks_mode` test in `mim-chaos`).
//! The only seam the M:N engine adds is on the *receiving* side: a death
//! notice posted to a parked rank must wake its task, which is why all
//! fault-protocol traffic goes through `Shared::post` like user traffic.

use std::any::Any;
use std::fmt;

/// When a rank should crash, in the rank's own frame of reference.
///
/// Both variants are checked at wire-operation boundaries (send or receive
/// entry), the only points where a simulated process interacts with the rest
/// of the world — crashing mid-computation would be indistinguishable to
/// every peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashPoint {
    /// Crash immediately before the rank's `n`-th wire operation
    /// (0-based: `OpCount(0)` dies before doing anything).
    OpCount(u64),
    /// Crash at the first wire operation whose entry virtual time is
    /// `>= t` nanoseconds.
    VirtualTimeNs(f64),
}

/// Context handed to the injector for one send attempt over a link.
#[derive(Debug, Clone, Copy)]
pub struct LinkCtx {
    /// World rank of the sender.
    pub src_world: usize,
    /// World rank of the receiver.
    pub dst_world: usize,
    /// Logical message index on this (src → dst) link, 0-based.  Stable
    /// across retries of the same message, which lets a plan key its
    /// per-message randomness on `(src, dst, op_index, attempt)`.
    pub op_index: u64,
    /// Payload bytes of the message.
    pub bytes: u64,
}

/// The injector's verdict for one send attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendOutcome {
    /// Deliver the message, optionally late and/or more than once.
    Deliver {
        /// Extra latency added to the arrival time (link jitter), ns.
        extra_delay_ns: f64,
        /// Number of *extra* copies delivered (duplicate-delivery fault).
        /// The receiver deduplicates via wire sequence numbers.
        duplicates: u32,
    },
    /// Lose this attempt: the sender times out and retries with backoff.
    Drop,
}

impl SendOutcome {
    /// The no-fault outcome: deliver once, on time.
    pub const CLEAN: SendOutcome = SendOutcome::Deliver { extra_delay_ns: 0.0, duplicates: 0 };
}

/// A deterministic fault oracle consulted by the wire layer.
///
/// Implementations must be pure functions of their inputs and their own
/// (immutable) configuration — never of wall-clock time or global mutable
/// state — so a seeded plan replays byte-identically.
pub trait FaultInjector: Send + Sync + fmt::Debug {
    /// Judge one send attempt.  `attempt` is 0 for the first try and
    /// increments with each sender-side retransmission.
    fn on_attempt(&self, link: &LinkCtx, attempt: u32) -> SendOutcome;

    /// Bandwidth scale factor for a link (1.0 = healthy; 0.25 = the link
    /// moves bytes at a quarter speed, i.e. `β` is divided by the scale).
    /// Must return a value in `(0, 1]`.
    fn link_bandwidth_scale(&self, _src_world: usize, _dst_world: usize) -> f64 {
        1.0
    }

    /// Crash schedule for a rank, if any.
    fn crash_point(&self, _world: usize) -> Option<CrashPoint> {
        None
    }

    /// Rolling-restart schedule: should a rank crashed by this plan be
    /// reborn (same world rank, incarnation + 1)?  Consulted by
    /// `Universe::launch_elastic` after a plan crash unwinds the rank body;
    /// `incarnation` is the incarnation that just died (0 for the original).
    /// The default — never restart — keeps `launch_faulty` semantics.
    fn restart_after_crash(&self, _world: usize, _incarnation: u32) -> bool {
        false
    }

    /// Join schedule: latent ranks the sponsor (world rank 0) admits
    /// mid-run, as `(joiner world rank, sponsor op count)` pairs.  The
    /// sponsor checks this at every wire-operation prologue and sends the
    /// admission notice when its op count reaches the threshold, so a
    /// seeded plan's joins land at a byte-reproducible point of the run.
    fn join_plan(&self) -> Vec<(usize, u64)> {
        Vec::new()
    }
}

/// Why a rank failed, as reported by `Universe::launch_faulty`.
#[derive(Debug, Clone, PartialEq)]
pub enum RankFailure {
    /// The fault plan crashed this rank at the given virtual time after it
    /// had completed `ops` wire operations.
    Crashed {
        /// Virtual time of death (ns).
        at_ns: f64,
        /// Wire operations completed before death.
        ops: u64,
    },
    /// The rank aborted because a peer's mailbox was gone mid-send
    /// (a cascade effect, not a root cause).
    Aborted {
        /// World rank of the unreachable peer.
        dst: usize,
    },
    /// The rank panicked for an unrelated reason (a real bug).
    Panicked(String),
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankFailure::Crashed { at_ns, ops } => {
                write!(f, "crashed by fault injection at {at_ns:.0} ns after {ops} wire ops")
            }
            RankFailure::Aborted { dst } => write!(f, "aborted: peer rank {dst} unreachable"),
            RankFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// Internal panic payload used to unwind a rank thread killed by the plan.
/// `Universe::launch_faulty` downcasts it back into [`RankFailure::Crashed`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankCrashed {
    pub world: usize,
    pub at_ns: f64,
    pub ops: u64,
}

impl RankFailure {
    /// Map a joined thread's panic payload to a failure report.
    pub(crate) fn classify(payload: Box<dyn Any + Send>) -> RankFailure {
        let payload = match payload.downcast::<RankCrashed>() {
            Ok(c) => return RankFailure::Crashed { at_ns: c.at_ns, ops: c.ops },
            Err(p) => p,
        };
        let payload = match payload.downcast::<crate::runtime::RankAborted>() {
            Ok(a) => return RankFailure::Aborted { dst: a.dst },
            Err(p) => p,
        };
        let payload = match payload.downcast::<String>() {
            Ok(s) => return RankFailure::Panicked(*s),
            Err(p) => p,
        };
        match payload.downcast::<&'static str>() {
            Ok(s) => RankFailure::Panicked((*s).to_string()),
            Err(_) => RankFailure::Panicked("opaque panic payload".to_string()),
        }
    }
}

/// A peer observed (via its death notice) to have crashed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerFailure {
    /// World rank of the dead peer.
    pub world: usize,
    /// Virtual time at which it sent its death notice (ns).
    pub at_ns: f64,
}

impl fmt::Display for PeerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer rank {} crashed at {:.0} ns", self.world, self.at_ns)
    }
}

/// Maximum send attempts before the wire layer stops consulting the
/// injector and force-delivers (a plan can degrade a link, never sever it).
pub const RETRY_MAX_ATTEMPTS: u32 = 16;
/// Base retransmission timeout (ns) for attempt 0.
pub const RETRY_BASE_NS: f64 = 500.0;
/// Exponent cap: backoff stops doubling after this many attempts.
pub const RETRY_BACKOFF_CAP: u32 = 6;

/// Backoff charged to the sender's clock after losing `attempt`
/// (capped exponential: `RETRY_BASE_NS · 2^min(attempt, RETRY_BACKOFF_CAP)`).
pub fn backoff_ns(attempt: u32) -> f64 {
    RETRY_BASE_NS * f64::from(1u32 << attempt.min(RETRY_BACKOFF_CAP))
}

/// Reserved communicator id for the fault protocol (never allocated to a
/// user communicator: `Universe` ids start at 1).
pub(crate) const FAULT_COMM: u64 = 0;
/// Tag of a death notice (broadcast by a crashing rank to every peer).
pub(crate) const FAULT_TAG_DEATH: u32 = 0x00FD_0001;
/// Tag of a liveness ping (sent by `Rank::liveness_exchange`).
pub(crate) const FAULT_TAG_PING: u32 = 0x00FD_0002;
/// Tag of a rejoin notice (broadcast by a reborn rank; payload carries its
/// new incarnation, consumed by `Rank::await_rejoin`).
pub(crate) const FAULT_TAG_JOIN: u32 = 0x00FD_0003;
/// Tag of an admission notice (sponsor → latent rank; payload carries the
/// grown communicator the joiner was admitted into).
pub(crate) const FAULT_TAG_ADMIT: u32 = 0x00FD_0004;
/// Tag of a retirement notice (sponsor → latent rank that will never be
/// admitted: its slot returns `None` without running the rank body).
pub(crate) const FAULT_TAG_RETIRE: u32 = 0x00FD_0005;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_caps() {
        assert_eq!(backoff_ns(0), 500.0);
        assert_eq!(backoff_ns(1), 1000.0);
        assert_eq!(backoff_ns(6), 500.0 * 64.0);
        assert_eq!(backoff_ns(7), 500.0 * 64.0);
        assert_eq!(backoff_ns(15), 500.0 * 64.0);
    }

    #[test]
    fn classify_payloads() {
        let crash: Box<dyn Any + Send> = Box::new(RankCrashed { world: 3, at_ns: 42.0, ops: 7 });
        assert_eq!(RankFailure::classify(crash), RankFailure::Crashed { at_ns: 42.0, ops: 7 });

        let msg: Box<dyn Any + Send> = Box::new("boom".to_string());
        assert_eq!(RankFailure::classify(msg), RankFailure::Panicked("boom".to_string()));

        let s: Box<dyn Any + Send> = Box::new("static boom");
        assert_eq!(RankFailure::classify(s), RankFailure::Panicked("static boom".to_string()));

        let opaque: Box<dyn Any + Send> = Box::new(17u32);
        assert_eq!(
            RankFailure::classify(opaque),
            RankFailure::Panicked("opaque panic payload".to_string())
        );
    }

    #[test]
    fn clean_outcome() {
        assert_eq!(SendOutcome::CLEAN, SendOutcome::Deliver { extra_delay_ns: 0.0, duplicates: 0 });
    }
}
