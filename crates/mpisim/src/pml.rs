//! PML interposition layer.
//!
//! Every message — user point-to-point, the point-to-point decomposition of a
//! collective, or a one-sided operation — passes through this layer on the
//! sender side just before it reaches the wire, which is exactly where the
//! Open MPI `pml_monitoring` MCA component sits ("the monitoring component is
//! plugged into the stack once messages are buffers to be sent to another MPI
//! process", paper Sec 2).
//!
//! Two hook flavours exist:
//!
//! * [`PmlHook`] — global, shared across all ranks (e.g. the simulated NIC
//!   hardware counters, which aggregate per node);
//! * [`LocalPmlHook`] — per-rank, registered on one rank's thread (the
//!   monitoring library, whose state — like the real component's MPI_T
//!   performance variables — is per MPI process).

use std::rc::Rc;

use crate::envelope::MsgKind;

/// One wire event, seen on the sender side.
#[derive(Debug, Clone, Copy)]
pub struct PmlEvent {
    /// World rank of the sender.
    pub src_world: usize,
    /// World rank of the receiver.
    pub dst_world: usize,
    /// Core hosting the sender.
    pub src_core: usize,
    /// Core hosting the receiver.
    pub dst_core: usize,
    /// Payload size in bytes (0-length messages are real events: barriers
    /// and other collectives generate them).
    pub bytes: u64,
    /// Monitoring classification.
    pub kind: MsgKind,
    /// Sender virtual time when the message hit the wire (ns).
    pub vtime_ns: f64,
}

/// A global hook, shared by every rank of the universe.
pub trait PmlHook: Send + Sync {
    /// Called on the sender's thread for every wire message.
    fn on_send(&self, ev: &PmlEvent);
}

/// A per-rank hook, owned by the rank's thread.
pub trait LocalPmlHook {
    /// Called for every wire message this rank sends.
    fn on_send(&self, ev: &PmlEvent);
}

impl<F: Fn(&PmlEvent)> LocalPmlHook for F {
    fn on_send(&self, ev: &PmlEvent) {
        self(ev)
    }
}

/// Handle returned by hook registration, used for removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalHookHandle(pub(crate) u64);

/// Per-rank hook table.
#[derive(Default)]
pub(crate) struct LocalHooks {
    next_id: u64,
    hooks: Vec<(u64, Rc<dyn LocalPmlHook>)>,
}

impl LocalHooks {
    pub(crate) fn add(&mut self, hook: Rc<dyn LocalPmlHook>) -> LocalHookHandle {
        let id = self.next_id;
        self.next_id += 1;
        self.hooks.push((id, hook));
        LocalHookHandle(id)
    }

    pub(crate) fn remove(&mut self, handle: LocalHookHandle) -> bool {
        let before = self.hooks.len();
        self.hooks.retain(|(id, _)| *id != handle.0);
        self.hooks.len() != before
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }

    /// Run every hook on one event.  Called with the table borrowed, so a
    /// hook must not register or remove hooks from inside its callback
    /// (that would be a reentrancy bug; the monitoring library never does).
    pub(crate) fn dispatch(&self, ev: &PmlEvent) {
        for (_, h) in &self.hooks {
            h.on_send(ev);
        }
    }

    /// Snapshot the hooks (tests and slow paths only; the hot path uses
    /// [`LocalHooks::dispatch`]).
    #[allow(dead_code)]
    pub(crate) fn snapshot(&self) -> Vec<Rc<dyn LocalPmlHook>> {
        self.hooks.iter().map(|(_, h)| Rc::clone(h)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn local_hooks_add_remove() {
        let mut t = LocalHooks::default();
        let seen = Rc::new(Cell::new(0u64));
        let s = Rc::clone(&seen);
        let h = t.add(Rc::new(move |ev: &PmlEvent| s.set(s.get() + ev.bytes)));
        let ev = PmlEvent {
            src_world: 0,
            dst_world: 1,
            src_core: 0,
            dst_core: 1,
            bytes: 42,
            kind: MsgKind::P2pUser,
            vtime_ns: 0.0,
        };
        for hook in t.snapshot() {
            hook.on_send(&ev);
        }
        assert_eq!(seen.get(), 42);
        assert!(t.remove(h));
        assert!(!t.remove(h));
        assert!(t.is_empty());
    }
}
