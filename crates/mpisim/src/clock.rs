//! Per-rank virtual clock.

use std::cell::Cell;

/// A monotone virtual clock owned by one rank (nanoseconds as `f64`).
///
/// The clock only ever moves forward: [`VirtualClock::advance_to`] is a
/// no-op when the target is in the past, which is exactly the
/// `max(local, arrival)` rule of conservative timestamping.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: Cell<f64>,
}

impl VirtualClock {
    /// A clock starting at virtual time zero.
    pub fn new() -> Self {
        Self { now_ns: Cell::new(0.0) }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.now_ns.get()
    }

    /// Current virtual time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_ns.get() * 1e-9
    }

    /// Advance the clock by `delta_ns` (must be non-negative).
    pub fn tick(&self, delta_ns: f64) {
        debug_assert!(delta_ns >= 0.0, "clock cannot move backwards");
        self.now_ns.set(self.now_ns.get() + delta_ns);
    }

    /// Move the clock forward to `target_ns` if it is in the future.
    pub fn advance_to(&self, target_ns: f64) {
        if target_ns > self.now_ns.get() {
            self.now_ns.set(target_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_ticks() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0.0);
        c.tick(1500.0);
        assert_eq!(c.now_ns(), 1500.0);
        assert!((c.now_s() - 1.5e-6).abs() < 1e-15);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = VirtualClock::new();
        c.tick(100.0);
        c.advance_to(50.0);
        assert_eq!(c.now_ns(), 100.0);
        c.advance_to(250.0);
        assert_eq!(c.now_ns(), 250.0);
    }
}
