//! Scalar datatypes that can travel over the wire.

/// A fixed-size scalar that can be serialized to/from little-endian bytes.
///
/// This plays the role of MPI's basic datatypes.  Conversions copy; the
/// simulator favours obvious correctness over zero-copy tricks since data
/// movement is not what we measure (time is virtual).
pub trait Scalar: Copy + Send + 'static {
    /// Size of one element in bytes.
    const SIZE: usize;

    /// Serialize a slice into little-endian bytes.
    fn to_bytes(slice: &[Self]) -> Vec<u8>;

    /// Deserialize little-endian bytes into a vector.
    ///
    /// # Panics
    /// Panics when `bytes.len()` is not a multiple of [`Scalar::SIZE`].
    fn from_bytes(bytes: &[u8]) -> Vec<Self>;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn to_bytes(slice: &[Self]) -> Vec<u8> {
                let mut out = Vec::with_capacity(slice.len() * Self::SIZE);
                for v in slice {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }

            fn from_bytes(bytes: &[u8]) -> Vec<Self> {
                #[allow(clippy::modulo_one)] // SIZE is 1 for byte-wide types
                let aligned = bytes.len() % Self::SIZE == 0;
                assert!(
                    aligned,
                    "byte length {} not a multiple of element size {}",
                    bytes.len(),
                    Self::SIZE
                );
                bytes
                    .chunks_exact(Self::SIZE)
                    .map(|c| <$t>::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            }
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let v: Vec<i32> = vec![-1, 0, 7, i32::MAX, i32::MIN];
        assert_eq!(i32::from_bytes(&i32::to_bytes(&v)), v);
    }

    #[test]
    fn roundtrip_floats() {
        let v: Vec<f64> = vec![0.0, -1.5, f64::MAX, 1e-300];
        assert_eq!(f64::from_bytes(&f64::to_bytes(&v)), v);
    }

    #[test]
    fn sizes() {
        assert_eq!(<u8 as Scalar>::SIZE, 1);
        assert_eq!(<i32 as Scalar>::SIZE, 4);
        assert_eq!(<f64 as Scalar>::SIZE, 8);
    }

    #[test]
    fn empty_slice() {
        let v: Vec<u64> = vec![];
        assert_eq!(u64::from_bytes(&u64::to_bytes(&v)), v);
    }

    #[test]
    #[should_panic]
    fn misaligned_length_panics() {
        i32::from_bytes(&[1, 2, 3]);
    }
}
