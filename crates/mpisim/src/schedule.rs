//! Collective communication *schedules*.
//!
//! A schedule is the pure communication pattern of a collective — per rank,
//! an ordered list of sends (with byte counts) and receives — detached from
//! data movement.  Schedules serve two purposes:
//!
//! * [`execute`] replays a schedule on the live runtime with synthetic
//!   payloads, so benchmarks can run paper-scale buffers (2·10⁸ ints)
//!   without allocating them while the PML hooks and the cost model see the
//!   real sizes;
//! * [`evaluate`] computes the virtual completion times analytically, with
//!   the exact timing rules of the threaded runtime — tests cross-check the
//!   two paths against each other.

use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use mim_analyze::{CommPlan, Op, Program, Report, Src, Tag, Verdict, WORLD};
use mim_topology::Machine;
use mim_trace::{TraceData, Tracer};

use crate::collectives::binomial_peers;
use crate::comm::Comm;
use crate::envelope::{Ctx, MsgKind, Payload};
use crate::runtime::{Rank, SrcSel, TagSel};

/// One step of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Send `bytes` to communicator rank `peer`.
    Send { peer: usize, bytes: u64 },
    /// Receive the next message from communicator rank `peer`.
    Recv { peer: usize },
}

/// A complete collective pattern: `steps[r]` is rank `r`'s program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    steps: Vec<Vec<Step>>,
}

impl Schedule {
    /// Build from per-rank programs.
    pub fn new(steps: Vec<Vec<Step>>) -> Self {
        Self { steps }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.steps.len()
    }

    /// Program of one rank.
    pub fn rank_steps(&self, r: usize) -> &[Step] {
        &self.steps[r]
    }

    /// Multiset of messages as (src, dst, bytes) triples, sorted — the
    /// ground truth the monitoring library must reproduce.
    pub fn message_multiset(&self) -> Vec<(usize, usize, u64)> {
        let mut msgs = Vec::new();
        for (src, steps) in self.steps.iter().enumerate() {
            for s in steps {
                if let Step::Send { peer, bytes } = *s {
                    msgs.push((src, peer, bytes));
                }
            }
        }
        msgs.sort_unstable();
        msgs
    }

    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.message_multiset().iter().map(|&(_, _, b)| b).sum()
    }

    /// Total number of messages.
    pub fn total_messages(&self) -> usize {
        self.message_multiset().len()
    }

    /// Check the schedule is self-consistent: every send has a matching
    /// receive on the peer, in matching per-channel order, and the whole
    /// pattern can run to completion under the eager-send model.
    ///
    /// # Errors
    /// Returns the full diagnostic list (one per line, each with its
    /// stable `MIM-Axxx` code) — not just the first failure.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_totals().map(|_| ())
    }

    /// Full static-analysis report for this schedule: the deadlock-lattice
    /// verdict, *all* diagnostics, and per-channel traffic totals.  This is
    /// `mim-analyze` applied to the schedule's lowered [`Program`] — the
    /// single matcher behind [`Schedule::validate`], the `mim-analyze` CLI,
    /// and the CI analyzer gate.
    pub fn analyze(&self) -> Report {
        mim_analyze::analyze(self)
    }

    /// Like [`Schedule::validate`], reporting per-channel traffic totals on
    /// success.
    ///
    /// The analysis *replays* the schedule: sends are eager (never block),
    /// each receive consumes the head of its per-channel FIFO and blocks
    /// until one is available.  This rejects schedules the seed's
    /// count-comparison accepted — equal per-channel counts but crossed
    /// order (a circular wait), which deadlock any real execution — and
    /// flags sends that are never received.  The wait-for-graph replay
    /// itself lives in `mim-analyze` (this method keeps only the
    /// schedule-shaped `Result` wrapper); the pre-analyzer FIFO replay is
    /// retained as a `#[cfg(test)]` oracle with an equivalence property.
    pub fn validate_totals(&self) -> Result<Vec<ChannelTotals>, String> {
        let report = self.analyze();
        let mut problems: Vec<String> =
            report.errors().map(std::string::ToString::to_string).collect();
        if problems.is_empty() && !matches!(report.verdict, Verdict::DeadlockFree) {
            // Schedules are wildcard-free, so anything below `DeadlockFree`
            // must have carried an error diagnostic already; this is a
            // belt-and-braces fallback.
            problems.push(format!("schedule verdict: {}", report.verdict.kind()));
        }
        if !problems.is_empty() {
            return Err(problems.join("\n"));
        }
        // Schedule lowering uses one comm and one tag, so `(src, dst)`
        // identifies a channel 1:1.
        Ok(report
            .channels
            .iter()
            .map(|c| ChannelTotals { src: c.src, dst: c.dst, messages: c.messages, bytes: c.bytes })
            .collect())
    }

    /// The seed's count-and-FIFO replay, retained verbatim as the
    /// equivalence oracle for the `mim-analyze` rebase: the
    /// `analyzer_matches_replay_reference` property compares the two on
    /// random valid and corrupted schedules.  Not for production use.
    #[cfg(test)]
    pub(crate) fn validate_totals_replay_reference(&self) -> Result<Vec<ChannelTotals>, String> {
        let n = self.nranks();
        for (r, steps) in self.steps.iter().enumerate() {
            for s in steps {
                let (Step::Send { peer, .. } | Step::Recv { peer }) = *s;
                if peer >= n {
                    let dir =
                        if matches!(s, Step::Send { .. }) { "sends to" } else { "receives from" };
                    return Err(format!("rank {r} {dir} out-of-range {peer}"));
                }
            }
        }
        let mut pc = vec![0usize; n];
        // In-flight (sent, not yet received) message count per (src, dst).
        let mut queued: HashMap<(usize, usize), u64> = HashMap::new();
        let mut totals: HashMap<(usize, usize), (u64, u64)> = HashMap::new();
        // (src, dst) → the dst rank currently blocked on that channel.
        let mut blocked: HashMap<(usize, usize), usize> = HashMap::new();
        let mut remaining: usize = self.steps.iter().map(Vec::len).sum();
        let mut runnable: Vec<usize> = (0..n).rev().collect();
        while let Some(r) = runnable.pop() {
            while pc[r] < self.steps[r].len() {
                match self.steps[r][pc[r]] {
                    Step::Send { peer, bytes } => {
                        *queued.entry((r, peer)).or_default() += 1;
                        let t = totals.entry((r, peer)).or_default();
                        t.0 += 1;
                        t.1 += bytes;
                        if let Some(w) = blocked.remove(&(r, peer)) {
                            runnable.push(w);
                        }
                    }
                    Step::Recv { peer } => {
                        let pending = queued.entry((peer, r)).or_default();
                        if *pending == 0 {
                            blocked.insert((peer, r), r);
                            break;
                        }
                        *pending -= 1;
                    }
                }
                pc[r] += 1;
                remaining -= 1;
            }
        }
        if remaining > 0 {
            let mut stuck: Vec<_> = blocked.iter().map(|(&(src, dst), _)| (dst, src)).collect();
            stuck.sort_unstable();
            let (dst, src) = stuck[0];
            return Err(format!(
                "schedule deadlocks: rank {dst} waits for a message from rank {src} \
                 that is never sent in time ({remaining} steps unreached)"
            ));
        }
        if let Some((&(src, dst), &count)) =
            queued.iter().filter(|(_, &c)| c > 0).min_by_key(|(&k, _)| k)
        {
            return Err(format!("channel {src}→{dst} has {count} sends that are never received"));
        }
        let mut report: Vec<ChannelTotals> = totals
            .into_iter()
            .map(|((src, dst), (messages, bytes))| ChannelTotals { src, dst, messages, bytes })
            .collect();
        report.sort_unstable_by_key(|c| (c.src, c.dst));
        Ok(report)
    }
}

/// A [`Schedule`] *is* a communication plan: every step lowers to a
/// world-communicator point-to-point op with a single tag (schedule replay
/// uses one collective tag for the whole pattern, so per-peer FIFO order is
/// exactly the analyzer's per-channel FIFO).
impl CommPlan for Schedule {
    fn plan_name(&self) -> String {
        let steps: usize = self.steps.iter().map(Vec::len).sum();
        format!("schedule[{} ranks, {steps} steps]", self.nranks())
    }

    fn lower(&self) -> Program {
        let mut p = Program::new(self.plan_name(), self.nranks());
        for (r, steps) in self.steps.iter().enumerate() {
            for s in steps {
                p.push(
                    r,
                    match *s {
                        Step::Send { peer, bytes } => {
                            Op::Send { comm: WORLD, dst: peer, tag: 0, bytes }
                        }
                        Step::Recv { peer } => {
                            Op::Recv { comm: WORLD, src: Src::Rank(peer), tag: Tag::Is(0) }
                        }
                    },
                );
            }
        }
        p
    }
}

/// Per-channel traffic totals reported by [`Schedule::validate_totals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelTotals {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Messages on the channel.
    pub messages: u64,
    /// Total payload bytes on the channel.
    pub bytes: u64,
}

// ---------------------------------------------------------------------------
// Generators (mirror the live algorithms in `collectives`)
// ---------------------------------------------------------------------------

/// Binomial-tree broadcast pattern.
pub fn bcast_binomial(n: usize, root: usize, bytes: u64) -> Schedule {
    let mut steps = vec![Vec::new(); n];
    for vrank in 0..n {
        let world = (vrank + root) % n;
        let (parent, children) = binomial_peers(vrank, n);
        let prog = &mut steps[world];
        if let Some(p) = parent {
            prog.push(Step::Recv { peer: (p + root) % n });
        }
        for c in children {
            prog.push(Step::Send { peer: (c + root) % n, bytes });
        }
    }
    Schedule::new(steps)
}

/// Binomial-tree reduce pattern (receives narrowest-child-first, mirroring
/// [`crate::collectives::reduce_binomial`]).
pub fn reduce_binomial(n: usize, root: usize, bytes: u64) -> Schedule {
    let mut steps = vec![Vec::new(); n];
    for vrank in 0..n {
        let world = (vrank + root) % n;
        let (parent, mut children) = binomial_peers(vrank, n);
        children.reverse(); // narrowest first, like the mask loop
        let prog = &mut steps[world];
        for c in children {
            prog.push(Step::Recv { peer: (c + root) % n });
        }
        if let Some(p) = parent {
            prog.push(Step::Send { peer: (p + root) % n, bytes });
        }
    }
    Schedule::new(steps)
}

/// Binary-tree broadcast pattern.
pub fn bcast_binary(n: usize, root: usize, bytes: u64) -> Schedule {
    let mut steps = vec![Vec::new(); n];
    for vrank in 0..n {
        let world = (vrank + root) % n;
        let prog = &mut steps[world];
        if vrank != 0 {
            prog.push(Step::Recv { peer: ((vrank - 1) / 2 + root) % n });
        }
        for c in [2 * vrank + 1, 2 * vrank + 2] {
            if c < n {
                prog.push(Step::Send { peer: (c + root) % n, bytes });
            }
        }
    }
    Schedule::new(steps)
}

/// Binary-tree reduce pattern (the paper's Fig 5a algorithm).
pub fn reduce_binary(n: usize, root: usize, bytes: u64) -> Schedule {
    let mut steps = vec![Vec::new(); n];
    for vrank in 0..n {
        let world = (vrank + root) % n;
        let prog = &mut steps[world];
        for c in [2 * vrank + 1, 2 * vrank + 2] {
            if c < n {
                prog.push(Step::Recv { peer: (c + root) % n });
            }
        }
        if vrank != 0 {
            prog.push(Step::Send { peer: ((vrank - 1) / 2 + root) % n, bytes });
        }
    }
    Schedule::new(steps)
}

/// Ring allgather pattern with `block_bytes` per contribution.
#[allow(clippy::needless_range_loop)] // indices address several arrays at once
pub fn allgather_ring(n: usize, block_bytes: u64) -> Schedule {
    let mut steps = vec![Vec::new(); n];
    for me in 0..n {
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let prog = &mut steps[me];
        for _step in 0..n.saturating_sub(1) {
            prog.push(Step::Send { peer: right, bytes: block_bytes });
            prog.push(Step::Recv { peer: left });
        }
    }
    Schedule::new(steps)
}

/// Dissemination barrier pattern (zero-byte messages).
#[allow(clippy::needless_range_loop)] // indices address several arrays at once
pub fn barrier_dissemination(n: usize) -> Schedule {
    let mut steps = vec![Vec::new(); n];
    for me in 0..n {
        let mut dist = 1;
        while dist < n {
            steps[me].push(Step::Send { peer: (me + dist) % n, bytes: 0 });
            steps[me].push(Step::Recv { peer: (me + n - dist) % n });
            dist <<= 1;
        }
    }
    Schedule::new(steps)
}

/// Recursive-doubling allreduce pattern with non-power-of-two folding,
/// mirroring [`crate::collectives::allreduce_recursive_doubling`].
#[allow(clippy::needless_range_loop)] // indices address several arrays at once
pub fn allreduce_recursive_doubling(n: usize, bytes: u64) -> Schedule {
    let mut steps = vec![Vec::new(); n];
    if n == 1 {
        return Schedule::new(steps);
    }
    let pow2 = n.next_power_of_two() >> usize::from(!n.is_power_of_two());
    let rem = n - pow2;
    let to_old = |r: usize| if r < rem { 2 * r + 1 } else { r + rem };
    for me in 0..n {
        let prog = &mut steps[me];
        let newrank: Option<usize> = if me < 2 * rem {
            if me % 2 == 0 {
                prog.push(Step::Send { peer: me + 1, bytes });
                None
            } else {
                prog.push(Step::Recv { peer: me - 1 });
                Some(me / 2)
            }
        } else {
            Some(me - rem)
        };
        if let Some(nr) = newrank {
            let mut mask = 1;
            while mask < pow2 {
                let peer = to_old(nr ^ mask);
                prog.push(Step::Send { peer, bytes });
                prog.push(Step::Recv { peer });
                mask <<= 1;
            }
        }
        if me < 2 * rem {
            if me % 2 == 0 {
                prog.push(Step::Recv { peer: me + 1 });
            } else {
                prog.push(Step::Send { peer: me - 1, bytes });
            }
        }
    }
    Schedule::new(steps)
}

/// Pairwise (ring-offset) all-to-all pattern with equal `chunk_bytes`
/// chunks, mirroring [`crate::collectives::alltoall_pairwise`].
pub fn alltoall_pairwise(n: usize, chunk_bytes: u64) -> Schedule {
    let mut steps = vec![Vec::new(); n];
    for (me, prog) in steps.iter_mut().enumerate() {
        for step in 1..n {
            let to = (me + step) % n;
            let from = (me + n - step) % n;
            prog.push(Step::Send { peer: to, bytes: chunk_bytes });
            prog.push(Step::Recv { peer: from });
        }
    }
    Schedule::new(steps)
}

/// Segmented (pipelined) binary-tree broadcast pattern: the payload is cut
/// into `ceil(bytes / seg_bytes)` segments, each forwarded down the binary
/// tree; interleaved so interior ranks forward segment `s` while `s+1` is
/// in flight.  Mirrors [`crate::collectives::bcast_binary_segmented`]
/// (without its tiny length-header message).  Used to quantify how much
/// pipelining narrows the reordering gap in the Fig 5 discussion.
pub fn bcast_binary_segmented(n: usize, root: usize, bytes: u64, seg_bytes: u64) -> Schedule {
    assert!(seg_bytes > 0, "segment size must be positive");
    let mut steps = vec![Vec::new(); n];
    let nsegs = bytes.div_ceil(seg_bytes).max(1);
    for vrank in 0..n {
        let world = (vrank + root) % n;
        let parent = (vrank != 0).then(|| ((vrank - 1) / 2 + root) % n);
        let children: Vec<usize> = [2 * vrank + 1, 2 * vrank + 2]
            .into_iter()
            .filter(|&c| c < n)
            .map(|c| (c + root) % n)
            .collect();
        let prog = &mut steps[world];
        for s in 0..nsegs {
            let seg = if s + 1 == nsegs { bytes - (nsegs - 1) * seg_bytes } else { seg_bytes };
            if let Some(p) = parent {
                prog.push(Step::Recv { peer: p });
            }
            for &c in &children {
                prog.push(Step::Send { peer: c, bytes: seg });
            }
        }
    }
    Schedule::new(steps)
}

// ---------------------------------------------------------------------------
// Execution & evaluation
// ---------------------------------------------------------------------------

/// Replay a schedule on the live runtime with synthetic payloads.
///
/// Collective over `comm`; every member must call it with the same schedule.
///
/// # Panics
/// Panics when the schedule's rank count differs from the communicator size.
pub fn execute(rank: &Rank, comm: &Comm, schedule: &Schedule) {
    assert_eq!(schedule.nranks(), comm.size(), "schedule/communicator size mismatch");
    let _span = rank.coll_span("schedule_execute", comm);
    let tag = rank.next_coll_tag(comm);
    for step in schedule.rank_steps(comm.rank()) {
        match *step {
            Step::Send { peer, bytes } => rank.wire_send(
                comm,
                peer,
                tag,
                Ctx::Coll,
                MsgKind::Collective,
                Payload::Synthetic(bytes),
            ),
            Step::Recv { peer } => {
                rank.wire_recv(comm, SrcSel::Rank(peer), TagSel::Is(tag), Ctx::Coll);
            }
        }
    }
}

/// Analytically compute per-rank completion times (ns) of a schedule, using
/// the exact timing rules of the threaded runtime: a send occupies the
/// sender for `send_overhead_ns + β·bytes` and the message lands `α` after
/// that; a receive waits for arrival then pays `recv_overhead_ns`.
/// `rank_to_core[r]` gives the core hosting communicator rank `r`.
///
/// # Panics
/// Panics on a deadlocked (invalid) schedule.
pub fn evaluate(
    schedule: &Schedule,
    machine: &Machine,
    rank_to_core: &[usize],
    send_overhead_ns: f64,
    recv_overhead_ns: f64,
) -> Vec<f64> {
    evaluate_traced(
        schedule,
        machine,
        rank_to_core,
        send_overhead_ns,
        recv_overhead_ns,
        false,
        Tracer::global(),
    )
}

/// Like [`evaluate`] but with per-node NIC contention: cross-node sends of
/// one node serialize on its shared link (the runtime's
/// `UniverseConfig::nic_contention` model).  Events are processed in
/// virtual-time order, so this variant is deterministic — unlike the live
/// runtime under contention, whose link bookings depend on thread timing.
pub fn evaluate_contended(
    schedule: &Schedule,
    machine: &Machine,
    rank_to_core: &[usize],
    send_overhead_ns: f64,
    recv_overhead_ns: f64,
) -> Vec<f64> {
    evaluate_traced(
        schedule,
        machine,
        rank_to_core,
        send_overhead_ns,
        recv_overhead_ns,
        true,
        Tracer::global(),
    )
}

/// [`evaluate`] / [`evaluate_contended`] with an explicit tracer: each
/// evaluator step is recorded as a `des` event on a dedicated track (tests
/// inject a tracer here; the plain entry points use the `MIM_TRACE` global
/// one).  The instrumentation only *observes* the engine — it performs no
/// float arithmetic of its own — so results stay bit-identical to the
/// untraced run and to the scan reference.
pub fn evaluate_traced(
    schedule: &Schedule,
    machine: &Machine,
    rank_to_core: &[usize],
    send_overhead_ns: f64,
    recv_overhead_ns: f64,
    contention: bool,
    tracer: Option<Arc<Tracer>>,
) -> Vec<f64> {
    simulate(
        schedule,
        machine,
        rank_to_core,
        send_overhead_ns,
        recv_overhead_ns,
        contention,
        tracer,
    )
}

/// Ready-queue entry ordered as a *min*-heap on `(clock, rank)` — the same
/// "smallest clock, lowest rank breaks ties" rule as the seed's linear scan,
/// so shared-resource bookings happen in the identical order and results
/// stay bit-identical.
struct Ready(f64, usize);

impl PartialEq for Ready {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Ready {}
impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest first.
        other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
    }
}

/// Discrete-event engine: repeatedly run the *ready* rank with the smallest
/// clock for one step, so shared-resource bookings happen in virtual-time
/// order.
///
/// The ready set is an indexed heap: ranks are keyed by their clock, and a
/// rank popped while its receive has no message yet is *parked* on that
/// channel and re-enqueued (at its own, unchanged clock) when a send lands
/// there.  Each of the E steps costs O(log n) instead of the seed's O(n)
/// ready-scan, taking the whole evaluation from O(E·n) to O(E log n) — the
/// difference between minutes and milliseconds at Table-1 / NP=256 scales
/// and beyond.
fn simulate(
    schedule: &Schedule,
    machine: &Machine,
    rank_to_core: &[usize],
    send_overhead_ns: f64,
    recv_overhead_ns: f64,
    contention: bool,
    tracer: Option<Arc<Tracer>>,
) -> Vec<f64> {
    let n = schedule.nranks();
    assert_eq!(rank_to_core.len(), n, "rank/core mapping size mismatch");
    let trace = tracer.as_ref().map(|t| t.track("des".to_string()));
    let mut clock = vec![0.0f64; n];
    let mut pc = vec![0usize; n];
    let mut channels: HashMap<(usize, usize), VecDeque<f64>> = HashMap::new();
    let mut nic_free = vec![0.0f64; machine.num_nodes()];
    // Channels with a receiver currently parked on them (the parked rank is
    // the channel's dst; it holds no heap entry while parked).
    let mut parked: HashSet<(usize, usize)> = HashSet::new();
    let mut remaining: usize = (0..n).map(|r| schedule.steps[r].len()).sum();
    let mut heap = BinaryHeap::with_capacity(n);
    for (r, steps) in schedule.steps.iter().enumerate() {
        if !steps.is_empty() {
            heap.push(Ready(clock[r], r));
        }
    }
    while remaining > 0 {
        let Some(Ready(_, r)) = heap.pop() else {
            let flight = match &tracer {
                Some(t) => format!("\nflight recorder:\n{}", t.flight_report(32)),
                None => String::new(),
            };
            panic!("schedule deadlocked during evaluation{flight}");
        };
        match schedule.steps[r][pc[r]] {
            Step::Send { peer, bytes } => {
                let (src, dst) = (rank_to_core[r], rank_to_core[peer]);
                let link = machine.link_params(src, dst);
                let busy = link.beta_ns_per_byte * bytes as f64;
                clock[r] += send_overhead_ns;
                if contention && machine.crosses_network(src, dst) {
                    let node = machine.node_of_core(src);
                    let start = nic_free[node].max(clock[r]);
                    nic_free[node] = start + busy;
                    clock[r] = start + busy;
                } else {
                    clock[r] += busy;
                }
                channels.entry((r, peer)).or_default().push_back(clock[r] + link.alpha_ns);
                if parked.remove(&(r, peer)) {
                    heap.push(Ready(clock[peer], peer));
                }
                if let Some(t) = &trace {
                    t.record(clock[r], TraceData::DesStep { rank: r, op: "send", peer, bytes });
                }
            }
            Step::Recv { peer } => {
                let Some(arrival) = channels.get_mut(&(peer, r)).and_then(VecDeque::pop_front)
                else {
                    parked.insert((peer, r));
                    if let Some(t) = &trace {
                        t.record(
                            clock[r],
                            TraceData::DesStep { rank: r, op: "park", peer, bytes: 0 },
                        );
                    }
                    continue;
                };
                clock[r] = clock[r].max(arrival) + recv_overhead_ns;
                if let Some(t) = &trace {
                    t.record(clock[r], TraceData::DesStep { rank: r, op: "recv", peer, bytes: 0 });
                }
            }
        }
        pc[r] += 1;
        remaining -= 1;
        if pc[r] < schedule.steps[r].len() {
            heap.push(Ready(clock[r], r));
        }
    }
    if let Some(t) = &tracer {
        t.flush();
    }
    clock
}

/// The seed's O(E·n) ready-scan evaluator, retained verbatim as the
/// equivalence oracle for [`evaluate`]/[`evaluate_contended`]: the
/// `heap_evaluator_matches_scan_reference` property and the `des_evaluate`
/// microbench both compare against it.  Not for production use.
pub fn evaluate_scan_reference(
    schedule: &Schedule,
    machine: &Machine,
    rank_to_core: &[usize],
    send_overhead_ns: f64,
    recv_overhead_ns: f64,
    contention: bool,
) -> Vec<f64> {
    let n = schedule.nranks();
    assert_eq!(rank_to_core.len(), n, "rank/core mapping size mismatch");
    let mut clock = vec![0.0f64; n];
    let mut pc = vec![0usize; n];
    let mut channels: HashMap<(usize, usize), VecDeque<f64>> = HashMap::new();
    let mut nic_free = vec![0.0f64; machine.num_nodes()];
    let mut remaining: usize = (0..n).map(|r| schedule.steps[r].len()).sum();
    while remaining > 0 {
        // Pick the ready rank with the smallest clock.
        let mut next: Option<(f64, usize)> = None;
        for r in 0..n {
            if pc[r] == schedule.steps[r].len() {
                continue;
            }
            let ready = match schedule.steps[r][pc[r]] {
                Step::Send { .. } => true,
                Step::Recv { peer } => channels.get(&(peer, r)).is_some_and(|q| !q.is_empty()),
            };
            if ready && next.is_none_or(|(t, _)| clock[r] < t) {
                next = Some((clock[r], r));
            }
        }
        let Some((_, r)) = next else {
            panic!("schedule deadlocked during evaluation");
        };
        match schedule.steps[r][pc[r]] {
            Step::Send { peer, bytes } => {
                let (src, dst) = (rank_to_core[r], rank_to_core[peer]);
                let link = machine.link_params(src, dst);
                let busy = link.beta_ns_per_byte * bytes as f64;
                clock[r] += send_overhead_ns;
                if contention && machine.crosses_network(src, dst) {
                    let node = machine.node_of_core(src);
                    let start = nic_free[node].max(clock[r]);
                    nic_free[node] = start + busy;
                    clock[r] = start + busy;
                } else {
                    clock[r] += busy;
                }
                channels.entry((r, peer)).or_default().push_back(clock[r] + link.alpha_ns);
            }
            Step::Recv { peer } => {
                let arrival = channels
                    .get_mut(&(peer, r))
                    .and_then(VecDeque::pop_front)
                    .expect("readiness check guaranteed a message");
                clock[r] = clock[r].max(arrival) + recv_overhead_ns;
            }
        }
        pc[r] += 1;
        remaining -= 1;
    }
    clock
}

/// Max completion time over all ranks — the collective's virtual makespan.
pub fn makespan(
    schedule: &Schedule,
    machine: &Machine,
    rank_to_core: &[usize],
    send_overhead_ns: f64,
    recv_overhead_ns: f64,
) -> f64 {
    evaluate(schedule, machine, rank_to_core, send_overhead_ns, recv_overhead_ns)
        .into_iter()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    use super::*;
    use mim_analyze::Code;
    use mim_topology::{Machine, Placement};
    use mim_util::prop::Gen;

    use crate::runtime::{Universe, UniverseConfig};

    const NS: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 12, 16];

    /// A random built-in generator schedule (all of them are valid).
    fn random_generator_schedule(g: &mut Gen, n: usize) -> Schedule {
        let root = g.index(n);
        let bytes = g.gen_range(1u64..10_000);
        match g.index(9) {
            0 => bcast_binomial(n, root, bytes),
            1 => bcast_binary(n, root, bytes),
            2 => reduce_binomial(n, root, bytes),
            3 => reduce_binary(n, root, bytes),
            4 => allgather_ring(n, bytes),
            5 => barrier_dissemination(n),
            6 => allreduce_recursive_doubling(n, bytes),
            7 => alltoall_pairwise(n, bytes),
            _ => bcast_binary_segmented(n, root, bytes, (bytes / 3).max(1)),
        }
    }

    /// Apply one guaranteed-breaking corruption in place; returns its label.
    fn corrupt_schedule(g: &mut Gen, steps: &mut [Vec<Step>]) -> &'static str {
        let n = steps.len();
        let positions = |steps: &[Vec<Step>], want_send: bool| -> Vec<(usize, usize)> {
            let mut out = Vec::new();
            for (r, prog) in steps.iter().enumerate() {
                for (i, s) in prog.iter().enumerate() {
                    if matches!(s, Step::Send { .. }) == want_send {
                        out.push((r, i));
                    }
                }
            }
            out
        };
        loop {
            match g.index(4) {
                0 => {
                    let recvs = positions(steps, false);
                    if recvs.is_empty() {
                        continue;
                    }
                    let &(r, i) = g.choose(&recvs);
                    steps[r].remove(i);
                    return "dropped recv";
                }
                1 => {
                    let sends = positions(steps, true);
                    if sends.is_empty() {
                        continue;
                    }
                    let &(r, i) = g.choose(&sends);
                    steps[r].remove(i);
                    return "dropped send";
                }
                2 => {
                    let sends = positions(steps, true);
                    if sends.is_empty() || n < 2 {
                        continue;
                    }
                    let &(r, i) = g.choose(&sends);
                    let Step::Send { peer, .. } = &mut steps[r][i] else { unreachable!() };
                    *peer = (*peer + 1 + g.index(n - 1)) % n;
                    return "retargeted send";
                }
                _ => {
                    // Crossed-order injection: two ranks each wait for the
                    // other *before* their (appended) matching sends — a
                    // certain circular wait, whatever the base schedule.
                    if n < 2 {
                        continue;
                    }
                    let a = g.index(n);
                    let b = (a + 1 + g.index(n - 1)) % n;
                    steps[a].insert(0, Step::Recv { peer: b });
                    steps[b].insert(0, Step::Recv { peer: a });
                    steps[a].push(Step::Send { peer: b, bytes: 1 });
                    steps[b].push(Step::Send { peer: a, bytes: 1 });
                    return "crossed order";
                }
            }
        }
    }

    #[test]
    fn all_generators_validate() {
        for &n in NS {
            for root in [0, n / 2, n - 1] {
                bcast_binomial(n, root, 100).validate().unwrap();
                bcast_binary(n, root, 100).validate().unwrap();
                reduce_binomial(n, root, 100).validate().unwrap();
                reduce_binary(n, root, 100).validate().unwrap();
            }
            allgather_ring(n, 8).validate().unwrap();
            barrier_dissemination(n).validate().unwrap();
            allreduce_recursive_doubling(n, 64).validate().unwrap();
            alltoall_pairwise(n, 32).validate().unwrap();
            bcast_binary_segmented(n, 0, 1000, 100).validate().unwrap();
        }
    }

    #[test]
    fn tree_message_counts() {
        // Any broadcast/reduce tree over n ranks moves exactly n-1 messages.
        for &n in NS {
            assert_eq!(bcast_binomial(n, 0, 10).total_messages(), n - 1);
            assert_eq!(bcast_binary(n, 2 % n, 10).total_messages(), n - 1);
            assert_eq!(reduce_binomial(n, 0, 10).total_messages(), n - 1);
            assert_eq!(reduce_binary(n, 0, 10).total_messages(), n - 1);
            assert_eq!(bcast_binomial(n, 0, 10).total_bytes(), 10 * (n as u64 - 1));
        }
    }

    #[test]
    fn ring_message_counts() {
        let s = allgather_ring(6, 100);
        assert_eq!(s.total_messages(), 6 * 5);
        assert_eq!(s.total_bytes(), 3000);
    }

    #[test]
    fn alltoall_message_counts() {
        let s = alltoall_pairwise(5, 40);
        assert_eq!(s.total_messages(), 5 * 4);
        assert_eq!(s.total_bytes(), 800);
        // The live collective produces the same multiset (5 ranks, 10-byte
        // chunks of u64 -> use 5 u64 per chunk = 40 bytes).
        let machine = Machine::cluster(1, 1, 8);
        let u = Universe::new(UniverseConfig::new(machine, Placement::packed(5)));
        u.launch(|rank| {
            let world = rank.comm_world();
            let data = vec![world.rank() as u64; 25];
            rank.alltoall(&world, &data);
        });
    }

    #[test]
    fn reduce_is_transposed_bcast() {
        // The reduce tree must be the bcast tree with arrows reversed.
        for &n in NS {
            let b: Vec<_> = bcast_binomial(n, 3 % n, 7)
                .message_multiset()
                .into_iter()
                .map(|(s, d, by)| (d, s, by))
                .collect();
            let mut b = b;
            b.sort_unstable();
            assert_eq!(b, reduce_binomial(n, 3 % n, 7).message_multiset());
        }
    }

    #[test]
    fn evaluator_matches_threaded_runtime() {
        // The analytic evaluator and the live execution must agree exactly.
        let machine = Machine::cluster(2, 2, 4);
        for schedule in [
            bcast_binomial(12, 0, 4096),
            reduce_binary(12, 5, 1 << 16),
            allgather_ring(12, 512),
            allreduce_recursive_doubling(12, 1000),
            barrier_dissemination(12),
        ] {
            let placement = Placement::packed(12);
            let rank_to_core: Vec<usize> = (0..12).map(|r| placement.core_of(r)).collect();
            let cfg = UniverseConfig::new(machine.clone(), placement);
            let (send_oh, recv_oh) = (cfg.send_overhead_ns, cfg.recv_overhead_ns);
            let expect = evaluate(&schedule, &machine, &rank_to_core, send_oh, recv_oh);
            let u = Universe::new(cfg);
            let got = u.launch(|rank| {
                let world = rank.comm_world();
                execute(rank, &world, &schedule);
                rank.now_ns()
            });
            for r in 0..12 {
                assert!(
                    (got[r] - expect[r]).abs() < 1e-6,
                    "rank {r}: threaded {} vs analytic {}",
                    got[r],
                    expect[r]
                );
            }
        }
    }

    #[test]
    fn evaluator_prefers_local_placement() {
        // A bcast over 2 nodes is faster when the tree's heavy edges stay
        // inside a node — sanity for the whole reordering story.
        let machine = Machine::cluster(2, 1, 8);
        let sched = bcast_binomial(16, 0, 1 << 20);
        let packed: Vec<usize> = (0..16).collect();
        let scattered: Vec<usize> =
            (0..16).map(|r| if r % 2 == 0 { r / 2 } else { 8 + r / 2 }).collect();
        let t_packed = makespan(&sched, &machine, &packed, 100.0, 50.0);
        let t_scattered = makespan(&sched, &machine, &scattered, 100.0, 50.0);
        assert!(t_packed < t_scattered, "packed {t_packed} should beat scattered {t_scattered}");
    }

    #[test]
    fn segmented_bcast_schedule_totals_and_pipelining() {
        let (n, bytes, seg) = (16usize, 4_000_000u64, 250_000u64);
        let s = bcast_binary_segmented(n, 0, bytes, seg);
        s.validate().unwrap();
        // Total volume: every edge of the tree carries the full payload.
        assert_eq!(s.total_bytes(), bytes * (n as u64 - 1));
        // Pipelining shortens the makespan vs one whole-buffer message on a
        // deep cross-node path.
        let machine = Machine::cluster(2, 1, 8);
        let cores: Vec<usize> = (0..n).map(|r| (r % 2) * 8 + r / 2).collect();
        let chunked = makespan(&s, &machine, &cores, 100.0, 50.0);
        let whole =
            makespan(&bcast_binary_segmented(n, 0, bytes, bytes), &machine, &cores, 100.0, 50.0);
        assert!(chunked < whole, "pipelined {chunked} vs whole {whole}");
    }

    #[test]
    fn segmentation_widens_the_reordering_gap() {
        // Ablation for the Fig 5 discussion: one might expect pipelining to
        // soften the penalty of a bad mapping.  Under per-node NIC
        // contention the opposite holds — the min-cut mapping pipelines
        // around its single cross edge while the spread mapping stays
        // throughput-bound on the node with the most cross edges, so the
        // baseline/optimized ratio GROWS with segmentation.
        let (n, bytes) = (16usize, 8_000_000u64);
        let machine = Machine::cluster(2, 1, 8);
        let spread: Vec<usize> = (0..n).map(|r| (r % 2) * 8 + r / 2).collect();
        // Min-cut mapping for the 16-rank binary tree: the subtree rooted at
        // vrank 1 ({1,3,4,7,8,9,10,15}) on node 1, the rest on node 0 —
        // exactly one cross-node edge (0→1).
        let subtree1 = [1usize, 3, 4, 7, 8, 9, 10, 15];
        let mut packed = vec![0usize; n];
        let (mut n0, mut n1) = (0, 8);
        for (v, slot) in packed.iter_mut().enumerate() {
            if subtree1.contains(&v) {
                *slot = n1;
                n1 += 1;
            } else {
                *slot = n0;
                n0 += 1;
            }
        }
        let ratio = |seg: u64| {
            let s = bcast_binary_segmented(n, 0, bytes, seg);
            let base = evaluate_contended(&s, &machine, &spread, 100.0, 50.0)
                .into_iter()
                .fold(0.0f64, f64::max);
            let opt = evaluate_contended(&s, &machine, &packed, 100.0, 50.0)
                .into_iter()
                .fold(0.0f64, f64::max);
            base / opt
        };
        let gap_whole = ratio(bytes);
        let gap_seg = ratio(bytes / 64);
        assert!(
            gap_seg > gap_whole,
            "segmentation should widen the gap under contention: {gap_seg} vs {gap_whole}"
        );
        assert!(gap_whole > 1.0, "placement matters before segmentation too");
    }

    #[test]
    fn invalid_schedule_detected() {
        let s = Schedule::new(vec![vec![Step::Send { peer: 1, bytes: 4 }], vec![]]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn crossed_order_rejected_despite_equal_counts() {
        // Each rank first waits for the other's send: per-channel counts
        // match exactly (one send and one receive on 0→1 and on 1→0), so the
        // seed's count comparison accepted it — yet every real execution
        // deadlocks.  The replaying validator must reject it.
        let s = Schedule::new(vec![
            vec![Step::Recv { peer: 1 }, Step::Send { peer: 1, bytes: 4 }],
            vec![Step::Recv { peer: 0 }, Step::Send { peer: 0, bytes: 4 }],
        ]);
        let err = s.validate().unwrap_err();
        assert!(err.contains("deadlock"), "wrong rejection: {err}");
        // The untangled version (send first) is fine.
        let ok = Schedule::new(vec![
            vec![Step::Send { peer: 1, bytes: 4 }, Step::Recv { peer: 1 }],
            vec![Step::Send { peer: 0, bytes: 4 }, Step::Recv { peer: 0 }],
        ]);
        ok.validate().unwrap();
    }

    #[test]
    fn validate_reports_per_channel_bytes() {
        let s = allgather_ring(3, 128);
        let totals = s.validate_totals().unwrap();
        // Each rank sends n-1 = 2 blocks to its right neighbour.
        assert_eq!(totals.len(), 3);
        for t in &totals {
            assert_eq!(t.dst, (t.src + 1) % 3);
            assert_eq!(t.messages, 2);
            assert_eq!(t.bytes, 256);
        }
        let unreceived = Schedule::new(vec![
            vec![Step::Send { peer: 1, bytes: 4 }, Step::Send { peer: 1, bytes: 4 }],
            vec![Step::Recv { peer: 0 }],
        ]);
        let err = unreceived.validate().unwrap_err();
        assert!(err.contains("never received"), "wrong rejection: {err}");
    }

    mim_util::props! {
        /// The heap-based evaluator must be *bit-identical* to the seed's
        /// O(E·n) ready-scan on random valid schedules, for both contention
        /// modes — same event order, same floating-point operations.
        fn heap_evaluator_matches_scan_reference(g) {
            let n = g.gen_range(2usize..24);
            let root = g.index(n);
            let bytes = g.gen_range(0u64..2_000_000);
            let machine = Machine::cluster(2, 2, 8);
            let cores: Vec<usize> = {
                let mut p = g.permutation(32);
                p.truncate(n);
                p
            };
            let schedules = [
                bcast_binomial(n, root, bytes),
                reduce_binary(n, root, bytes),
                allgather_ring(n, bytes),
                allreduce_recursive_doubling(n, bytes),
                barrier_dissemination(n),
                alltoall_pairwise(n, bytes.min(4096)),
                bcast_binary_segmented(n, root, bytes.max(1), (bytes / 7).max(1)),
            ];
            for s in schedules {
                for contention in [false, true] {
                    let scan =
                        evaluate_scan_reference(&s, &machine, &cores, 100.0, 50.0, contention);
                    let heap = if contention {
                        evaluate_contended(&s, &machine, &cores, 100.0, 50.0)
                    } else {
                        evaluate(&s, &machine, &cores, 100.0, 50.0)
                    };
                    assert_eq!(scan, heap, "divergence (contention={contention})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn evaluator_detects_deadlock() {
        let s = Schedule::new(vec![vec![Step::Recv { peer: 1 }], vec![Step::Recv { peer: 0 }]]);
        let machine = Machine::cluster(1, 1, 2);
        evaluate(&s, &machine, &[0, 1], 0.0, 0.0);
    }

    #[test]
    fn all_generators_deadlock_free_at_acceptance_sizes() {
        // ISSUE 4 acceptance: every built-in generator is `DeadlockFree`
        // (and diagnostic-clean) at the CI gate's shapes.
        for n in [2usize, 5, 48, 192] {
            let root = (n - 1) / 2;
            let shapes = [
                bcast_binomial(n, root, 4096),
                bcast_binary(n, root, 4096),
                reduce_binomial(n, root, 4096),
                reduce_binary(n, root, 4096),
                allgather_ring(n, 512),
                barrier_dissemination(n),
                allreduce_recursive_doubling(n, 1000),
                alltoall_pairwise(n, 64),
                bcast_binary_segmented(n, root, 4096, 512),
            ];
            for s in shapes {
                let report = s.analyze();
                assert!(
                    matches!(report.verdict, Verdict::DeadlockFree),
                    "{}: verdict {} at n={n}",
                    report.plan,
                    report.verdict.kind()
                );
                assert!(report.is_clean(), "{}: {report}", report.plan);
            }
        }
    }

    #[test]
    fn crossed_order_cycle_names_both_ranks() {
        // The analyzer must report the *actual* circular wait, rank by rank,
        // not merely "deadlocked".
        let s = Schedule::new(vec![
            vec![Step::Recv { peer: 1 }, Step::Send { peer: 1, bytes: 4 }],
            vec![Step::Recv { peer: 0 }, Step::Send { peer: 0, bytes: 4 }],
        ]);
        let report = s.analyze();
        let Verdict::DefiniteDeadlock { ref cycle } = report.verdict else {
            panic!("expected a definite deadlock, got {}", report.verdict.kind());
        };
        assert_eq!(cycle.len(), 2);
        let mut ranks: Vec<usize> = cycle.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1]);
        for edge in cycle {
            assert_eq!(edge.step, 0, "both ranks block on their first step");
            assert_eq!(edge.waits_for, 1 - edge.rank);
        }
        assert!(report.diags.iter().any(|d| d.code == Code::A002), "missing A002: {report}");
    }

    mim_util::props! {
        /// The analyzer-backed `validate_totals` must agree with the seed's
        /// FIFO replay on random valid *and* corrupted schedules: same
        /// accept/reject decision, identical per-channel totals on accept.
        fn analyzer_matches_replay_reference(g) {
            let n = g.gen_range(2usize..16);
            let mut s = random_generator_schedule(g, n);
            let corrupted = if g.any_bool() {
                let mut steps: Vec<Vec<Step>> =
                    (0..n).map(|r| s.rank_steps(r).to_vec()).collect();
                let label = corrupt_schedule(g, &mut steps);
                s = Schedule::new(steps);
                Some(label)
            } else {
                None
            };
            let got = s.validate_totals();
            let oracle = s.validate_totals_replay_reference();
            match (got, oracle) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "totals diverge ({corrupted:?})"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "verdict diverges ({corrupted:?}): analyzer {a:?} vs replay {b:?}"
                ),
            }
        }

        /// Every corruption kind (dropped recv/send, retargeted send,
        /// crossed-order injection) must be flagged; the pristine schedule
        /// must stay clean.  Cross-validates verdicts against the DES
        /// evaluator: `DeadlockFree` ⇒ `evaluate` completes, and a definite
        /// deadlock ⇒ `evaluate` panics (ISSUE 4 acceptance).
        fn corrupted_schedules_are_flagged_and_cross_validate(g, cases = 48) {
            let n = g.gen_range(2usize..12);
            let clean = random_generator_schedule(g, n);
            assert!(clean.analyze().is_clean(), "pristine schedule flagged");

            let mut steps: Vec<Vec<Step>> =
                (0..n).map(|r| clean.rank_steps(r).to_vec()).collect();
            let label = corrupt_schedule(g, &mut steps);
            let bad = Schedule::new(steps);
            let report = bad.analyze();
            assert!(!report.is_clean(), "{label} not flagged: {report}");

            let machine = Machine::cluster(1, 1, 16);
            let cores: Vec<usize> = (0..n).collect();
            for (s, verdict) in [(&clean, clean.analyze().verdict), (&bad, report.verdict)] {
                let run = catch_unwind(AssertUnwindSafe(|| {
                    evaluate(s, &machine, &cores, 10.0, 10.0)
                }));
                match verdict {
                    Verdict::DeadlockFree => {
                        assert!(run.is_ok(), "{label}: DeadlockFree plan failed to evaluate");
                    }
                    Verdict::DefiniteDeadlock { .. } => {
                        assert!(run.is_err(), "{label}: DefiniteDeadlock plan evaluated fine");
                    }
                    v => panic!("{label}: unexpected verdict {} for a schedule", v.kind()),
                }
            }
        }
    }

    #[test]
    fn definite_deadlock_reproduces_live_deadline_panic() {
        // ISSUE 4 acceptance: a `DefiniteDeadlock` verdict must reproduce as
        // a deadline panic in the live threaded runtime.  The deadline is
        // set on the config directly — the `MIM_DEADLINE_MS` override uses
        // the same field, but mutating the process environment would race
        // with other tests.
        let s = Schedule::new(vec![
            vec![Step::Recv { peer: 1 }, Step::Send { peer: 1, bytes: 4 }],
            vec![Step::Recv { peer: 0 }, Step::Send { peer: 0, bytes: 4 }],
        ]);
        assert!(matches!(s.analyze().verdict, Verdict::DefiniteDeadlock { .. }));
        let machine = Machine::cluster(1, 1, 2);
        let mut cfg = UniverseConfig::new(machine, Placement::packed(2));
        cfg.deadline = Duration::from_millis(250);
        let u = Universe::new(cfg);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            u.launch(|rank| {
                let world = rank.comm_world();
                execute(rank, &world, &s);
            });
        }))
        .expect_err("the live runtime must trip its deadlock deadline");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|m| (*m).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected panic payload: {msg}");
    }
}
