//! The M:N rank executor: every simulated rank is a resumable *task* (a
//! stackful fiber, `mim_util::fiber`) multiplexed onto a fixed pool of
//! worker threads by a work-stealing scheduler (`mim_util::deque`).
//!
//! Thread-per-rank ([`ExecutorKind::Threads`]) remains the always-available
//! equivalence oracle; this module only changes *where* rank code runs, not
//! *what* it computes — the virtual-clock DES is scheduling-independent, so
//! completion times, monitoring matrices, NIC counters and per-rank trace
//! streams are bit-identical across the two modes (property-tested in
//! `tests/executor_equivalence.rs`).
//!
//! # Park/unpark protocol
//!
//! A rank that blocks in its mailbox parks its *task*, not a thread:
//!
//! 1. **Fiber side** ([`ParkerHandle::park`]): record the requested
//!    deadline, raise `park_pending`, and `fiber::suspend()` back to the
//!    worker.
//! 2. **Worker side** (scheduler-side publish): only after the fiber has
//!    fully switched out does the worker publish the parked state with
//!    `CAS(Running → Parked)`.  A concurrent [`ExecShared::notify`] that
//!    caught the task still `Running` left a `Notified` token instead; the
//!    failed CAS observes it and the worker re-enqueues the task locally —
//!    the wakeup is never lost, and a resumed fiber can never race its own
//!    suspension.
//! 3. **Sender side**: `Shared::post` delivers the envelope, then calls
//!    `notify(dst)`, which CASes `Parked → Runnable` (pushing the task to
//!    the injector and waking an idle worker) or `Running → Notified`.
//!    `notify` never touches a `Notified` task, so a task is never enqueued
//!    twice.
//!
//! # Deterministic stall resolution
//!
//! Thread-per-rank relies on wall-clock `recv_timeout` to detect
//! application deadlock.  Here, when every worker is idle — provably
//! quiescent: notifications only originate from running task code — the
//! last idler checks for a stall: all live tasks parked and every queue
//! empty.  It then wakes exactly one task — smallest `(deadline, world
//! rank)` — with [`ParkWake::Deadline`], which surfaces in the mailbox as
//! the same `Timeout` the wall clock would have produced, minus the wait.
//!
//! A task that never parks cannot be preempted (fibers are cooperative), so
//! a separate watchdog thread reports *starvation* — no scheduler progress
//! for a full deadline while runnable/parked tasks wait behind a spinning
//! one — and aborts the process (exit 107): the honest analogue of the
//! deadline panic a parked thread would have raised, for a fault that
//! cannot be unwound from outside.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mim_util::deque::{deque, Injector, Steal, Stealer, WorkerQueue};
use mim_util::fiber::{self, Fiber, Resume};
use mim_util::sync::{Mutex, Notifier};

use crate::sched::{clamp_choice, Decision, PolicyHandle};

/// Which engine `Universe::run_collect` uses to host rank code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// One OS thread per rank (the seed model; the equivalence oracle).
    Threads,
    /// M:N — ranks are fibers on a fixed work-stealing worker pool.
    Tasks,
}

impl ExecutorKind {
    /// Read `MIM_EXECUTOR` (`threads` | `tasks`); default [`Threads`].
    /// Unrecognised values fall back to the default with a warning.
    ///
    /// [`Threads`]: ExecutorKind::Threads
    pub fn from_env() -> Self {
        match std::env::var("MIM_EXECUTOR").ok().as_deref() {
            Some("tasks") => ExecutorKind::Tasks,
            Some("threads") | None => ExecutorKind::Threads,
            Some(other) => {
                eprintln!("mim-mpisim: unknown MIM_EXECUTOR={other:?}; using threads");
                ExecutorKind::Threads
            }
        }
    }
}

/// Identity of the rank task the calling thread is currently executing:
/// the scheduler instance (universes are process-unique) plus the task's
/// world rank.  The *task-local storage key* for per-rank state that was
/// per-thread under thread-per-rank — `mim-core`'s C-API environment keys
/// its per-process monitoring slot by this, so a session opened before a
/// park is found again after the task resumes on a different worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId {
    /// Process-unique id of the owning scheduler ([`ExecShared`]).
    pub exec: u64,
    /// Task index == world rank within that scheduler.
    pub index: usize,
}

thread_local! {
    /// The task this worker thread is currently running (`None` on
    /// non-worker threads and between tasks).
    static CURRENT_TASK: std::cell::Cell<Option<TaskId>> =
        const { std::cell::Cell::new(None) };
}

/// The rank task the calling thread is executing, if any.  `None` under
/// thread-per-rank (callers fall back to genuinely thread-local state).
pub fn current_task() -> Option<TaskId> {
    CURRENT_TASK.with(std::cell::Cell::get)
}

/// Allocator for [`TaskId::exec`].
static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(0);

// Task lifecycle states (`TaskSlot::state`).
const RUNNABLE: u8 = 0;
const RUNNING: u8 = 1;
const NOTIFIED: u8 = 2;
const PARKED: u8 = 3;
const DONE: u8 = 4;

// Wake reasons (`TaskSlot::wake`).
const WAKE_NONE: u8 = 0;
const WAKE_MESSAGE: u8 = 1;
const WAKE_DEADLINE: u8 = 2;

/// Why a parked task was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParkWake {
    /// A message (or a spurious token) arrived; re-poll the channel.
    Message,
    /// Deterministic stall resolution: report the wait as timed out.
    Deadline,
}

/// Per-task scheduler state.
struct TaskSlot {
    state: AtomicU8,
    wake: AtomicU8,
    /// Deadline (ms) the task's current park asked for; the stall resolver
    /// wakes the smallest `(deadline_ms, world rank)` first, so recoverable
    /// short-deadline waits resolve before long ones panic.
    deadline_ms: AtomicU64,
    /// Set by the fiber just before suspending; consumed by the worker to
    /// distinguish a park request from a bare yield.
    park_pending: AtomicBool,
}

/// Scheduler state shared between the universe, its rank tasks (via
/// [`ParkerHandle`]) and the worker pool.
pub(crate) struct ExecShared {
    /// Process-unique scheduler id (the `exec` half of [`TaskId`]).
    id: u64,
    tasks: Vec<TaskSlot>,
    injector: Injector,
    /// The workers' steal handles, registered by [`run_tasks`] at launch
    /// (the stall check needs to observe every queue).
    stealers: Mutex<Vec<Stealer>>,
    /// Wakes idle workers (epoch-counted; see `mim_util::sync::Notifier`).
    notifier: Notifier,
    /// Scheduler progress heartbeat for the starvation watchdog: bumped on
    /// park, unpark, completion and stall resolution.
    progress: Notifier,
    /// Scheduler-visible *attempts* (every [`notify`](ExecShared::notify)
    /// call, whatever its outcome).  The watchdog treats movement here as a
    /// sign of life: a rank spin-sending to a starved peer is slow, not
    /// stuck — only a task burning its worker with *no* scheduler
    /// interaction at all is starvation.
    activity: AtomicU64,
    parked: AtomicUsize,
    live: AtomicUsize,
    idle: AtomicUsize,
    shutdown: AtomicBool,
    /// Serialises stall checks (belt and braces: quiescence already makes
    /// them exclusive).
    stall_lock: Mutex<()>,
    workers: AtomicUsize,
    /// Installed schedule policy: dispatch becomes single-worker and every
    /// resume choice with several queued tasks is the policy's.  Set once
    /// before launch; `None` keeps the work-stealing default.
    policy: OnceLock<PolicyHandle>,
}

impl ExecShared {
    /// Scheduler state for `n` rank tasks (created with the universe so the
    /// wire layer can hold it before launch).
    pub(crate) fn new(n: usize) -> Arc<ExecShared> {
        Arc::new(ExecShared {
            id: NEXT_EXEC_ID.fetch_add(1, Ordering::Relaxed),
            tasks: (0..n)
                .map(|_| TaskSlot {
                    state: AtomicU8::new(RUNNABLE),
                    wake: AtomicU8::new(WAKE_NONE),
                    deadline_ms: AtomicU64::new(u64::MAX),
                    park_pending: AtomicBool::new(false),
                })
                .collect(),
            injector: Injector::new(),
            stealers: Mutex::new(Vec::new()),
            notifier: Notifier::new(),
            progress: Notifier::new(),
            activity: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            live: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            stall_lock: Mutex::new(()),
            workers: AtomicUsize::new(0),
            policy: OnceLock::new(),
        })
    }

    /// Install a schedule policy before launch (later calls are ignored —
    /// a scheduler's policy cannot change mid-run).
    pub(crate) fn set_policy(&self, policy: PolicyHandle) {
        let _ = self.policy.set(policy);
    }

    /// A park handle for task `index` (installed into its rank's mailbox).
    pub(crate) fn parker(self: &Arc<Self>, index: usize) -> ParkerHandle {
        ParkerHandle { exec: Arc::clone(self), index }
    }

    /// Wake task `dst` because a message was just delivered to its channel.
    /// Safe to call from any thread, any number of times; never lost, never
    /// double-enqueues (see the module-level protocol).
    pub(crate) fn notify(&self, dst: usize) {
        self.activity.fetch_add(1, Ordering::Relaxed);
        let slot = &self.tasks[dst];
        loop {
            match slot.state.load(Ordering::Acquire) {
                PARKED => {
                    if slot
                        .state
                        .compare_exchange(PARKED, RUNNABLE, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        slot.wake.store(WAKE_MESSAGE, Ordering::Release);
                        self.parked.fetch_sub(1, Ordering::SeqCst);
                        self.injector.push(dst);
                        self.progress.notify();
                        self.notifier.notify();
                        return;
                    }
                }
                RUNNING => {
                    if slot
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Runnable (already queued), Notified (token pending) or
                // Done: nothing to do — the message sits in the channel and
                // will be seen at the next poll, if any.
                _ => return,
            }
        }
    }

    /// Whether task `dst` is queued waiting for a worker (racy snapshot;
    /// used only as a fairness hint by [`maybe_yield_to`]).
    ///
    /// [`maybe_yield_to`]: ExecShared::maybe_yield_to
    fn is_queued(&self, dst: usize) -> bool {
        self.tasks[dst].state.load(Ordering::Relaxed) == RUNNABLE
    }

    /// Fairness yield: when the calling rank task just sent to a peer that
    /// is runnable but waiting for a worker, give up this worker (to the
    /// *back* of the global queue) so the peer gets a turn.  Without it, a
    /// send-and-never-block loop starves its own destination on a small
    /// pool — the fiber analogue of the OS preemption thread-per-rank gets
    /// for free.  Purely a scheduling choice: virtual clocks, matrices and
    /// traces are interleaving-independent.
    pub(crate) fn maybe_yield_to(&self, dst: usize) {
        if self.is_queued(dst) && fiber::is_fiber() {
            fiber::suspend();
        }
    }

    /// All-workers-idle stall check (runs quiescent: every notify source is
    /// task code, and no task is running).  Shut down when nothing is live;
    /// otherwise, if every live task is parked and every queue is empty,
    /// resolve the stall by waking one task with a deadline signal.
    fn stall_check(&self) {
        let _guard = self.stall_lock.lock();
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        let live = self.live.load(Ordering::SeqCst);
        if live == 0 {
            self.shutdown.store(true, Ordering::Release);
            self.notifier.notify();
            self.progress.notify();
            return;
        }
        if self.parked.load(Ordering::SeqCst) != live || !self.injector.is_empty() {
            return;
        }
        if self.stealers.lock().iter().any(|s| !s.is_empty()) {
            return;
        }
        // Deterministic order: smallest requested deadline, then smallest
        // world rank.  Waking exactly one task keeps the resolution
        // sequential — if it unblocks the job, everyone else proceeds; if
        // the job is truly deadlocked, each wake ends in the same
        // "deadlock:" panic the wall clock would have produced.
        let victim = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state.load(Ordering::SeqCst) == PARKED)
            .min_by_key(|(i, t)| (t.deadline_ms.load(Ordering::SeqCst), *i))
            .map(|(i, _)| i);
        if let Some(i) = victim {
            if self.tasks[i]
                .state
                .compare_exchange(PARKED, RUNNABLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.tasks[i].wake.store(WAKE_DEADLINE, Ordering::Release);
                self.parked.fetch_sub(1, Ordering::SeqCst);
                self.injector.push(i);
                self.progress.notify();
                self.notifier.notify();
            }
        }
    }
}

/// Mailbox-side handle: parks the *calling fiber* until notified.
pub(crate) struct ParkerHandle {
    exec: Arc<ExecShared>,
    index: usize,
}

impl std::fmt::Debug for ParkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParkerHandle").field("index", &self.index).finish()
    }
}

impl ParkerHandle {
    /// Suspend the calling task until a message notification or a stall
    /// resolution targets it.  `deadline` is not waited for — it is the
    /// priority key the stall resolver orders deadline wakes by.
    pub(crate) fn park(&self, deadline: Duration) -> ParkWake {
        let slot = &self.exec.tasks[self.index];
        let ms = u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX);
        slot.deadline_ms.store(ms, Ordering::SeqCst);
        slot.park_pending.store(true, Ordering::Release);
        fiber::suspend();
        match slot.wake.swap(WAKE_NONE, Ordering::AcqRel) {
            WAKE_DEADLINE => ParkWake::Deadline,
            _ => ParkWake::Message,
        }
    }
}

/// Worker count for an `n`-task run: every core (`MIM_WORKERS` overrides),
/// never more workers than tasks.
fn worker_count(n: usize) -> usize {
    let cpus = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let w = std::env::var("MIM_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(cpus);
    w.clamp(1, n.max(1))
}

/// Per-worker run queue capacity; overflow spills to the shared injector.
const LOCAL_QUEUE_CAP: usize = 256;

/// Run `bodies` (one per rank, indexed by world rank) to completion as
/// fibers on the worker pool.  Returns each task's panic payload slot, in
/// task order — the same shape `thread::JoinHandle::join` gives the
/// thread-per-rank engine.
pub(crate) fn run_tasks(
    exec: &Arc<ExecShared>,
    bodies: Vec<Box<dyn FnOnce() + Send>>,
    stack_size: usize,
    deadline: Duration,
) -> Vec<Option<Box<dyn std::any::Any + Send>>> {
    let n = bodies.len();
    assert_eq!(n, exec.tasks.len(), "one body per task slot");
    // Under a schedule policy dispatch must be sequential — one worker —
    // so the policy's resume choices are the *only* source of interleaving.
    let workers = if exec.policy.get().is_some() { 1 } else { worker_count(n) };
    let fibers: Vec<Mutex<Option<Fiber>>> =
        bodies.into_iter().map(|b| Mutex::new(Some(Fiber::new(stack_size, b)))).collect();
    let payloads: Vec<Mutex<Option<Box<dyn std::any::Any + Send>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let mut queues = Vec::with_capacity(workers);
    {
        let mut stealers = exec.stealers.lock();
        stealers.clear();
        for _ in 0..workers {
            let (q, s) = deque(LOCAL_QUEUE_CAP);
            queues.push(q);
            stealers.push(s);
        }
    }
    exec.workers.store(workers, Ordering::SeqCst);
    exec.live.store(n, Ordering::SeqCst);
    exec.parked.store(0, Ordering::SeqCst);
    exec.idle.store(0, Ordering::SeqCst);
    exec.shutdown.store(false, Ordering::SeqCst);
    for i in 0..n {
        exec.tasks[i].state.store(RUNNABLE, Ordering::SeqCst);
        exec.injector.push(i);
    }
    std::thread::scope(|scope| {
        for (wid, q) in queues.into_iter().enumerate() {
            let exec = Arc::clone(exec);
            let fibers = &fibers;
            let payloads = &payloads;
            std::thread::Builder::new()
                .name(format!("mim-exec-{wid}"))
                .spawn_scoped(scope, move || worker_loop(&exec, q, fibers, payloads))
                .unwrap_or_else(|e| panic!("failed to spawn executor worker: {e}"));
        }
        let suspended = exec.policy.get().is_some_and(|p| p.virtual_watchdog());
        let exec = Arc::clone(exec);
        std::thread::Builder::new()
            .name("mim-exec-watchdog".into())
            .spawn_scoped(scope, move || watchdog_loop(&exec, deadline, suspended))
            .unwrap_or_else(|e| panic!("failed to spawn executor watchdog: {e}"));
    });
    payloads.into_iter().map(Mutex::into_inner).collect()
}

/// Find the next runnable task: own queue (LIFO), then the injector, then
/// steal from peers.  With a schedule policy installed, the policy picks
/// instead.
fn next_task(exec: &ExecShared, local: &mut WorkerQueue) -> Option<usize> {
    if let Some(policy) = exec.policy.get() {
        return next_task_policed(exec, local, policy);
    }
    if let Some(t) = local.pop() {
        return Some(t);
    }
    if let Some(t) = exec.injector.pop() {
        return Some(t);
    }
    let stealers = exec.stealers.lock();
    loop {
        let mut retry = false;
        for s in stealers.iter() {
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Deterministic dispatch under a schedule policy (the pool runs a single
/// worker): gather every queued task — local queue first, then the injector
/// in FIFO order — and let the policy pick which resumes.  The slate is
/// offered in canonical dispatch order (index 0 = what the un-policed
/// scheduler would run next); unchosen tasks return to the injector in
/// slate order, so the next decision sees them in a stable order.
fn next_task_policed(
    exec: &ExecShared,
    local: &mut WorkerQueue,
    policy: &PolicyHandle,
) -> Option<usize> {
    let mut cands = Vec::new();
    while let Some(t) = local.pop() {
        cands.push(t);
    }
    while let Some(t) = exec.injector.pop() {
        cands.push(t);
    }
    match cands.len() {
        0 => None,
        1 => Some(cands[0]),
        n => {
            let i = clamp_choice(
                policy.choose(Decision::TaskResume { candidates: &cands, racy: &[] }),
                n,
            );
            let chosen = cands.remove(i);
            for t in cands {
                exec.injector.push(t);
            }
            Some(chosen)
        }
    }
}

fn enqueue(exec: &ExecShared, local: &mut WorkerQueue, task: usize) {
    if let Err(t) = local.push(task) {
        exec.injector.push(t);
    }
    exec.notifier.notify();
}

fn worker_loop(
    exec: &Arc<ExecShared>,
    mut local: WorkerQueue,
    fibers: &[Mutex<Option<Fiber>>],
    payloads: &[Mutex<Option<Box<dyn std::any::Any + Send>>>],
) {
    loop {
        // Snapshot the wake epoch *before* every check (shutdown flag and
        // work queues): any store-then-notify landing after the snapshot
        // advances the epoch, so the wait below returns immediately — and a
        // snapshot taken after a notify is ordered after the store it
        // published, so the re-check on the next loop iteration sees it.
        let seen = exec.notifier.epoch();
        if exec.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = next_task(exec, &mut local) {
            run_one(exec, task, &mut local, fibers, payloads);
            continue;
        }
        let idlers = exec.idle.fetch_add(1, Ordering::SeqCst) + 1;
        if idlers == exec.workers.load(Ordering::SeqCst) {
            exec.stall_check();
        }
        exec.notifier.wait_while_epoch(seen);
        exec.idle.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Resume one task and publish its new state (see the module-level
/// protocol: the publish happens strictly after the fiber switched out).
fn run_one(
    exec: &ExecShared,
    task: usize,
    local: &mut WorkerQueue,
    fibers: &[Mutex<Option<Fiber>>],
    payloads: &[Mutex<Option<Box<dyn std::any::Any + Send>>>],
) {
    let slot = &exec.tasks[task];
    slot.state.store(RUNNING, Ordering::SeqCst);
    let fiber = fibers[task].lock().take();
    let Some(mut fiber) = fiber else {
        // A task id can only be queued once; a missing fiber means the
        // protocol was violated.
        panic!("executor: task {task} dispatched with no fiber");
    };
    CURRENT_TASK.with(|c| c.set(Some(TaskId { exec: exec.id, index: task })));
    let resumed = fiber.resume();
    CURRENT_TASK.with(|c| c.set(None));
    match resumed {
        Resume::Done => {
            if let Some(p) = fiber.take_panic() {
                *payloads[task].lock() = Some(p);
            }
            drop(fiber); // free the stack eagerly: 10k ranks, bounded RSS
            slot.state.store(DONE, Ordering::SeqCst);
            let left = exec.live.fetch_sub(1, Ordering::SeqCst) - 1;
            exec.progress.notify();
            if left == 0 {
                exec.shutdown.store(true, Ordering::Release);
                exec.notifier.notify();
                // Notify progress *after* the shutdown store so the
                // watchdog either sees the flag or sees the epoch advance —
                // never sleeps out its full timeout on a finished run.
                exec.progress.notify();
            }
        }
        Resume::Suspended => {
            // The fiber must be back in its slot before any publish: a
            // concurrent notify may re-dispatch the task to another worker
            // the instant the CAS lands.
            *fibers[task].lock() = Some(fiber);
            if slot.park_pending.swap(false, Ordering::AcqRel) {
                // Count the park *before* publishing it, so the notifier's
                // decrement (which can only follow a successful publish)
                // never observes the counter early.
                exec.parked.fetch_add(1, Ordering::SeqCst);
                match slot.state.compare_exchange(
                    RUNNING,
                    PARKED,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => {
                        exec.progress.notify();
                    }
                    Err(_) => {
                        // A notify token landed while the task was still
                        // Running: consume it and keep the task runnable.
                        exec.parked.fetch_sub(1, Ordering::SeqCst);
                        slot.wake.store(WAKE_MESSAGE, Ordering::Release);
                        slot.state.store(RUNNABLE, Ordering::SeqCst);
                        enqueue(exec, local, task);
                        exec.progress.notify();
                    }
                }
            } else {
                // Bare cooperative yield: to the *back* of the global queue
                // (a local LIFO re-enqueue would run the yielder again
                // first, defeating the fairness yield's whole point).
                slot.state.store(RUNNABLE, Ordering::SeqCst);
                exec.injector.push(task);
                exec.notifier.notify();
            }
        }
    }
}

/// Starvation watchdog: if the scheduler makes no progress for a full
/// `deadline` while some task is running and others wait (parked or
/// queued), a fiber is hogging its worker without yielding.  Cooperative
/// scheduling cannot preempt or unwind it, so report and abort — the
/// analogue of the deadline panic the waiting ranks would have raised under
/// thread-per-rank.
///
/// `suspended` disables the abort: an external [`crate::sched`] policy may
/// legitimately hold tasks parked (or a running task un-resumed) for many
/// wall-clock deadlines while it explores a schedule, which is
/// indistinguishable from starvation out here.  The deterministic stall
/// resolver — virtual order, no wall clock — still fires deadline wakes, so
/// real deadlocks keep surfacing as `deadlock:` panics.
fn watchdog_loop(exec: &Arc<ExecShared>, deadline: Duration, suspended: bool) {
    loop {
        let seen = exec.progress.epoch();
        let seen_activity = exec.activity.load(Ordering::Relaxed);
        if exec.shutdown.load(Ordering::Acquire) {
            return;
        }
        let advanced = exec.progress.wait_timeout_epoch(seen, deadline);
        if exec.shutdown.load(Ordering::Acquire) {
            return;
        }
        if advanced || exec.activity.load(Ordering::Relaxed) != seen_activity {
            continue;
        }
        let running: Vec<usize> = exec
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state.load(Ordering::SeqCst) == RUNNING)
            .map(|(i, _)| i)
            .collect();
        let waiting = exec.parked.load(Ordering::SeqCst) > 0 || !exec.injector.is_empty();
        if !running.is_empty() && waiting {
            if suspended {
                continue;
            }
            eprintln!(
                "mim-mpisim: starvation: rank task(s) {running:?} ran for {deadline:?} \
                 without yielding while other ranks wait; a fiber cannot be preempted \
                 — aborting (exit 107)"
            );
            std::process::exit(107);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executor_kind_from_env() {
        std::env::remove_var("MIM_EXECUTOR");
        assert_eq!(ExecutorKind::from_env(), ExecutorKind::Threads);
        std::env::set_var("MIM_EXECUTOR", "tasks");
        assert_eq!(ExecutorKind::from_env(), ExecutorKind::Tasks);
        std::env::set_var("MIM_EXECUTOR", "threads");
        assert_eq!(ExecutorKind::from_env(), ExecutorKind::Threads);
        std::env::remove_var("MIM_EXECUTOR");
    }

    /// The raw engine, no mailboxes: tasks park themselves and are woken by
    /// explicit notifies from other tasks — a pure protocol exercise.
    #[test]
    fn park_notify_chain_runs_to_completion() {
        const N: usize = 8;
        let exec = ExecShared::new(N);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for i in 0..N {
            let exec = Arc::clone(&exec);
            let order = Arc::clone(&order);
            bodies.push(Box::new(move || {
                // Every task > 0 parks until its predecessor wakes it.  The
                // predecessor's notify may land before the park (token) or
                // after (unpark): both must work.
                if i > 0 {
                    let parker = exec.parker(i);
                    while !order.lock().contains(&(i - 1)) {
                        let _ = parker.park(Duration::from_secs(600));
                    }
                }
                order.lock().push(i);
                if i + 1 < N {
                    exec.notify(i + 1);
                }
            }));
        }
        let payloads = run_tasks(&exec, bodies, fiber::MIN_STACK, Duration::from_secs(30));
        assert!(payloads.iter().all(|p| p.is_none()));
        assert_eq!(*order.lock(), (0..N).collect::<Vec<_>>());
    }

    /// All tasks park forever: the stall resolver must wake them in
    /// (deadline, rank) order, each observing `ParkWake::Deadline`.
    #[test]
    fn stall_resolution_wakes_in_deadline_order() {
        const N: usize = 4;
        let exec = ExecShared::new(N);
        let wake_order = Arc::new(Mutex::new(Vec::new()));
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for i in 0..N {
            let exec = Arc::clone(&exec);
            let wake_order = Arc::clone(&wake_order);
            bodies.push(Box::new(move || {
                // Distinct deadlines, reverse of rank order.
                let parker = exec.parker(i);
                let deadline = Duration::from_millis(((N - i) * 1000) as u64);
                loop {
                    if parker.park(deadline) == ParkWake::Deadline {
                        wake_order.lock().push(i);
                        return;
                    }
                }
            }));
        }
        let payloads = run_tasks(&exec, bodies, fiber::MIN_STACK, Duration::from_secs(30));
        assert!(payloads.iter().all(|p| p.is_none()));
        // Smallest deadline first: rank N-1 parked with 1000 ms, and so on.
        assert_eq!(*wake_order.lock(), vec![3, 2, 1, 0]);
    }

    /// A panicking task surfaces its payload in its own slot; others run on.
    #[test]
    fn panic_is_confined_to_its_task_slot() {
        let exec = ExecShared::new(3);
        let ran = Arc::new(AtomicUsize::new(0));
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for i in 0..3 {
            let ran = Arc::clone(&ran);
            bodies.push(Box::new(move || {
                if i == 1 {
                    panic!("task 1 exploded");
                }
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let payloads = run_tasks(&exec, bodies, fiber::MIN_STACK, Duration::from_secs(30));
        assert!(payloads[0].is_none());
        assert!(payloads[1].is_some());
        assert!(payloads[2].is_none());
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }

    /// More tasks than any realistic thread count, all parking once: the
    /// pool multiplexes them on a handful of workers.
    #[test]
    fn thousand_tasks_on_default_pool() {
        const N: usize = 1000;
        let exec = ExecShared::new(N);
        let sum = Arc::new(AtomicUsize::new(0));
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for i in 0..N {
            let exec = Arc::clone(&exec);
            let sum = Arc::clone(&sum);
            bodies.push(Box::new(move || {
                // Ring notify: wake the next task, then park until woken
                // (token or unpark), then finish.
                exec.notify((i + 1) % N);
                sum.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let payloads = run_tasks(&exec, bodies, fiber::MIN_STACK, Duration::from_secs(60));
        assert!(payloads.iter().all(|p| p.is_none()));
        assert_eq!(sum.load(Ordering::SeqCst), N);
    }
}
