//! `mim-mpisim` — a virtual-time MPI-like message-passing runtime.
//!
//! Every rank of a simulated job is an OS thread.  Ranks exchange messages
//! through per-rank mailboxes with MPI matching semantics (communicator,
//! source, tag, wildcards, non-overtaking per channel).  Time is *virtual*:
//! each rank carries its own clock; a send occupies the sender's link for
//! `β·bytes` (back-to-back sends serialize on one NIC, like real hardware)
//! and the message arrives `α` later, where `(α, β)` depend on the
//! topological distance between the cores hosting the two processes (see
//! `mim_topology`).  A receive advances the receiver clock to
//! `max(local, arrival)` — the classic conservative-timestamping scheme used
//! by SMPI-style simulators.
//!
//! Collectives ([`collectives`]) are implemented **on top of point-to-point
//! messages** (binomial broadcast, binary/binomial tree reduce,
//! recursive-doubling allreduce/barrier, ring allgather, …).  All wire
//! traffic — including the point-to-point decomposition of collectives and
//! one-sided operations — funnels through a single interposition point, the
//! [`pml`] layer, which mirrors the position of Open MPI's `pml_monitoring`
//! MCA component: below the collective engine, above the wire.  Monitoring
//! libraries (`mim-core`) and the simulated NIC hardware counters ([`nic`])
//! subscribe there.
//!
//! Messages can carry real data or a *synthetic* size-only payload
//! ([`envelope::Payload::Synthetic`]); both traverse the same hooks and the
//! same cost model, which lets benchmarks replay paper-scale buffers
//! (2·10⁸ ints) without allocating them.

pub mod clock;
pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod envelope;
pub mod exec;
pub mod fault;
pub mod mailbox;
pub mod nic;
pub mod nonblocking;
pub mod osc;
pub mod pml;
pub mod runtime;
pub mod sched;
pub mod schedule;

pub use comm::Comm;
pub use datatype::Scalar;
pub use envelope::{MsgKind, Payload};
pub use exec::ExecutorKind;
pub use fault::{CrashPoint, FaultInjector, LinkCtx, PeerFailure, RankFailure, SendOutcome};
pub use mailbox::{RecvWaitError, UnexpectedQueue};
pub use nic::{NicCounters, NicEvent};
pub use nonblocking::{waitall_recv, RecvRequest, SendRequest};
pub use osc::Window;
pub use pml::{LocalPmlHook, PmlEvent, PmlHook};
pub use runtime::{
    Rank, RankAborted, SrcSel, StaleEpoch, Status, TagSel, Universe, UniverseConfig,
};
pub use sched::{CanonicalPolicy, Decision, PolicyHandle, SchedulePolicy};
pub use schedule::{ChannelTotals, Schedule, Step};

/// The tracing subsystem (re-exported so downstream crates need no direct
/// `mim-trace` dependency to inject a [`trace::Tracer`] into a universe).
pub use mim_trace as trace;
