//! Per-rank mailbox with MPI matching semantics.
//!
//! Matching is *indexed*: arrived-but-unmatched envelopes live in
//! [`UnexpectedQueue`], a two-level hash index keyed by `(comm, ctx)` then
//! `(src_world, tag)`, each leaf a FIFO stamped with a global arrival
//! sequence number.  A fully specific receive pops the head of one leaf in
//! O(1) amortized; a wildcard receive takes the minimum arrival sequence
//! over the candidate leaves of its `(comm, ctx)` group — a min over
//! *distinct channels*, not a scan over queued messages — which preserves
//! MPI's non-overtaking rule exactly (per-channel FIFOs never reorder, and
//! the sequence stamp restores global arrival order across channels).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::time::Duration;

use mim_trace::TraceHandle;
use mim_util::channel::{Receiver, RecvTimeoutError, TryRecvError};

use crate::envelope::{Ctx, Envelope};
use crate::exec::{ParkWake, ParkerHandle};
use crate::sched::{clamp_choice, Decision, PolicyHandle, SchedulePolicy};

/// How many ring events per track a mailbox panic appends to its message.
const FLIGHT_EVENTS: usize = 20;

/// Source selector for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match any sender (`MPI_ANY_SOURCE`).
    Any,
    /// Match a specific *world* rank (translation from communicator rank is
    /// done by the caller, which owns the communicator).
    World(usize),
}

/// Tag selector for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
    /// Match a specific tag.
    Is(u32),
}

/// Why a fallible blocking receive gave up (the recoverable twin of the
/// `recv_match` deadlock/disconnect panics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvWaitError {
    /// No matching message arrived within the wall-clock deadline.
    Timeout,
    /// Every sender disconnected; no message can ever arrive.
    Disconnected,
}

/// A receive pattern: communicator, context, source and tag.
#[derive(Debug, Clone, Copy)]
pub struct MatchPattern {
    pub comm_id: u64,
    pub ctx: Ctx,
    pub src: SrcSel,
    pub tag: TagSel,
}

impl MatchPattern {
    fn matches(&self, env: &Envelope) -> bool {
        if env.comm_id != self.comm_id || env.ctx != self.ctx {
            return false;
        }
        if let SrcSel::World(w) = self.src {
            if env.src_world != w {
                return false;
            }
        }
        if let TagSel::Is(t) = self.tag {
            if env.tag != t {
                return false;
            }
        }
        true
    }
}

/// One `(comm, ctx)` matching group: its channels, plus the channels
/// ordered by the arrival sequence of their *head* message.
#[derive(Default)]
struct Group {
    /// `(src_world, tag)` → FIFO of `(arrival seq, env)`.
    chans: HashMap<(usize, u32), VecDeque<(u64, Envelope)>>,
    /// Head arrival seq → channel.  Walking this in order visits channels
    /// by earliest eligible message, so a wildcard take stops at the first
    /// channel passing its src/tag filter — O(log k) for `ANY/ANY` instead
    /// of a min over every candidate channel.
    by_head: BTreeMap<u64, (usize, u32)>,
}

fn chan_matches(pat: &MatchPattern, (src, tag): (usize, u32)) -> bool {
    (match pat.src {
        SrcSel::Any => true,
        SrcSel::World(w) => src == w,
    }) && (match pat.tag {
        TagSel::Any => true,
        TagSel::Is(t) => tag == t,
    })
}

/// The indexed unexpected-message queue (see module docs).
///
/// Public so the `mailbox_matching` microbench can drive it directly,
/// without threads or channels in the measured loop.
#[derive(Default)]
pub struct UnexpectedQueue {
    groups: HashMap<(u64, Ctx), Group>,
    next_seq: u64,
    len: usize,
}

impl UnexpectedQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued envelopes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append an envelope in arrival order.
    pub fn push(&mut self, env: Envelope) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let group = self.groups.entry((env.comm_id, env.ctx)).or_default();
        let chan = (env.src_world, env.tag);
        let fifo = group.chans.entry(chan).or_default();
        if fifo.is_empty() {
            group.by_head.insert(seq, chan);
        }
        fifo.push_back((seq, env));
        self.len += 1;
    }

    /// Remove every queued envelope in arrival order — how a latent slot's
    /// temporary mailbox hands its pre-admission stash to the rank's real
    /// mailbox instead of dropping it.
    pub fn drain_in_order(&mut self) -> Vec<Envelope> {
        let mut all: Vec<(u64, Envelope)> =
            self.groups.drain().flat_map(|(_, g)| g.chans.into_values().flatten()).collect();
        all.sort_unstable_by_key(|&(seq, _)| seq);
        self.len = 0;
        all.into_iter().map(|(_, env)| env).collect()
    }

    /// Remove and return the earliest-arrived envelope matching `pat`.
    pub fn take(&mut self, pat: &MatchPattern) -> Option<Envelope> {
        let group_key = (pat.comm_id, pat.ctx);
        let group = self.groups.get_mut(&group_key)?;
        let chan = match (pat.src, pat.tag) {
            // Fully specific: one leaf, O(1).
            (SrcSel::World(src), TagSel::Is(tag)) => {
                group.chans.contains_key(&(src, tag)).then_some((src, tag))?
            }
            // Wildcard: first channel in head-arrival order passing the
            // filter — its head is the earliest eligible message, because
            // every queued message is some channel's head or behind it.
            _ => group.by_head.values().copied().find(|&c| chan_matches(pat, c))?,
        };
        let fifo = group.chans.get_mut(&chan).expect("channel key came from the index");
        let (seq, env) = fifo.pop_front().expect("empty channels are pruned");
        group.by_head.remove(&seq);
        if let Some(&(next_seq, _)) = fifo.front() {
            group.by_head.insert(next_seq, chan);
        } else {
            group.chans.remove(&chan);
            if group.chans.is_empty() {
                self.groups.remove(&group_key);
            }
        }
        self.len -= 1;
        Some(env)
    }

    /// Like [`UnexpectedQueue::take`], but when a wildcard receive has
    /// several eligible channels the installed [`SchedulePolicy`] picks
    /// which one wins (`rank` = the receiving world rank, decision
    /// context).  Candidates are offered in head-arrival order, so a policy
    /// answering 0 is bit-identical to the un-policed take.
    pub(crate) fn take_policed(
        &mut self,
        pat: &MatchPattern,
        rank: usize,
        policy: &dyn SchedulePolicy,
    ) -> Option<Envelope> {
        let group_key = (pat.comm_id, pat.ctx);
        let group = self.groups.get_mut(&group_key)?;
        let chan = match (pat.src, pat.tag) {
            (SrcSel::World(src), TagSel::Is(tag)) => {
                group.chans.contains_key(&(src, tag)).then_some((src, tag))?
            }
            _ => {
                let cands: Vec<(usize, u32)> =
                    group.by_head.values().copied().filter(|&c| chan_matches(pat, c)).collect();
                match cands.len() {
                    0 => return None,
                    1 => cands[0],
                    n => {
                        let i = policy.choose(Decision::WildcardTake { rank, candidates: &cands });
                        cands[clamp_choice(i, n)]
                    }
                }
            }
        };
        let fifo = group.chans.get_mut(&chan).expect("channel key came from the index");
        let (seq, env) = fifo.pop_front().expect("empty channels are pruned");
        group.by_head.remove(&seq);
        if let Some(&(next_seq, _)) = fifo.front() {
            group.by_head.insert(next_seq, chan);
        } else {
            group.chans.remove(&chan);
            if group.chans.is_empty() {
                self.groups.remove(&group_key);
            }
        }
        self.len -= 1;
        Some(env)
    }

    /// Is any queued envelope matching `pat` (no removal)?
    pub fn contains_match(&self, pat: &MatchPattern) -> bool {
        let Some(group) = self.groups.get(&(pat.comm_id, pat.ctx)) else { return false };
        match (pat.src, pat.tag) {
            (SrcSel::World(src), TagSel::Is(tag)) => group.chans.contains_key(&(src, tag)),
            _ => group.by_head.values().any(|&c| chan_matches(pat, c)),
        }
    }

    /// Human-readable dump of up to `limit` queued envelopes in arrival
    /// order (deadlock diagnostics).
    pub fn dump(&self, limit: usize) -> String {
        let mut all: Vec<(u64, &Envelope)> = self
            .groups
            .values()
            .flat_map(|g| g.chans.values())
            .flat_map(|fifo| fifo.iter().map(|(s, e)| (*s, e)))
            .collect();
        all.sort_unstable_by_key(|&(s, _)| s);
        let mut out = String::new();
        for (seq, e) in all.iter().take(limit) {
            let _ = writeln!(
                out,
                "  #{seq}: src_world={} comm={} ctx={:?} tag={} kind={:?} bytes={}",
                e.src_world,
                e.comm_id,
                e.ctx,
                e.tag,
                e.kind,
                e.payload.len_bytes()
            );
        }
        if all.len() > limit {
            let _ = writeln!(out, "  … and {} more", all.len() - limit);
        }
        out
    }
}

/// The seed's linear matcher, retained as a correctness oracle: a flat
/// arrival-ordered `Vec` scanned front to back.  The equivalence property
/// in the test module drives random interleavings through both matchers.
#[cfg(test)]
#[derive(Default)]
pub(crate) struct LinearQueue {
    items: Vec<Envelope>,
}

#[cfg(test)]
impl LinearQueue {
    pub(crate) fn push(&mut self, env: Envelope) {
        self.items.push(env);
    }

    pub(crate) fn take(&mut self, pat: &MatchPattern) -> Option<Envelope> {
        let pos = self.items.iter().position(|e| pat.matches(e))?;
        Some(self.items.remove(pos))
    }

    pub(crate) fn contains_match(&self, pat: &MatchPattern) -> bool {
        self.items.iter().any(|e| pat.matches(e))
    }
}

/// A rank's incoming-message endpoint: the channel receiver plus the
/// *unexpected message queue* holding arrived-but-unmatched envelopes, kept
/// in arrival order so matching picks the earliest eligible message —
/// MPI's non-overtaking rule.
pub struct Mailbox {
    rx: Receiver<Envelope>,
    unexpected: UnexpectedQueue,
    /// Wall-clock deadline for one blocking receive; hitting it means the
    /// simulated application deadlocked, so we panic with a diagnostic
    /// instead of hanging the test suite.
    deadline: Duration,
    /// High-water mark of the unexpected queue (cheap enough to always
    /// track; surfaced per session via the monitoring library).
    uq_high: usize,
    /// The owning rank's trace track: when set, a deadlock panic appends
    /// the flight-recorder dump — the last ring events of *every* track —
    /// to its message.
    trace: Option<TraceHandle>,
    /// This mailbox's incarnation (0 for an original rank; bumped when the
    /// owning rank is reborn after a plan crash).  Non-fault envelopes
    /// addressed to a different incarnation are dropped on admission.
    incarnation: u32,
    /// Last admitted `(sender incarnation, wire sequence)` per sender
    /// (fault-injection dedup).  A newer sender incarnation replaces the
    /// entry, so a reborn sender's wire sequence restarting at 0 is
    /// admitted instead of being mistaken for a stale duplicate.
    last_wire_seq: HashMap<usize, (u32, u64)>,
    /// Envelopes dropped as duplicate deliveries.
    dup_dropped: u64,
    /// Envelopes dropped as stale-incarnation traffic (addressed to, or
    /// sent by, an incarnation that no longer exists).
    stale_dropped: u64,
    /// Under the M:N executor, blocking waits park the rank's *task* here
    /// instead of its worker thread; `None` (thread-per-rank) keeps the
    /// wall-clock `recv_timeout` path.
    parker: Option<ParkerHandle>,
    /// Installed schedule policy plus the owning world rank (decision
    /// context): wildcard takes with several eligible channels ask it which
    /// one wins, and deadline panics carry its decision log.
    policy: Option<(PolicyHandle, usize)>,
}

impl Mailbox {
    /// Wrap a channel receiver. `deadline` bounds any single blocking receive.
    pub fn new(rx: Receiver<Envelope>, deadline: Duration) -> Self {
        Self {
            rx,
            unexpected: UnexpectedQueue::new(),
            deadline,
            uq_high: 0,
            trace: None,
            incarnation: 0,
            last_wire_seq: HashMap::new(),
            dup_dropped: 0,
            stale_dropped: 0,
            parker: None,
            policy: None,
        }
    }

    /// Set the owning rank's incarnation (elastic restarts).  Messages in
    /// flight to an older incarnation are dropped on admission from then on.
    pub(crate) fn set_incarnation(&mut self, incarnation: u32) {
        self.incarnation = incarnation;
    }

    /// Route blocking waits through the M:N executor: park the rank's task
    /// (freeing its worker thread) instead of sleeping in `recv_timeout`.
    pub(crate) fn set_parker(&mut self, parker: ParkerHandle) {
        self.parker = Some(parker);
    }

    /// Attach the owning rank's trace track (flight-recorder dumps on
    /// deadlock panics).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Install a schedule policy: wildcard receives with several eligible
    /// channels consult it, and deadlock panics append its decision log so
    /// a deadlock found mid-exploration stays replayable.
    pub fn set_policy(&mut self, policy: PolicyHandle, world_rank: usize) {
        self.policy = Some((policy, world_rank));
    }

    /// Hand back everything stashed in the unexpected queue, in arrival
    /// order.  A latent slot's parked wait stashes every envelope that is
    /// not its admission verdict; the stash transfers to the rank's real
    /// mailbox so no pre-admission message is lost.
    pub(crate) fn drain_unexpected(&mut self) -> Vec<Envelope> {
        self.unexpected.drain_in_order()
    }

    /// Re-admit an envelope drained from a predecessor mailbox: the
    /// admission filters (incarnation, duplicate sequences) run again
    /// against *this* mailbox's state.
    pub(crate) fn readmit(&mut self, env: Envelope) {
        if let Some(env) = self.admit(env) {
            self.queue_unexpected(env);
        }
    }

    /// Take the earliest (or, under a policy, the chosen) queued envelope
    /// matching `pat`.
    fn take_unexpected(&mut self, pat: &MatchPattern) -> Option<Envelope> {
        match &self.policy {
            Some((policy, rank)) => self.unexpected.take_policed(pat, *rank, policy.as_ref()),
            None => self.unexpected.take(pat),
        }
    }

    /// The installed policy's decision log, or an empty string.  Deadline
    /// panics append it after the flight-recorder dump: the log is the
    /// schedule witness, without it a deadlock found during exploration
    /// could not be replayed.
    fn decision_dump(&self) -> String {
        match self.policy.as_ref().and_then(|(p, _)| p.decision_log()) {
            Some(log) => format!("\nschedule decisions (replay witness):\n{log}"),
            None => String::new(),
        }
    }

    /// The flight-recorder dump, or an empty string when tracing is off.
    fn flight_dump(&self) -> String {
        match &self.trace {
            Some(t) => {
                format!("\nflight recorder:\n{}", t.tracer().flight_report(FLIGHT_EVENTS))
            }
            None => String::new(),
        }
    }

    fn queue_unexpected(&mut self, env: Envelope) {
        self.unexpected.push(env);
        self.uq_high = self.uq_high.max(self.unexpected.len());
    }

    /// Duplicate-delivery filter: admit an envelope unless its wire
    /// sequence is not newer than the last one admitted from the same
    /// sender.  Sound because each sender's channel is FIFO and the sender
    /// assigns non-decreasing sequences (duplicates are enqueued
    /// back-to-back with the same sequence), so "not newer" can only mean
    /// "a copy of something already admitted".
    fn admit(&mut self, env: Envelope) -> Option<Envelope> {
        // Incarnation filter (fault-protocol traffic is exempt: death,
        // ping and join notices must reach whatever incarnation is live).
        // A message addressed to a different incarnation of this rank was
        // in flight across a crash/restart boundary: reject it
        // deterministically rather than misdeliver it.
        if env.ctx != Ctx::Fault && env.dst_inc != self.incarnation {
            self.stale_dropped += 1;
            return None;
        }
        let Some(seq) = env.wire_seq else { return Some(env) };
        match self.last_wire_seq.get(&env.src_world) {
            // A dead incarnation's leftovers: drop, whatever the sequence.
            Some(&(inc, _)) if env.src_inc < inc => {
                self.stale_dropped += 1;
                None
            }
            Some(&(inc, last)) if env.src_inc == inc && seq <= last => {
                self.dup_dropped += 1;
                None
            }
            // First message from this sender, a newer sequence, or a newer
            // incarnation (which replaces the entry: its sequences restart
            // at 0).
            _ => {
                self.last_wire_seq.insert(env.src_world, (env.src_inc, seq));
                Some(env)
            }
        }
    }

    /// The single blocking point of the mailbox: wait for the next envelope
    /// or give up.  Thread-per-rank sleeps in the channel's wall-clock
    /// `recv_timeout`; under the M:N executor the rank's *task* parks and a
    /// `Timeout` is produced deterministically by the scheduler's stall
    /// resolver (all live tasks parked, every queue empty) rather than by
    /// elapsed time — same observable outcome, no blocked worker thread.
    fn wait_message(&mut self, deadline: Duration) -> Result<Envelope, RecvWaitError> {
        let Some(parker) = &self.parker else {
            return match self.rx.recv_timeout(deadline) {
                Ok(env) => Ok(env),
                Err(RecvTimeoutError::Timeout) => Err(RecvWaitError::Timeout),
                Err(RecvTimeoutError::Disconnected) => Err(RecvWaitError::Disconnected),
            };
        };
        loop {
            match self.rx.try_recv() {
                Ok(env) => return Ok(env),
                Err(TryRecvError::Disconnected) => return Err(RecvWaitError::Disconnected),
                Err(TryRecvError::Empty) => match parker.park(deadline) {
                    // A wake may be a leftover token from a message already
                    // consumed; the re-poll above sorts it out.
                    ParkWake::Message => continue,
                    ParkWake::Deadline => return Err(RecvWaitError::Timeout),
                },
            }
        }
    }

    /// Fallible blocking receive of the earliest message matching `pat`:
    /// returns an error instead of panicking on deadline or disconnect.
    /// `deadline` overrides the mailbox's configured deadline.
    pub fn try_recv_deadline(
        &mut self,
        pat: &MatchPattern,
        deadline: Duration,
    ) -> Result<Envelope, RecvWaitError> {
        if let Some(env) = self.take_unexpected(pat) {
            return Ok(env);
        }
        loop {
            let env = self.wait_message(deadline)?;
            let Some(env) = self.admit(env) else { continue };
            if pat.matches(&env) {
                return Ok(env);
            }
            self.queue_unexpected(env);
        }
    }

    /// Blocking receive that matches *either* pattern, preferring `a` when
    /// both have a message queued: returns `(env, true)` for an `a` match,
    /// `(env, false)` for `b`.  Used by the failure detector to wait for
    /// data while staying responsive to a peer's death notice; checking `a`
    /// (the data pattern) first preserves the per-channel FIFO guarantee
    /// that data sent before a crash is consumed before the death notice.
    pub fn recv_either(
        &mut self,
        a: &MatchPattern,
        b: &MatchPattern,
        deadline: Duration,
    ) -> Result<(Envelope, bool), RecvWaitError> {
        loop {
            if let Some(env) = self.take_unexpected(a) {
                return Ok((env, true));
            }
            if let Some(env) = self.take_unexpected(b) {
                return Ok((env, false));
            }
            let env = self.wait_message(deadline)?;
            if let Some(env) = self.admit(env) {
                self.queue_unexpected(env);
            }
        }
    }

    /// Blocking receive of the earliest message matching `pat`.
    ///
    /// # Panics
    /// Panics if no matching message arrives within the wall-clock deadline
    /// (deadlock detector) or if all senders disconnected.
    pub fn recv_match(&mut self, pat: &MatchPattern) -> Envelope {
        match self.try_recv_deadline(pat, self.deadline) {
            Ok(env) => env,
            Err(RecvWaitError::Timeout) => panic!(
                "deadlock: no message matching {pat:?} within {:?} \
                 (override with MIM_DEADLINE_MS); {} unexpected messages queued:\n{}{}{}",
                self.deadline,
                self.unexpected.len(),
                self.unexpected.dump(16),
                self.flight_dump(),
                self.decision_dump()
            ),
            Err(RecvWaitError::Disconnected) => {
                panic!(
                    "all senders disconnected while waiting for {pat:?}{}{}",
                    self.flight_dump(),
                    self.decision_dump()
                )
            }
        }
    }

    /// Non-blocking probe: is a matching message already available?
    /// Drains the channel into the unexpected queue first.
    pub fn iprobe(&mut self, pat: &MatchPattern) -> bool {
        while let Ok(env) = self.rx.try_recv() {
            if let Some(env) = self.admit(env) {
                self.queue_unexpected(env);
            }
        }
        self.unexpected.contains_match(pat)
    }

    /// Envelopes dropped by the duplicate-delivery filter.
    pub fn duplicates_dropped(&self) -> u64 {
        self.dup_dropped
    }

    /// Envelopes dropped by the incarnation filter (stale-incarnation
    /// traffic across a crash/restart boundary).
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// Number of queued unexpected messages (diagnostic).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    /// High-water mark of the unexpected queue over the mailbox's lifetime.
    pub fn max_unexpected_depth(&self) -> usize {
        self.uq_high
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{MsgKind, Payload};
    use mim_util::channel::unbounded;
    use mim_util::props;

    fn env(src: usize, comm: u64, ctx: Ctx, tag: u32) -> Envelope {
        Envelope {
            src_world: src,
            dst_world: 9,
            comm_id: comm,
            ctx,
            tag,
            kind: MsgKind::P2pUser,
            payload: Payload::Synthetic(1),
            sent_at_ns: 0.0,
            arrival_ns: 0.0,
            wire_seq: None,
            src_inc: 0,
            dst_inc: 0,
        }
    }

    fn pat(comm: u64, ctx: Ctx, src: SrcSel, tag: TagSel) -> MatchPattern {
        MatchPattern { comm_id: comm, ctx, src, tag }
    }

    #[test]
    fn exact_match_skips_others() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        tx.send(env(1, 7, Ctx::Pt2pt, 10)).unwrap();
        tx.send(env(2, 7, Ctx::Pt2pt, 20)).unwrap();
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::World(2), TagSel::Is(20)));
        assert_eq!(got.src_world, 2);
        assert_eq!(mb.unexpected_len(), 1);
        // The skipped message is still deliverable.
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
        assert_eq!(got.src_world, 1);
    }

    #[test]
    fn wildcard_takes_earliest() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        tx.send(env(3, 7, Ctx::Pt2pt, 1)).unwrap();
        tx.send(env(4, 7, Ctx::Pt2pt, 1)).unwrap();
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Is(1)));
        assert_eq!(got.src_world, 3);
    }

    #[test]
    fn wildcard_takes_earliest_across_channels() {
        // Distinct (src, tag) channels: the arrival-sequence index, not
        // per-channel FIFO order, decides the wildcard winner.
        let mut q = UnexpectedQueue::new();
        q.push(env(5, 7, Ctx::Pt2pt, 2));
        q.push(env(3, 7, Ctx::Pt2pt, 1));
        q.push(env(5, 7, Ctx::Pt2pt, 1));
        let got = q.take(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any)).unwrap();
        assert_eq!((got.src_world, got.tag), (5, 2));
        let got = q.take(&pat(7, Ctx::Pt2pt, SrcSel::World(5), TagSel::Any)).unwrap();
        assert_eq!((got.src_world, got.tag), (5, 1));
        let got = q.take(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Is(1))).unwrap();
        assert_eq!((got.src_world, got.tag), (3, 1));
        assert!(q.is_empty());
    }

    #[test]
    fn context_separation() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        tx.send(env(1, 7, Ctx::Coll, 5)).unwrap();
        tx.send(env(1, 7, Ctx::Pt2pt, 5)).unwrap();
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
        assert_eq!(got.ctx, Ctx::Pt2pt);
        let got = mb.recv_match(&pat(7, Ctx::Coll, SrcSel::Any, TagSel::Any));
        assert_eq!(got.ctx, Ctx::Coll);
    }

    #[test]
    fn comm_separation() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        tx.send(env(1, 8, Ctx::Pt2pt, 5)).unwrap();
        tx.send(env(1, 7, Ctx::Pt2pt, 5)).unwrap();
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
        assert_eq!(got.comm_id, 7);
    }

    #[test]
    fn iprobe_sees_pending() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        assert!(!mb.iprobe(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any)));
        tx.send(env(1, 7, Ctx::Pt2pt, 5)).unwrap();
        assert!(mb.iprobe(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any)));
        // iprobe must not consume.
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
        assert_eq!(got.src_world, 1);
    }

    #[test]
    fn duplicate_wire_seqs_dropped() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        let seq = |src: usize, s: u64, tag: u32| {
            let mut e = env(src, 7, Ctx::Pt2pt, tag);
            e.wire_seq = Some(s);
            tx.send(e).unwrap();
        };
        seq(1, 0, 10);
        seq(1, 0, 10); // duplicate delivery of the same wire message
        seq(1, 1, 11);
        seq(2, 0, 10); // per-sender sequences are independent
        seq(1, 1, 11); // duplicate again
        let p = pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any);
        let mut got = Vec::new();
        for _ in 0..3 {
            let e = mb.try_recv_deadline(&p, Duration::from_secs(5)).unwrap();
            got.push((e.src_world, e.tag));
        }
        assert_eq!(got, vec![(1, 10), (1, 11), (2, 10)]);
        // The trailing duplicate is only drained (and counted) by the next
        // receive attempt, which then finds nothing live to deliver.
        assert!(matches!(
            mb.try_recv_deadline(&p, Duration::from_millis(10)),
            Err(RecvWaitError::Timeout)
        ));
        assert_eq!(mb.duplicates_dropped(), 2);
    }

    #[test]
    fn reborn_sender_sequences_are_admitted() {
        // A restarted sender's wire sequences start over at 0; the dedup
        // filter must key on (incarnation, seq), not seq alone.
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        let seq = |src: usize, inc: u32, s: u64, tag: u32| {
            let mut e = env(src, 7, Ctx::Pt2pt, tag);
            e.wire_seq = Some(s);
            e.src_inc = inc;
            tx.send(e).unwrap();
        };
        seq(1, 0, 0, 10);
        seq(1, 0, 1, 11);
        seq(1, 1, 0, 12); // reborn: seq restarts, must be admitted
        seq(1, 0, 2, 13); // stale incarnation straggler, must be dropped
        seq(1, 1, 0, 12); // duplicate from the new incarnation
        let p = pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any);
        let mut got = Vec::new();
        for _ in 0..3 {
            let e = mb.try_recv_deadline(&p, Duration::from_secs(5)).unwrap();
            got.push(e.tag);
        }
        assert_eq!(got, vec![10, 11, 12]);
        assert!(matches!(
            mb.try_recv_deadline(&p, Duration::from_millis(10)),
            Err(RecvWaitError::Timeout)
        ));
        assert_eq!(mb.stale_dropped(), 1);
        assert_eq!(mb.duplicates_dropped(), 1);
    }

    #[test]
    fn stale_destination_incarnation_is_dropped() {
        // The mailbox's owner was reborn as incarnation 1: traffic
        // addressed to incarnation 0 is rejected, fault traffic is exempt.
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        mb.set_incarnation(1);
        let mut stale = env(1, 7, Ctx::Pt2pt, 10);
        stale.dst_inc = 0;
        tx.send(stale).unwrap();
        let mut fresh = env(1, 7, Ctx::Pt2pt, 11);
        fresh.dst_inc = 1;
        tx.send(fresh).unwrap();
        let mut fault = env(1, 0, Ctx::Fault, 12);
        fault.dst_inc = 0; // fault protocol never stamps a real incarnation
        tx.send(fault).unwrap();
        let p = pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any);
        let e = mb.try_recv_deadline(&p, Duration::from_secs(5)).unwrap();
        assert_eq!(e.tag, 11);
        let f = pat(0, Ctx::Fault, SrcSel::Any, TagSel::Any);
        let e = mb.try_recv_deadline(&f, Duration::from_secs(5)).unwrap();
        assert_eq!(e.tag, 12);
        assert_eq!(mb.stale_dropped(), 1);
    }

    #[test]
    fn try_recv_deadline_reports_disconnect() {
        let (tx, rx) = unbounded::<Envelope>();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        drop(tx);
        let p = pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any);
        assert!(matches!(
            mb.try_recv_deadline(&p, Duration::from_secs(5)),
            Err(RecvWaitError::Disconnected)
        ));
    }

    #[test]
    fn recv_either_prefers_first_pattern() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        tx.send(env(1, 7, Ctx::Pt2pt, 2)).unwrap(); // matches b
        tx.send(env(1, 7, Ctx::Pt2pt, 1)).unwrap(); // matches a, arrives later
        let a = pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Is(1));
        let b = pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Is(2));
        // Drain both into the unexpected queue so one matcher pass sees
        // both; `a` wins even though `b`'s message arrived first.
        mb.iprobe(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Is(99)));
        let (e, is_a) = mb.recv_either(&a, &b, Duration::from_secs(5)).unwrap();
        assert!(is_a);
        assert_eq!(e.tag, 1);
        let (e, is_a) = mb.recv_either(&a, &b, Duration::from_secs(5)).unwrap();
        assert!(!is_a);
        assert_eq!(e.tag, 2);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadline_panics() {
        let (_tx, rx) = unbounded::<Envelope>();
        let mut mb = Mailbox::new(rx, Duration::from_millis(10));
        mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
    }

    #[test]
    #[should_panic(expected = "unexpected messages queued")]
    fn deadline_panic_dumps_queue() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_millis(10));
        tx.send(env(1, 7, Ctx::Pt2pt, 5)).unwrap();
        mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Is(6)));
    }

    /// Unique per-envelope marker so deliveries can be compared across the
    /// two matchers (`Envelope` itself is not `PartialEq`).
    fn marked(id: u64, src: usize, comm: u64, ctx: Ctx, tag: u32) -> Envelope {
        let mut e = env(src, comm, ctx, tag);
        e.sent_at_ns = id as f64;
        e
    }

    /// Test policy: scripted choices (canonical 0 past the script's end),
    /// recording every decision it was offered.
    #[derive(Debug, Default)]
    struct ScriptedTest {
        script: Vec<usize>,
        at: std::sync::Mutex<usize>,
        log: std::sync::Mutex<String>,
    }

    impl SchedulePolicy for ScriptedTest {
        fn choose(&self, decision: Decision<'_>) -> usize {
            let mut at = self.at.lock().unwrap();
            let pick = self.script.get(*at).copied().unwrap_or(0);
            *at += 1;
            let mut log = self.log.lock().unwrap();
            let _ = write!(log, "{}:{}/{};", decision.kind_code(), pick, decision.len());
            pick
        }

        fn decision_log(&self) -> Option<String> {
            Some(self.log.lock().unwrap().clone())
        }
    }

    #[test]
    fn policed_wildcard_picks_chosen_channel() {
        use std::sync::Arc;
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        // Choice 1 = second channel in head-arrival order (src 4), then
        // canonical afterwards.
        mb.set_policy(Arc::new(ScriptedTest { script: vec![1], ..Default::default() }), 9);
        tx.send(env(3, 7, Ctx::Pt2pt, 1)).unwrap();
        tx.send(env(4, 7, Ctx::Pt2pt, 2)).unwrap();
        let p = pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any);
        mb.iprobe(&p);
        let got = mb.recv_match(&p);
        assert_eq!(got.src_world, 4, "policy chose the later-arrival channel");
        let got = mb.recv_match(&p);
        assert_eq!(got.src_world, 3);
    }

    #[test]
    #[should_panic(expected = "schedule decisions (replay witness)")]
    fn deadline_panic_attaches_decision_log() {
        use std::sync::Arc;
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_millis(10));
        mb.set_policy(Arc::new(ScriptedTest::default()), 0);
        // Two eligible channels force one recorded wildcard decision before
        // the unmatched specific receive times out.
        tx.send(env(1, 7, Ctx::Pt2pt, 1)).unwrap();
        tx.send(env(2, 7, Ctx::Pt2pt, 2)).unwrap();
        let any = pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any);
        mb.iprobe(&any);
        let _ = mb.recv_match(&any);
        mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::World(5), TagSel::Is(9)));
    }

    props! {
        /// Canonical-policy equivalence (the tentpole's bit-identity
        /// anchor): under random interleavings, `take_policed` with the
        /// always-0 policy delivers exactly what the un-policed `take`
        /// delivers.
        fn canonical_policed_take_equals_take(g) {
            let policy = crate::sched::CanonicalPolicy;
            let mut policed = UnexpectedQueue::new();
            let mut plain = UnexpectedQueue::new();
            let comms = [7u64, 8];
            let ctxs = [Ctx::Pt2pt, Ctx::Coll];
            let mut id = 0u64;
            for _ in 0..g.gen_range(1usize..150) {
                if g.gen_bool(0.55) {
                    let e = marked(
                        id,
                        g.index(4),
                        *g.choose(&comms),
                        *g.choose(&ctxs),
                        g.gen_range(0u32..3),
                    );
                    id += 1;
                    policed.push(e.clone());
                    plain.push(e);
                } else {
                    let p = pat(
                        *g.choose(&comms),
                        *g.choose(&ctxs),
                        if g.any_bool() { SrcSel::Any } else { SrcSel::World(g.index(4)) },
                        if g.any_bool() { TagSel::Any } else { TagSel::Is(g.gen_range(0u32..3)) },
                    );
                    let (a, b) = (policed.take_policed(&p, 0, &policy), plain.take(&p));
                    assert_eq!(
                        a.as_ref().map(|e| e.sent_at_ns),
                        b.as_ref().map(|e| e.sent_at_ns),
                        "canonical policy diverged from default take on {p:?}"
                    );
                }
            }
            assert_eq!(policed.len(), plain.len());
        }

        /// The tentpole's equivalence oracle: random interleavings of
        /// pushes and take attempts — wildcard and specific src/tag over
        /// several comms and ctxs — must deliver identical messages in
        /// identical order from the indexed matcher and the linear scan.
        fn indexed_matcher_equals_linear_oracle(g) {
            let mut indexed = UnexpectedQueue::new();
            let mut oracle = LinearQueue::default();
            let comms = [7u64, 8];
            let ctxs = [Ctx::Pt2pt, Ctx::Coll, Ctx::Osc];
            let mut id = 0u64;
            for _ in 0..g.gen_range(1usize..200) {
                if g.gen_bool(0.55) {
                    let e = marked(
                        id,
                        g.index(4),
                        *g.choose(&comms),
                        *g.choose(&ctxs),
                        g.gen_range(0u32..4),
                    );
                    id += 1;
                    indexed.push(e.clone());
                    oracle.push(e);
                } else {
                    let p = pat(
                        *g.choose(&comms),
                        *g.choose(&ctxs),
                        if g.any_bool() { SrcSel::Any } else { SrcSel::World(g.index(4)) },
                        if g.any_bool() { TagSel::Any } else { TagSel::Is(g.gen_range(0u32..4)) },
                    );
                    assert_eq!(indexed.contains_match(&p), oracle.contains_match(&p));
                    let (a, b) = (indexed.take(&p), oracle.take(&p));
                    assert_eq!(
                        a.as_ref().map(|e| e.sent_at_ns),
                        b.as_ref().map(|e| e.sent_at_ns),
                        "indexed and linear matchers disagree on {p:?}"
                    );
                }
            }
            // Drain both fully: same residue in the same global order.
            assert_eq!(indexed.len(), oracle.items.len());
            for comm in comms {
                for ctx in ctxs {
                    let p = pat(comm, ctx, SrcSel::Any, TagSel::Any);
                    loop {
                        let (a, b) = (indexed.take(&p), oracle.take(&p));
                        assert_eq!(a.as_ref().map(|e| e.sent_at_ns), b.as_ref().map(|e| e.sent_at_ns));
                        if a.is_none() {
                            break;
                        }
                    }
                }
            }
            assert!(indexed.is_empty());
        }
    }
}
