//! Per-rank mailbox with MPI matching semantics.

use std::time::Duration;

use mim_util::channel::{Receiver, RecvTimeoutError};

use crate::envelope::{Ctx, Envelope};

/// Source selector for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match any sender (`MPI_ANY_SOURCE`).
    Any,
    /// Match a specific *world* rank (translation from communicator rank is
    /// done by the caller, which owns the communicator).
    World(usize),
}

/// Tag selector for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
    /// Match a specific tag.
    Is(u32),
}

/// A receive pattern: communicator, context, source and tag.
#[derive(Debug, Clone, Copy)]
pub struct MatchPattern {
    pub comm_id: u64,
    pub ctx: Ctx,
    pub src: SrcSel,
    pub tag: TagSel,
}

impl MatchPattern {
    fn matches(&self, env: &Envelope) -> bool {
        if env.comm_id != self.comm_id || env.ctx != self.ctx {
            return false;
        }
        if let SrcSel::World(w) = self.src {
            if env.src_world != w {
                return false;
            }
        }
        if let TagSel::Is(t) = self.tag {
            if env.tag != t {
                return false;
            }
        }
        true
    }
}

/// A rank's incoming-message endpoint: the channel receiver plus the
/// *unexpected message queue* holding arrived-but-unmatched envelopes, kept
/// in arrival order so matching picks the earliest eligible message —
/// MPI's non-overtaking rule.
pub struct Mailbox {
    rx: Receiver<Envelope>,
    unexpected: Vec<Envelope>,
    /// Wall-clock deadline for one blocking receive; hitting it means the
    /// simulated application deadlocked, so we panic with a diagnostic
    /// instead of hanging the test suite.
    deadline: Duration,
}

impl Mailbox {
    /// Wrap a channel receiver. `deadline` bounds any single blocking receive.
    pub fn new(rx: Receiver<Envelope>, deadline: Duration) -> Self {
        Self { rx, unexpected: Vec::new(), deadline }
    }

    /// Blocking receive of the earliest message matching `pat`.
    ///
    /// # Panics
    /// Panics if no matching message arrives within the wall-clock deadline
    /// (deadlock detector) or if all senders disconnected.
    pub fn recv_match(&mut self, pat: &MatchPattern) -> Envelope {
        if let Some(pos) = self.unexpected.iter().position(|e| pat.matches(e)) {
            return self.unexpected.remove(pos);
        }
        loop {
            match self.rx.recv_timeout(self.deadline) {
                Ok(env) => {
                    if pat.matches(&env) {
                        return env;
                    }
                    self.unexpected.push(env);
                }
                Err(RecvTimeoutError::Timeout) => panic!(
                    "deadlock: no message matching {pat:?} within {:?} \
                     ({} unexpected messages queued)",
                    self.deadline,
                    self.unexpected.len()
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("all senders disconnected while waiting for {pat:?}")
                }
            }
        }
    }

    /// Non-blocking probe: is a matching message already available?
    /// Drains the channel into the unexpected queue first.
    pub fn iprobe(&mut self, pat: &MatchPattern) -> bool {
        while let Ok(env) = self.rx.try_recv() {
            self.unexpected.push(env);
        }
        self.unexpected.iter().any(|e| pat.matches(e))
    }

    /// Number of queued unexpected messages (diagnostic).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{MsgKind, Payload};
    use mim_util::channel::unbounded;

    fn env(src: usize, comm: u64, ctx: Ctx, tag: u32) -> Envelope {
        Envelope {
            src_world: src,
            dst_world: 9,
            comm_id: comm,
            ctx,
            tag,
            kind: MsgKind::P2pUser,
            payload: Payload::Synthetic(1),
            sent_at_ns: 0.0,
            arrival_ns: 0.0,
        }
    }

    fn pat(comm: u64, ctx: Ctx, src: SrcSel, tag: TagSel) -> MatchPattern {
        MatchPattern { comm_id: comm, ctx, src, tag }
    }

    #[test]
    fn exact_match_skips_others() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        tx.send(env(1, 7, Ctx::Pt2pt, 10)).unwrap();
        tx.send(env(2, 7, Ctx::Pt2pt, 20)).unwrap();
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::World(2), TagSel::Is(20)));
        assert_eq!(got.src_world, 2);
        assert_eq!(mb.unexpected_len(), 1);
        // The skipped message is still deliverable.
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
        assert_eq!(got.src_world, 1);
    }

    #[test]
    fn wildcard_takes_earliest() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        tx.send(env(3, 7, Ctx::Pt2pt, 1)).unwrap();
        tx.send(env(4, 7, Ctx::Pt2pt, 1)).unwrap();
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Is(1)));
        assert_eq!(got.src_world, 3);
    }

    #[test]
    fn context_separation() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        tx.send(env(1, 7, Ctx::Coll, 5)).unwrap();
        tx.send(env(1, 7, Ctx::Pt2pt, 5)).unwrap();
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
        assert_eq!(got.ctx, Ctx::Pt2pt);
        let got = mb.recv_match(&pat(7, Ctx::Coll, SrcSel::Any, TagSel::Any));
        assert_eq!(got.ctx, Ctx::Coll);
    }

    #[test]
    fn comm_separation() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        tx.send(env(1, 8, Ctx::Pt2pt, 5)).unwrap();
        tx.send(env(1, 7, Ctx::Pt2pt, 5)).unwrap();
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
        assert_eq!(got.comm_id, 7);
    }

    #[test]
    fn iprobe_sees_pending() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx, Duration::from_secs(5));
        assert!(!mb.iprobe(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any)));
        tx.send(env(1, 7, Ctx::Pt2pt, 5)).unwrap();
        assert!(mb.iprobe(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any)));
        // iprobe must not consume.
        let got = mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
        assert_eq!(got.src_world, 1);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadline_panics() {
        let (_tx, rx) = unbounded::<Envelope>();
        let mut mb = Mailbox::new(rx, Duration::from_millis(10));
        mb.recv_match(&pat(7, Ctx::Pt2pt, SrcSel::Any, TagSel::Any));
    }
}
