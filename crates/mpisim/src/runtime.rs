//! The universe (job launcher) and per-rank handles.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mim_trace::{TraceData, TraceHandle, Tracer};
use mim_util::channel::{unbounded, Receiver, Sender};
use mim_util::sync::{Mutex, RwLock};

use mim_topology::{Machine, Placement};

use crate::clock::VirtualClock;
use crate::collectives;
use crate::comm::Comm;
use crate::datatype::Scalar;
use crate::envelope::{Ctx, Envelope, MsgKind, Payload};
use crate::exec::{self, ExecShared, ExecutorKind};
use crate::fault::{
    self, CrashPoint, FaultInjector, LinkCtx, PeerFailure, RankFailure, SendOutcome,
};
use crate::mailbox::{self, Mailbox, MatchPattern, RecvWaitError};
use crate::nic::NicCounters;
use crate::pml::{LocalHookHandle, LocalHooks, LocalPmlHook, PmlEvent, PmlHook};
use crate::sched::{clamp_choice, Decision, PolicyHandle};

/// Source selector in *communicator ranks* (the public API counterpart of
/// `MPI_ANY_SOURCE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match any member of the communicator.
    Any,
    /// Match a specific communicator rank.
    Rank(usize),
}

/// Tag selector (`MPI_ANY_TAG`).
pub use crate::mailbox::TagSel;

/// Completion status of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Communicator rank of the sender.
    pub src: usize,
    /// Message tag.
    pub tag: u32,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// Job configuration.
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// The machine to simulate.
    pub machine: Machine,
    /// Process → core placement; its length is the number of ranks.
    pub placement: Placement,
    /// Virtual per-send overhead paid by the sender (ns).
    pub send_overhead_ns: f64,
    /// Virtual per-receive overhead paid by the receiver (ns).
    pub recv_overhead_ns: f64,
    /// Per-message protocol header counted by the simulated NIC (bytes).
    pub nic_header_bytes: u64,
    /// Wall-clock bound on a single blocking receive (deadlock detector).
    pub deadline: Duration,
    /// Stack size of rank threads.
    pub stack_size: usize,
    /// Which engine hosts rank code: one OS thread per rank
    /// ([`ExecutorKind::Threads`], the default and the equivalence oracle)
    /// or M:N rank tasks on a fixed work-stealing pool
    /// ([`ExecutorKind::Tasks`], the 10k-rank engine).  Defaults from
    /// `MIM_EXECUTOR`; both modes produce bit-identical virtual-time
    /// results (see `tests/executor_equivalence.rs`).
    pub executor: ExecutorKind,
    /// Stack size of rank *task* fibers (Tasks mode only).  Much smaller
    /// than `stack_size`: 10k ranks × this many bytes must fit comfortably
    /// in memory, and simulated rank bodies are shallow.
    pub task_stack_size: usize,
    /// Tracing subsystem: each rank records its wire events on a per-rank
    /// track (flight recorder + optional `MIM_TRACE` file sink).  `None`
    /// disables tracing entirely — every record site is a single
    /// branch-on-`Option` (see the `trace_overhead` microbench).
    pub tracer: Option<Arc<Tracer>>,
    /// Optional deterministic fault injector (see [`crate::fault`] and the
    /// `mim-chaos` crate).  `None` keeps the wire layer on its fault-free
    /// fast path: the injector check is a single branch-on-`Option`
    /// (measured by the `chaos_overhead` microbench).
    pub injector: Option<Arc<dyn FaultInjector>>,
    /// Optional schedule policy (see [`crate::sched`] and the `mim-explore`
    /// crate): takes over the runtime's three nondeterminism points —
    /// wildcard matching, task resume order, wire-delivery order.  `None`
    /// keeps every hook a single branch-on-`Option`; the canonical policy
    /// is bit-identical to `None`.
    pub sched: Option<PolicyHandle>,
    /// Elastic universes: the number of trailing placement slots reserved
    /// for ranks that may *join* the universe mid-run.  The initial world
    /// (`MPI_COMM_WORLD`) is the first `placement.len() - latent_ranks`
    /// ranks; latent slots are wired (channel + task/thread) at launch but
    /// stay parked — no `Rank`, no mailbox, no trace track — until a
    /// sponsor admits them (see `Universe::launch_elastic`).  0 (the
    /// default) is the classic static universe.
    pub latent_ranks: usize,
}

impl UniverseConfig {
    /// Standard configuration: one process per core of `machine`, packed
    /// placement, default overheads.
    ///
    /// The deadlock-detector deadline defaults to 30 s of wall clock but can
    /// be raised (or lowered) via `MIM_DEADLINE_MS` — an overloaded CI
    /// runner can stall a rank thread long enough to trip a fixed deadline
    /// and report a false "deadlock".
    pub fn new(machine: Machine, placement: Placement) -> Self {
        assert!(
            placement.len() <= machine.num_cores(),
            "placement has more processes than the machine has cores"
        );
        let deadline = std::env::var("MIM_DEADLINE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(Duration::from_secs(30), Duration::from_millis);
        Self {
            machine,
            placement,
            send_overhead_ns: 100.0,
            recv_overhead_ns: 50.0,
            nic_header_bytes: 0,
            deadline,
            stack_size: 4 << 20,
            executor: ExecutorKind::from_env(),
            task_stack_size: 256 << 10,
            tracer: Tracer::global(),
            injector: None,
            sched: None,
            latent_ranks: 0,
        }
    }

    /// Select the rank execution engine (builder style).
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Install a deterministic fault injector (builder style).
    pub fn with_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Install a schedule policy (builder style): the policy decides
    /// wildcard matches, task resume order (Tasks mode, forced to one
    /// worker) and wire-delivery order, and its decision log rides along in
    /// deadlock panics.
    pub fn with_schedule_policy(mut self, policy: PolicyHandle) -> Self {
        self.sched = Some(policy);
        self
    }

    /// Reserve the *last* `n` placement slots for latent joiners (builder
    /// style; see the `latent_ranks` field).  Latent slots only come to life
    /// under [`Universe::launch_elastic`].
    pub fn with_latent_ranks(mut self, n: usize) -> Self {
        assert!(
            n < self.placement.len(),
            "latent_ranks ({n}) must leave at least one initial rank \
             (placement has {} slots)",
            self.placement.len()
        );
        self.latent_ranks = n;
        self
    }

    /// Number of rank slots in the job (initial world + latent joiners).
    pub fn nprocs(&self) -> usize {
        self.placement.len()
    }

    /// Size of the initial world (`MPI_COMM_WORLD`): every slot that is not
    /// a latent joiner.
    pub fn initial(&self) -> usize {
        self.nprocs() - self.latent_ranks
    }
}

/// Shared buffer of one rank's one-sided window.
pub(crate) type WindowBuf = Arc<Mutex<Vec<u8>>>;

pub(crate) struct Shared {
    pub(crate) cfg: UniverseConfig,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) global_hooks: RwLock<Vec<Arc<dyn PmlHook>>>,
    next_comm_id: AtomicU64,
    /// One-sided window registry: (window id, comm rank) → shared buffer.
    pub(crate) windows: Mutex<HashMap<(u64, usize), WindowBuf>>,
    /// The simulated NIC (also the first global hook); kept here so the
    /// wire layer can count retransmissions without a hook round-trip.
    pub(crate) nic: Arc<NicCounters>,
    /// Per-rank liveness, cleared when a fault plan crashes a rank.
    pub(crate) alive: Vec<AtomicBool>,
    /// Per-slot admission state (elastic universes): initial-world slots are
    /// born admitted; a latent slot flips when a sponsor admits it.  The
    /// sponsor's run epilogue retires every slot still unadmitted.
    pub(crate) admitted: Vec<AtomicBool>,
    /// Set by `launch_faulty`: sends to a gone mailbox drop silently
    /// instead of unwinding the sender (`RankAborted`).
    pub(crate) faulty: AtomicBool,
    /// M:N scheduler state, present iff the universe runs in
    /// [`ExecutorKind::Tasks`] mode.  Senders notify it after every
    /// delivery so a parked destination task gets rescheduled.
    pub(crate) exec: Option<Arc<ExecShared>>,
    /// Wire-delivery staging area, used only under a schedule policy:
    /// posted envelopes wait here as `(ticket, dst, env)` until the policy
    /// releases them (see [`Shared::post`]).
    stage: Mutex<std::collections::VecDeque<(u64, usize, Envelope)>>,
    /// Ticket allocator for staged deliveries.
    stage_ticket: AtomicU64,
}

impl Shared {
    /// Allocate `n` consecutive globally unique communicator/window ids.
    pub(crate) fn alloc_ids(&self, n: u64) -> u64 {
        self.next_comm_id.fetch_add(n, Ordering::Relaxed)
    }

    pub(crate) fn core_of(&self, world: usize) -> usize {
        self.cfg.placement.core_of(world)
    }

    /// Deliver an envelope to `dst`'s mailbox channel and, under the M:N
    /// executor, wake `dst`'s task if it is parked.  Every wire-layer send
    /// must go through here — a bare `senders[dst].send` would leave a
    /// parked destination asleep until the stall resolver falsely times it
    /// out.  Returns whether the channel accepted the envelope.
    pub(crate) fn post(&self, dst: usize, env: Envelope) -> bool {
        match &self.cfg.sched {
            Some(policy) => self.post_policed(policy, dst, env),
            None => self.post_direct(dst, env),
        }
    }

    /// The un-policed delivery: send, then wake a parked destination task.
    fn post_direct(&self, dst: usize, env: Envelope) -> bool {
        let delivered = self.senders[dst].send(env).is_ok();
        if delivered {
            if let Some(exec) = &self.exec {
                exec.notify(dst);
                // Fairness: if the destination is runnable but starved of a
                // worker, hand it ours (no-op off the executor).
                exec.maybe_yield_to(dst);
            }
        }
        delivered
    }

    /// Policed delivery: stage the envelope, then release staged envelopes
    /// in policy-chosen order until the stage drains.  The slate is offered
    /// in posting (FIFO) order, so the canonical index-0 answer releases
    /// exactly as [`Shared::post_direct`] would — bit-identical; singleton
    /// slates skip the policy call entirely.  A staged envelope can be
    /// released by a *concurrent* poster's drain loop, in which case its
    /// original poster reports success: the only false return is a send to
    /// a gone mailbox (`launch_faulty` crash plans), which is not combined
    /// with schedule exploration.
    fn post_policed(&self, policy: &PolicyHandle, dst: usize, env: Envelope) -> bool {
        let my_ticket = {
            let mut stage = self.stage.lock();
            let t = self.stage_ticket.fetch_add(1, Ordering::Relaxed);
            stage.push_back((t, dst, env));
            t
        };
        let mut my_result = true;
        // Pop under the lock, deliver outside it: `post_direct` may suspend
        // the calling fiber in its fairness yield, and a suspended fiber
        // must never hold the stage.
        while let Some((ticket, d, e)) = self.stage_pop(policy) {
            let delivered = self.post_direct(d, e);
            if ticket == my_ticket {
                my_result = delivered;
            }
        }
        my_result
    }

    /// Take one staged envelope, consulting the policy when several are
    /// pending.  The slate is in posting (FIFO) order.
    fn stage_pop(&self, policy: &PolicyHandle) -> Option<(u64, usize, Envelope)> {
        let mut stage = self.stage.lock();
        match stage.len() {
            0 => None,
            1 => stage.pop_front(),
            n => {
                let slate: Vec<(usize, usize)> =
                    stage.iter().map(|(_, d, e)| (e.src_world, *d)).collect();
                let i =
                    clamp_choice(policy.choose(Decision::WireDelivery { candidates: &slate }), n);
                stage.remove(i)
            }
        }
    }
}

/// A simulated job: configuration, wiring and the simulated NIC.
///
/// ```
/// use mim_mpisim::{Universe, UniverseConfig};
/// use mim_topology::{Machine, Placement};
///
/// let machine = Machine::plafrim(2);
/// let cfg = UniverseConfig::new(machine, Placement::packed(4));
/// let universe = Universe::new(cfg);
/// let sums = universe.launch(|rank| {
///     let world = rank.comm_world();
///     let mine = vec![rank.world_rank() as u64];
///     rank.allreduce(&world, &mine, |a, b| a + b)[0]
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// ```
pub struct Universe {
    shared: Arc<Shared>,
    receivers: Mutex<Option<Vec<Receiver<Envelope>>>>,
}

impl Universe {
    /// Wire a universe for `cfg.nprocs()` ranks.
    pub fn new(cfg: UniverseConfig) -> Self {
        let n = cfg.nprocs();
        assert!(n > 0, "universe needs at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let core_to_node =
            (0..cfg.machine.num_cores()).map(|c| cfg.machine.node_of_core(c)).collect();
        let nic = Arc::new(NicCounters::new(core_to_node, cfg.nic_header_bytes));
        let exec = match cfg.executor {
            ExecutorKind::Tasks if mim_util::fiber::SUPPORTED => Some(ExecShared::new(n)),
            ExecutorKind::Tasks => {
                eprintln!(
                    "mim-mpisim: MIM_EXECUTOR=tasks needs stackful fibers \
                     (x86_64 unix only); falling back to thread-per-rank"
                );
                None
            }
            ExecutorKind::Threads => None,
        };
        if let (Some(exec), Some(policy)) = (&exec, &cfg.sched) {
            // Hand the policy to the scheduler before launch: dispatch
            // becomes single-worker and resume order is the policy's.
            exec.set_policy(Arc::clone(policy));
        }
        let shared = Arc::new(Shared {
            senders,
            global_hooks: RwLock::new(vec![nic.clone() as Arc<dyn PmlHook>]),
            next_comm_id: AtomicU64::new(1), // id 0 is MPI_COMM_WORLD
            windows: Mutex::new(HashMap::new()),
            nic,
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
            admitted: (0..n).map(|i| AtomicBool::new(i < cfg.initial())).collect(),
            faulty: AtomicBool::new(false),
            exec,
            stage: Mutex::new(std::collections::VecDeque::new()),
            stage_ticket: AtomicU64::new(0),
            cfg,
        });
        Self { shared, receivers: Mutex::new(Some(receivers)) }
    }

    /// The simulated NIC counters (inspect after [`Universe::launch`]).
    pub fn nic(&self) -> &NicCounters {
        &self.shared.nic
    }

    /// Per-rank liveness after a run: `false` for ranks killed by the fault
    /// plan, `true` otherwise.
    pub fn alive(&self) -> Vec<bool> {
        self.shared.alive.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }

    /// Register an additional global PML hook (before launching).
    pub fn add_global_hook(&self, hook: Arc<dyn PmlHook>) {
        self.shared.global_hooks.write().push(hook);
    }

    /// Job configuration.
    pub fn config(&self) -> &UniverseConfig {
        &self.shared.cfg
    }

    /// Run every rank body to completion — one OS thread per rank, or M:N
    /// rank tasks on a worker pool, per `cfg.executor` — and pair each
    /// rank's result with its own panic payload (by rank index).  The
    /// shared engine under both [`Universe::launch`] (strict) and
    /// [`Universe::launch_faulty`] (recoverable).
    fn run_collect<F, R>(&self, f: F) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        self.run_bodies(|world_rank, shared, rx, slot: &mut Option<R>| {
            let rank = Rank::new(world_rank, shared, rx);
            *slot = Some(f(&rank));
        })
    }

    /// The slot-body engine under [`Universe::run_collect`] and
    /// [`Universe::launch_elastic`]: run one `body` per slot (thread-per-rank
    /// or M:N tasks, per `cfg.executor`), pairing each slot's result with
    /// its own panic payload (by slot index).
    fn run_bodies<B, R>(&self, body: B) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
    where
        B: Fn(usize, Arc<Shared>, Receiver<Envelope>, &mut Option<R>) + Sync,
        R: Send,
    {
        let receivers = self.receivers.lock().take().expect("a universe can only be launched once");
        let n = receivers.len();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let payloads = match &self.shared.exec {
            Some(exec) => {
                let exec = Arc::clone(exec);
                self.run_ranks_as_tasks(&exec, &body, receivers, &mut results)
            }
            None => self.run_ranks_as_threads(&body, receivers, &mut results),
        };
        if let Some(t) = &self.shared.cfg.tracer {
            t.flush();
        }
        results
            .into_iter()
            .zip(payloads)
            .map(|(r, p)| match p {
                Some(payload) => Err(payload),
                None => Ok(r.expect("rank produced no result")),
            })
            .collect()
    }

    /// Thread-per-rank engine: spawn `n` scoped OS threads and join them.
    fn run_ranks_as_threads<B, R>(
        &self,
        body: &B,
        receivers: Vec<Receiver<Envelope>>,
        results: &mut [Option<R>],
    ) -> Vec<Option<Box<dyn std::any::Any + Send>>>
    where
        B: Fn(usize, Arc<Shared>, Receiver<Envelope>, &mut Option<R>) + Sync,
        R: Send,
    {
        let n = receivers.len();
        let mut payloads: Vec<Option<Box<dyn std::any::Any + Send>>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (world_rank, (rx, slot)) in
                receivers.into_iter().zip(results.iter_mut()).enumerate()
            {
                let shared = Arc::clone(&self.shared);
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{world_rank}"))
                    .stack_size(self.shared.cfg.stack_size)
                    .spawn_scoped(scope, move || body(world_rank, shared, rx, slot))
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for (i, h) in handles.into_iter().enumerate() {
                if let Err(p) = h.join() {
                    payloads[i] = Some(p);
                }
            }
        });
        payloads
    }

    /// M:N engine: wrap each rank body in a fiber task and run the lot on a
    /// fixed work-stealing worker pool (`crate::exec`).  Blocking receives
    /// park the rank's *task* (the mailbox holds its `ParkerHandle`), so a
    /// handful of workers can carry a 10k-rank universe.
    fn run_ranks_as_tasks<B, R>(
        &self,
        exec: &Arc<ExecShared>,
        body: &B,
        receivers: Vec<Receiver<Envelope>>,
        results: &mut [Option<R>],
    ) -> Vec<Option<Box<dyn std::any::Any + Send>>>
    where
        B: Fn(usize, Arc<Shared>, Receiver<Envelope>, &mut Option<R>) + Sync,
        R: Send,
    {
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(receivers.len());
        for (world_rank, (rx, slot)) in receivers.into_iter().zip(results.iter_mut()).enumerate() {
            let shared = Arc::clone(&self.shared);
            let task: Box<dyn FnOnce() + Send + '_> =
                Box::new(move || body(world_rank, shared, rx, slot));
            // SAFETY: lifetime erasure only.  `exec::run_tasks` joins its
            // worker pool (a `thread::scope`) before returning, and every
            // fiber — run or not — is dropped inside it, so no task (and no
            // borrow of `body` or `results` it captures) outlives this call.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            bodies.push(task);
        }
        exec::run_tasks(exec, bodies, self.shared.cfg.task_stack_size, self.shared.cfg.deadline)
    }

    /// Run `f` once per rank, each on its own thread, and collect the
    /// per-rank results in rank order.
    ///
    /// # Panics
    /// Panics if any rank panics (the first panic is propagated), or when
    /// called a second time on the same universe.
    pub fn launch<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        let mut results = Vec::new();
        let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
        for r in self.run_collect(f) {
            match r {
                Ok(v) => results.push(v),
                Err(p) => panics.push(p),
            }
        }
        if !panics.is_empty() {
            // A plan-scheduled crash is an error in strict mode: report it
            // in the clear instead of unwinding an internal payload.
            for p in &panics {
                if let Some(c) = p.downcast_ref::<fault::RankCrashed>() {
                    panic!(
                        "rank {} crashed by fault injection at {:.0} ns after {} wire ops \
                         (use Universe::launch_faulty to recover)",
                        c.world, c.at_ns, c.ops
                    );
                }
            }
            // Prefer the first payload that is not a secondary
            // `RankAborted` cascade, so the launcher reports the root cause
            // (e.g. a deadlock diagnosis) rather than a send-to-dead-rank
            // symptom from a surviving rank.
            let pos = panics.iter().position(|p| !(**p).is::<RankAborted>()).unwrap_or(0);
            let payload = panics.swap_remove(pos);
            match payload.downcast::<RankAborted>() {
                // Every failing rank was a cascade: the peer exited early
                // *without* panicking, so describe that instead.
                Ok(ab) => panic!(
                    "rank {} sent to rank {}, whose thread had already \
                     exited without receiving (and without panicking)",
                    ab.src, ab.dst
                ),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        results
    }

    /// Like [`Universe::launch`], but failures are *data*: each rank yields
    /// `Ok(result)` or the [`RankFailure`] that took it down, and a send to
    /// a dead rank's mailbox drops silently instead of unwinding the sender.
    /// Survivors keep their results even when peers die — the recoverable
    /// mode the self-healing reorder loop runs under.
    pub fn launch_faulty<F, R>(&self, f: F) -> Vec<Result<R, RankFailure>>
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        self.shared.faulty.store(true, Ordering::Relaxed);
        self.run_collect(f).into_iter().map(|r| r.map_err(RankFailure::classify)).collect()
    }

    /// Elastic launch: [`Universe::launch_faulty`] plus membership churn.
    ///
    /// Three behaviors stack on top of the recoverable mode:
    ///
    /// - **Rolling restarts.**  A rank crashed by the plan whose
    ///   [`FaultInjector::restart_after_crash`] says so is reborn in place:
    ///   same world rank, incarnation + 1, fresh clock and mailbox, and `f`
    ///   runs again (`Rank::incarnation` distinguishes the rebirth).  Its
    ///   rebirth broadcasts a join notice peers consume with
    ///   [`Rank::await_rejoin`].
    /// - **Latent joiners.**  Slots reserved by
    ///   [`UniverseConfig::with_latent_ranks`] park until a sponsor admits
    ///   them ([`Rank::admit`] or the plan's [`FaultInjector::join_plan`]);
    ///   an admitted slot runs `f` with [`Rank::join_comm`] set to the
    ///   communicator it was admitted into.  When the sponsor (world rank 0)
    ///   finishes, every slot never admitted is retired and yields
    ///   `Ok(None)`.
    /// - **Stale-epoch hygiene.**  In-flight messages addressed to a dead
    ///   incarnation are dropped deterministically (see
    ///   [`Rank::stale_dropped`]), and [`Rank::send_checked`] rejects sends
    ///   on superseded communicators.
    ///
    /// Each completed rank yields `Ok(Some(result))`; a rank that died for
    /// good yields `Err(RankFailure)`.
    pub fn launch_elastic<F, R>(&self, f: F) -> Vec<Result<Option<R>, RankFailure>>
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        self.shared.faulty.store(true, Ordering::Relaxed);
        self.run_bodies(|world_rank, shared, rx, slot: &mut Option<Option<R>>| {
            elastic_rank_body(world_rank, shared, rx, &f, slot);
        })
        .into_iter()
        .map(|r| r.map_err(RankFailure::classify))
        .collect()
    }

    /// Admit a latent slot from *outside* the running universe: posts an
    /// admission notice (timestamped at virtual time 0) carrying the initial
    /// world grown by `joiner`.  Returns whether the notice was posted
    /// (`false` when the slot is not latent or was already admitted).
    /// Byte-reproducible runs should prefer in-band admission —
    /// [`Rank::admit`] or a chaos plan's join schedule — whose timing is a
    /// pure function of the plan; this entry point exists for driver code
    /// that steers a universe it does not participate in.
    pub fn admit(&self, joiner: usize) -> bool {
        let initial = self.shared.cfg.initial();
        if joiner < initial || joiner >= self.shared.cfg.nprocs() {
            return false;
        }
        if self.shared.admitted[joiner].swap(true, Ordering::SeqCst) {
            return false;
        }
        let parent = Comm::new(0, Arc::new((0..initial).collect()), 0);
        let (id, group, epoch) = grow_comm_parts(&parent, &[joiner]);
        let env = Envelope {
            src_world: joiner,
            dst_world: joiner,
            comm_id: fault::FAULT_COMM,
            ctx: Ctx::Fault,
            tag: fault::FAULT_TAG_ADMIT,
            kind: MsgKind::P2pUser,
            payload: Payload::Bytes(encode_comm(id, epoch, &group, &vec![0; group.len()])),
            sent_at_ns: 0.0,
            arrival_ns: 0.0,
            wire_seq: None,
            src_inc: 0,
            dst_inc: 0,
        };
        self.shared.post(joiner, env)
    }
}

/// Per-slot driver of [`Universe::launch_elastic`]: the restart loop of an
/// initial rank, or the parked wait of a latent one.
fn elastic_rank_body<F, R>(
    world_rank: usize,
    shared: Arc<Shared>,
    rx: Receiver<Envelope>,
    f: &F,
    slot: &mut Option<Option<R>>,
) where
    F: Fn(&Rank) -> R + Sync,
    R: Send,
{
    let mut join = None;
    let mut peer_incs = Vec::new();
    let mut stash = Vec::new();
    if world_rank >= shared.cfg.initial() {
        // Latent slot: no `Rank` exists yet — park on the raw channel until
        // the sponsor's admission (or retirement) notice arrives.
        match wait_for_admission(world_rank, &shared, &rx) {
            Some((comm, at, incs, pre)) => {
                join = Some((comm, at));
                peer_incs = incs;
                stash = pre;
            }
            None => {
                *slot = Some(None);
                return;
            }
        }
    }
    let mut incarnation = 0u32;
    loop {
        let rank =
            Rank::new_with(world_rank, Arc::clone(&shared), rx.clone(), incarnation, join.clone());
        // The admission notice carried the members' incarnations: without
        // them, envelopes toward a previously-reborn peer would be stamped
        // `dst_inc 0` and stale-dropped by its mailbox.
        if let Some((comm, _)) = &join {
            rank.adopt_incarnations(comm.group(), &peer_incs);
        }
        // Messages that raced ahead of the admission notice were stashed by
        // the parked wait; re-admit them before the first receive.
        for env in stash.drain(..) {
            rank.mailbox.borrow_mut().readmit(env);
        }
        if incarnation > 0 {
            rank.announce_rejoin();
        }
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&rank))) {
            Ok(v) => {
                if world_rank == 0 {
                    rank.retire_latents();
                }
                *slot = Some(Some(v));
                return;
            }
            Err(payload) => {
                let restart = payload.downcast_ref::<fault::RankCrashed>().is_some()
                    && shared
                        .cfg
                        .injector
                        .as_ref()
                        .is_some_and(|inj| inj.restart_after_crash(world_rank, incarnation));
                if !restart {
                    std::panic::resume_unwind(payload);
                }
                incarnation += 1;
            }
        }
    }
}

/// Park a latent slot on its raw channel until the sponsor's verdict:
/// `Some((comm, arrival_ns, incarnations, stash))` when admitted — `stash`
/// holding, in arrival order, every envelope that raced ahead of the
/// admission notice — `None` when retired.  The mailbox is allocated
/// lazily, right here — a never-admitted slot never owns a `Rank`, a clock
/// or a trace track.
fn wait_for_admission(
    world_rank: usize,
    shared: &Arc<Shared>,
    rx: &Receiver<Envelope>,
) -> Option<(Comm, f64, Vec<u32>, Vec<Envelope>)> {
    let mut mb = Mailbox::new(rx.clone(), shared.cfg.deadline);
    if let Some(exec) = &shared.exec {
        mb.set_parker(exec.parker(world_rank));
    }
    let admit = MatchPattern {
        comm_id: fault::FAULT_COMM,
        ctx: Ctx::Fault,
        src: mailbox::SrcSel::Any,
        tag: TagSel::Is(fault::FAULT_TAG_ADMIT),
    };
    let retire = MatchPattern {
        comm_id: fault::FAULT_COMM,
        ctx: Ctx::Fault,
        src: mailbox::SrcSel::Any,
        tag: TagSel::Is(fault::FAULT_TAG_RETIRE),
    };
    match mb.recv_either(&admit, &retire, shared.cfg.deadline) {
        Ok((env, true)) => {
            let (comm, incs) = decode_admission(&env.payload, world_rank);
            Some((comm, env.arrival_ns, incs, mb.drain_unexpected()))
        }
        Ok((_, false)) => None,
        Err(e) => panic!(
            "latent rank {world_rank}: neither admitted nor retired before the deadline \
             ({e:?}); an elastic run must admit or retire every latent slot"
        ),
    }
}

/// Derive a grown communicator's identity: like `comm_shrink`'s id fold but
/// over the joiner list (plus a marker so a grow and a shrink of the same
/// parent can never collide), with the top bit set to keep derived ids out
/// of the allocator's range.  Purely local and deterministic: every member
/// folding the same `(parent, joiners)` derives the same communicator.
fn grow_comm_parts(parent: &Comm, joiners: &[usize]) -> (u64, Vec<usize>, u64) {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ parent.id() ^ 0x6772_6f77; // "grow"
    h ^= parent.epoch().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for (i, &j) in joiners.iter().enumerate() {
        h = (h ^ (((i as u64) << 32) | j as u64)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let id = h | (1 << 63);
    let mut group: Vec<usize> = parent.group().to_vec();
    group.extend_from_slice(joiners);
    (id, group, parent.epoch() + 1)
}

/// Serialize a communicator for the wire (admission notices): little-endian
/// `[id, epoch, len, members..., incarnations...]`, all `u64`.  The
/// incarnation vector is what lets a joiner address peers that have been
/// reborn: without it, its envelopes toward a restarted rank would carry
/// `dst_inc 0` and be dropped as stale by the newer incarnation's mailbox.
fn encode_comm(comm_id: u64, epoch: u64, group: &[usize], incs: &[u32]) -> Vec<u8> {
    assert_eq!(group.len(), incs.len(), "one incarnation per member");
    let mut b = Vec::with_capacity(8 * (3 + 2 * group.len()));
    b.extend_from_slice(&comm_id.to_le_bytes());
    b.extend_from_slice(&epoch.to_le_bytes());
    b.extend_from_slice(&(group.len() as u64).to_le_bytes());
    for &w in group {
        b.extend_from_slice(&(w as u64).to_le_bytes());
    }
    for &inc in incs {
        b.extend_from_slice(&u64::from(inc).to_le_bytes());
    }
    b
}

/// Inverse of [`encode_comm`], positioned at `my_world`'s communicator rank.
fn decode_admission(payload: &Payload, my_world: usize) -> (Comm, Vec<u32>) {
    let Payload::Bytes(b) = payload else {
        panic!("admission notice must carry a serialized communicator");
    };
    assert!(b.len() >= 24 && b.len() % 8 == 0, "malformed admission payload");
    let word = |i: usize| {
        let mut w = [0u8; 8];
        w.copy_from_slice(&b[8 * i..8 * i + 8]);
        u64::from_le_bytes(w)
    };
    let id = word(0);
    let epoch = word(1);
    let len = word(2) as usize;
    assert_eq!(b.len(), 8 * (3 + 2 * len), "malformed admission payload");
    let group: Vec<usize> = (0..len).map(|i| word(3 + i) as usize).collect();
    let incs: Vec<u32> = (0..len).map(|i| word(3 + len + i) as u32).collect();
    let Some(my_rank) = group.iter().position(|&w| w == my_world) else {
        panic!("admission notice for rank {my_world} does not include it (group {group:?})");
    };
    (Comm::new_at_epoch(id, Arc::new(group), my_rank, epoch), incs)
}

/// Parse the incarnation carried by a join notice.
fn decode_incarnation(payload: &Payload) -> u32 {
    let Payload::Bytes(b) = payload else {
        panic!("join notice must carry an incarnation");
    };
    assert_eq!(b.len(), 4, "malformed join notice");
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Panic payload of a rank that aborted because a message's destination
/// thread was already gone (see [`Rank::send`] & friends).  The launcher
/// treats it as a *secondary* failure: any other rank's panic — the root
/// cause that killed the destination — is propagated instead.
#[derive(Debug)]
pub struct RankAborted {
    /// The aborting (sending) rank.
    pub src: usize,
    /// The destination world rank whose thread had exited.
    pub dst: usize,
}

/// Error of [`Rank::send_checked`]: the communicator's membership was
/// superseded (the sender has derived or been admitted into a newer epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleEpoch {
    /// Epoch of the communicator the send was attempted on.
    pub comm_epoch: u64,
    /// The sender's current membership epoch.
    pub current_epoch: u64,
}

impl std::fmt::Display for StaleEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale membership epoch: communicator at epoch {}, rank at epoch {}",
            self.comm_epoch, self.current_epoch
        )
    }
}

/// One fault-protocol message, as seen by the failure detector.
enum FaultMsg {
    /// The peer answered a liveness ping.
    Ping,
    /// The peer's death notice (carrying its time of death).
    Death { at_ns: f64 },
}

/// Per-rank handle: the owning thread's view of the job.
///
/// All communication goes through methods of this type.  `Rank` is neither
/// `Send` nor `Sync`: it lives and dies on its rank's thread, like an MPI
/// process.
pub struct Rank {
    world_rank: usize,
    core: usize,
    shared: Arc<Shared>,
    clock: Rc<VirtualClock>,
    mailbox: RefCell<Mailbox>,
    local_hooks: RefCell<LocalHooks>,
    /// Per-communicator collective sequence numbers: every collective call
    /// consumes one, which isolates concurrent collectives on one
    /// communicator from each other (MPI requires same call order on all
    /// members, which makes the sequence consistent).
    coll_seq: RefCell<HashMap<u64, u32>>,
    world_group: Arc<Vec<usize>>,
    /// This rank's flight-recorder track (`None` when tracing is off).
    trace: Option<TraceHandle>,
    /// Id of the innermost open collective span, stamped onto the `Send`
    /// events its decomposition produces (attribution, paper §3).
    active_coll: Cell<Option<u64>>,
    /// Per-rank collective-span id allocator.
    next_coll_span: Cell<u64>,
    /// The installed fault injector, cloned out of the config for
    /// branch-cheap access on the wire paths.
    injector: Option<Arc<dyn FaultInjector>>,
    /// Wire operations completed (sends + receives), the op-count frame of
    /// [`CrashPoint::OpCount`].  Only advanced when an injector is present.
    ops: Cell<u64>,
    /// Retransmissions this rank issued (drop faults recovered by backoff).
    retries: Cell<u64>,
    /// Next wire sequence per destination world rank (duplicate dedup).
    link_op: RefCell<HashMap<usize, u64>>,
    /// Peers whose death notices this rank has consumed: world rank → the
    /// virtual time of death carried by the notice.
    failed_peers: RefCell<HashMap<usize, f64>>,
    /// This body's incarnation: 0 for the original, bumped by each
    /// plan-covered rebirth (`launch_elastic`'s restart loop).
    incarnation: u32,
    /// Latest incarnation observed per peer (via join notices consumed by
    /// `await_rejoin`); stamped onto outgoing envelopes as `dst_inc`.
    peer_inc: RefCell<HashMap<usize, u32>>,
    /// Highest communicator epoch this rank has derived or been admitted
    /// into; `send_checked` rejects sends on communicators older than this.
    membership_epoch: Cell<u64>,
    /// The communicator a latent joiner was admitted into (`None` for
    /// initial-world ranks).
    join_comm: Option<Comm>,
    /// The plan's join schedule with per-entry fired flags (fetched once;
    /// only the sponsor's original incarnation consults it).
    join_plan: RefCell<Vec<(usize, u64, bool)>>,
}

impl Rank {
    fn new(world_rank: usize, shared: Arc<Shared>, rx: Receiver<Envelope>) -> Self {
        Self::new_with(world_rank, shared, rx, 0, None)
    }

    /// Full constructor (elastic universes): `incarnation > 0` builds a
    /// reborn body (its track is `rankN.I` and its mailbox filters stale
    /// incarnations), and `join` carries a latent joiner's admission — the
    /// grown communicator plus the notice's arrival time, which seeds the
    /// joiner's clock.
    fn new_with(
        world_rank: usize,
        shared: Arc<Shared>,
        rx: Receiver<Envelope>,
        incarnation: u32,
        join: Option<(Comm, f64)>,
    ) -> Self {
        let deadline = shared.cfg.deadline;
        let core = shared.core_of(world_rank);
        let n = shared.cfg.initial();
        let track = if incarnation > 0 {
            format!("rank{world_rank}.{incarnation}")
        } else {
            format!("rank{world_rank}")
        };
        let trace = shared.cfg.tracer.as_ref().map(|t| t.track(track));
        let mut mailbox = Mailbox::new(rx, deadline);
        mailbox.set_incarnation(incarnation);
        if let Some(t) = &trace {
            mailbox.set_trace(t.clone());
        }
        if let Some(exec) = &shared.exec {
            // Task index == world rank: blocking receives park this rank's
            // task instead of its worker thread.
            mailbox.set_parker(exec.parker(world_rank));
        }
        if let Some(policy) = &shared.cfg.sched {
            // Wildcard matches become the policy's choices, and deadline
            // panics carry the policy's decision log.
            mailbox.set_policy(Arc::clone(policy), world_rank);
        }
        let injector = shared.cfg.injector.clone();
        let join_plan: Vec<(usize, u64, bool)> = if world_rank == 0 && incarnation == 0 {
            injector
                .as_ref()
                .map_or_else(Vec::new, |inj| inj.join_plan())
                .into_iter()
                .map(|(j, at)| (j, at, false))
                .collect()
        } else {
            Vec::new()
        };
        let (join_comm, joined_at) = match join {
            Some((c, at_ns)) => (Some(c), at_ns),
            None => (None, 0.0),
        };
        let epoch0 = join_comm.as_ref().map_or(0, Comm::epoch);
        let rank = Self {
            world_rank,
            core,
            shared,
            clock: Rc::new(VirtualClock::new()),
            mailbox: RefCell::new(mailbox),
            local_hooks: RefCell::new(LocalHooks::default()),
            coll_seq: RefCell::new(HashMap::new()),
            world_group: Arc::new((0..n).collect()),
            trace,
            active_coll: Cell::new(None),
            next_coll_span: Cell::new(0),
            injector,
            ops: Cell::new(0),
            retries: Cell::new(0),
            link_op: RefCell::new(HashMap::new()),
            failed_peers: RefCell::new(HashMap::new()),
            incarnation,
            peer_inc: RefCell::new(HashMap::new()),
            membership_epoch: Cell::new(epoch0),
            join_comm,
            join_plan: RefCell::new(join_plan),
        };
        if rank.join_comm.is_some() {
            // A joiner's clock starts at its admission, and its track opens
            // with the join event.
            rank.clock.advance_to(joined_at);
            rank.record_trace(joined_at, TraceData::RankJoin { incarnation: 0 });
        }
        rank
    }

    // ----- identity & time --------------------------------------------------

    /// This process's world rank.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Number of ranks in the initial world (`MPI_COMM_WORLD`).  Latent
    /// joiners admitted later are *not* counted; see [`Rank::capacity`].
    pub fn world_size(&self) -> usize {
        self.shared.cfg.initial()
    }

    /// Number of rank slots in the universe: the initial world plus every
    /// latent slot, admitted or not.
    pub fn capacity(&self) -> usize {
        self.shared.cfg.nprocs()
    }

    /// This body's incarnation: 0 for the original; a rolling-restart plan
    /// bumps it on each rebirth (`Universe::launch_elastic`).
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// The communicator this rank was admitted into, when it joined after
    /// launch (`None` for initial-world ranks).
    pub fn join_comm(&self) -> Option<Comm> {
        self.join_comm.clone()
    }

    /// Highest membership epoch this rank has derived or observed (see
    /// [`Rank::send_checked`]).
    pub fn membership_epoch(&self) -> u64 {
        self.membership_epoch.get()
    }

    /// Envelopes this rank's mailbox dropped because they were addressed to
    /// a dead incarnation of this slot, or sent by a superseded incarnation
    /// of a peer.
    pub fn stale_dropped(&self) -> u64 {
        self.mailbox.borrow().stale_dropped()
    }

    /// Core hosting this process.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &Machine {
        &self.shared.cfg.machine
    }

    /// The process → core placement.
    pub fn placement(&self) -> &Placement {
        &self.shared.cfg.placement
    }

    /// Current virtual time (ns).
    pub fn now_ns(&self) -> f64 {
        self.clock.now_ns()
    }

    /// Current virtual time (s).
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }

    /// Spend `ns` nanoseconds of virtual compute time.
    pub fn compute_ns(&self, ns: f64) {
        self.clock.tick(ns);
    }

    /// A shared handle on this rank's virtual clock.  Lets code that holds a
    /// `Rank`-independent lifetime (the monitoring library's session table)
    /// timestamp trace events on this rank's track.
    pub fn clock_shared(&self) -> Rc<VirtualClock> {
        Rc::clone(&self.clock)
    }

    /// This rank's trace track, when tracing is enabled.
    pub fn trace_handle(&self) -> Option<TraceHandle> {
        self.trace.clone()
    }

    /// High-water mark of the unexpected-message queue (0 when nothing ever
    /// queued; tracked regardless of whether tracing is enabled).
    pub fn max_unexpected_depth(&self) -> usize {
        self.mailbox.borrow().max_unexpected_depth()
    }

    /// Virtual sleep (identical to compute: the clock advances).
    pub fn sleep_ns(&self, ns: f64) {
        self.clock.tick(ns);
    }

    /// `MPI_COMM_WORLD` (the *initial* world).
    ///
    /// # Panics
    /// Panics on a latent joiner: a rank admitted after launch is not a
    /// member of the initial world and must communicate on the grown
    /// communicator it was admitted into ([`Rank::join_comm`]).
    pub fn comm_world(&self) -> Comm {
        assert!(
            self.world_rank < self.world_group.len(),
            "rank {} joined after launch and is not in MPI_COMM_WORLD; use the grown \
             communicator it was admitted into (Rank::join_comm)",
            self.world_rank
        );
        Comm::new(0, Arc::clone(&self.world_group), self.world_rank)
    }

    // ----- PML hooks ---------------------------------------------------------

    /// Register a per-rank PML hook (used by the monitoring library).
    pub fn add_local_hook(&self, hook: Rc<dyn LocalPmlHook>) -> LocalHookHandle {
        self.local_hooks.borrow_mut().add(hook)
    }

    /// Remove a previously registered hook; returns whether it existed.
    pub fn remove_local_hook(&self, handle: LocalHookHandle) -> bool {
        self.local_hooks.borrow_mut().remove(handle)
    }

    // ----- fault machinery ---------------------------------------------------

    /// Wire-operation prologue: fire the plan's due joins (sponsor only)
    /// and its crash point, else count the op.  A no-op (ops stay 0)
    /// without an injector.  Both churn triggers are gated on
    /// `incarnation == 0`: a reborn body must not re-fire the crash that
    /// killed its predecessor, and the join schedule fires once per run.
    fn pre_op(&self) {
        let Some(inj) = &self.injector else { return };
        if self.incarnation == 0 {
            if self.world_rank == 0 {
                self.fire_due_joins();
            }
            if let Some(cp) = inj.crash_point(self.world_rank) {
                let due = match cp {
                    CrashPoint::OpCount(n) => self.ops.get() >= n,
                    CrashPoint::VirtualTimeNs(t) => self.clock.now_ns() >= t,
                };
                if due {
                    self.crash_now();
                }
            }
        }
        self.ops.set(self.ops.get() + 1);
    }

    /// The sponsor's half of the plan's join schedule: send the admission
    /// notice for every entry whose op-count threshold this rank has
    /// reached.  Admission timing is a pure function of the sponsor's op
    /// count — the dual of [`CrashPoint::OpCount`] — so a seeded plan's
    /// membership churn replays byte-identically.  The notice carries the
    /// initial world grown by the joiner; members construct the identical
    /// communicator with [`Rank::comm_grow`].
    fn fire_due_joins(&self) {
        let due: Vec<usize> = {
            let mut plan = self.join_plan.borrow_mut();
            if plan.is_empty() {
                return;
            }
            let ops = self.ops.get();
            plan.iter_mut()
                .filter(|(_, at, fired)| !*fired && ops >= *at)
                .map(|e| {
                    e.2 = true;
                    e.0
                })
                .collect()
        };
        for joiner in due {
            let world = self.comm_world();
            let (id, group, epoch) = grow_comm_parts(&world, &[joiner]);
            self.post_admission(id, epoch, &group, joiner);
        }
    }

    /// Kill this rank: mark it dead, broadcast death notices so peers
    /// blocked in [`Rank::recv_or_failure`] get a deterministic failure
    /// signal (per-sender FIFO guarantees data sent before the crash is
    /// still consumed first), and unwind with a typed payload that
    /// `launch_faulty` maps to [`RankFailure::Crashed`].  `resume_unwind`
    /// skips the panic hook, so a scheduled crash is silent on stderr.
    fn crash_now(&self) -> ! {
        let now = self.clock.now_ns();
        let ops = self.ops.get();
        self.shared.alive[self.world_rank].store(false, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.record(now, TraceData::RankCrash { ops });
        }
        for dst in 0..self.capacity() {
            if dst == self.world_rank {
                continue;
            }
            let env = Envelope {
                src_world: self.world_rank,
                dst_world: dst,
                comm_id: fault::FAULT_COMM,
                ctx: Ctx::Fault,
                tag: fault::FAULT_TAG_DEATH,
                kind: MsgKind::P2pUser,
                payload: Payload::Synthetic(0),
                sent_at_ns: now,
                arrival_ns: now,
                wire_seq: None,
                src_inc: self.incarnation,
                dst_inc: 0,
            };
            let _ = self.shared.post(dst, env);
        }
        std::panic::resume_unwind(Box::new(fault::RankCrashed {
            world: self.world_rank,
            at_ns: now,
            ops,
        }));
    }

    /// Send a fault-protocol control message (no payload, no PML hooks, no
    /// tracing, no injection — the failure detector must stay deterministic
    /// under the very plan it observes).
    fn fault_send(&self, dst_world: usize, tag: u32) {
        self.fault_send_payload(dst_world, tag, Payload::Synthetic(0));
    }

    /// [`Rank::fault_send`] with an explicit payload (join and admission
    /// notices carry data: an incarnation, a serialized communicator).
    fn fault_send_payload(&self, dst_world: usize, tag: u32, payload: Payload) {
        self.clock.tick(self.shared.cfg.send_overhead_ns);
        let now = self.clock.now_ns();
        let dst_core = self.shared.core_of(dst_world);
        let alpha = self.shared.cfg.machine.link_params(self.core, dst_core).alpha_ns;
        let env = Envelope {
            src_world: self.world_rank,
            dst_world,
            comm_id: fault::FAULT_COMM,
            ctx: Ctx::Fault,
            tag,
            kind: MsgKind::P2pUser,
            payload,
            sent_at_ns: now,
            arrival_ns: now + alpha,
            wire_seq: None,
            src_inc: self.incarnation,
            dst_inc: 0,
        };
        let _ = self.shared.post(dst_world, env);
    }

    /// Receive one fault-protocol message from a specific peer: its
    /// liveness ping, or its death notice.  Death notices from superseded
    /// incarnations (the peer has since been reborn) are swallowed.
    fn fault_recv(&self, src_world: usize) -> FaultMsg {
        let pat = MatchPattern {
            comm_id: fault::FAULT_COMM,
            ctx: Ctx::Fault,
            src: mailbox::SrcSel::World(src_world),
            tag: TagSel::Any,
        };
        loop {
            let env = self.mailbox.borrow_mut().recv_match(&pat);
            if env.tag == fault::FAULT_TAG_DEATH {
                if env.src_inc < self.peer_incarnation_of(src_world) {
                    continue;
                }
                self.clock.advance_to(env.arrival_ns);
                return FaultMsg::Death { at_ns: env.sent_at_ns };
            }
            self.clock.advance_to(env.arrival_ns);
            return FaultMsg::Ping;
        }
    }

    /// The newest incarnation this rank knows for a peer (0 until a join or
    /// admission notice reports otherwise).
    fn peer_incarnation_of(&self, world: usize) -> u32 {
        self.peer_inc.borrow().get(&world).copied().unwrap_or(0)
    }

    // ----- elastic membership ------------------------------------------------

    /// A reborn body's prologue: come back alive and broadcast a join
    /// notice (carrying the new incarnation) to every slot — the dual of
    /// `crash_now`'s death notices.  Survivors consume it with
    /// [`Rank::await_rejoin`].
    pub(crate) fn announce_rejoin(&self) {
        self.shared.alive[self.world_rank].store(true, Ordering::Relaxed);
        self.record_trace(
            self.clock.now_ns(),
            TraceData::RankJoin { incarnation: self.incarnation },
        );
        for dst in 0..self.capacity() {
            if dst == self.world_rank {
                continue;
            }
            self.fault_send_payload(
                dst,
                fault::FAULT_TAG_JOIN,
                Payload::Bytes(self.incarnation.to_le_bytes().to_vec()),
            );
        }
    }

    /// Wait for the join notice of a peer expected to restart: returns its
    /// new incarnation, forgets its death, and from now on stamps outgoing
    /// envelopes to it with the new incarnation — the dual of
    /// [`Rank::recv_or_failure`]'s death path.
    ///
    /// # Panics
    /// Panics (deadlock detector) when no join notice arrives within the
    /// configured deadline.
    pub fn await_rejoin(&self, world: usize) -> u32 {
        let pat = MatchPattern {
            comm_id: fault::FAULT_COMM,
            ctx: Ctx::Fault,
            src: mailbox::SrcSel::World(world),
            tag: TagSel::Is(fault::FAULT_TAG_JOIN),
        };
        let env = self.mailbox.borrow_mut().recv_match(&pat);
        self.clock.advance_to(env.arrival_ns);
        let inc = decode_incarnation(&env.payload);
        self.peer_inc.borrow_mut().insert(world, inc);
        self.failed_peers.borrow_mut().remove(&world);
        inc
    }

    /// Wait for an admission notice and return the grown communicator it
    /// carries — the joiner half of [`Rank::admit`] /
    /// [`Rank::send_admission`].  Used by a *reborn* rank to learn the
    /// communicator its survivors grew for it; a latent slot's first
    /// admission is consumed before the rank body even runs (its result is
    /// [`Rank::join_comm`]).
    pub fn recv_admission(&self) -> Comm {
        let pat = MatchPattern {
            comm_id: fault::FAULT_COMM,
            ctx: Ctx::Fault,
            src: mailbox::SrcSel::Any,
            tag: TagSel::Is(fault::FAULT_TAG_ADMIT),
        };
        let env = self.mailbox.borrow_mut().recv_match(&pat);
        self.clock.advance_to(env.arrival_ns);
        let (comm, incs) = decode_admission(&env.payload, self.world_rank);
        self.adopt_incarnations(comm.group(), &incs);
        self.note_epoch(comm.epoch());
        comm
    }

    /// Adopt the peer-incarnation vector carried by an admission notice, so
    /// envelopes toward previously-reborn members are stamped correctly.
    /// Never lowers a known incarnation (a join notice may already have
    /// reported a newer one).
    fn adopt_incarnations(&self, group: &[usize], incs: &[u32]) {
        let mut peers = self.peer_inc.borrow_mut();
        for (&w, &inc) in group.iter().zip(incs) {
            if w != self.world_rank && inc > peers.get(&w).copied().unwrap_or(0) {
                peers.insert(w, inc);
            }
        }
    }

    /// Send an admission notice for a grown communicator to a joiner
    /// (fault-protocol traffic: no monitoring, no injection).  The grown
    /// communicator must include the joiner.  Admission of *latent* slots
    /// should be driven by the sponsor (world rank 0) so it cannot race the
    /// sponsor's end-of-run retirement sweep.
    pub fn send_admission(&self, grown: &Comm, joiner: usize) {
        assert!(
            grown.contains_world(joiner),
            "admission notice must cover the joiner (rank {joiner} not in {:?})",
            grown.group()
        );
        self.post_admission(grown.id(), grown.epoch(), grown.group(), joiner);
    }

    fn post_admission(&self, id: u64, epoch: u64, group: &[usize], joiner: usize) {
        self.shared.admitted[joiner].store(true, Ordering::SeqCst);
        let incs: Vec<u32> = {
            let peers = self.peer_inc.borrow();
            group
                .iter()
                .map(|&w| {
                    if w == self.world_rank {
                        self.incarnation
                    } else {
                        peers.get(&w).copied().unwrap_or(0)
                    }
                })
                .collect()
        };
        self.fault_send_payload(
            joiner,
            fault::FAULT_TAG_ADMIT,
            Payload::Bytes(encode_comm(id, epoch, group, &incs)),
        );
    }

    /// Retire every latent slot never admitted (the sponsor's epilogue in
    /// `launch_elastic`: a parked slot would otherwise wait out the
    /// deadline).  Idempotent per slot.
    pub(crate) fn retire_latents(&self) {
        for w in self.shared.cfg.initial()..self.capacity() {
            if !self.shared.admitted[w].swap(true, Ordering::SeqCst) {
                self.fault_send(w, fault::FAULT_TAG_RETIRE);
            }
        }
    }

    /// Raise this rank's membership-epoch watermark.
    fn note_epoch(&self, epoch: u64) {
        if epoch > self.membership_epoch.get() {
            self.membership_epoch.set(epoch);
        }
    }

    // ----- wire primitives ---------------------------------------------------

    pub(crate) fn wire_send(
        &self,
        comm: &Comm,
        dst: usize,
        tag: u32,
        ctx: Ctx,
        kind: MsgKind,
        payload: Payload,
    ) {
        let dst_world = comm.world_rank_of(dst);
        let dst_core = self.shared.core_of(dst_world);
        let bytes = payload.len_bytes();
        // Hockney with sender serialization: the sender's link is busy for
        // β·m (back-to-back sends do not pipeline on one NIC), then the
        // message lands α later.  Shared per-*node* NIC contention cannot be
        // modelled soundly here (bookings would happen in wall-clock order
        // while virtual clocks drift); the deterministic, virtual-time-
        // ordered variant lives in `schedule::evaluate_contended`.
        let link = self.shared.cfg.machine.link_params(self.core, dst_core);
        let mut beta = link.beta_ns_per_byte;
        let mut extra_delay = 0.0;
        let mut duplicates = 0u32;
        let mut wire_seq = None;
        if let Some(inj) = &self.injector {
            self.pre_op();
            let scale = inj.link_bandwidth_scale(self.world_rank, dst_world);
            if scale != 1.0 {
                beta /= scale;
            }
            let op_index = {
                let mut link_op = self.link_op.borrow_mut();
                let next = link_op.entry(dst_world).or_insert(0);
                let i = *next;
                *next += 1;
                i
            };
            wire_seq = Some(op_index);
            let lctx = LinkCtx { src_world: self.world_rank, dst_world, op_index, bytes };
            // Sender-simulated ack/retry: a dropped attempt occupies the
            // link for a full transmission, then the retransmit timer fires
            // after a capped-exponential backoff.  After RETRY_MAX_ATTEMPTS
            // the message is force-delivered — a plan can degrade a link
            // but never sever it (only a crash removes a rank).
            let mut attempt = 0u32;
            loop {
                match inj.on_attempt(&lctx, attempt) {
                    SendOutcome::Deliver { extra_delay_ns, duplicates: d } => {
                        extra_delay = extra_delay_ns;
                        duplicates = d;
                        break;
                    }
                    SendOutcome::Drop => {
                        if attempt + 1 >= fault::RETRY_MAX_ATTEMPTS {
                            break;
                        }
                        let backoff = fault::backoff_ns(attempt);
                        self.clock
                            .tick(self.shared.cfg.send_overhead_ns + beta * bytes as f64 + backoff);
                        self.retries.set(self.retries.get() + 1);
                        self.shared.nic.count_retry(self.core);
                        if let Some(t) = &self.trace {
                            t.record(
                                self.clock.now_ns(),
                                TraceData::Retry {
                                    dst: dst_world,
                                    attempt,
                                    backoff_ns: backoff as u64,
                                },
                            );
                        }
                        attempt += 1;
                    }
                }
            }
        }
        let busy = beta * bytes as f64;
        self.clock.tick(self.shared.cfg.send_overhead_ns + busy);
        let sent_at = self.clock.now_ns();
        let cost = link.alpha_ns;
        let ev = PmlEvent {
            src_world: self.world_rank,
            dst_world,
            src_core: self.core,
            dst_core,
            bytes,
            kind,
            vtime_ns: sent_at,
        };
        self.dispatch_pml(&ev);
        if let Some(t) = &self.trace {
            t.record(
                sent_at,
                TraceData::Send {
                    dst: dst_world,
                    bytes,
                    kind: kind.label(),
                    comm: comm.id(),
                    tag,
                    coll: self.active_coll.get(),
                },
            );
        }
        let env = Envelope {
            src_world: self.world_rank,
            dst_world,
            comm_id: comm.id(),
            ctx,
            tag,
            kind,
            payload,
            sent_at_ns: sent_at,
            arrival_ns: sent_at + cost + extra_delay,
            wire_seq,
            src_inc: self.incarnation,
            dst_inc: self.peer_inc.borrow().get(&dst_world).copied().unwrap_or(0),
        };
        // Duplicate-delivery faults: extra copies trail the primary by one
        // latency each; the receiver's sequence filter drops every copy
        // after the first it sees.  They carry no PML/trace events — the
        // logical message was already recorded once.
        let dups: Vec<Envelope> = (0..duplicates)
            .map(|d| {
                let mut e = env.clone();
                e.arrival_ns = env.arrival_ns + (d as f64 + 1.0) * cost;
                e
            })
            .collect();
        if !self.shared.post(dst_world, env) {
            // The destination thread already exited — almost always because
            // it (or a third rank) panicked and the job is collapsing.
            // Don't panic here: that would route through the panic hook and
            // race the root cause for the user's attention.  Record the
            // failure and unwind with a typed payload the launcher treats
            // as secondary (see `Universe::launch`).
            if self.shared.faulty.load(Ordering::Relaxed) {
                // Recoverable mode: the peer is dead (crashed or finished);
                // the bytes evaporate and the sender carries on.  No trace
                // event either — whether a send to a dead rank observes the
                // closed channel (vs. landing unread in its mailbox) depends
                // on OS thread-teardown timing, so recording it would make
                // fixed-seed traces nondeterministic.
                return;
            }
            if let Some(t) = &self.trace {
                t.record(self.clock.now_ns(), TraceData::SendFailed { dst: dst_world });
            }
            std::panic::resume_unwind(Box::new(RankAborted {
                src: self.world_rank,
                dst: dst_world,
            }));
        }
        for e in dups {
            let _ = self.shared.post(dst_world, e);
        }
    }

    /// Run the PML interposition hooks for one wire event (also used by the
    /// one-sided layer whose data does not travel as envelopes).
    pub(crate) fn dispatch_pml(&self, ev: &PmlEvent) {
        // Allocation-free dispatch: the overhead experiment (paper Fig 4)
        // measures exactly this path.
        let hooks = self.local_hooks.borrow();
        if !hooks.is_empty() {
            hooks.dispatch(ev);
        }
        drop(hooks);
        for h in self.shared.global_hooks.read().iter() {
            h.on_send(ev);
        }
    }

    pub(crate) fn wire_recv(&self, comm: &Comm, src: SrcSel, tag: TagSel, ctx: Ctx) -> Envelope {
        let src_sel = match src {
            SrcSel::Any => mailbox::SrcSel::Any,
            SrcSel::Rank(r) => mailbox::SrcSel::World(comm.world_rank_of(r)),
        };
        let pat = MatchPattern { comm_id: comm.id(), ctx, src: src_sel, tag };
        self.mailbox_recv(&pat)
    }

    /// Receive matching a raw pattern (nonblocking-module plumbing),
    /// applying the usual virtual-time rules.
    pub(crate) fn mailbox_recv(&self, pat: &MatchPattern) -> Envelope {
        self.pre_op();
        let (env, depth) = {
            let mut mb = self.mailbox.borrow_mut();
            let env = mb.recv_match(pat);
            let depth = mb.unexpected_len();
            (env, depth)
        };
        self.finish_recv(env, depth)
    }

    /// Receive epilogue: advance virtual time to the arrival, pay the
    /// receive overhead, record the `Recv` trace event.
    fn finish_recv(&self, env: Envelope, uq_depth: usize) -> Envelope {
        self.clock.advance_to(env.arrival_ns);
        self.clock.tick(self.shared.cfg.recv_overhead_ns);
        if let Some(t) = &self.trace {
            t.record(
                self.clock.now_ns(),
                TraceData::Recv {
                    src: env.src_world,
                    bytes: env.payload.len_bytes(),
                    comm: env.comm_id,
                    tag: env.tag,
                    uq_depth,
                },
            );
        }
        env
    }

    /// Nonblocking probe against a raw pattern (no time cost).
    pub(crate) fn mailbox_iprobe(&self, pat: &MatchPattern) -> bool {
        self.mailbox.borrow_mut().iprobe(pat)
    }

    /// Next collective sequence tag on a communicator.
    pub(crate) fn next_coll_tag(&self, comm: &Comm) -> u32 {
        let mut seqs = self.coll_seq.borrow_mut();
        let seq = seqs.entry(comm.id()).or_insert(0);
        let tag = *seq;
        *seq += 1;
        tag
    }

    pub(crate) fn shared(&self) -> &Shared {
        &self.shared
    }

    /// Record a trace event on this rank's track (no-op when tracing is
    /// off — a single branch on the `Option`).
    pub(crate) fn record_trace(&self, t_ns: f64, data: TraceData) {
        if let Some(t) = &self.trace {
            t.record(t_ns, data);
        }
    }

    /// Open a collective decomposition span: records `CollBegin` now and
    /// `CollEnd` when the guard drops, and stamps the span id onto every
    /// `Send` event recorded while it is open — that is how a trace ties a
    /// wire message back to the collective that produced it.  Returns `None`
    /// (and records nothing) when tracing is off; spans nest, restoring the
    /// enclosing span's id on drop.
    pub(crate) fn coll_span(&self, name: &'static str, comm: &Comm) -> Option<CollSpanGuard<'_>> {
        let t = self.trace.as_ref()?;
        let id = self.next_coll_span.get();
        self.next_coll_span.set(id + 1);
        let prev = self.active_coll.replace(Some(id));
        t.record(self.clock.now_ns(), TraceData::CollBegin { name, comm: comm.id(), id });
        Some(CollSpanGuard { rank: self, name, comm_id: comm.id(), id, prev })
    }

    // ----- point-to-point ----------------------------------------------------

    /// Blocking typed send (buffered-eager: never blocks on the receiver).
    pub fn send<T: Scalar>(&self, comm: &Comm, dst: usize, tag: u32, data: &[T]) {
        self.wire_send(
            comm,
            dst,
            tag,
            Ctx::Pt2pt,
            MsgKind::P2pUser,
            Payload::Bytes(T::to_bytes(data)),
        );
    }

    /// Blocking typed receive.
    pub fn recv<T: Scalar>(&self, comm: &Comm, src: SrcSel, tag: TagSel) -> (Vec<T>, Status) {
        let env = self.wire_recv(comm, src, tag, Ctx::Pt2pt);
        let status = Status {
            src: comm.rank_of_world(env.src_world).expect("sender not in communicator"),
            tag: env.tag,
            bytes: env.payload.len_bytes(),
        };
        (T::from_bytes(&env.payload.expect_bytes()), status)
    }

    /// Epoch-checked send: like [`Rank::send`], but deterministically
    /// rejected when `comm`'s membership has been superseded by a
    /// `comm_shrink` / `comm_grow` this rank performed or observed.  The
    /// check is sender-side and purely local, so a stale send fails the
    /// same way on every executor and every run — rather than being
    /// misdelivered into a communicator whose membership has moved on.
    pub fn send_checked<T: Scalar>(
        &self,
        comm: &Comm,
        dst: usize,
        tag: u32,
        data: &[T],
    ) -> Result<(), StaleEpoch> {
        if comm.epoch() < self.membership_epoch.get() {
            return Err(StaleEpoch {
                comm_epoch: comm.epoch(),
                current_epoch: self.membership_epoch.get(),
            });
        }
        self.send(comm, dst, tag, data);
        Ok(())
    }

    /// Send a size-only synthetic message (classified as user p2p traffic).
    pub fn send_synthetic(&self, comm: &Comm, dst: usize, tag: u32, bytes: u64) {
        self.wire_send(comm, dst, tag, Ctx::Pt2pt, MsgKind::P2pUser, Payload::Synthetic(bytes));
    }

    /// Receive a synthetic message; returns its status.
    pub fn recv_synthetic(&self, comm: &Comm, src: SrcSel, tag: TagSel) -> Status {
        let env = self.wire_recv(comm, src, tag, Ctx::Pt2pt);
        Status {
            src: comm.rank_of_world(env.src_world).expect("sender not in communicator"),
            tag: env.tag,
            bytes: env.payload.len_bytes(),
        }
    }

    /// Combined send + receive (safe under the eager-send model).
    pub fn sendrecv<T: Scalar>(
        &self,
        comm: &Comm,
        dst: usize,
        send_tag: u32,
        data: &[T],
        src: SrcSel,
        recv_tag: TagSel,
    ) -> (Vec<T>, Status) {
        self.send(comm, dst, send_tag, data);
        self.recv(comm, src, recv_tag)
    }

    // ----- recoverable point-to-point ----------------------------------------

    /// Fallible blocking receive from a specific peer: returns an error
    /// instead of panicking when `deadline` expires or every sender is
    /// gone.  The virtual clock is untouched on the error path.
    pub fn try_recv_deadline<T: Scalar>(
        &self,
        comm: &Comm,
        src: usize,
        tag: u32,
        deadline: Duration,
    ) -> Result<(Vec<T>, Status), RecvWaitError> {
        self.pre_op();
        let src_world = comm.world_rank_of(src);
        let pat = MatchPattern {
            comm_id: comm.id(),
            ctx: Ctx::Pt2pt,
            src: mailbox::SrcSel::World(src_world),
            tag: TagSel::Is(tag),
        };
        let res = {
            let mut mb = self.mailbox.borrow_mut();
            mb.try_recv_deadline(&pat, deadline).map(|env| {
                let depth = mb.unexpected_len();
                (env, depth)
            })
        };
        let (env, depth) = res?;
        let env = self.finish_recv(env, depth);
        let status = Status { src, tag: env.tag, bytes: env.payload.len_bytes() };
        Ok((T::from_bytes(&env.payload.expect_bytes()), status))
    }

    /// Blocking receive from a specific peer that degrades into an error
    /// when the peer crashed: waits for the data *or* the peer's death
    /// notice, whichever the per-sender FIFO delivers first.  Data the
    /// peer sent before dying is always consumed before its death notice,
    /// so nothing already on the wire is lost.
    ///
    /// # Panics
    /// Panics (deadlock detector) when neither data nor a death notice
    /// arrives within the configured deadline.
    pub fn recv_or_failure<T: Scalar>(
        &self,
        comm: &Comm,
        src: usize,
        tag: u32,
    ) -> Result<(Vec<T>, Status), PeerFailure> {
        self.pre_op();
        let src_world = comm.world_rank_of(src);
        let data_pat = MatchPattern {
            comm_id: comm.id(),
            ctx: Ctx::Pt2pt,
            src: mailbox::SrcSel::World(src_world),
            tag: TagSel::Is(tag),
        };
        // A peer already known dead can still have pre-crash data queued.
        let known_dead = self.failed_peers.borrow().get(&src_world).copied();
        if let Some(at_ns) = known_dead {
            let leftover = {
                let mut mb = self.mailbox.borrow_mut();
                if mb.iprobe(&data_pat) {
                    let env = mb.recv_match(&data_pat); // queued: returns at once
                    let depth = mb.unexpected_len();
                    Some((env, depth))
                } else {
                    None
                }
            };
            return match leftover {
                Some((env, depth)) => {
                    let env = self.finish_recv(env, depth);
                    let status = Status { src, tag: env.tag, bytes: env.payload.len_bytes() };
                    Ok((T::from_bytes(&env.payload.expect_bytes()), status))
                }
                None => Err(PeerFailure { world: src_world, at_ns }),
            };
        }
        let death_pat = MatchPattern {
            comm_id: fault::FAULT_COMM,
            ctx: Ctx::Fault,
            src: mailbox::SrcSel::World(src_world),
            tag: TagSel::Is(fault::FAULT_TAG_DEATH),
        };
        loop {
            let res = {
                let mut mb = self.mailbox.borrow_mut();
                mb.recv_either(&data_pat, &death_pat, self.shared.cfg.deadline).map(
                    |(env, is_data)| {
                        let depth = mb.unexpected_len();
                        (env, is_data, depth)
                    },
                )
            };
            match res {
                Ok((env, true, depth)) => {
                    let env = self.finish_recv(env, depth);
                    let status = Status { src, tag: env.tag, bytes: env.payload.len_bytes() };
                    return Ok((T::from_bytes(&env.payload.expect_bytes()), status));
                }
                Ok((env, false, _)) => {
                    // A death notice from a superseded incarnation is stale:
                    // the peer has since been reborn (this rank learned the
                    // newer incarnation from a join or admission notice).
                    // Swallow it and keep waiting for live traffic.
                    if env.src_inc < self.peer_incarnation_of(src_world) {
                        continue;
                    }
                    self.failed_peers.borrow_mut().insert(src_world, env.sent_at_ns);
                    self.clock.advance_to(env.arrival_ns);
                    return Err(PeerFailure { world: src_world, at_ns: env.sent_at_ns });
                }
                Err(e) => panic!(
                    "recv_or_failure: neither data nor a death notice from world rank \
                     {src_world} ({e:?}) while waiting for {data_pat:?}"
                ),
            }
        }
    }

    /// Collective liveness check: every live member of `comm` pings every
    /// peer it still believes alive, then collects one verdict per pinged
    /// peer — its ping, or its death notice.  Returns the liveness bitmap
    /// indexed by *communicator* rank.  Must be called collectively by all
    /// surviving members (crashed members are excused: their broadcast
    /// death notices stand in for their pings).
    pub fn liveness_exchange(&self, comm: &Comm) -> Vec<bool> {
        self.pre_op();
        let n = comm.size();
        let me = comm.rank();
        let mut alive = vec![true; n];
        {
            let failed = self.failed_peers.borrow();
            for (r, a) in alive.iter_mut().enumerate() {
                if r != me && failed.contains_key(&comm.world_rank_of(r)) {
                    *a = false;
                }
            }
        }
        for (r, &a) in alive.iter().enumerate() {
            if r != me && a {
                self.fault_send(comm.world_rank_of(r), fault::FAULT_TAG_PING);
            }
        }
        for (r, a) in alive.iter_mut().enumerate() {
            if r == me || !*a {
                continue;
            }
            let w = comm.world_rank_of(r);
            if let FaultMsg::Death { at_ns } = self.fault_recv(w) {
                self.failed_peers.borrow_mut().insert(w, at_ns);
                *a = false;
            }
        }
        alive
    }

    /// ULFM-style `MPI_Comm_shrink`, purely local: derive the surviving
    /// sub-communicator from a liveness bitmap (indexed by `comm` rank).
    /// Every survivor folds the same `(parent id, bitmap)` into the same
    /// derived id, so no collective round over a half-dead communicator is
    /// needed; the top bit keeps derived ids out of the allocator's range.
    pub fn comm_shrink(&self, comm: &Comm, alive: &[bool]) -> Comm {
        assert_eq!(alive.len(), comm.size(), "liveness bitmap must cover the communicator");
        assert!(alive[comm.rank()], "a dead rank cannot shrink a communicator");
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ comm.id();
        for (i, &a) in alive.iter().enumerate() {
            h = (h ^ (((i as u64) << 1) | u64::from(a))).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let id = h | (1 << 63);
        let group: Vec<usize> =
            (0..comm.size()).filter(|&r| alive[r]).map(|r| comm.world_rank_of(r)).collect();
        let my_rank = (0..comm.rank()).filter(|&r| alive[r]).count();
        let epoch = comm.epoch() + 1;
        self.note_epoch(epoch);
        let shrunk = Comm::new_at_epoch(id, Arc::new(group), my_rank, epoch);
        self.record_trace(
            self.clock.now_ns(),
            TraceData::EpochBump { comm: shrunk.id(), epoch, size: shrunk.size() },
        );
        shrunk
    }

    /// The dual of [`Rank::comm_shrink`]: grow a communicator by admitted
    /// joiners, purely locally.  Every member folds the same
    /// `(parent id, parent epoch, joiners)` into the same derived id, so no
    /// collective round is needed; joiners are appended after the parent's
    /// order, sorted by world rank.  Bumps this rank's membership epoch:
    /// [`Rank::send_checked`] traffic against the parent is rejected from
    /// here on.
    pub fn comm_grow(&self, comm: &Comm, joiners: &[usize]) -> Comm {
        assert!(!joiners.is_empty(), "comm_grow needs at least one joiner");
        let mut js = joiners.to_vec();
        js.sort_unstable();
        js.dedup();
        for &j in &js {
            assert!(j < self.capacity(), "comm_grow: joiner {j} is outside the universe");
            assert!(!comm.contains_world(j), "comm_grow: joiner {j} is already a member");
        }
        let (id, group, epoch) = grow_comm_parts(comm, &js);
        self.note_epoch(epoch);
        let grown = Comm::new_at_epoch(id, Arc::new(group), comm.rank(), epoch);
        self.record_trace(
            self.clock.now_ns(),
            TraceData::EpochBump { comm: grown.id(), epoch, size: grown.size() },
        );
        grown
    }

    /// Grow `comm` by one joiner *and* send it the admission notice — the
    /// sponsor side of the join protocol.  The other members call
    /// [`Rank::comm_grow`] with the same arguments (deriving the identical
    /// communicator); the joiner receives it via [`Rank::join_comm`]
    /// (latent slot) or [`Rank::recv_admission`] (reborn rank).
    pub fn admit(&self, comm: &Comm, joiner: usize) -> Comm {
        let grown = self.comm_grow(comm, &[joiner]);
        self.send_admission(&grown, joiner);
        grown
    }

    /// The configured deadlock-detector deadline (for fallible receives).
    pub fn recv_deadline(&self) -> Duration {
        self.shared.cfg.deadline
    }

    /// Retransmissions this rank issued (0 without an injector).
    pub fn retry_count(&self) -> u64 {
        self.retries.get()
    }

    /// Envelopes this rank's mailbox dropped as duplicate deliveries.
    pub fn duplicates_dropped(&self) -> u64 {
        self.mailbox.borrow().duplicates_dropped()
    }

    // ----- collectives (delegating to `collectives`) --------------------------

    /// Barrier (dissemination algorithm).
    pub fn barrier(&self, comm: &Comm) {
        let _span = self.coll_span("barrier_dissemination", comm);
        collectives::barrier(self, comm)
    }

    /// Broadcast from `root` (binomial tree).
    pub fn bcast<T: Scalar>(&self, comm: &Comm, root: usize, data: &mut Vec<T>) {
        let _span = self.coll_span("bcast_binomial", comm);
        collectives::bcast_binomial(self, comm, root, data)
    }

    /// Reduce to `root` (binomial tree); `Some(result)` at the root.
    pub fn reduce<T: Scalar>(
        &self,
        comm: &Comm,
        root: usize,
        data: &[T],
        op: impl Fn(T, T) -> T,
    ) -> Option<Vec<T>> {
        let _span = self.coll_span("reduce_binomial", comm);
        collectives::reduce_binomial(self, comm, root, data, op)
    }

    /// Allreduce (recursive doubling with non-power-of-two folding).
    pub fn allreduce<T: Scalar>(&self, comm: &Comm, data: &[T], op: impl Fn(T, T) -> T) -> Vec<T> {
        let _span = self.coll_span("allreduce_recursive_doubling", comm);
        collectives::allreduce_recursive_doubling(self, comm, data, op)
    }

    /// Gather equal-size contributions at `root` (linear).
    pub fn gather<T: Scalar>(&self, comm: &Comm, root: usize, data: &[T]) -> Option<Vec<T>> {
        let _span = self.coll_span("gather_linear", comm);
        collectives::gather_linear(self, comm, root, data)
    }

    /// Gather variable-size `u64` contributions at `root` along a k-ary
    /// tree laid over an explicit rank `order` (`order[0]` must be `root`;
    /// all ranks must pass identical `order` and `arity`).  Returns one row
    /// per communicator rank at the root, `None` elsewhere.  Used by the
    /// monitoring plane to aggregate sparse traffic rows along the machine
    /// topology instead of funnelling every row through the root's mailbox.
    ///
    /// # Panics
    /// Panics when `arity < 2` — validated *here*, before the collective
    /// allocates its tag or opens its span, so a bad arity fails every rank
    /// with the same message instead of desynchronizing the collective
    /// sequence mid-flight.  (The `MIM_GATHER_ARITY` env path clamps to 2;
    /// direct callers get this check.)
    pub fn gather_tree(
        &self,
        comm: &Comm,
        root: usize,
        arity: usize,
        order: &[usize],
        data: &[u64],
    ) -> Option<Vec<Vec<u64>>> {
        assert!(
            arity >= 2,
            "gather_tree: arity must be at least 2, got {arity} (rank {}); every caller \
             must pass the same arity >= 2 on every rank — a k-ary tree with k < 2 has \
             no parent/child structure",
            self.world_rank
        );
        let _span = self.coll_span("gather_tree_kary", comm);
        collectives::gather_tree_kary(self, comm, root, arity, order, data)
    }

    /// Allgather equal-size contributions (ring).
    pub fn allgather<T: Scalar>(&self, comm: &Comm, data: &[T]) -> Vec<T> {
        let _span = self.coll_span("allgather_ring", comm);
        collectives::allgather_ring(self, comm, data)
    }

    /// Scatter equal-size chunks from `root` (linear).
    pub fn scatter<T: Scalar>(&self, comm: &Comm, root: usize, data: Option<&[T]>) -> Vec<T> {
        let _span = self.coll_span("scatter_linear", comm);
        collectives::scatter_linear(self, comm, root, data)
    }

    /// All-to-all personalized exchange (ring-offset pairwise).
    pub fn alltoall<T: Scalar>(&self, comm: &Comm, data: &[T]) -> Vec<T> {
        let _span = self.coll_span("alltoall_pairwise", comm);
        collectives::alltoall_pairwise(self, comm, data)
    }

    /// Reduce-scatter with equal blocks (recursive halving / fallback).
    pub fn reduce_scatter<T: Scalar>(
        &self,
        comm: &Comm,
        data: &[T],
        op: impl Fn(T, T) -> T,
    ) -> Vec<T> {
        let _span = self.coll_span("reduce_scatter_block", comm);
        collectives::reduce_scatter_block(self, comm, data, op)
    }

    /// Inclusive prefix scan (`MPI_Scan`).
    pub fn scan<T: Scalar>(&self, comm: &Comm, data: &[T], op: impl Fn(T, T) -> T) -> Vec<T> {
        let _span = self.coll_span("scan_inclusive", comm);
        collectives::scan_inclusive(self, comm, data, op)
    }

    /// Segmented (pipelined) binary-tree broadcast; returns the number of
    /// segments used.
    pub fn bcast_segmented<T: Scalar>(
        &self,
        comm: &Comm,
        root: usize,
        data: &mut Vec<T>,
        seg_items: usize,
    ) -> usize {
        let _span = self.coll_span("bcast_binary_segmented", comm);
        collectives::bcast_binary_segmented(self, comm, root, data, seg_items)
    }

    // ----- communicator management -------------------------------------------

    /// `MPI_Comm_split`: members with equal `color` form a new communicator,
    /// ordered by `(key, parent rank)`.  Collective over `comm`.
    pub fn comm_split(&self, comm: &Comm, color: i64, key: i64) -> Comm {
        let _span = self.coll_span("comm_split", comm);
        // Gather (color, key) from every member.
        let all = collectives::allgather_ring(self, comm, &[color, key]);
        let n = comm.size();
        let mut distinct: Vec<i64> = (0..n).map(|r| all[2 * r]).collect();
        distinct.sort_unstable();
        distinct.dedup();
        // Rank 0 allocates one globally unique id per color group; everyone
        // derives its own from the broadcast base.
        let mut base = vec![if comm.rank() == 0 {
            self.shared.alloc_ids(distinct.len() as u64) as i64
        } else {
            0
        }];
        collectives::bcast_binomial(self, comm, 0, &mut base);
        let color_idx = distinct.binary_search(&color).unwrap();
        let id = base[0] as u64 + color_idx as u64;
        // Build my group, ordered by (key, parent rank).
        let mut members: Vec<(i64, usize)> =
            (0..n).filter(|&r| all[2 * r] == color).map(|r| (all[2 * r + 1], r)).collect();
        members.sort_unstable();
        let group: Vec<usize> = members.iter().map(|&(_, r)| comm.world_rank_of(r)).collect();
        let my_rank = members.iter().position(|&(_, r)| r == comm.rank()).unwrap();
        Comm::new(id, Arc::new(group), my_rank)
    }

    /// Duplicate a communicator (same group, fresh matching id).
    pub fn comm_dup(&self, comm: &Comm) -> Comm {
        self.comm_split(comm, 0, comm.rank() as i64)
    }
}

/// RAII guard of an open collective span (see [`Rank::coll_span`]).
pub(crate) struct CollSpanGuard<'a> {
    rank: &'a Rank,
    name: &'static str,
    comm_id: u64,
    id: u64,
    prev: Option<u64>,
}

impl Drop for CollSpanGuard<'_> {
    fn drop(&mut self) {
        self.rank.active_coll.set(self.prev);
        if let Some(t) = &self.rank.trace {
            t.record(
                self.rank.clock.now_ns(),
                TraceData::CollEnd { name: self.name, comm: self.comm_id, id: self.id },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_universe(n: usize) -> Universe {
        let machine = Machine::cluster(2, 2, 4); // 16 cores
        Universe::new(UniverseConfig::new(machine, Placement::packed(n)))
    }

    #[test]
    fn ping_pong_moves_data_and_time() {
        let u = small_universe(2);
        let times = u.launch(|rank| {
            let world = rank.comm_world();
            if rank.world_rank() == 0 {
                rank.send(&world, 1, 7, &[1.5f64, 2.5]);
                let (v, st) = rank.recv::<f64>(&world, SrcSel::Rank(1), TagSel::Is(8));
                assert_eq!(v, vec![4.0]);
                assert_eq!(st.src, 1);
            } else {
                let (v, st) = rank.recv::<f64>(&world, SrcSel::Rank(0), TagSel::Is(7));
                assert_eq!(v, vec![1.5, 2.5]);
                assert_eq!(st.bytes, 16);
                rank.send(&world, 0, 8, &[v[0] + v[1]]);
            }
            rank.now_ns()
        });
        // A round trip costs at least two latencies.
        assert!(times[0] > 0.0 && times[1] > 0.0);
    }

    #[test]
    fn virtual_time_respects_distance() {
        // Rank 1 on the same socket as rank 0; rank 2 on another node.
        let machine = Machine::cluster(2, 2, 4);
        let placement = Placement::explicit(vec![0, 1, 8]);
        let u = Universe::new(UniverseConfig::new(machine, placement));
        let times = u.launch(|rank| {
            let world = rank.comm_world();
            match rank.world_rank() {
                0 => {
                    rank.send(&world, 1, 0, &[0u8; 1000]);
                    rank.send(&world, 2, 0, &[0u8; 1000]);
                    0.0
                }
                _ => {
                    rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Is(0));
                    rank.now_ns()
                }
            }
        });
        assert!(
            times[2] > times[1],
            "cross-node recv ({}) should finish later than intra-socket ({})",
            times[2],
            times[1]
        );
    }

    #[test]
    fn synthetic_and_real_cost_the_same() {
        let run = |synthetic: bool| {
            let u = small_universe(2);
            u.launch(move |rank| {
                let world = rank.comm_world();
                if rank.world_rank() == 0 {
                    if synthetic {
                        rank.send_synthetic(&world, 1, 0, 4096);
                    } else {
                        rank.send(&world, 1, 0, &vec![0u8; 4096]);
                    }
                    0.0
                } else {
                    if synthetic {
                        rank.recv_synthetic(&world, SrcSel::Any, TagSel::Any);
                    } else {
                        rank.recv::<u8>(&world, SrcSel::Any, TagSel::Any);
                    }
                    rank.now_ns()
                }
            })[1]
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn self_send_works() {
        let u = small_universe(1);
        u.launch(|rank| {
            let world = rank.comm_world();
            rank.send(&world, 0, 3, &[42i32]);
            let (v, st) = rank.recv::<i32>(&world, SrcSel::Rank(0), TagSel::Is(3));
            assert_eq!(v, vec![42]);
            assert_eq!(st.src, 0);
        });
    }

    #[test]
    fn nic_sees_only_cross_node() {
        let machine = Machine::cluster(2, 1, 4); // nodes of 4 cores
        let u = Universe::new(UniverseConfig::new(machine, Placement::packed(8)));
        u.launch(|rank| {
            let world = rank.comm_world();
            match rank.world_rank() {
                0 => {
                    rank.send(&world, 1, 0, &[0u8; 100]); // intra-node
                    rank.send(&world, 4, 0, &[0u8; 200]); // cross-node
                }
                1 => {
                    rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
                }
                4 => {
                    rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Any);
                }
                _ => {}
            }
        });
        assert_eq!(u.nic().xmit_bytes(0), 200);
        assert_eq!(u.nic().xmit_msgs(0), 1);
        assert_eq!(u.nic().xmit_bytes(1), 0);
    }

    #[test]
    fn comm_split_even_odd() {
        let u = small_universe(6);
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = rank.world_rank();
            let sub = rank.comm_split(&world, (me % 2) as i64, me as i64);
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), me / 2);
            assert_eq!(sub.world_rank_of(sub.rank()), me);
            // Traffic on the sub-communicator stays inside it.
            let gathered = rank.allgather(&sub, &[me as u64]);
            let expect: Vec<u64> = (0..6).filter(|w| w % 2 == me % 2).map(|w| w as u64).collect();
            assert_eq!(gathered, expect);
        });
    }

    #[test]
    fn comm_split_reorders_by_key() {
        let u = small_universe(4);
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = rank.world_rank();
            // Reverse the ranks: key = n - 1 - me.
            let rev = rank.comm_split(&world, 0, (3 - me) as i64);
            assert_eq!(rev.rank(), 3 - me);
            assert_eq!(rev.world_rank_of(0), 3);
        });
    }

    #[test]
    fn comm_dup_isolates_traffic() {
        let u = small_universe(2);
        u.launch(|rank| {
            let world = rank.comm_world();
            let dup = rank.comm_dup(&world);
            assert_ne!(dup.id(), world.id());
            if rank.world_rank() == 0 {
                rank.send(&world, 1, 5, &[1u8]);
                rank.send(&dup, 1, 5, &[2u8]);
            } else {
                // Receive from the dup first: matching must not steal the
                // world message even though it arrived earlier.
                let (v, _) = rank.recv::<u8>(&dup, SrcSel::Any, TagSel::Any);
                assert_eq!(v, vec![2]);
                let (v, _) = rank.recv::<u8>(&world, SrcSel::Any, TagSel::Any);
                assert_eq!(v, vec![1]);
            }
        });
    }

    #[test]
    fn deadline_env_override() {
        // Use a generous value: tests run in parallel and another test
        // constructing a config while the variable is set must not end up
        // with a deadline short enough to trip its deadlock detector.
        std::env::set_var("MIM_DEADLINE_MS", "123456");
        let cfg = UniverseConfig::new(Machine::cluster(1, 1, 2), Placement::packed(2));
        std::env::remove_var("MIM_DEADLINE_MS");
        assert_eq!(cfg.deadline, Duration::from_millis(123_456));
        let cfg = UniverseConfig::new(Machine::cluster(1, 1, 2), Placement::packed(2));
        assert_eq!(cfg.deadline, Duration::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "launched once")]
    fn double_launch_panics() {
        let u = small_universe(1);
        u.launch(|_| ());
        u.launch(|_| ());
    }

    // ----- fault injection ---------------------------------------------------

    /// Drop the first `n` attempts of every message.
    #[derive(Debug)]
    struct DropFirstN(u32);
    impl FaultInjector for DropFirstN {
        fn on_attempt(&self, _link: &LinkCtx, attempt: u32) -> SendOutcome {
            if attempt < self.0 {
                SendOutcome::Drop
            } else {
                SendOutcome::CLEAN
            }
        }
    }

    /// Deliver every message plus two duplicate copies.
    #[derive(Debug)]
    struct DupAll;
    impl FaultInjector for DupAll {
        fn on_attempt(&self, _link: &LinkCtx, _attempt: u32) -> SendOutcome {
            SendOutcome::Deliver { extra_delay_ns: 0.0, duplicates: 2 }
        }
    }

    /// Crash one rank at a wire-op count; everything else is clean.
    #[derive(Debug)]
    struct CrashAtOps {
        world: usize,
        ops: u64,
    }
    impl FaultInjector for CrashAtOps {
        fn on_attempt(&self, _link: &LinkCtx, _attempt: u32) -> SendOutcome {
            SendOutcome::CLEAN
        }
        fn crash_point(&self, world: usize) -> Option<CrashPoint> {
            (world == self.world).then_some(CrashPoint::OpCount(self.ops))
        }
    }

    fn faulty_universe(n: usize, inj: Arc<dyn FaultInjector>) -> Universe {
        let machine = Machine::cluster(2, 2, 4);
        let cfg = UniverseConfig::new(machine, Placement::packed(n)).with_injector(inj);
        Universe::new(cfg)
    }

    #[test]
    fn dropped_sends_are_retried_and_recovered() {
        let u = faulty_universe(2, Arc::new(DropFirstN(3)));
        let retries = u.launch(|rank| {
            let world = rank.comm_world();
            if rank.world_rank() == 0 {
                rank.send(&world, 1, 7, &[11u64, 22, 33]);
            } else {
                let (v, st) = rank.recv::<u64>(&world, SrcSel::Rank(0), TagSel::Is(7));
                assert_eq!(v, vec![11, 22, 33]);
                assert_eq!(st.bytes, 24);
            }
            rank.retry_count()
        });
        assert_eq!(retries, vec![3, 0]);
        assert_eq!(u.nic().retries_total(), 3);
        // Retries never inflate the transmit counters: one logical message.
        assert_eq!(u.nic().xmit_msgs(0) + u.nic().xmit_msgs(1), 0); // intra-node
    }

    #[test]
    fn retry_storm_costs_virtual_time() {
        let clean = faulty_universe(2, Arc::new(DropFirstN(0)));
        let lossy = faulty_universe(2, Arc::new(DropFirstN(5)));
        let run = |u: &Universe| {
            u.launch(|rank| {
                let world = rank.comm_world();
                if rank.world_rank() == 0 {
                    rank.send(&world, 1, 0, &[0u8; 256]);
                    0.0
                } else {
                    rank.recv::<u8>(&world, SrcSel::Rank(0), TagSel::Is(0));
                    rank.now_ns()
                }
            })[1]
        };
        let (t_clean, t_lossy) = (run(&clean), run(&lossy));
        // 5 lost transmissions + exponential backoff strictly delay arrival.
        assert!(t_lossy > t_clean, "lossy {t_lossy} should exceed clean {t_clean}");
    }

    #[test]
    fn duplicate_deliveries_are_transparent() {
        let u = faulty_universe(2, Arc::new(DupAll));
        u.launch(|rank| {
            let world = rank.comm_world();
            if rank.world_rank() == 0 {
                for i in 0..5u64 {
                    rank.send(&world, 1, i as u32, &[i, i * 10]);
                }
            } else {
                for i in 0..5u64 {
                    let (v, _) = rank.recv::<u64>(&world, SrcSel::Rank(0), TagSel::Is(i as u32));
                    assert_eq!(v, vec![i, i * 10], "payload corrupted at message {i}");
                }
                // Duplicates of earlier messages were drained (and dropped)
                // while matching later ones.
                assert!(rank.duplicates_dropped() >= 8, "dups: {}", rank.duplicates_dropped());
            }
        });
    }

    #[test]
    fn launch_faulty_reports_crash_and_preserves_survivors() {
        let u = faulty_universe(2, Arc::new(CrashAtOps { world: 1, ops: 0 }));
        let results = u.launch_faulty(|rank| {
            let world = rank.comm_world();
            if rank.world_rank() == 0 {
                let err = rank
                    .recv_or_failure::<u64>(&world, 1, 9)
                    .expect_err("peer crashed before sending");
                assert_eq!(err.world, 1);
            } else {
                // First wire op: dies in the send prologue.
                rank.send(&world, 0, 9, &[1u64]);
            }
            rank.world_rank()
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(results[1], Err(RankFailure::Crashed { at_ns: 0.0, ops: 0 }));
        assert_eq!(u.alive(), vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "use Universe::launch_faulty to recover")]
    fn strict_launch_rejects_scheduled_crash() {
        let u = faulty_universe(2, Arc::new(CrashAtOps { world: 1, ops: 0 }));
        u.launch(|rank| {
            let world = rank.comm_world();
            if rank.world_rank() == 0 {
                let _ = rank.recv_or_failure::<u64>(&world, 1, 9);
            } else {
                rank.send(&world, 0, 9, &[1u64]);
            }
        });
    }

    #[test]
    fn data_sent_before_crash_is_delivered_first() {
        let u = faulty_universe(2, Arc::new(CrashAtOps { world: 1, ops: 1 }));
        let results = u.launch_faulty(|rank| {
            let world = rank.comm_world();
            if rank.world_rank() == 0 {
                // The pre-crash message must arrive before the death notice.
                let (v, _) = rank
                    .recv_or_failure::<u64>(&world, 1, 5)
                    .expect("data was on the wire before the crash");
                assert_eq!(v, vec![42]);
                // The next receive hits the (cached) failure.
                let err = rank.recv_or_failure::<u64>(&world, 1, 5).expect_err("peer is dead");
                assert_eq!(err.world, 1);
                assert!(err.at_ns > 0.0);
            } else {
                rank.send(&world, 0, 5, &[42u64]); // op 0: completes
                rank.send(&world, 0, 5, &[43u64]); // op 1: crashes in the prologue
            }
        });
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(RankFailure::Crashed { ops: 1, .. })));
    }

    #[test]
    fn liveness_exchange_and_shrink_continue_collectives() {
        let u = faulty_universe(4, Arc::new(CrashAtOps { world: 2, ops: 0 }));
        let results = u.launch_faulty(|rank| {
            let world = rank.comm_world();
            if rank.world_rank() == 2 {
                // First wire op is the liveness ping: dies before sending it.
                let _ = rank.liveness_exchange(&world);
                return Vec::new();
            }
            let alive = rank.liveness_exchange(&world);
            assert_eq!(alive, vec![true, true, false, true]);
            let work = rank.comm_shrink(&world, &alive);
            assert_eq!(work.size(), 3);
            // Collectives run on the shrunk communicator.
            rank.allgather(&work, &[rank.world_rank() as u64])
        });
        for (w, r) in results.iter().enumerate() {
            match r {
                Ok(v) if w != 2 => assert_eq!(v, &vec![0, 1, 3]),
                Ok(_) => panic!("rank 2 should have crashed"),
                Err(f) => {
                    assert_eq!(w, 2);
                    assert!(matches!(f, RankFailure::Crashed { ops: 0, .. }));
                }
            }
        }
    }

    #[test]
    fn shrunk_comm_ids_are_deterministic_and_distinct() {
        let u = small_universe(4);
        u.launch(|rank| {
            if rank.world_rank() == 2 {
                return; // "dead" in bitmap a; shrink asserts own liveness
            }
            let world = rank.comm_world();
            let a = rank.comm_shrink(&world, &[true, true, false, true]);
            let b = rank.comm_shrink(&world, &[true, true, false, true]);
            assert_eq!(a.id(), b.id(), "same bitmap must derive the same id");
            if rank.world_rank() != 3 {
                let c = rank.comm_shrink(&world, &[true, true, true, false]);
                assert_ne!(a.id(), c.id(), "different bitmaps must not collide");
            }
            let expect = match rank.world_rank() {
                0 => 0,
                1 => 1,
                _ => 2,
            };
            assert_eq!(a.rank(), expect);
        });
    }

    #[test]
    fn clock_monotone_through_traffic() {
        let u = small_universe(4);
        u.launch(|rank| {
            let world = rank.comm_world();
            let mut last = rank.now_ns();
            for it in 0..5 {
                rank.barrier(&world);
                let now = rank.now_ns();
                assert!(now >= last, "clock went backwards at iteration {it}");
                last = now;
                rank.compute_ns(10.0);
            }
        });
    }
}
