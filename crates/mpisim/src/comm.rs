//! Communicators: ordered groups of world ranks with a private matching id.

use std::sync::Arc;

/// A communicator handle.
///
/// Cheap to clone (the group is shared).  Each communicator owns a globally
/// unique id used for message matching, so traffic on different communicators
/// never mixes, and three matching contexts (point-to-point / collective /
/// one-sided) within the id, like MPI context ids.
#[derive(Debug, Clone)]
pub struct Comm {
    id: u64,
    /// `group[r]` = world rank of communicator rank `r`.
    group: Arc<Vec<usize>>,
    /// This process's rank inside the communicator.
    my_rank: usize,
    /// Membership epoch: 0 for communicators whose membership was never
    /// churned; each `comm_shrink` / `comm_grow` derives a communicator one
    /// epoch newer than its parent.  `Rank::send_checked` uses it to reject
    /// sends on a communicator whose membership has been superseded.
    epoch: u64,
}

impl Comm {
    pub(crate) fn new(id: u64, group: Arc<Vec<usize>>, my_rank: usize) -> Self {
        Self::new_at_epoch(id, group, my_rank, 0)
    }

    pub(crate) fn new_at_epoch(
        id: u64,
        group: Arc<Vec<usize>>,
        my_rank: usize,
        epoch: u64,
    ) -> Self {
        debug_assert!(my_rank < group.len());
        Self { id, group, my_rank, epoch }
    }

    /// Build a communicator from raw parts, outside the runtime.
    ///
    /// Only meant for tests of code that stores communicators; a communicator
    /// made this way cannot carry messages (its id is not registered).
    #[doc(hidden)]
    pub fn from_raw(id: u64, group: Arc<Vec<usize>>, my_rank: usize) -> Self {
        Self::new(id, group, my_rank)
    }

    /// Unique communicator id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Membership epoch (0 = never churned; see [`Comm::new_at_epoch`]'s
    /// field docs and `Rank::send_checked`).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// This process's rank in the communicator.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// World rank of communicator rank `r`.
    ///
    /// # Panics
    /// Panics when `r` is out of range.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.group[r]
    }

    /// Communicator rank of a world rank, if it is a member.
    pub fn rank_of_world(&self, world: usize) -> Option<usize> {
        self.group.iter().position(|&w| w == world)
    }

    /// The ordered member list (communicator rank → world rank).
    pub fn group(&self) -> &[usize] {
        &self.group
    }

    /// True when the given world rank belongs to this communicator.
    pub fn contains_world(&self, world: usize) -> bool {
        self.group.contains(&world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm() -> Comm {
        Comm::new(3, Arc::new(vec![4, 2, 7]), 1)
    }

    #[test]
    fn rank_translation() {
        let c = comm();
        assert_eq!(c.size(), 3);
        assert_eq!(c.rank(), 1);
        assert_eq!(c.world_rank_of(0), 4);
        assert_eq!(c.world_rank_of(2), 7);
        assert_eq!(c.rank_of_world(7), Some(2));
        assert_eq!(c.rank_of_world(5), None);
        assert!(c.contains_world(2));
        assert!(!c.contains_world(0));
    }
}
