//! `mim-reorder` — dynamic rank reordering driven by introspection
//! monitoring (the paper's Fig. 1 algorithm and Sec. 5).
//!
//! The idea: an iterative application has the same communication pattern at
//! every iteration.  Monitor the first iteration with `mim-core`, gather the
//! byte matrix at rank 0, compute a topology-aware permutation `k` with
//! TreeMatch, broadcast it, and build an *optimized communicator* via
//! `comm_split(color = 0, key = k[my_rank])` in which the process holding
//! old rank `i` holds new rank `k[i]`.  Remaining iterations run on the
//! optimized communicator; optionally, data is redistributed first
//! ("any useful data is sent from rank `k[i]` to rank `i` in the original
//! communicator").
//!
//! Processes never move: only the rank labels rotate, so a rank-based
//! communication pattern lands on topologically closer core pairs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use mim_core::{Flags, GatheredData, Monitoring};
use mim_mpisim::{Comm, Rank, SrcSel, TagSel};
use mim_topology::{inverse_permutation, CommMatrix, Machine, Placement};
use mim_treematch::place_constrained;

/// Result of a monitored reordering.
pub struct ReorderOutcome {
    /// The optimized communicator (old rank `i` → new rank `k[i]`).
    pub comm: Comm,
    /// The permutation: `k[i]` is the new rank of the process holding old
    /// rank `i`.
    pub k: Vec<usize>,
    /// Virtual time spent on the whole reordering step (gather + mapping +
    /// broadcast + split), in nanoseconds — the `t2` of the paper's Fig. 6
    /// gain formula.
    pub reorder_cost_ns: f64,
    /// Wall-clock time rank 0 spent inside TreeMatch (paper Table 1).
    pub mapping_wall_s: f64,
}

/// Compute the reordering permutation `k` from a gathered byte matrix.
///
/// `group[r]` is the world rank currently holding communicator rank `r`.
/// The available slots are exactly the cores those processes occupy, so the
/// constrained TreeMatch variant is used.  Returns `k` with `k[i]` = new
/// rank for old rank `i`.
pub fn compute_mapping(
    machine: &Machine,
    placement: &Placement,
    group: &[usize],
    sizes: &CommMatrix,
) -> Vec<usize> {
    assert_eq!(group.len(), sizes.order(), "matrix order must match communicator size");
    // Slot r = the core hosting old rank r.
    let slots: Vec<usize> = group.iter().map(|&w| placement.core_of(w)).collect();
    // sigma[role] = slot for pattern role `role`; the rank-based pattern
    // means role r is whatever the process with (new) rank r does.
    let sigma = place_constrained(machine, &slots, sizes);
    // New rank r must be held by the process at slot sigma[r], i.e. by old
    // rank sigma[r]:  k[sigma[r]] = r  ⇔  k = sigma⁻¹.
    inverse_permutation(&sigma)
}

/// The paper's Fig. 1 algorithm: run `monitored` (typically the first
/// iteration) under a fresh session on `comm`, then gather the byte matrix
/// at rank 0, compute `k`, broadcast it, and split.  The returned
/// communicator has the same group with reordered ranks.
///
/// `flags` selects which traffic builds the matrix (the paper's Fig. 1 uses
/// `MPI_M_P2P_ONLY`; collective-optimization experiments monitor
/// `COLL_ONLY`).
///
/// # Panics
/// Panics if any monitoring call fails (programming error in the caller's
/// session discipline).
pub fn monitored_reorder(
    rank: &Rank,
    mon: &Monitoring,
    comm: &Comm,
    flags: Flags,
    monitored: impl FnOnce(&Comm),
) -> ReorderOutcome {
    let id = mon.start(rank, comm).expect("start monitoring session");
    monitored(comm);
    mon.suspend(id).expect("suspend monitoring session");
    let t0 = rank.now_ns();
    let gathered =
        mon.rootgather_data(rank, id, 0, flags).expect("gather monitored matrix at rank 0");
    let n = comm.size();
    let mut k_buf: Vec<u64> = vec![0; n];
    let mut mapping_wall_s = 0.0;
    if let Some(data) = gathered {
        let wall = Instant::now();
        let k = compute_mapping(rank.machine(), rank.placement(), comm.group(), &data.sizes);
        mapping_wall_s = wall.elapsed().as_secs_f64();
        // The mapping computation takes real time on rank 0: charge it on
        // the virtual clock so the reordering cost is honest (Fig. 6).
        rank.compute_ns(mapping_wall_s * 1e9);
        for (i, &ki) in k.iter().enumerate() {
            k_buf[i] = ki as u64;
        }
    }
    rank.bcast(comm, 0, &mut k_buf);
    let k: Vec<usize> = k_buf.iter().map(|&v| v as usize).collect();
    let opt_comm = rank.comm_split(comm, 0, k[comm.rank()] as i64);
    let reorder_cost_ns = rank.now_ns() - t0;
    mon.free(id).expect("free monitoring session");
    ReorderOutcome { comm: opt_comm, k, reorder_cost_ns, mapping_wall_s }
}

/// Windowed variant of [`monitored_reorder`]: the session stays **active**
/// for the whole monitored phase — no suspend barrier ever interrupts the
/// application.  After each of `nwindows` monitored iterations the sealed
/// epoch window is gathered at rank 0 along the topology-ordered tree
/// ([`Monitoring::gather_window`]) and accumulated into the byte matrix;
/// the permutation is then computed from the accumulated matrix exactly as
/// in the strict path.  With the same traffic, one window and the strict
/// suspend-then-gather path produce the same matrix, hence the same `k`.
///
/// `monitored_window(comm, w)` runs window `w`'s slice of the application
/// (typically one iteration).
///
/// # Panics
/// Panics if `nwindows == 0` or any monitoring call fails (caller-side
/// session-discipline error).
pub fn monitored_reorder_windowed(
    rank: &Rank,
    mon: &Monitoring,
    comm: &Comm,
    flags: Flags,
    nwindows: usize,
    mut monitored_window: impl FnMut(&Comm, usize),
) -> ReorderOutcome {
    assert!(nwindows > 0, "at least one monitored window is required");
    let id = mon.start(rank, comm).expect("start monitoring session");
    let n = comm.size();
    let mut acc = if comm.rank() == 0 { Some(CommMatrix::zeros(n)) } else { None };
    // The gathers are interleaved with application windows; their cost is
    // part of the reordering overhead (Fig. 6's t2), the windows are not.
    let mut gather_cost_ns = 0.0;
    for w in 0..nwindows {
        monitored_window(comm, w);
        let t = rank.now_ns();
        let gw = mon.gather_window(rank, id, 0, flags).expect("gather window at rank 0");
        gather_cost_ns += rank.now_ns() - t;
        if let (Some(acc), Some(data)) = (acc.as_mut(), gw.data) {
            for i in 0..n {
                for j in 0..n {
                    acc.set(i, j, acc.get(i, j) + data.sizes.get(i, j));
                }
            }
        }
    }
    let t0 = rank.now_ns();
    let mut k_buf: Vec<u64> = vec![0; n];
    let mut mapping_wall_s = 0.0;
    if let Some(sizes) = acc {
        let wall = Instant::now();
        let k = compute_mapping(rank.machine(), rank.placement(), comm.group(), &sizes);
        mapping_wall_s = wall.elapsed().as_secs_f64();
        rank.compute_ns(mapping_wall_s * 1e9);
        for (i, &ki) in k.iter().enumerate() {
            k_buf[i] = ki as u64;
        }
    }
    rank.bcast(comm, 0, &mut k_buf);
    let k: Vec<usize> = k_buf.iter().map(|&v| v as usize).collect();
    let opt_comm = rank.comm_split(comm, 0, k[comm.rank()] as i64);
    let reorder_cost_ns = rank.now_ns() - t0 + gather_cost_ns;
    mon.suspend(id).expect("suspend monitoring session");
    mon.free(id).expect("free monitoring session");
    ReorderOutcome { comm: opt_comm, k, reorder_cost_ns, mapping_wall_s }
}

/// Deterministic virtual-time charge for the mapping computation in the
/// resilient reorder path, per cell of the (possibly shrunk) matrix.  The
/// strict path measures wall-clock TreeMatch time and charges that; the
/// resilient path must replay bit-identically under a fixed chaos seed, so
/// it charges this flat model instead (calibrated to the observed ~50 ns
/// per matrix cell of the in-tree TreeMatch on small communicators).
pub const MAPPING_CHARGE_PER_PAIR_NS: f64 = 50.0;

/// How a resilient reordering degraded, if it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReorderFallback {
    /// The full reordering went through: every rank alive, mapping computed.
    None,
    /// The gather or the mapping failed; the loop fell back to the identity
    /// permutation (the optimized communicator equals the working one).
    /// Carries the reason — on non-root ranks a generic marker, since only
    /// the root observes the failure.
    Identity(String),
    /// Ranks crashed: reordering proceeded ULFM-style on the shrunk
    /// communicator.  `crashed` holds their *original* communicator ranks.
    Shrunk { crashed: Vec<usize> },
}

/// Result of a fault-tolerant reordering
/// ([`monitored_reorder_resilient`]).
pub struct ResilientOutcome {
    /// The optimized communicator over the surviving ranks.
    pub comm: Comm,
    /// The permutation over the *working* (possibly shrunk) communicator:
    /// `k[i]` is the new rank of the process holding working rank `i`.
    pub k: Vec<usize>,
    /// Liveness by original communicator rank, as agreed by the survivors.
    pub alive: Vec<bool>,
    /// Virtual time spent on the recovery + reordering step, in ns.
    pub reorder_cost_ns: f64,
    /// Whether and how the loop degraded.
    pub fallback: ReorderFallback,
    /// The gathered (possibly partial) matrices — root only.
    pub gathered: Option<GatheredData>,
}

/// [`compute_mapping`], demoted to the identity permutation when it panics
/// (degenerate matrix, TreeMatch invariant failure): the reorder loop must
/// never die for want of an optimization.
fn mapping_or_identity(
    machine: &Machine,
    placement: &Placement,
    group: &[usize],
    sizes: &CommMatrix,
) -> (Vec<usize>, Option<String>) {
    let n = sizes.order();
    match catch_unwind(AssertUnwindSafe(|| compute_mapping(machine, placement, group, sizes))) {
        Ok(k) => (k, None),
        Err(p) => {
            let why = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&'static str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "opaque mapping panic".into());
            ((0..n).collect(), Some(why))
        }
    }
}

/// Self-healing variant of [`monitored_reorder`]: the paper's Fig. 1 loop,
/// hardened so that neither a crashed rank nor a failed gather/mapping can
/// take the application down with it.
///
/// After the monitored section the survivors agree on a liveness bitmap
/// (`Rank::liveness_exchange`), gather the matrices *partially* — dead
/// ranks' rows zeroed, flagged in `GatheredData::liveness` — and, when
/// anyone died, shrink the communicator ULFM-style (`Rank::comm_shrink`)
/// before computing the mapping over the surviving submatrix.  A gather or
/// TreeMatch failure demotes the permutation to identity instead of
/// panicking.  The returned communicator is always usable.
///
/// The `monitored` closure must itself be fault-aware when running under
/// fault injection (use `Rank::recv_or_failure` rather than plain `recv`),
/// or a survivor can block on a message its dead peer never sent.
///
/// # Panics
/// Panics only on caller-side session-discipline errors (as
/// [`monitored_reorder`]) — never on peer failure.
pub fn monitored_reorder_resilient(
    rank: &Rank,
    mon: &Monitoring,
    comm: &Comm,
    flags: Flags,
    monitored: impl FnOnce(&Comm),
) -> ResilientOutcome {
    let id = mon.start(rank, comm).expect("start monitoring session");
    monitored(comm);
    mon.suspend(id).expect("suspend monitoring session");
    let t0 = rank.now_ns();

    let alive = rank.liveness_exchange(comm);
    let crashed: Vec<usize> = (0..comm.size()).filter(|&r| !alive[r]).collect();

    // Partial gather on the ORIGINAL communicator (its member list still
    // names the dead, which is exactly what the liveness bitmap indexes).
    let (gathered, root_why) = match mon.rootgather_partial(rank, id, 0, flags, &alive) {
        Ok(g) => (g, None),
        Err(e) => (None, Some(format!("partial gather failed: {e}"))),
    };

    let work = if crashed.is_empty() { comm.clone() } else { rank.comm_shrink(comm, &alive) };
    let m = work.size();

    // k ‖ identity-fallback flag, one bcast from the working root.
    let mut k_buf: Vec<u64> = vec![0; m + 1];
    let mut why = None;
    if work.rank() == 0 {
        let (k, fail) = match (&gathered, root_why) {
            (Some(data), None) => {
                let live: Vec<usize> = (0..comm.size()).filter(|&r| alive[r]).collect();
                let mut sub = CommMatrix::zeros(m);
                for a in 0..m {
                    for b in 0..m {
                        sub.set(a, b, data.sizes.get(live[a], live[b]));
                    }
                }
                mapping_or_identity(rank.machine(), rank.placement(), work.group(), &sub)
            }
            (_, w) => ((0..m).collect(), Some(w.unwrap_or_else(|| "no matrix at root".into()))),
        };
        rank.compute_ns(MAPPING_CHARGE_PER_PAIR_NS * (m * m) as f64);
        for (i, &ki) in k.iter().enumerate() {
            k_buf[i] = ki as u64;
        }
        k_buf[m] = u64::from(fail.is_some());
        why = fail;
    }
    rank.bcast(&work, 0, &mut k_buf);
    let k: Vec<usize> = k_buf[..m].iter().map(|&v| v as usize).collect();
    let identity = k_buf[m] == 1;
    let opt_comm = rank.comm_split(&work, 0, k[work.rank()] as i64);
    let reorder_cost_ns = rank.now_ns() - t0;
    mon.free(id).expect("free monitoring session");

    let fallback = if !crashed.is_empty() {
        ReorderFallback::Shrunk { crashed }
    } else if identity {
        ReorderFallback::Identity(why.unwrap_or_else(|| "mapping failed on root".into()))
    } else {
        ReorderFallback::None
    };
    ResilientOutcome { comm: opt_comm, k, alive, reorder_cost_ns, fallback, gathered }
}

/// Compute a fresh placement for an *elastic* reconfiguration (the paper's
/// Sec 7 use-case after Cores et al., VECPAR'16): the number of computing
/// resources changed, processes will be migrated/respawned, and their new
/// homes should follow the monitored communication matrix and the topology.
///
/// `available_cores` are the cores of the surviving allocation; the matrix
/// order gives the (possibly shrunken or grown) process count.  Returns the
/// placement to relaunch with.
///
/// # Panics
/// Panics when more processes than cores are requested.
pub fn elastic_placement(
    machine: &Machine,
    available_cores: &[usize],
    sizes: &CommMatrix,
) -> Placement {
    let sigma = place_constrained(machine, available_cores, sizes);
    Placement::explicit(sigma.into_iter().map(|s| available_cores[s]).collect())
}

/// Extend a reordering permutation over a **grown** communicator: the first
/// `k.len()` ranks keep the mapping computed on the pre-growth membership
/// and every joiner (appended by `Rank::comm_grow` after the existing
/// members) maps to itself — joiners have no monitored history yet, so
/// identity is the only defensible placement until the next reorder round
/// observes them.  The result is a permutation of `0..new_n` whenever `k`
/// was one of `0..k.len()`.
///
/// Together with `Monitoring::rebind_session`, this is how the Fig. 1 loop
/// rides out elastic growth: shrink handled inside
/// [`monitored_reorder_resilient`], growth by rebinding the session to the
/// grown communicator and extending the last permutation with this helper.
///
/// # Panics
/// Panics when `new_n < k.len()` — growing cannot lose members (that is
/// what `comm_shrink` is for).
pub fn grow_mapping(k: &[usize], new_n: usize) -> Vec<usize> {
    assert!(new_n >= k.len(), "grow_mapping cannot shrink: {} -> {new_n}", k.len());
    let mut out = k.to_vec();
    out.extend(k.len()..new_n);
    out
}

/// Redistribute per-role data after a reordering: old rank `i` receives the
/// data of its new role `k[i]` from old rank `k[i]`, and ships its own to
/// old rank `k⁻¹[i]` (paper: "data is sent from rank `k[i]` to rank `i` in
/// the original communicator").
pub fn redistribute<T: mim_mpisim::Scalar>(
    rank: &Rank,
    original_comm: &Comm,
    k: &[usize],
    data: Vec<T>,
) -> Vec<T> {
    let me = original_comm.rank();
    let inv = inverse_permutation(k);
    if k[me] == me && inv[me] == me {
        return data;
    }
    const REDIST_TAG: u32 = 0x00F1_0000;
    rank.send(original_comm, inv[me], REDIST_TAG, &data);
    let (new_data, _) = rank.recv::<T>(original_comm, SrcSel::Rank(k[me]), TagSel::Is(REDIST_TAG));
    new_data
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_mpisim::{Universe, UniverseConfig};
    use mim_topology::TopologyTree;

    /// 8 ranks spread cyclically over 2 nodes, so consecutive ranks live on
    /// different nodes — the worst case for a pattern of (2i, 2i+1) pairs.
    fn cyclic_universe() -> Universe {
        let machine = Machine::cluster(2, 1, 8);
        let tree = TopologyTree::new(vec![2, 1, 8]);
        let placement = Placement::cyclic_by_level(&tree, 8, 1);
        Universe::new(UniverseConfig::new(machine, placement))
    }

    /// One "iteration": each even rank exchanges a large buffer with its
    /// odd neighbour (rank-based pattern).
    fn pair_exchange(rank: &Rank, comm: &Comm, bytes: u64) {
        let me = comm.rank();
        let peer = if me.is_multiple_of(2) { me + 1 } else { me - 1 };
        rank.send_synthetic(comm, peer, 9, bytes);
        rank.recv_synthetic(comm, SrcSel::Rank(peer), TagSel::Is(9));
    }

    #[test]
    fn grow_mapping_extends_with_identity() {
        let k = vec![2, 0, 1, 3];
        assert_eq!(grow_mapping(&k, 6), vec![2, 0, 1, 3, 4, 5]);
        // Still a permutation (inverse_permutation asserts that).
        let _ = inverse_permutation(&grow_mapping(&k, 6));
        // Growing by zero is the identity transformation.
        assert_eq!(grow_mapping(&k, 4), k);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_mapping_rejects_shrinking() {
        let _ = grow_mapping(&[0, 1, 2], 2);
    }

    #[test]
    fn compute_mapping_pairs_heavy_partners() {
        let machine = Machine::cluster(2, 1, 8);
        let tree = TopologyTree::new(vec![2, 1, 8]);
        let placement = Placement::cyclic_by_level(&tree, 8, 1);
        let group: Vec<usize> = (0..8).collect();
        let mut sizes = CommMatrix::zeros(8);
        for i in (0..8).step_by(2) {
            sizes.set(i, i + 1, 1 << 20);
            sizes.set(i + 1, i, 1 << 20);
        }
        let k = compute_mapping(&machine, &placement, &group, &sizes);
        // k is a permutation.
        let _ = inverse_permutation(&k);
        // After reordering, the processes holding new ranks 2i and 2i+1 must
        // share a node: new rank r is held by old rank inv_k[r], whose core
        // is placement.core_of(inv_k[r]).
        let inv = inverse_permutation(&k);
        for i in (0..8).step_by(2) {
            let core_a = placement.core_of(inv[i]);
            let core_b = placement.core_of(inv[i + 1]);
            assert_eq!(
                machine.node_of_core(core_a),
                machine.node_of_core(core_b),
                "pattern pair ({i}, {}) split across nodes; k = {k:?}",
                i + 1
            );
        }
    }

    #[test]
    fn monitored_reorder_improves_iteration_time() {
        let u = cyclic_universe();
        let (before, after): (Vec<f64>, Vec<f64>) = {
            let results = u.launch(|rank| {
                let world = rank.comm_world();
                let mon = Monitoring::init(rank).unwrap();
                let bytes = 4 << 20;
                // Monitor one iteration and reorder.
                let outcome = monitored_reorder(rank, &mon, &world, Flags::P2P_ONLY, |comm| {
                    pair_exchange(rank, comm, bytes)
                });
                // Time one iteration on the original communicator...
                rank.barrier(&world);
                let t0 = rank.now_ns();
                pair_exchange(rank, &world, bytes);
                rank.barrier(&world);
                let t_before = rank.now_ns() - t0;
                // ...and one on the optimized communicator.
                let t1 = rank.now_ns();
                pair_exchange(rank, &outcome.comm, bytes);
                rank.barrier(&world);
                let t_after = rank.now_ns() - t1;
                mon.finalize(rank).unwrap();
                (t_before, t_after)
            });
            results.into_iter().unzip()
        };
        let worst_before = before.iter().cloned().fold(0.0, f64::max);
        let worst_after = after.iter().cloned().fold(0.0, f64::max);
        assert!(
            worst_after < worst_before,
            "reordering should shrink the exchange: {worst_before} -> {worst_after}"
        );
    }

    #[test]
    fn opt_comm_assigns_rank_k() {
        let u = cyclic_universe();
        u.launch(|rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            let outcome = monitored_reorder(rank, &mon, &world, Flags::P2P_ONLY, |comm| {
                pair_exchange(rank, comm, 1024)
            });
            assert_eq!(outcome.comm.size(), world.size());
            assert_eq!(outcome.comm.rank(), outcome.k[world.rank()]);
            assert!(outcome.reorder_cost_ns > 0.0);
            mon.finalize(rank).unwrap();
        });
    }

    #[test]
    fn windowed_reorder_matches_strict_on_same_traffic() {
        let u = cyclic_universe();
        u.launch(|rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            let bytes = 4 << 20;
            // Strict path: suspend barrier, dense star-era gather semantics.
            let strict = monitored_reorder(rank, &mon, &world, Flags::P2P_ONLY, |comm| {
                pair_exchange(rank, comm, bytes)
            });
            // Windowed path, one window of identical traffic: the session
            // stays active through the gather, yet the accumulated matrix —
            // and hence the permutation — must come out the same.
            let windowed =
                monitored_reorder_windowed(rank, &mon, &world, Flags::P2P_ONLY, 1, |comm, _w| {
                    pair_exchange(rank, comm, bytes)
                });
            assert_eq!(windowed.k, strict.k, "one window of the same traffic must map alike");
            assert_eq!(windowed.comm.rank(), windowed.k[world.rank()]);
            assert!(windowed.reorder_cost_ns > 0.0);
            mon.finalize(rank).unwrap();
        });
    }

    #[test]
    fn windowed_reorder_accumulates_across_windows() {
        let u = cyclic_universe();
        u.launch(|rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            // Each window exchanges with the pair partner; three windows
            // accumulate into the same shape as one bigger exchange.
            let outcome =
                monitored_reorder_windowed(rank, &mon, &world, Flags::P2P_ONLY, 3, |comm, _w| {
                    pair_exchange(rank, comm, 1 << 20)
                });
            let _ = inverse_permutation(&outcome.k);
            assert_eq!(outcome.comm.size(), world.size());
            assert_eq!(outcome.comm.rank(), outcome.k[world.rank()]);
            // The pattern pairs must land on shared nodes, as in the strict
            // path's mapping test.
            let inv = inverse_permutation(&outcome.k);
            let machine = rank.machine();
            let placement = rank.placement();
            for i in (0..8).step_by(2) {
                assert_eq!(
                    machine.node_of_core(placement.core_of(inv[i])),
                    machine.node_of_core(placement.core_of(inv[i + 1])),
                    "pattern pair ({i}, {}) split across nodes; k = {:?}",
                    i + 1,
                    outcome.k
                );
            }
            mon.finalize(rank).unwrap();
        });
    }

    #[test]
    fn resilient_without_faults_matches_strict_shape() {
        let u = cyclic_universe();
        u.launch(|rank| {
            let world = rank.comm_world();
            let mon = Monitoring::init(rank).unwrap();
            let outcome =
                monitored_reorder_resilient(rank, &mon, &world, Flags::P2P_ONLY, |comm| {
                    pair_exchange(rank, comm, 4 << 20)
                });
            assert_eq!(outcome.fallback, ReorderFallback::None);
            assert_eq!(outcome.alive, vec![true; 8]);
            assert_eq!(outcome.comm.size(), world.size());
            // k is a permutation assigning this process its new rank.
            let _ = inverse_permutation(&outcome.k);
            assert_eq!(outcome.comm.rank(), outcome.k[world.rank()]);
            assert!(outcome.reorder_cost_ns > 0.0);
            if world.rank() == 0 {
                let g = outcome.gathered.as_ref().expect("root holds the matrices");
                assert_eq!(g.liveness, vec![true; 8]);
                assert!((0..8).any(|i| (0..8).any(|j| g.sizes.get(i, j) > 0)));
            } else {
                assert!(outcome.gathered.is_none());
            }
            mon.finalize(rank).unwrap();
        });
    }

    #[test]
    fn mapping_failure_demotes_to_identity() {
        let machine = Machine::cluster(2, 1, 8);
        let placement = Placement::packed(8);
        // Group larger than the matrix: compute_mapping's own assertion
        // fires, and the wrapper must catch it.
        let group: Vec<usize> = (0..8).collect();
        let sizes = CommMatrix::zeros(4);
        let (k, why) = mapping_or_identity(&machine, &placement, &group, &sizes);
        assert_eq!(k, vec![0, 1, 2, 3]);
        let why = why.expect("mapping must report its failure");
        assert!(why.contains("matrix order"), "unexpected reason: {why}");
    }

    #[test]
    fn redistribute_moves_roles() {
        let u = cyclic_universe();
        u.launch(|rank| {
            let world = rank.comm_world();
            let me = world.rank();
            // A fixed non-trivial permutation.
            let k: Vec<usize> = vec![3, 0, 1, 2, 5, 4, 7, 6];
            let data = vec![me as u64; 4];
            let new_data = redistribute(rank, &world, &k, data);
            // I now perform role k[me], whose data lived at old rank k[me].
            assert_eq!(new_data, vec![k[me] as u64; 4]);
        });
    }

    #[test]
    fn redistribute_identity_is_noop() {
        let u = cyclic_universe();
        u.launch(|rank| {
            let world = rank.comm_world();
            let k: Vec<usize> = (0..8).collect();
            let data = vec![world.rank() as u32];
            assert_eq!(redistribute(rank, &world, &k, data.clone()), data);
        });
    }
    #[test]
    fn elastic_placement_follows_the_matrix() {
        // A 12-process job shrinks to 6 processes on node 1 plus 2 cores of
        // node 0; the heavy pairs must land close together.
        let machine = Machine::cluster(2, 1, 8);
        let available = vec![0, 1, 8, 9, 10, 11, 12, 13];
        let mut m = CommMatrix::zeros(6);
        for i in (0..6).step_by(2) {
            m.set(i, i + 1, 1 << 20);
        }
        let p = elastic_placement(&machine, &available, &m);
        assert_eq!(p.len(), 6);
        for i in (0..6).step_by(2) {
            assert_eq!(
                machine.node_of_core(p.core_of(i)),
                machine.node_of_core(p.core_of(i + 1)),
                "pair ({i}, {}) split across nodes: {:?}",
                i + 1,
                p.as_slice()
            );
        }
        // Every assigned core comes from the available set.
        assert!(p.as_slice().iter().all(|c| available.contains(c)));
    }
}
