//! `mim-explore` — deterministic schedule exploration with replayable
//! witnesses.
//!
//! The static analyzer (`mim-analyze`) stops at [`PotentialDeadlock`] the
//! moment a plan contains a wildcard receive: whether the program hangs
//! then depends on which message the wildcard happens to match, i.e. on
//! the *schedule*.  This crate closes that gap.  It re-executes the same
//! per-rank [`Program`] outline under an explicit scheduler whose every
//! nondeterministic choice — which runnable rank resumes, which eligible
//! channel a wildcard receive takes — is delegated to a pluggable
//! [`policy::RecordingPolicy`], then searches the space of those choices:
//!
//! 1. the **canonical** schedule first (always pick index 0 — the exact
//!    behavior of the live runtime's default policy);
//! 2. a **DPOR-lite** depth-first pass: at each recorded decision the
//!    policy also reports the *persistent set* of alternatives that could
//!    change the outcome (other eligible wildcard channels; other runnable
//!    ranks whose next op races with a wildcard match, computed from the
//!    plan's channel match graph), and the explorer backtracks through
//!    exactly those;
//! 3. a **randomized** tail over per-schedule seeds split off a base seed,
//!    for plans whose branch space exceeds the budget.
//!
//! The first schedule that wedges yields a [`Witness`]: the decision log
//! that steers a byte-for-byte replay, the normalized event trace, the
//! per-rank stuck states, and a flight-recorder excerpt (`mim-trace`).
//! [`replay`] re-runs the witness and fails loudly unless the reproduction
//! is *identical* — a witness that does not replay is a bug, not a result.
//! The verdict is thereby upgraded: `PotentialDeadlock` becomes
//! [`Outcome::DefiniteDeadlock`] (with the witness) or
//! [`Outcome::ExploredClean`] (with the number of schedules that survived).
//!
//! The same [`policy`] types implement `mim_mpisim::SchedulePolicy`, so a
//! recorded decision log can also steer the *live* threaded runtime
//! through its scheduling seams (task resume order, wildcard matching,
//! wire-delivery order).
//!
//! [`PotentialDeadlock`]: mim_analyze::Verdict::PotentialDeadlock
//! [`Program`]: mim_analyze::Program

pub mod explore;
pub mod model;
pub mod plans;
pub mod policy;

pub use explore::{explore, explore_with, replay, Budget, Outcome, Witness};
pub use model::{run_model, run_model_with, RunOutput};
pub use policy::{parse_log, RecordingPolicy, ReplayPolicy};
