//! The schedule explorer: canonical run, DPOR-lite depth-first search over
//! the recorded persistent sets, then a randomized tail — and the
//! [`Witness`] a wedged schedule leaves behind.
//!
//! Exploration is exhaustive when the branch space fits the budget: plans
//! without wildcard receives record no alternatives (message matching is
//! confluent — every schedule reaches the same final state), so the
//! canonical run alone already decides them.  Wildcard plans branch at
//! each multi-candidate match and at each racy task-resume decision; the
//! DFS walks exactly those, deepest-first, and the random phase probes
//! whatever the budget cut off.

use std::fmt::Write as _;

use mim_analyze::diag::json_string;
use mim_analyze::{IndependenceMap, Json, Program};
use mim_trace::Tracer;
use mim_util::rng::splitmix64;

use crate::model::{run_model, run_model_with, RunOutput};
use crate::policy::{RecordingPolicy, ReplayPolicy};

/// How much searching [`explore`] may do.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Ceiling on DFS schedules (including the canonical first run).
    pub max_schedules: usize,
    /// Random schedules appended after the DFS (skipped when the DFS
    /// exhausted the branch space).
    pub random: usize,
    /// Base seed for the random phase.
    pub seed: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { max_schedules: 256, random: 16, seed: 0x5EED }
    }
}

/// Flight-recorder history lines per rank in a witness.
const FLIGHT_LAST_N: usize = 16;

/// What exploration concluded.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A schedule wedged: the analyzer's `PotentialDeadlock` (or the
    /// absence of any verdict) is now a concrete, replayable deadlock.
    DefiniteDeadlock {
        /// The replayable evidence.
        witness: Box<Witness>,
        /// Schedules run before (and including) the wedged one.
        schedules: usize,
    },
    /// Every explored schedule completed.
    ExploredClean {
        /// Schedules run.
        schedules: usize,
        /// Did the DFS exhaust the branch space (true), or did it hit the
        /// budget and fall back to random probing (false)?
        exhaustive: bool,
    },
}

impl Outcome {
    /// Schedules run, whatever the conclusion.
    pub fn schedules(&self) -> usize {
        match self {
            Outcome::DefiniteDeadlock { schedules, .. }
            | Outcome::ExploredClean { schedules, .. } => *schedules,
        }
    }
}

/// A replayable deadlock: everything needed to re-reach the stuck state
/// byte-for-byte and to convince a human it is real.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Plan name (resolvable by the CLI's built-in table).
    pub plan: String,
    /// Rank count of the wedged program.
    pub nranks: usize,
    /// CLI shape `(n, root, bytes, seg)` when the plan came from the
    /// built-in table; `None` for ad-hoc programs.
    pub shape: Option<(usize, usize, u64, u64)>,
    /// Base seed exploration ran under (informational — replay needs only
    /// the decision log).
    pub seed: u64,
    /// 0-based index of the wedged schedule within the exploration.
    pub schedule: usize,
    /// The serialized decision log that steers the replay.
    pub decisions: String,
    /// Normalized per-rank stuck states.
    pub stuck: Vec<String>,
    /// The full normalized event trace of the wedged run.
    pub trace: Vec<String>,
    /// Flight-recorder excerpt (recent history of every rank).
    pub flight: String,
}

impl Witness {
    /// Serialize to the `mim-explore-witness-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"schema\":\"mim-explore-witness-v1\"");
        let _ = write!(s, ",\"plan\":{}", json_string(&self.plan));
        let _ = write!(s, ",\"nranks\":{}", self.nranks);
        match self.shape {
            Some((n, root, bytes, seg)) => {
                let _ = write!(
                    s,
                    ",\"shape\":{{\"n\":{n},\"root\":{root},\"bytes\":{bytes},\"seg\":{seg}}}"
                );
            }
            None => s.push_str(",\"shape\":null"),
        }
        // As a string: the workspace JSON parser backs numbers with f64,
        // which cannot hold every u64 seed exactly.
        let _ = write!(s, ",\"seed\":\"{}\"", self.seed);
        let _ = write!(s, ",\"schedule\":{}", self.schedule);
        let _ = write!(s, ",\"decisions\":{}", json_string(&self.decisions));
        let join = |xs: &[String]| xs.iter().map(|x| json_string(x)).collect::<Vec<_>>().join(",");
        let _ = write!(s, ",\"stuck\":[{}]", join(&self.stuck));
        let _ = write!(s, ",\"trace\":[{}]", join(&self.trace));
        let _ = write!(s, ",\"flight\":{}", json_string(&self.flight));
        s.push('}');
        s
    }

    /// Parse a `mim-explore-witness-v1` document.
    pub fn from_json(text: &str) -> Result<Witness, String> {
        let doc = Json::parse(text).map_err(|e| format!("witness: {e}"))?;
        if doc.get("schema").and_then(Json::as_str) != Some("mim-explore-witness-v1") {
            return Err("witness: missing or unknown schema (want mim-explore-witness-v1)".into());
        }
        let str_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("witness: missing string field '{k}'"))
        };
        let num_field = |k: &str| {
            doc.get(k).and_then(Json::as_u64).ok_or_else(|| format!("witness: missing '{k}'"))
        };
        let arr_field = |k: &str| -> Result<Vec<String>, String> {
            doc.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("witness: missing array field '{k}'"))?
                .iter()
                .map(|j| {
                    j.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("witness: '{k}' holds a non-string"))
                })
                .collect()
        };
        let shape = match doc.get("shape") {
            None | Some(Json::Null) => None,
            Some(sh) => {
                let g = |k: &str| {
                    sh.get(k).and_then(Json::as_u64).ok_or_else(|| format!("witness: shape.{k}"))
                };
                Some((g("n")? as usize, g("root")? as usize, g("bytes")?, g("seg")?))
            }
        };
        let seed = str_field("seed")?
            .parse::<u64>()
            .map_err(|e| format!("witness: seed is not a u64: {e}"))?;
        Ok(Witness {
            plan: str_field("plan")?,
            nranks: num_field("nranks")? as usize,
            shape,
            seed,
            schedule: num_field("schedule")? as usize,
            decisions: str_field("decisions")?,
            stuck: arr_field("stuck")?,
            trace: arr_field("trace")?,
            flight: str_field("flight")?,
        })
    }
}

/// One DFS node: the choice this run made and the alternatives still owed.
#[derive(Debug)]
struct Frame {
    chosen: usize,
    pending: Vec<usize>,
}

fn witness_from(
    program: &Program,
    seed: u64,
    schedule: usize,
    log: String,
    out: RunOutput,
    flight: String,
) -> Witness {
    Witness {
        plan: program.name().to_string(),
        nranks: program.nranks(),
        shape: None,
        seed,
        schedule,
        decisions: log,
        stuck: out.stuck.unwrap_or_default(),
        trace: out.trace,
        flight,
    }
}

/// Search `program`'s schedule space for a deadlock.
///
/// Errors only on internal failures (a policy or model bug); a deadlock is
/// a successful [`Outcome::DefiniteDeadlock`], not an error.
pub fn explore(program: &Program, budget: &Budget) -> Result<Outcome, String> {
    explore_with(program, budget, None)
}

/// [`explore`], additionally consulting the analyzer's static
/// [`IndependenceMap`]: wildcard sites proven benign record empty
/// persistent sets, so the DFS never seeds a backtrack point there and
/// statically `Deterministic` plans are decided by a single schedule.
/// Passing `None` explores the full (unpruned) branch space.
pub fn explore_with(
    program: &Program,
    budget: &Budget,
    independence: Option<&IndependenceMap>,
) -> Result<Outcome, String> {
    let mut schedules = 0usize;
    let mut stack: Vec<Frame> = Vec::new();
    let mut exhaustive = true;

    // Phase 1+2: canonical first run, then DPOR-lite DFS over the
    // persistent sets it (and each subsequent run) recorded.
    loop {
        if schedules >= budget.max_schedules {
            exhaustive = false;
            break;
        }
        let script: Vec<usize> = stack.iter().map(|f| f.chosen).collect();
        let scripted_len = script.len();
        let policy = RecordingPolicy::scripted(script);
        let tracer = Tracer::new(64);
        let out = run_model_with(program, &policy, Some(&tracer), independence)?;
        schedules += 1;
        if out.deadlocked() {
            let w = witness_from(
                program,
                budget.seed,
                schedules - 1,
                policy.log(),
                out,
                tracer.flight_report(FLIGHT_LAST_N),
            );
            return Ok(Outcome::DefiniteDeadlock { witness: Box::new(w), schedules });
        }
        // Fresh decisions beyond the scripted prefix become new frames.
        for rec in policy.recs().into_iter().skip(scripted_len) {
            stack.push(Frame { chosen: rec.chosen, pending: rec.alts });
        }
        // Backtrack to the deepest frame still owing an alternative.
        loop {
            match stack.last_mut() {
                None => return finish_random(program, budget, schedules, exhaustive, independence),
                Some(f) => match f.pending.pop() {
                    Some(alt) => {
                        f.chosen = alt;
                        break;
                    }
                    None => {
                        stack.pop();
                    }
                },
            }
        }
    }

    finish_random(program, budget, schedules, exhaustive, independence)
}

/// Phase 3: seeded random probing (only when the DFS could not finish).
fn finish_random(
    program: &Program,
    budget: &Budget,
    mut schedules: usize,
    exhaustive: bool,
    independence: Option<&IndependenceMap>,
) -> Result<Outcome, String> {
    if !exhaustive {
        let mut state = budget.seed;
        for _ in 0..budget.random {
            let schedule_seed = splitmix64(&mut state);
            let policy = RecordingPolicy::random(Vec::new(), schedule_seed);
            let tracer = Tracer::new(64);
            let out = run_model_with(program, &policy, Some(&tracer), independence)?;
            schedules += 1;
            if out.deadlocked() {
                let w = witness_from(
                    program,
                    budget.seed,
                    schedules - 1,
                    policy.log(),
                    out,
                    tracer.flight_report(FLIGHT_LAST_N),
                );
                return Ok(Outcome::DefiniteDeadlock { witness: Box::new(w), schedules });
            }
        }
    }
    Ok(Outcome::ExploredClean { schedules, exhaustive })
}

/// Re-execute a witness and demand a byte-for-byte reproduction: same
/// decision questions, same normalized trace, same stuck states.
///
/// Returns the replayed run on success; any divergence — a decision-log
/// mismatch, a different trace, a different (or absent) stuck state — is
/// an error describing the first difference.
pub fn replay(program: &Program, witness: &Witness) -> Result<RunOutput, String> {
    if program.nranks() != witness.nranks {
        return Err(format!(
            "replay: program has {} ranks, witness was recorded over {}",
            program.nranks(),
            witness.nranks
        ));
    }
    let policy = ReplayPolicy::from_log(&witness.decisions)?;
    let out = run_model(program, &policy, None)?;
    if let Some(d) = policy.divergence() {
        return Err(d);
    }
    let stuck = out
        .stuck
        .clone()
        .ok_or_else(|| "replay diverged: the run completed instead of deadlocking".to_string())?;
    if stuck != witness.stuck {
        return Err(first_diff("stuck state", &witness.stuck, &stuck));
    }
    if out.trace != witness.trace {
        return Err(first_diff("trace", &witness.trace, &out.trace));
    }
    Ok(out)
}

fn first_diff(what: &str, want: &[String], got: &[String]) -> String {
    let i = want.iter().zip(got).position(|(a, b)| a != b).unwrap_or(want.len().min(got.len()));
    format!(
        "replay diverged: {what} line {i} differs (witness {:?}, replay {:?})",
        want.get(i),
        got.get(i)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_analyze::{Op, Src, Tag, WORLD};

    use crate::plans::{wildcard_clean, wildcard_race};

    #[test]
    fn confluent_plan_is_decided_by_one_schedule() {
        // No wildcards: the DFS records no alternatives.
        let mut p = Program::new("pp", 2);
        p.push(0, Op::Send { comm: WORLD, dst: 1, tag: 0, bytes: 8 });
        p.push(1, Op::Recv { comm: WORLD, src: Src::Rank(0), tag: Tag::Is(0) });
        let out = explore(&p, &Budget::default()).unwrap();
        let Outcome::ExploredClean { schedules, exhaustive } = out else {
            panic!("expected clean, got {out:?}");
        };
        assert_eq!(schedules, 1);
        assert!(exhaustive);
    }

    #[test]
    fn wildcard_race_yields_a_replayable_witness() {
        let p = wildcard_race(4);
        let out = explore(&p, &Budget::default()).unwrap();
        let Outcome::DefiniteDeadlock { witness, schedules } = out else {
            panic!("expected a deadlock, got {out:?}");
        };
        assert!(schedules >= 1);
        assert!(!witness.decisions.is_empty());
        assert!(!witness.stuck.is_empty());
        assert!(witness.flight.contains("events recorded"), "{}", witness.flight);
        // The witness replays byte-for-byte…
        let replayed = replay(&p, &witness).unwrap();
        assert_eq!(replayed.trace, witness.trace);
        // …and survives a JSON round-trip intact.
        let back = Witness::from_json(&witness.to_json()).unwrap();
        assert_eq!(back, *witness);
        replay(&p, &back).unwrap();
    }

    #[test]
    fn wildcard_clean_survives_exploration() {
        let budget = Budget { max_schedules: 4096, ..Budget::default() };
        let out = explore(&wildcard_clean(4), &budget).unwrap();
        let Outcome::ExploredClean { schedules, exhaustive } = out else {
            panic!("expected clean, got {out:?}");
        };
        assert!(schedules > 1, "wildcards must branch the search");
        assert!(exhaustive, "a 4-rank clean plan fits a 4096-schedule budget");
    }

    #[test]
    fn tampered_witness_is_rejected() {
        let p = wildcard_race(3);
        let Outcome::DefiniteDeadlock { witness, .. } = explore(&p, &Budget::default()).unwrap()
        else {
            panic!("expected a deadlock");
        };
        let mut bad = (*witness).clone();
        if let Some(l) = bad.trace.last_mut() {
            l.push('x');
        }
        assert!(replay(&p, &bad).unwrap_err().contains("trace line"));
        let mut bad = (*witness).clone();
        bad.decisions = "r:0/2;".into();
        assert!(replay(&p, &bad).is_err());
    }
}
