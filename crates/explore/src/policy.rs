//! Decision policies: recording (canonical / scripted / random tails) and
//! strict replay, plus the compact decision-log wire format.
//!
//! A *decision* is one consultation of the scheduler at a nondeterminism
//! seam: kind `'r'` (task resume order), `'w'` (wildcard channel choice)
//! or `'d'` (wire delivery order — live runtime only; the model executor
//! delivers eagerly and never emits one).  Policies see only the slate
//! size and per-candidate race flags, never the candidates themselves, so
//! the same log steers both the model executor and the live runtime.
//!
//! The log serializes as `"{kind}:{chosen}/{n};"` per decision —
//! `"r:1/3;w:0/2;"` — which is what the runtime's deadline panic appends
//! after the flight-recorder dump and what a [`Witness`] carries.
//!
//! [`Witness`]: crate::explore::Witness

use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};

use mim_mpisim::{Decision, SchedulePolicy};
use mim_util::rng::Rng;

/// Lock a policy mutex, recovering from poisoning: policies hold no
/// invariant a panicked peer could have broken mid-update (every mutation
/// is a single push/increment), so the inner state is always usable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One recorded decision: the seam kind, the slate size, the index chosen,
/// and the unexplored alternatives of its persistent set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rec {
    /// Seam kind code (`'r'` / `'w'` / `'d'`).
    pub kind: char,
    /// Slate size at the decision.
    pub n: usize,
    /// Index taken.
    pub chosen: usize,
    /// Alternative indices worth exploring (the DPOR-lite persistent set,
    /// already excluding `chosen`).
    pub alts: Vec<usize>,
}

/// How a [`RecordingPolicy`] picks past the end of its script.
#[derive(Debug)]
enum Tail {
    /// Always index 0 — the live runtime's default order.
    Canonical,
    /// Seeded uniform draws.
    Random(Rng),
}

#[derive(Debug)]
struct RecInner {
    script: Vec<usize>,
    tail: Tail,
    recs: Vec<Rec>,
}

/// A policy that follows a scripted choice prefix, extends it canonically
/// or randomly, and records every decision (with its persistent-set
/// alternatives) for the explorer and for witness emission.
#[derive(Debug)]
pub struct RecordingPolicy {
    inner: Mutex<RecInner>,
}

impl RecordingPolicy {
    /// The canonical schedule: empty script, index 0 forever.
    pub fn canonical() -> Self {
        Self::scripted(Vec::new())
    }

    /// Follow `script`, then canonical.
    pub fn scripted(script: Vec<usize>) -> Self {
        RecordingPolicy {
            inner: Mutex::new(RecInner { script, tail: Tail::Canonical, recs: Vec::new() }),
        }
    }

    /// Follow `script`, then seeded uniform draws.
    pub fn random(script: Vec<usize>, seed: u64) -> Self {
        RecordingPolicy {
            inner: Mutex::new(RecInner {
                script,
                tail: Tail::Random(Rng::seed_from_u64(seed)),
                recs: Vec::new(),
            }),
        }
    }

    /// Everything recorded so far, in decision order.
    pub fn recs(&self) -> Vec<Rec> {
        lock(&self.inner).recs.clone()
    }

    /// The serialized decision log (`"r:1/3;w:0/2;"`).
    pub fn log(&self) -> String {
        serialize_log(&self.recs())
    }

    /// Record one decision and return the chosen index.
    ///
    /// `racy[i]` marks candidates whose selection can change the outcome;
    /// an empty slice means "all of them can" (wildcard slates).
    pub fn pick(&self, kind: char, n: usize, racy: &[bool]) -> usize {
        let mut inner = lock(&self.inner);
        let at = inner.recs.len();
        let chosen = match inner.script.get(at) {
            Some(&c) => c.min(n.saturating_sub(1)),
            None => match &mut inner.tail {
                Tail::Canonical => 0,
                Tail::Random(rng) => rng.index(n.max(1)),
            },
        };
        // Persistent set: every other index for a wildcard slate; for task
        // resume, other indices only where a race is flagged (either side).
        let alts: Vec<usize> = (0..n)
            .filter(|&i| i != chosen)
            .filter(|&i| match racy.len() {
                0 => true,
                _ => {
                    racy.get(i).copied().unwrap_or(false)
                        || racy.get(chosen).copied().unwrap_or(false)
                }
            })
            .collect();
        inner.recs.push(Rec { kind, n, chosen, alts });
        chosen
    }
}

/// A policy that re-issues a recorded decision log and *verifies* the run
/// asks the same questions: same seam kind, same slate size, same count.
/// Any divergence is captured (first one wins) instead of silently
/// producing a different schedule.
#[derive(Debug)]
pub struct ReplayPolicy {
    log: Vec<(char, usize, usize)>,
    at: Mutex<usize>,
    diverged: Mutex<Option<String>>,
}

impl ReplayPolicy {
    /// Replay a parsed decision log.
    pub fn new(log: Vec<(char, usize, usize)>) -> Self {
        ReplayPolicy { log, at: Mutex::new(0), diverged: Mutex::new(None) }
    }

    /// Replay a serialized decision log (`"r:1/3;"`).
    pub fn from_log(log: &str) -> Result<Self, String> {
        Ok(Self::new(parse_log(log)?))
    }

    /// The first divergence seen, if any.
    pub fn divergence(&self) -> Option<String> {
        lock(&self.diverged).clone()
    }

    fn diverge(&self, msg: String) -> usize {
        let mut d = lock(&self.diverged);
        if d.is_none() {
            *d = Some(msg);
        }
        0
    }

    /// Answer one decision from the log, flagging any mismatch.
    pub fn pick(&self, kind: char, n: usize, _racy: &[bool]) -> usize {
        let at = {
            let mut at = lock(&self.at);
            let v = *at;
            *at += 1;
            v
        };
        let Some(&(k, chosen, rec_n)) = self.log.get(at) else {
            return self.diverge(format!(
                "replay diverged: decision #{at} ({kind}, {n} candidates) past the end of a \
                 {}-entry log",
                self.log.len()
            ));
        };
        if k != kind || rec_n != n {
            return self.diverge(format!(
                "replay diverged at decision #{at}: log has {k}:{chosen}/{rec_n}, run asked \
                 {kind}:?/{n}"
            ));
        }
        chosen.min(n.saturating_sub(1))
    }
}

/// Serialize a decision list to the compact log format.
pub fn serialize_log(recs: &[Rec]) -> String {
    let mut s = String::with_capacity(recs.len() * 6);
    for r in recs {
        let _ = write!(s, "{}:{}/{};", r.kind, r.chosen, r.n);
    }
    s
}

/// Parse the compact log format back to `(kind, chosen, n)` triples.
pub fn parse_log(log: &str) -> Result<Vec<(char, usize, usize)>, String> {
    let mut out = Vec::new();
    for (i, item) in log.split_terminator(';').enumerate() {
        let err = || format!("decision #{i} malformed: {item:?}");
        let (kind, rest) = item.split_at(item.chars().next().map_or(0, char::len_utf8));
        let kind = kind.chars().next().ok_or_else(err)?;
        if !matches!(kind, 'r' | 'w' | 'd') {
            return Err(format!("decision #{i} has unknown kind {kind:?}"));
        }
        let rest = rest.strip_prefix(':').ok_or_else(err)?;
        let (chosen, n) = rest.split_once('/').ok_or_else(err)?;
        let chosen: usize = chosen.parse().map_err(|_| err())?;
        let n: usize = n.parse().map_err(|_| err())?;
        if chosen >= n {
            return Err(format!("decision #{i} chooses {chosen} from a slate of {n}"));
        }
        out.push((kind, chosen, n));
    }
    Ok(out)
}

/// Map a live-runtime decision onto the policy's narrow interface.
fn split<'a>(decision: &'a Decision<'a>) -> (char, usize, &'a [bool]) {
    match decision {
        Decision::TaskResume { candidates, racy } => ('r', candidates.len(), racy),
        Decision::WildcardTake { candidates, .. } => ('w', candidates.len(), &[]),
        Decision::WireDelivery { candidates } => ('d', candidates.len(), &[]),
    }
}

impl SchedulePolicy for RecordingPolicy {
    fn choose(&self, decision: Decision<'_>) -> usize {
        let (kind, n, racy) = split(&decision);
        self.pick(kind, n, racy)
    }

    fn decision_log(&self) -> Option<String> {
        Some(self.log())
    }
}

impl SchedulePolicy for ReplayPolicy {
    fn choose(&self, decision: Decision<'_>) -> usize {
        let (kind, n, racy) = split(&decision);
        self.pick(kind, n, racy)
    }

    fn decision_log(&self) -> Option<String> {
        self.divergence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_round_trips() {
        let p = RecordingPolicy::scripted(vec![1, 0]);
        assert_eq!(p.pick('r', 3, &[true, true, false]), 1);
        assert_eq!(p.pick('w', 2, &[]), 0);
        assert_eq!(p.pick('w', 4, &[]), 0); // past the script: canonical
        let log = p.log();
        assert_eq!(log, "r:1/3;w:0/2;w:0/4;");
        assert_eq!(parse_log(&log).unwrap(), vec![('r', 1, 3), ('w', 0, 2), ('w', 0, 4)]);
        assert!(parse_log("r:3/3;").is_err());
        assert!(parse_log("x:0/1;").is_err());
        assert!(parse_log("r:/1;").is_err());
    }

    #[test]
    fn persistent_sets_follow_race_flags() {
        let p = RecordingPolicy::canonical();
        p.pick('w', 3, &[]);
        p.pick('r', 3, &[false, true, false]);
        p.pick('r', 2, &[false, false]);
        let recs = p.recs();
        assert_eq!(recs[0].alts, vec![1, 2], "wildcard slates explore everything");
        assert_eq!(recs[1].alts, vec![1], "task resume explores racy candidates only");
        assert!(recs[2].alts.is_empty(), "no races, no branching");
    }

    #[test]
    fn replay_flags_divergence() {
        let r = ReplayPolicy::from_log("r:1/3;w:0/2;").unwrap();
        assert_eq!(r.pick('r', 3, &[]), 1);
        assert_eq!(r.pick('w', 3, &[]), 0, "slate-size mismatch falls back to 0");
        assert!(r.divergence().unwrap().contains("diverged at decision #1"));

        let r = ReplayPolicy::from_log("r:1/3;").unwrap();
        assert_eq!(r.pick('r', 3, &[]), 1);
        r.pick('r', 3, &[]);
        assert!(r.divergence().unwrap().contains("past the end"));
    }

    #[test]
    fn random_tail_is_reproducible() {
        let a = RecordingPolicy::random(vec![], 42);
        let b = RecordingPolicy::random(vec![], 42);
        for _ in 0..32 {
            let n = 5;
            assert_eq!(a.pick('r', n, &[]), b.pick('r', n, &[]));
        }
        assert_eq!(a.log(), b.log());
    }
}
